//! The paper's credibility experiment (Section IV-C / Table II): train the
//! 1024-100-2 face-detection MLP, quantize, constrain, retrain, and
//! compare conventional vs ASM accuracy on the fixed-point engine.
//!
//! Run with: `cargo run --release --example face_detection`

use man_repro::man::train::{run_methodology, MethodologyConfig};
use man_repro::man::zoo::Benchmark;
use man_repro::man_datasets::GenOptions;

fn main() {
    let benchmark = Benchmark::Faces;
    let ds = benchmark.dataset(&GenOptions {
        train: 2000,
        test: 500,
        seed: 7,
    });
    let mut cfg = MethodologyConfig::paper(8);
    cfg.initial_epochs = 10;
    cfg.retrain_epochs = 5;
    println!("training {} on {} samples ...", benchmark.name(), ds.train_len());
    let outcome = run_methodology(
        benchmark.build_network(cfg.seed),
        &ds.train_images,
        &ds.train_labels,
        &ds.test_images,
        &ds.test_labels,
        &cfg,
    );
    println!(
        "float accuracy        : {:.2}%",
        100.0 * outcome.float_accuracy
    );
    println!(
        "conventional NN (J)   : {:.2}% (8-bit fixed point, exact multiplier)",
        100.0 * outcome.conventional_accuracy
    );
    for attempt in &outcome.attempts {
        println!(
            "ASM {:<12} (K)   : {:.2}%  loss {:+.2} pp  accepted: {}",
            attempt.label,
            attempt.accuracy * 100.0,
            attempt.loss_pp,
            attempt.accepted
        );
    }
    match outcome.selected {
        Some(i) => println!(
            "Algorithm 2 selected the smallest set meeting K >= J*Q: {}",
            outcome.attempts[i].label
        ),
        None => println!("no candidate met the quality constraint Q"),
    }
}
