//! The paper's credibility experiment (Section IV-C / Table II): train the
//! 1024-100-2 face-detection MLP, quantize, constrain, retrain, and
//! compare conventional vs ASM accuracy on the fixed-point engine — all
//! through the typed-stage [`Pipeline`].
//!
//! Run with: `cargo run --release --example face_detection`

use man_repro::man::zoo::Benchmark;
use man_repro::man_datasets::GenOptions;
use man_repro::{ManError, Pipeline};

fn main() -> Result<(), ManError> {
    let benchmark = Benchmark::Faces;
    let ds = benchmark.dataset(&GenOptions {
        train: 2000,
        test: 500,
        seed: 7,
    });
    println!(
        "training {} on {} samples ...",
        benchmark.name(),
        ds.train_len()
    );
    let trained = Pipeline::for_benchmark(benchmark)
        .with_bits(8)
        .with_data(&ds)
        .configure(|cfg| {
            cfg.initial_epochs = 10;
            cfg.retrain_epochs = 5;
        })
        .train()?;
    println!(
        "float accuracy        : {:.2}%",
        100.0 * trained.float_accuracy.expect("trained pipeline")
    );
    println!(
        "conventional NN (J)   : {:.2}% (8-bit fixed point, exact multiplier)",
        100.0 * trained.conventional_accuracy.expect("trained pipeline")
    );
    for attempt in &trained.attempts {
        println!(
            "ASM {:<12} (K)   : {:.2}%  loss {:+.2} pp  accepted: {}",
            attempt.label,
            attempt.accuracy * 100.0,
            attempt.loss_pp,
            attempt.accepted
        );
    }
    match trained.selected {
        Some(i) => println!(
            "Algorithm 2 selected the smallest set meeting K >= J*Q: {}",
            trained.attempts[i].label
        ),
        None => println!(
            "no candidate met the quality constraint Q; kept the best: {}",
            trained.alphabets().label()
        ),
    }
    // The selected model compiles straight into a deployable artifact.
    let compiled = trained.compile()?;
    println!(
        "compiled: {} layers at {} bits, ready for save()/session()",
        compiled.fixed().layer_count(),
        compiled.bits()
    );
    Ok(())
}
