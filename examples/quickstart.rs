//! Quickstart: multiply with an ASM, constrain a weight, and see why the
//! MAN neuron needs no multiplier at all.
//!
//! Run with: `cargo run --example quickstart`

use man_repro::man::alphabet::AlphabetSet;
use man_repro::man::asm::AsmMultiplier;
use man_repro::man::constrain::WeightLattice;

fn main() {
    // 1. An 8-bit ASM with the 4-alphabet set {1,3,5,7}.
    let asm = AsmMultiplier::new(8, AlphabetSet::a4());
    let input = 77u32;
    let bank = asm.precompute(input); // the "pre-computer bank": [1,3,5,7]·77
    println!("pre-computer bank of {input}: {bank:?}");

    // 2. Fig. 2's example weight 0b0100_1010: quartet 10 = 5<<1, quartet
    //    4 = 1<<2 — a pure select/shift/add multiplication.
    let w = 0b0100_1010u32;
    let product = asm.multiply(w, &bank).expect("supported weight");
    assert_eq!(product, w as u64 * input as u64);
    println!("{w} x {input} = {product} via select, shift, add");

    // 3. Unsupported weights are rejected — Table I's W1 = 105 contains
    //    quartet 9, which {1,3,5,7} cannot produce.
    let err = asm.multiply(105, &bank).unwrap_err();
    println!("unconstrained weight: {err}");

    // 4. Algorithm 1 rounds it onto the representable lattice.
    let lattice = WeightLattice::new(8, &AlphabetSet::a4());
    let constrained = lattice.project_exact(105);
    println!("Algorithm 1: 105 -> {constrained}");
    let product = asm.multiply(constrained, &bank).expect("now supported");
    println!("{constrained} x {input} = {product} (exact on the ASM)");

    // 5. The MAN: alphabet {1} — no pre-computer bank at all, the input
    //    itself is the only 'alphabet'; multiplication is shift-and-add.
    let man = AsmMultiplier::new(8, AlphabetSet::a1());
    let man_bank = man.precompute(input);
    assert_eq!(man_bank, vec![input as u64]);
    let man_lattice = WeightLattice::new(8, &AlphabetSet::a1());
    let w_man = man_lattice.project_exact(105);
    println!(
        "MAN: 105 -> {w_man}; {w_man} x {input} = {}",
        man.multiply(w_man, &man_bank).unwrap()
    );
}
