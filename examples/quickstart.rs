//! Quickstart: what an Alphabet Set Multiplier is, and the whole
//! methodology as a four-line pipeline — constrain, compile, save/load,
//! serve.
//!
//! Run with: `cargo run --release --example quickstart`

use man_repro::man::alphabet::AlphabetSet;
use man_repro::man::asm::AsmMultiplier;
use man_repro::man::constrain::WeightLattice;
use man_repro::man::zoo::Benchmark;
use man_repro::man_par::available_cores;
use man_repro::{CompiledModel, ManError, Parallelism, Pipeline};

fn main() -> Result<(), ManError> {
    // What this host can actually parallelize — CI logs grep this line
    // to see what the runners exercised.
    let par = Parallelism::Auto;
    println!(
        "[man-par] host cores: {}, batch sessions below run {}",
        available_cores(),
        par.label()
    );
    // ...and which MAC kernel the engine dispatched to (scalar
    // reference / portable SWAR / AVX2) — same grep-ability, for the
    // kernel-equivalence CI logs.
    println!(
        "[man-kernel] cpu: {}; resolved kernel: {}",
        man_repro::man::kernel::cpu_features(),
        man_repro::man::kernel::default_kernel().label()
    );

    // ---- Part 1: the multiplier the paper replaces multiplication with.

    // An 8-bit ASM with the 4-alphabet set {1,3,5,7}.
    let asm = AsmMultiplier::new(8, AlphabetSet::a4());
    let input = 77u32;
    let bank = asm.precompute(input); // the "pre-computer bank": [1,3,5,7]·77
    println!("pre-computer bank of {input}: {bank:?}");

    // Fig. 2's example weight 0b0100_1010: quartet 10 = 5<<1, quartet
    // 4 = 1<<2 — a pure select/shift/add multiplication.
    let w = 0b0100_1010u32;
    let product = asm.multiply(w, &bank).expect("supported weight");
    assert_eq!(product, w as u64 * input as u64);
    println!("{w} x {input} = {product} via select, shift, add");

    // Unsupported weights are rejected — Table I's W1 = 105 contains
    // quartet 9, which {1,3,5,7} cannot produce...
    let err = asm.multiply(105, &bank).unwrap_err();
    println!("unconstrained weight: {err}");

    // ...so Algorithm 1 rounds it onto the representable lattice.
    let lattice = WeightLattice::new(8, &AlphabetSet::a4());
    let constrained = lattice.project_exact(105);
    println!("Algorithm 1: 105 -> {constrained}");

    // The MAN: alphabet {1} — no pre-computer bank at all; multiplication
    // is shift-and-add only.
    let man = AsmMultiplier::new(8, AlphabetSet::a1());
    assert_eq!(man.precompute(input), vec![input as u64]);

    // ---- Part 2: the same idea at network scale, via the Pipeline.
    //
    // `constrain()` projects a freshly built benchmark network onto the
    // MAN lattice without training (fast); swap in `.train()?` for the
    // full Algorithm-2 methodology.
    let compiled = Pipeline::for_benchmark(Benchmark::Faces)
        .with_bits(8)
        .with_alphabets(vec![AlphabetSet::a1()])
        .constrain()?
        .compile()?;
    println!(
        "compiled {}-bit model: {} parameterized layers, alphabets {}",
        compiled.bits(),
        compiled.fixed().layer_count(),
        compiled.alphabets().label(),
    );

    // One-file artifact: save, reload, and verify bit-identical logits.
    let path = std::env::temp_dir().join("man_quickstart.man.json");
    compiled.save(&path)?;
    let reloaded = CompiledModel::load(&path)?;
    let pixels = vec![0.5f32; 1024];
    assert_eq!(
        compiled.fixed().infer_raw(&pixels),
        reloaded.fixed().infer_raw(&pixels),
        "artifact reloads bit-identically"
    );
    println!("artifact round-trip OK: {}", path.display());

    // Serve a batch: pre-computer banks are shared across the batch, and
    // the rows are sharded across every available core (bit-identical to
    // the sequential session — see DESIGN.md §8).
    let mut session = reloaded.session_parallel(par);
    let batch: Vec<Vec<f32>> = (0..4).map(|i| vec![0.2 * i as f32; 1024]).collect();
    for (i, p) in session.infer_batch(&batch)?.iter().enumerate() {
        println!("batch[{i}] -> class {} (scores {:?})", p.class, p.scores);
    }
    // The third tuner axis: which MAC data layout that batch resolved
    // to (`row` vectorizes within a row's fan-in, `batch` across batch
    // rows — DESIGN.md §10) — grep-able next to `[man-kernel]`.
    println!(
        "[man-kernel] resolved layout for the batch of {}: {}",
        batch.len(),
        session.stats().layout
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
