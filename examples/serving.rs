//! Serving quickstart: compile a model, save the one-file artifact, and
//! serve it under concurrent traffic with `man-serve` — first through
//! the in-process [`man_serve::Client`], then over the TCP front-end's
//! newline-delimited JSON protocol.
//!
//! Run with: `cargo run --release --example serving`

use std::sync::Arc;
use std::time::Duration;

use man_repro::man::alphabet::AlphabetSet;
use man_repro::man::zoo::Benchmark;
use man_repro::man_datasets::GenOptions;
use man_repro::man_par::available_cores;
use man_repro::{ManError, Parallelism, Pipeline};
use man_serve::obs::{self, ObsLevel};
use man_serve::{BatchConfig, Client, ModelRegistry, Server, TcpClient};

fn main() -> Result<(), ManError> {
    // Full span tracing for the demo: every stage of every request
    // lands in the per-stage histograms and the flight-recorder ring
    // (DESIGN.md §12). Production default is `Counters`; `Off` reduces
    // every instrumentation site to one branch.
    obs::set_level(ObsLevel::Spans);
    // One line for the CI logs: what the scheduler workers can shard
    // a micro-batch across on this host.
    let parallelism = Parallelism::Auto;
    println!(
        "[man-par] host cores: {}, scheduler micro-batches run {}",
        available_cores(),
        parallelism.label()
    );
    // And the MAC-kernel axis: what the workers' inner loop dispatched
    // to on this host (see DESIGN.md §10) — grep `[man-kernel]` in CI
    // logs to confirm which kernels a run actually exercised.
    println!(
        "[man-kernel] cpu: {}; resolved kernel: {}",
        man_repro::man::kernel::cpu_features(),
        man_repro::man::kernel::default_kernel().label()
    );

    // ---- Compile the paper's Digit-8bit MLP onto the MAN lattice and
    // persist it as a single-file artifact (see `quickstart.rs` for the
    // full train/constrain story; projection is enough to serve).
    let ds = Benchmark::DigitsMlp.dataset(&GenOptions {
        train: 1,
        test: 16,
        seed: 42,
    });
    let compiled = Pipeline::for_benchmark(Benchmark::DigitsMlp)
        .with_bits(8)
        .with_alphabets(vec![AlphabetSet::a1()])
        .constrain()?
        .compile()?;
    let artifact = std::env::temp_dir().join("man_serving_example.man.json");
    compiled.save(&artifact)?;

    // ---- A registry hosts named models behind micro-batching
    // schedulers; `load_file` hot-loads (and `unload` evicts) artifacts
    // at runtime.
    let registry = ModelRegistry::new(BatchConfig {
        parallelism,
        ..BatchConfig::default()
    });
    let info = registry.load_file("digits", &artifact)?;
    println!(
        "loaded `{}`: {}-bit, {} inputs, alphabets {}",
        info.model, info.bits, info.input_len, info.alphabets
    );

    // ---- In-process serving: many threads, one model. The scheduler
    // coalesces concurrent requests into batches; predictions stay
    // bit-identical to sequential inference.
    let client = Client::new(Arc::clone(&registry));
    std::thread::scope(|scope| {
        for t in 0..4 {
            let client = client.clone();
            let images = &ds.test_images;
            scope.spawn(move || {
                for (i, image) in images.iter().enumerate() {
                    let p = client
                        .predict("digits", image.clone())
                        .expect("serving a dataset image");
                    if t == 0 && i < 3 {
                        println!("thread {t} image {i} -> class {}", p.class);
                    }
                }
            });
        }
    });
    for s in client.stats(Some("digits"))? {
        println!(
            "stats: {} completed, {} batches (mean size {:.2}), p50 {} us, p99 {} us",
            s.completed, s.batches, s.mean_batch, s.p50_us, s.p99_us
        );
        // The layout axis next to the kernel one: what data layout the
        // scheduler's most recent dispatch resolved to (DESIGN.md §10)
        // — `row` below the tuner's batch/row-cost thresholds, `batch`
        // once micro-batches are wide and rows heavy enough.
        println!(
            "[man-kernel] resolved layout: {} (plan {})",
            s.layout, s.plan
        );
    }

    // ---- Where did the time go? The observability plane histograms
    // every lifecycle stage (queue wait, batch coalesce, shard
    // dispatch, kernel execute, ...) across serve, par and the kernel
    // layer — one table instead of per-crate guesswork.
    println!("\nper-stage latency breakdown (man-obs):");
    println!(
        "  {:<12} {:>8} {:>10} {:>10} {:>10}",
        "stage", "samples", "mean us", "p50 us", "p99 us"
    );
    for (stage, snap) in obs::stage_snapshot() {
        if snap.is_empty() {
            continue;
        }
        println!(
            "  {:<12} {:>8} {:>10.1} {:>10} {:>10}",
            stage.label(),
            snap.count,
            snap.mean(),
            snap.quantile(0.50),
            snap.quantile(0.99),
        );
    }

    // ---- The same four operations over TCP (newline-delimited JSON).
    let mut server = Server::bind("127.0.0.1:0", Arc::clone(&registry)).map_err(ManError::Io)?;
    // Which front-end engine `Server::bind` resolved to (the poll
    // reactor by default; `MAN_FRONTEND=legacy` forces the
    // thread-per-connection fallback) — grep `[man-serve]` in CI logs.
    let fe = server.frontend_stats();
    println!(
        "[man-serve] front-end: {} ({} reactor + {} dispatch threads), TCP on {}",
        server.mode().label(),
        fe.reactor_threads,
        fe.dispatch_threads,
        server.local_addr()
    );
    let mut tcp = TcpClient::connect(server.local_addr()).map_err(ManError::Io)?;
    let (class, scores) = tcp
        .predict("digits", &ds.test_images[0])
        .expect("predict over the wire");
    println!("TCP predict -> class {class} ({} scores)", scores.len());
    // Wrong-shaped input: a structured protocol error, connection kept.
    let err = tcp
        .predict("digits", &[0.5; 3])
        .expect_err("short input must be rejected");
    println!("TCP shape error -> [{}] {}", err.code, err.message);
    tcp.unload("digits").expect("unload over the wire");
    let fe = server.frontend_stats();
    println!(
        "[man-serve] slab high-water: {} ({} accepted, {} ndjson / {} binary)",
        fe.slab_high_water, fe.accepted_conns, fe.ndjson_conns, fe.binary_conns
    );

    server.shutdown();
    registry.shutdown();
    std::fs::remove_file(&artifact).ok();

    // Backpressure contract: a full queue rejects immediately instead
    // of queueing unboundedly — hammer a 1-slot queue and count the
    // `overloaded` answers.
    let tiny = ModelRegistry::new(BatchConfig {
        queue_capacity: 1,
        request_timeout: Duration::from_secs(5),
        ..BatchConfig::default()
    });
    tiny.install("digits", compiled);
    let tiny_client = Client::new(Arc::clone(&tiny));
    let overloaded: usize = std::thread::scope(|scope| {
        (0..4)
            .map(|t| {
                let client = tiny_client.clone();
                let images = &ds.test_images;
                scope.spawn(move || {
                    (0..images.len())
                        .filter(|&i| {
                            client
                                .predict("digits", images[(i + t) % images.len()].clone())
                                .is_err()
                        })
                        .count()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("burst thread panicked"))
            .sum()
    });
    let s = tiny.stats(Some("digits"))?.remove(0);
    println!(
        "1-slot queue under a 4-thread burst: {} served, {overloaded} rejected with `overloaded`",
        s.completed
    );
    Ok(())
}
