//! Explore the gate-level neuron datapaths: synthesize every variant at
//! the paper's iso-speed clocks and print gates / area / timing, plus a
//! library-scaling sensitivity check and a whole-network cost measurement
//! through the pipeline's `cost()` stage.
//!
//! Run with: `cargo run --release --example hardware_explorer`

use man_repro::man::alphabet::AlphabetSet;
use man_repro::man::engine::CostModel;
use man_repro::man::zoo::Benchmark;
use man_repro::man_datasets::GenOptions;
use man_repro::man_hw::cell::CellLibrary;
use man_repro::man_hw::neuron::{NeuronDatapath, NeuronKind, NeuronSpec};
use man_repro::{ManError, Pipeline};

fn explore(lib: &CellLibrary, title: &str) {
    println!("\n== {title} ==");
    for bits in [8u32, 12] {
        let mut base = 0.0;
        for kind in [
            NeuronKind::Conventional,
            NeuronKind::Asm(vec![1, 3, 5, 7]),
            NeuronKind::Asm(vec![1, 3]),
            NeuronKind::Asm(vec![1]),
        ] {
            let spec = NeuronSpec::paper(bits, kind.clone());
            let dp = NeuronDatapath::build(spec, lib).expect("timing closes");
            let area = dp.neuron_area_um2(lib);
            if base == 0.0 {
                base = area;
            }
            println!(
                "{bits:>2}b {:<14} mult {:>5} gates ({} stages) | bank {:>4} gates | neuron {:>7.1} um^2 ({:>5.1}%)",
                kind.label(),
                dp.mult_stage.gate_count(),
                dp.mult_stage.pipeline_stages(),
                dp.precompute.as_ref().map_or(0, |c| c.gate_count()),
                area,
                100.0 * area / base,
            );
        }
    }
}

fn main() -> Result<(), ManError> {
    let nominal = CellLibrary::nominal_45nm();
    explore(&nominal, "nominal 45nm-class library");
    // Sensitivity: the conventional-vs-MAN ratio barely moves when the
    // whole library is scaled — the savings come from structure.
    let scaled = nominal.scaled(1.3, 1.1, 0.8);
    explore(
        &scaled,
        "scaled library (area x1.3, delay x1.1, energy x0.8)",
    );

    // Whole-network cost via the pipeline's final stage: train the digit
    // MLP briefly (so operand traces carry realistic activity), project
    // onto each lattice — cost studies skip the constrained *retraining*
    // — compile, and drive the synthesized datapaths with real traces.
    println!("\n== per-inference network cost (digit MLP, real operand traces) ==");
    let ds = Benchmark::DigitsMlp.dataset(&GenOptions::quick(3));
    let baseline = Pipeline::for_benchmark(Benchmark::DigitsMlp)
        .with_bits(8)
        .with_data(&ds)
        .configure(|cfg| cfg.initial_epochs = 4)
        .train_baseline()?;
    let mut model = CostModel::default();
    model.stream_limit = 400;
    for set in [AlphabetSet::a4(), AlphabetSet::a2(), AlphabetSet::a1()] {
        let costed = Pipeline::from_network(baseline.network().clone())
            .with_bits(8)
            .with_alphabets(vec![set])
            .constrain()?
            .compile()?
            .cost(&mut model, &ds.test_images)?;
        let r = &costed.report;
        println!(
            "{:<14} {:>8} cycles  {:>9.1} pJ  {:>7.2} mW  {:>8.1} um^2/neuron",
            r.label, r.cycles, r.energy_pj, r.power_mw, r.neuron_area_um2
        );
    }
    Ok(())
}
