//! Section VI-E: use MAN ({1}) neurons in the large early layers and
//! richer alphabet sets only in the small concluding layers — better
//! accuracy for a tiny energy overhead.
//!
//! Run with: `cargo run --release --example mixed_alphabets`

use man_repro::man::alphabet::AlphabetSet;
use man_repro::man::fixed::{FixedNet, LayerAlphabets, QuantSpec};
use man_repro::man::train::{constrained_retrain, train_unconstrained, MethodologyConfig};
use man_repro::man::zoo::Benchmark;
use man_repro::man_datasets::GenOptions;

fn main() {
    let benchmark = Benchmark::Tich;
    let ds = benchmark.dataset(&GenOptions {
        train: 2500,
        test: 600,
        seed: 11,
    });
    let mut cfg = MethodologyConfig::paper(8);
    cfg.initial_epochs = 10;
    cfg.retrain_epochs = 5;
    let mut net = benchmark.build_network(cfg.seed);
    println!("training the 5-layer TICH-like MLP ...");
    train_unconstrained(&mut net, &ds.train_images, &ds.train_labels, &cfg);
    let spec = QuantSpec::fit(&net, 8);

    let (a1, a2, a4) = (AlphabetSet::a1(), AlphabetSet::a2(), AlphabetSet::a4());
    let configs = [
        ("all MAN {1}", LayerAlphabets::uniform(a1.clone(), 5)),
        (
            "mixed {1}x3 + {1,3} + {1,3,5,7}",
            LayerAlphabets::mixed(vec![a1.clone(), a1.clone(), a1, a2, a4]),
        ),
    ];
    for (label, alphabets) in configs {
        let retrained = constrained_retrain(
            &net,
            &spec,
            &alphabets,
            &ds.train_images,
            &ds.train_labels,
            &cfg,
        );
        let fixed = FixedNet::compile(&retrained, &spec, &alphabets).expect("constrained");
        let acc = fixed.accuracy(&ds.test_images, &ds.test_labels);
        println!("{label:<34} accuracy {:.2}%", 100.0 * acc);
    }
    println!("\nThe concluding layers hold few neurons (here 90+36 of 786), so the");
    println!("richer alphabets cost almost no extra cycles — the paper's Fig. 11.");
}
