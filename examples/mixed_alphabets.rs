//! Section VI-E: use MAN ({1}) neurons in the large early layers and
//! richer alphabet sets only in the small concluding layers — better
//! accuracy for a tiny energy overhead. Uses the pipeline's
//! baseline/retrain split so the expensive unconstrained training runs
//! once and both assignments retrain from the same restore point.
//!
//! Run with: `cargo run --release --example mixed_alphabets`

use man_repro::man::alphabet::AlphabetSet;
use man_repro::man::fixed::LayerAlphabets;
use man_repro::man::zoo::Benchmark;
use man_repro::man_datasets::GenOptions;
use man_repro::{ManError, Pipeline};

fn main() -> Result<(), ManError> {
    let benchmark = Benchmark::Tich;
    let ds = benchmark.dataset(&GenOptions {
        train: 2500,
        test: 600,
        seed: 11,
    });
    println!("training the 5-layer TICH-like MLP ...");
    let baseline = Pipeline::for_benchmark(benchmark)
        .with_bits(8)
        .with_data(&ds)
        .configure(|cfg| {
            cfg.initial_epochs = 10;
            cfg.retrain_epochs = 5;
        })
        .train_baseline()?;

    let (a1, a2, a4) = (AlphabetSet::a1(), AlphabetSet::a2(), AlphabetSet::a4());
    let configs = [
        ("all MAN {1}", LayerAlphabets::uniform(a1.clone(), 5)),
        (
            "mixed {1}x3 + {1,3} + {1,3,5,7}",
            LayerAlphabets::mixed(vec![a1.clone(), a1.clone(), a1, a2, a4]),
        ),
    ];
    for (label, alphabets) in configs {
        let retrained = baseline.retrain(&alphabets)?;
        let attempt = &retrained.attempts[0];
        println!(
            "{label:<34} accuracy {:.2}% (loss {:+.2} pp vs conventional)",
            100.0 * attempt.accuracy,
            attempt.loss_pp
        );
    }
    println!("\nThe concluding layers hold few neurons (here 90+36 of 786), so the");
    println!("richer alphabets cost almost no extra cycles — the paper's Fig. 11.");
    Ok(())
}
