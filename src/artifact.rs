//! Stage 2-3 of the pipeline: the compiled model, its single-file
//! artifact format, and the hardware-cost stage.
//!
//! # Artifact format
//!
//! [`CompiledModel::save`] writes **one** JSON document bundling
//! everything needed to rebuild bit-identical inference:
//!
//! ```json
//! {
//!   "format": "man-compiled-model",
//!   "version": 1,
//!   "bits": 8,
//!   "network":   { ... },   // constrained float weights (man-nn Network)
//!   "spec":      { ... },   // frozen QuantSpec (word length + per-layer formats)
//!   "alphabets": { ... }    // per-layer alphabet assignment
//! }
//! ```
//!
//! [`CompiledModel::load`] validates the format tag and version, then
//! *recompiles* the network — so a tampered artifact whose weights left
//! the lattice is rejected with [`ManError::Compile`] instead of
//! silently mis-multiplying.

use std::path::Path;
use std::sync::Arc;

use man::engine::{kinds_conventional, kinds_from_alphabets, CostModel, CostReport};
use man::fixed::{FixedNet, LayerAlphabets, QuantSpec};
use man_hw::neuron::NeuronKind;
use man_nn::network::Network;
use serde::{Deserialize, Serialize};

use crate::error::ManError;
use crate::session::InferenceSession;

/// The artifact format tag.
pub const ARTIFACT_FORMAT: &str = "man-compiled-model";
/// The current artifact version.
pub const ARTIFACT_VERSION: u32 = 1;

#[derive(Serialize, Deserialize)]
struct Artifact {
    format: String,
    version: u32,
    bits: u32,
    network: Network,
    spec: QuantSpec,
    alphabets: LayerAlphabets,
}

/// Stage 2: a constrained network compiled onto the fixed-point ASM
/// datapath, plus everything needed to persist and redeploy it.
#[derive(Clone, Debug)]
pub struct CompiledModel {
    network: Network,
    spec: QuantSpec,
    alphabets: LayerAlphabets,
    // Shared with every InferenceSession the model opens, so opening a
    // session never copies the compiled weights/plans.
    fixed: Arc<FixedNet>,
}

impl CompiledModel {
    /// Compiles a constrained network under a spec and assignment.
    ///
    /// # Errors
    ///
    /// Returns [`ManError::Compile`] on architecture or lattice
    /// violations.
    pub fn from_parts(
        network: Network,
        spec: QuantSpec,
        alphabets: LayerAlphabets,
    ) -> Result<Self, ManError> {
        let fixed = Arc::new(FixedNet::compile(&network, &spec, &alphabets)?);
        Ok(Self {
            network,
            spec,
            alphabets,
            fixed,
        })
    }

    /// The bit-accurate fixed-point engine.
    pub fn fixed(&self) -> &FixedNet {
        &self.fixed
    }

    /// The engine behind a shared handle — what sessions hold.
    pub(crate) fn fixed_shared(&self) -> Arc<FixedNet> {
        Arc::clone(&self.fixed)
    }

    /// The constrained float network the model was compiled from.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The frozen quantization spec.
    pub fn spec(&self) -> &QuantSpec {
        &self.spec
    }

    /// The per-layer alphabet assignment.
    pub fn alphabets(&self) -> &LayerAlphabets {
        &self.alphabets
    }

    /// Word length.
    pub fn bits(&self) -> u32 {
        self.spec.bits()
    }

    /// Multiply-accumulate operations one inference costs, recorded at
    /// compile time — the work measure the [`Parallelism::Auto`] tuner
    /// plans batches with (see `man_par::plan_shards`).
    ///
    /// [`Parallelism::Auto`]: man_par::Parallelism::Auto
    pub fn macs_per_inference(&self) -> u64 {
        self.fixed.macs_per_inference()
    }

    /// Heap bytes of the engine's repacked structure-of-arrays kernel
    /// plans (DESIGN.md §10), recorded at compile time like
    /// [`CompiledModel::macs_per_inference`] — shared by every session
    /// over this model, and surfaced next to the per-session cache
    /// footprint in session/serve `stats`.
    pub fn kernel_plan_bytes(&self) -> usize {
        self.fixed.kernel_plan_bytes()
    }

    /// Classification accuracy of the fixed-point engine over a set.
    pub fn accuracy(&self, images: &[Vec<f32>], labels: &[usize]) -> f64 {
        self.fixed.accuracy(images, labels)
    }

    /// Opens a batched inference session over this model.
    pub fn session(&self) -> InferenceSession {
        InferenceSession::new(self)
    }

    /// Opens a session whose batches are sharded across `parallelism`
    /// worker threads — sugar for
    /// `session().with_parallelism(parallelism)`. Predictions are
    /// bit-identical to the sequential session for every setting.
    pub fn session_parallel(&self, parallelism: man_par::Parallelism) -> InferenceSession {
        self.session().with_parallelism(parallelism)
    }

    /// Renders the single-file artifact as JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`ManError::Artifact`] if serialization fails.
    pub fn to_json(&self) -> Result<String, ManError> {
        let artifact = Artifact {
            format: ARTIFACT_FORMAT.to_owned(),
            version: ARTIFACT_VERSION,
            bits: self.spec.bits(),
            network: self.network.clone(),
            spec: self.spec.clone(),
            alphabets: self.alphabets.clone(),
        };
        Ok(serde_json::to_string(&artifact)?)
    }

    /// Rebuilds a model from artifact JSON, revalidating everything.
    ///
    /// # Errors
    ///
    /// Returns [`ManError::Artifact`] on malformed JSON, a wrong format
    /// tag, an unsupported version or an empty assignment, and
    /// [`ManError::Compile`] if the weights are off-lattice.
    pub fn from_json(json: &str) -> Result<Self, ManError> {
        let artifact: Artifact = serde_json::from_str(json)?;
        if artifact.format != ARTIFACT_FORMAT {
            return Err(ManError::artifact(format!(
                "not a {ARTIFACT_FORMAT} artifact (format tag `{}`)",
                artifact.format
            )));
        }
        if artifact.version != ARTIFACT_VERSION {
            return Err(ManError::artifact(format!(
                "unsupported artifact version {} (supported: {ARTIFACT_VERSION})",
                artifact.version
            )));
        }
        if artifact.alphabets.is_empty() {
            return Err(ManError::artifact(
                "artifact holds an empty alphabet assignment",
            ));
        }
        if artifact.bits != artifact.spec.bits() {
            return Err(ManError::artifact(format!(
                "artifact bits field ({}) disagrees with its spec ({})",
                artifact.bits,
                artifact.spec.bits()
            )));
        }
        Self::from_parts(artifact.network, artifact.spec, artifact.alphabets)
    }

    /// Saves the single-file artifact.
    ///
    /// # Errors
    ///
    /// Returns [`ManError::Io`] on filesystem failures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ManError> {
        std::fs::write(path, self.to_json()?)?;
        Ok(())
    }

    /// Loads and revalidates a single-file artifact.
    ///
    /// # Errors
    ///
    /// As [`CompiledModel::from_json`], plus [`ManError::Io`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ManError> {
        Self::from_json(&std::fs::read_to_string(path)?)
    }

    /// Stage 3: measures cycles / energy / power / area of this model on
    /// the paper's 4-lane processing engine, driving the gate-level
    /// datapaths with real operand traces sampled from `sample_images`.
    ///
    /// # Errors
    ///
    /// Returns [`ManError::Config`] if the samples are too few to
    /// exercise every layer, and [`ManError::TimingClosure`] if a
    /// datapath cannot close timing at the iso-speed clock.
    pub fn cost(
        self,
        model: &mut CostModel,
        sample_images: &[Vec<f32>],
    ) -> Result<CostedModel, ManError> {
        let kinds = kinds_from_alphabets(&self.alphabets);
        let label = self.alphabets.label();
        self.cost_as(model, sample_images, kinds, label)
    }

    /// Like [`CompiledModel::cost`], but measures the network on
    /// *conventional* exact-multiplier neurons — the paper's baseline
    /// datapath. The model must be compiled under the full alphabet set
    /// for the comparison to make sense.
    ///
    /// # Errors
    ///
    /// As [`CompiledModel::cost`].
    pub fn cost_conventional(
        self,
        model: &mut CostModel,
        sample_images: &[Vec<f32>],
    ) -> Result<CostedModel, ManError> {
        let kinds = kinds_conventional(self.fixed.layer_count());
        self.cost_as(model, sample_images, kinds, "conventional".to_owned())
    }

    fn cost_as(
        self,
        model: &mut CostModel,
        sample_images: &[Vec<f32>],
        kinds: Vec<NeuronKind>,
        label: String,
    ) -> Result<CostedModel, ManError> {
        if sample_images.is_empty() {
            return Err(ManError::config("cost() needs at least one sample image"));
        }
        let traces = self.fixed.sample_traces(sample_images, model.stream_limit);
        if traces.iter().any(|t| t.len() < 2) {
            return Err(ManError::config(
                "operand traces too short to measure energy (provide more samples)",
            ));
        }
        let report = model.network_cost(&self.fixed, &kinds, &traces, label)?;
        Ok(CostedModel {
            model: self,
            report,
        })
    }
}

/// Stage 3: a compiled model plus its measured hardware cost.
#[derive(Clone, Debug)]
pub struct CostedModel {
    model: CompiledModel,
    /// Cycles, energy, power and area per inference.
    pub report: CostReport,
}

impl CostedModel {
    /// The underlying compiled model.
    pub fn model(&self) -> &CompiledModel {
        &self.model
    }

    /// Compile-time MACs per inference (see
    /// [`CompiledModel::macs_per_inference`]) — alongside the measured
    /// cycles in [`CostedModel::report`], the static half of the cost
    /// picture the Auto tuner plans with.
    pub fn macs_per_inference(&self) -> u64 {
        self.model.macs_per_inference()
    }

    /// Unwraps back into the compiled model, dropping the report.
    pub fn into_model(self) -> CompiledModel {
        self.model
    }
}
