//! Workspace facade for the MAN (Multiplier-less Artificial Neuron)
//! reproduction.
//!
//! This crate only re-exports the member crates so that the repository's
//! `examples/` and `tests/` can reach everything through one dependency.
//! Start with [`man`] — the paper's primary contribution — and see
//! `DESIGN.md` at the repository root for the full system inventory.

pub use man;
pub use man_datasets;
pub use man_fixed;
pub use man_hw;
pub use man_nn;
