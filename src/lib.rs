//! **man-repro** — the top-level API of the MAN (Multiplier-less
//! Artificial Neuron) reproduction.
//!
//! The paper's contribution is a *methodology*: train a float network,
//! constrain its weights onto the alphabet lattice (Algorithm 1), retrain
//! under the constraint (Algorithm 2), compile onto the fixed-point ASM
//! datapath, and measure the hardware cost. This crate packages that
//! methodology as a typed-stage pipeline in which each stage is a
//! concrete struct, so invalid orderings are unrepresentable:
//!
//! ```text
//! Pipeline -> TrainedModel -> CompiledModel -> CostedModel
//!                                  |-> InferenceSession (serving)
//!                                  '-> save()/load()    (one-file artifact)
//! ```
//!
//! * [`Pipeline`] — configure a benchmark or custom network, word
//!   length, candidate alphabet sets and data; `train()` runs the full
//!   Algorithm 2, `train_baseline()`/`retrain()` expose its halves for
//!   sweeps, `constrain()` projects without training.
//! * [`TrainedModel`] — a constrained network plus the attempt log.
//! * [`CompiledModel`] — the bit-accurate engine; [`CompiledModel::save`]
//!   / [`CompiledModel::load`] bundle network + quantization spec +
//!   alphabet assignment into a single JSON artifact that reloads to
//!   bit-identical inference.
//! * [`InferenceSession`] — batched serving with pre-computer banks
//!   shared across the batch; [`Prediction`] carries argmax, raw scores
//!   and opt-in per-layer traces. Shared-reference entry points
//!   (`infer_shared` / `infer_batch_shared`) plus an opt-in warm product
//!   memo make one session drivable from many threads — the contract the
//!   `man-serve` runtime builds its micro-batching scheduler on.
//! * [`Parallelism`] — the deterministic parallel batch engine
//!   (`man-par`): `session.with_parallelism(Parallelism::Auto)` shards
//!   batch rows (and lone large inferences, by output neuron) across
//!   cores with bit-identical results by construction. Threads come
//!   from one process-wide persistent [`WorkerPool`] of parked workers
//!   (no per-call spawning), and `Auto` resolves row- vs
//!   neuron-sharding and the worker count per batch from compile-time
//!   MACs/row, batch size and serve queue pressure ([`AutoTuning`],
//!   [`ShardPlan`]; DESIGN.md §8–§9).
//! * [`Kernel`] — the MAC-kernel axis (DESIGN.md §10): the engine's
//!   inner select/shift/add loop runs as the scalar reference, a
//!   portable SWAR vector kernel, or an AVX2 specialization picked at
//!   runtime — all bit-identical; `session.with_kernel(...)` overrides,
//!   [`InferenceSession::stats`] reports the resolved plan × kernel and
//!   the cache memory footprint.
//! * [`ManError`] — one `Result`-first error taxonomy wrapping the
//!   member crates' typed errors, including the serving-runtime
//!   [`ServeError`] variants.
//!
//! See `DESIGN.md` at the repository root for the full system inventory,
//! and the member crates (re-exported below) for the underlying pieces.
//!
//! # Example
//!
//! ```no_run
//! use man_repro::{ManError, Pipeline};
//! use man_repro::man::zoo::Benchmark;
//!
//! fn main() -> Result<(), ManError> {
//!     let compiled = Pipeline::for_benchmark(Benchmark::Faces)
//!         .with_bits(8)
//!         .train()?      // Algorithm 2
//!         .compile()?;   // fixed-point ASM datapath
//!     compiled.save("faces.man.json")?;
//!     let session = CompiledModel::load("faces.man.json")?.session();
//!     # let pixels = vec![0.0f32; 1024];
//!     let prediction = session.infer_shared(&pixels)?;
//!     println!("class {}", prediction.class);
//!     Ok(())
//! }
//! # use man_repro::CompiledModel;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use man;
pub use man_datasets;
pub use man_fixed;
pub use man_hw;
pub use man_nn;
pub use man_par;

pub mod artifact;
pub mod error;
pub mod pipeline;
pub mod session;

pub use artifact::{CompiledModel, CostedModel};
pub use error::{ManError, ServeError};
pub use man::kernel::KernelKind;
pub use man_par::{AutoContext, AutoTuning, Kernel, Parallelism, ShardPlan, WorkerPool};
pub use pipeline::{BaselineModel, Pipeline, TrainedModel, TrainingData};
pub use session::{InferenceSession, Prediction, SessionStats};
