//! The unified error type of the pipeline API.
//!
//! Every stage of the [`crate::Pipeline`] is `Result`-first: failures that
//! the member crates report through their own typed errors
//! ([`CompileError`], [`UnsupportedQuartetError`], [`TimingClosureError`])
//! or through `std::io` are wrapped into one [`ManError`] enum, so a
//! caller can drive train → compile → cost → serve with `?` throughout.

use std::fmt;

use man::asm::UnsupportedQuartetError;
use man::fixed::CompileError;
use man_hw::synth::TimingClosureError;

/// Any failure of the pipeline API.
#[derive(Debug)]
pub enum ManError {
    /// A float network failed to compile onto the fixed-point engine.
    Compile(CompileError),
    /// A weight's quartets are not producible under an alphabet set.
    UnsupportedQuartet(UnsupportedQuartetError),
    /// Gate-level synthesis could not close timing at the target clock.
    TimingClosure(TimingClosureError),
    /// Reading or writing a model artifact failed at the I/O layer.
    Io(std::io::Error),
    /// A model artifact is malformed: bad JSON, wrong format tag or an
    /// unsupported version.
    Artifact(String),
    /// The pipeline was configured inconsistently (missing data, empty
    /// candidate list, out-of-range word length, ...).
    Config(String),
}

impl ManError {
    /// Convenience constructor for configuration errors.
    pub fn config(msg: impl Into<String>) -> Self {
        ManError::Config(msg.into())
    }

    /// Convenience constructor for artifact errors.
    pub fn artifact(msg: impl Into<String>) -> Self {
        ManError::Artifact(msg.into())
    }
}

impl fmt::Display for ManError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManError::Compile(e) => write!(f, "compile error: {e}"),
            ManError::UnsupportedQuartet(e) => write!(f, "unsupported quartet: {e}"),
            ManError::TimingClosure(e) => write!(f, "timing closure: {e}"),
            ManError::Io(e) => write!(f, "i/o error: {e}"),
            ManError::Artifact(msg) => write!(f, "artifact error: {msg}"),
            ManError::Config(msg) => write!(f, "configuration error: {msg}"),
        }
    }
}

impl std::error::Error for ManError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ManError::Compile(e) => Some(e),
            ManError::UnsupportedQuartet(e) => Some(e),
            ManError::TimingClosure(e) => Some(e),
            ManError::Io(e) => Some(e),
            ManError::Artifact(_) | ManError::Config(_) => None,
        }
    }
}

impl From<CompileError> for ManError {
    fn from(e: CompileError) -> Self {
        ManError::Compile(e)
    }
}

impl From<UnsupportedQuartetError> for ManError {
    fn from(e: UnsupportedQuartetError) -> Self {
        ManError::UnsupportedQuartet(e)
    }
}

impl From<TimingClosureError> for ManError {
    fn from(e: TimingClosureError) -> Self {
        ManError::TimingClosure(e)
    }
}

impl From<std::io::Error> for ManError {
    fn from(e: std::io::Error) -> Self {
        ManError::Io(e)
    }
}

impl From<serde_json::Error> for ManError {
    fn from(e: serde_json::Error) -> Self {
        ManError::Artifact(e.to_string())
    }
}
