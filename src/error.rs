//! The unified error type of the pipeline API.
//!
//! Every stage of the [`crate::Pipeline`] is `Result`-first: failures that
//! the member crates report through their own typed errors
//! ([`CompileError`], [`UnsupportedQuartetError`], [`TimingClosureError`])
//! or through `std::io` are wrapped into one [`ManError`] enum, so a
//! caller can drive train → compile → cost → serve with `?` throughout.

use std::fmt;

use man::asm::UnsupportedQuartetError;
use man::fixed::CompileError;
use man_hw::synth::TimingClosureError;

/// A failure of the serving runtime (`man-serve`), carried by
/// [`ManError::Serve`].
///
/// The type lives in the facade so the serving crate — which sits *above*
/// `man-repro` — can speak the same unified error language as every other
/// stage; the TCP front-end maps each variant onto a stable wire code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The model's request queue is full; the request was rejected
    /// instead of queued (explicit backpressure).
    Overloaded {
        /// The model whose queue is full.
        model: String,
        /// The configured queue capacity.
        capacity: usize,
    },
    /// No model of this name is loaded in the registry.
    UnknownModel(String),
    /// The model was unloaded (or its workers stopped) while the request
    /// was in flight or being submitted.
    Unavailable(String),
    /// The reply did not arrive within the configured request timeout.
    Timeout(String),
    /// A malformed wire request: bad JSON, a missing field, or an
    /// unknown operation.
    Protocol(String),
    /// An unexpected worker-side failure, stringified for transport
    /// across the reply channel.
    Internal(String),
    /// The cluster router exhausted its bounded retries without finding
    /// a healthy replica able to answer for this model.
    NoBackend {
        /// The model whose replica set had no healthy member.
        model: String,
        /// Route attempts made before giving up (bounded by the
        /// router's retry budget).
        attempts: usize,
    },
    /// An error relayed verbatim from an upstream worker by the cluster
    /// router: the worker's stable wire code plus its message. The
    /// router forwards these instead of re-wrapping them so clients see
    /// identical codes whether they talk to a worker or a router.
    Upstream {
        /// The worker's stable wire error code (`overloaded`,
        /// `unknown_model`, ...).
        code: String,
        /// The worker's human-readable message.
        message: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { model, capacity } => write!(
                f,
                "model `{model}` is overloaded (queue capacity {capacity} reached)"
            ),
            ServeError::UnknownModel(model) => write!(f, "no model named `{model}` is loaded"),
            ServeError::Unavailable(model) => {
                write!(f, "model `{model}` became unavailable mid-request")
            }
            ServeError::Timeout(model) => {
                write!(f, "request to model `{model}` timed out")
            }
            ServeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServeError::Internal(msg) => write!(f, "internal serving error: {msg}"),
            ServeError::NoBackend { model, attempts } => write!(
                f,
                "no healthy replica answered for model `{model}` after {attempts} attempts"
            ),
            ServeError::Upstream { message, .. } => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Any failure of the pipeline API.
#[derive(Debug)]
pub enum ManError {
    /// A float network failed to compile onto the fixed-point engine.
    Compile(CompileError),
    /// A weight's quartets are not producible under an alphabet set.
    UnsupportedQuartet(UnsupportedQuartetError),
    /// Gate-level synthesis could not close timing at the target clock.
    TimingClosure(TimingClosureError),
    /// Reading or writing a model artifact failed at the I/O layer.
    Io(std::io::Error),
    /// A model artifact is malformed: bad JSON, wrong format tag or an
    /// unsupported version.
    Artifact(String),
    /// The pipeline was configured inconsistently (missing data, empty
    /// candidate list, out-of-range word length, ...).
    Config(String),
    /// An inference input's length does not match the network's input
    /// layer.
    Shape {
        /// Values the network expects per input.
        expected: usize,
        /// Values the caller provided.
        got: usize,
    },
    /// A serving-runtime failure (queueing, routing, protocol).
    Serve(ServeError),
}

impl ManError {
    /// Convenience constructor for configuration errors.
    pub fn config(msg: impl Into<String>) -> Self {
        ManError::Config(msg.into())
    }

    /// Convenience constructor for artifact errors.
    pub fn artifact(msg: impl Into<String>) -> Self {
        ManError::Artifact(msg.into())
    }
}

impl fmt::Display for ManError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManError::Compile(e) => write!(f, "compile error: {e}"),
            ManError::UnsupportedQuartet(e) => write!(f, "unsupported quartet: {e}"),
            ManError::TimingClosure(e) => write!(f, "timing closure: {e}"),
            ManError::Io(e) => write!(f, "i/o error: {e}"),
            ManError::Artifact(msg) => write!(f, "artifact error: {msg}"),
            ManError::Config(msg) => write!(f, "configuration error: {msg}"),
            ManError::Shape { expected, got } => write!(
                f,
                "input has {got} values but the network expects {expected}"
            ),
            ManError::Serve(e) => write!(f, "serving error: {e}"),
        }
    }
}

impl std::error::Error for ManError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ManError::Compile(e) => Some(e),
            ManError::UnsupportedQuartet(e) => Some(e),
            ManError::TimingClosure(e) => Some(e),
            ManError::Io(e) => Some(e),
            ManError::Serve(e) => Some(e),
            ManError::Artifact(_) | ManError::Config(_) | ManError::Shape { .. } => None,
        }
    }
}

impl From<ServeError> for ManError {
    fn from(e: ServeError) -> Self {
        ManError::Serve(e)
    }
}

impl From<CompileError> for ManError {
    fn from(e: CompileError) -> Self {
        ManError::Compile(e)
    }
}

impl From<UnsupportedQuartetError> for ManError {
    fn from(e: UnsupportedQuartetError) -> Self {
        ManError::UnsupportedQuartet(e)
    }
}

impl From<TimingClosureError> for ManError {
    fn from(e: TimingClosureError) -> Self {
        ManError::TimingClosure(e)
    }
}

impl From<std::io::Error> for ManError {
    fn from(e: std::io::Error) -> Self {
        ManError::Io(e)
    }
}

impl From<serde_json::Error> for ManError {
    fn from(e: serde_json::Error) -> Self {
        ManError::Artifact(e.to_string())
    }
}
