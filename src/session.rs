//! The serving entry point: batched inference sessions.
//!
//! An [`InferenceSession`] owns a compiled [`man::fixed::FixedNet`] plus
//! a persistent [`man::fixed::SessionCache`] of pre-computer banks. A
//! bank depends only on the input magnitude and the layer's alphabet
//! set, so across a batch most multiplications find their bank already
//! computed — the software analogue of the paper's CSHM sharing. A
//! session opened with [`InferenceSession::warm`] goes one step further
//! and memoizes whole `(weight, input)` products across requests, the
//! steady-state configuration the `man-serve` scheduler workers run.
//!
//! The mutable state (bank cache, product plane) lives behind an
//! internal lock, so the shared-reference entry points
//! [`InferenceSession::infer_shared`] / [`infer_batch_shared`] work
//! through `&self` — which is what lets one session be driven from many
//! scheduler threads via an `Arc`. The original `&mut self` signatures
//! remain as thin wrappers.
//!
//! [`infer_batch_shared`]: InferenceSession::infer_batch_shared

use std::sync::{Arc, Mutex};

use man::fixed::{argmax_raw, FixedNet, LayerTrace, SessionCache};

use crate::artifact::CompiledModel;
use crate::error::ManError;

/// The outcome of one inference.
#[derive(Clone, Debug)]
pub struct Prediction {
    /// Argmax class over the raw scores.
    pub class: usize,
    /// Raw output-layer accumulators ("logits" at the final layer's
    /// accumulator fraction) — bit-identical to
    /// [`man::fixed::FixedNet::infer_raw`].
    pub scores: Vec<i64>,
    /// Per-layer operand traces, captured when the session was opened
    /// with [`InferenceSession::with_trace`].
    pub traces: Option<Vec<LayerTrace>>,
}

/// A batched inference session over a compiled model.
///
/// # Example
///
/// ```no_run
/// # use man_repro::CompiledModel;
/// # fn demo(model: &CompiledModel, batch: &[Vec<f32>]) {
/// let mut session = model.session();
/// for p in session.infer_batch(batch).expect("inputs match the network") {
///     println!("class {} (scores {:?})", p.class, p.scores);
/// }
/// # }
/// ```
pub struct InferenceSession {
    fixed: Arc<FixedNet>,
    cache: Mutex<SessionCache>,
    trace_limit: Option<usize>,
}

impl InferenceSession {
    /// Opens a session over a compiled model. The compiled engine is
    /// shared, not copied — opening many sessions is cheap.
    pub fn new(model: &CompiledModel) -> Self {
        let fixed = model.fixed_shared();
        let cache = Mutex::new(fixed.session_cache());
        Self {
            fixed,
            cache,
            trace_limit: None,
        }
    }

    /// Switches the session onto a warm cache that memoizes whole
    /// `(weight, input)` products across inferences (see
    /// [`man::fixed::FixedNet::session_cache_warm`]). Bit-identical to
    /// the plain cache; the right choice for long-lived serving
    /// sessions, and what the `man-serve` scheduler workers use. A
    /// no-op beyond the plain bank cache for word lengths past
    /// [`man::fixed::PRODUCT_PLANE_MAX_BITS`].
    #[must_use]
    pub fn warm(self) -> Self {
        Self {
            cache: Mutex::new(self.fixed.session_cache_warm()),
            ..self
        }
    }

    /// Enables per-layer operand tracing on every prediction (up to
    /// `limit` MACs per layer). Tracing costs time and memory; leave it
    /// off for throughput serving.
    #[must_use]
    pub fn with_trace(mut self, limit: usize) -> Self {
        self.trace_limit = Some(limit);
        self
    }

    /// The compiled engine the session serves.
    pub fn fixed(&self) -> &FixedNet {
        &self.fixed
    }

    fn check_shape(&self, input: &[f32]) -> Result<(), ManError> {
        let expected = self.fixed.input_len();
        if input.len() != expected {
            return Err(ManError::Shape {
                expected,
                got: input.len(),
            });
        }
        Ok(())
    }

    fn infer_locked(&self, input: &[f32], cache: &mut SessionCache) -> Prediction {
        let (scores, traces) = match self.trace_limit {
            Some(limit) => {
                let (scores, traces) = self.fixed.infer_raw_traced(input, limit, cache);
                (scores, Some(traces))
            }
            None => (self.fixed.infer_raw_with_cache(input, cache), None),
        };
        Prediction {
            class: argmax_raw(&scores),
            scores,
            traces,
        }
    }

    /// Runs one inference through a shared reference — the entry point
    /// scheduler workers drive via `Arc<InferenceSession>`.
    ///
    /// # Errors
    ///
    /// Returns [`ManError::Shape`] if `input` does not hold exactly
    /// `self.fixed().input_len()` values.
    pub fn infer_shared(&self, input: &[f32]) -> Result<Prediction, ManError> {
        self.check_shape(input)?;
        let mut cache = self.lock_cache();
        Ok(self.infer_locked(input, &mut cache))
    }

    /// The cache stays internally consistent even if a thread panicked
    /// mid-inference (bank and plane slots are written atomically, and a
    /// half-run inference leaves no partial state behind), so a poisoned
    /// lock is recovered rather than propagated — one panicking request
    /// must not brick a long-lived serving session.
    fn lock_cache(&self) -> std::sync::MutexGuard<'_, SessionCache> {
        self.cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Runs a batch of inferences through a shared reference, sharing
    /// pre-computer banks (and, on a [`InferenceSession::warm`] session,
    /// memoized products) across the whole batch. Equivalent to — and
    /// bit-identical with — calling [`InferenceSession::infer_shared`]
    /// once per input. The internal lock is taken once for the batch.
    ///
    /// # Errors
    ///
    /// Returns [`ManError::Shape`] on the first wrong-length input; the
    /// whole batch is validated before any inference runs.
    pub fn infer_batch_shared(&self, inputs: &[Vec<f32>]) -> Result<Vec<Prediction>, ManError> {
        for input in inputs {
            self.check_shape(input)?;
        }
        let mut cache = self.lock_cache();
        Ok(inputs
            .iter()
            .map(|x| self.infer_locked(x, &mut cache))
            .collect())
    }

    /// Runs one inference ([`InferenceSession::infer_shared`] behind the
    /// historical `&mut self` receiver).
    ///
    /// # Errors
    ///
    /// Returns [`ManError::Shape`] if `input` does not hold exactly
    /// `self.fixed().input_len()` values.
    pub fn infer(&mut self, input: &[f32]) -> Result<Prediction, ManError> {
        self.infer_shared(input)
    }

    /// Runs a batch of inferences ([`InferenceSession::infer_batch_shared`]
    /// behind the historical `&mut self` receiver).
    ///
    /// # Errors
    ///
    /// Returns [`ManError::Shape`] on the first wrong-length input.
    pub fn infer_batch(&mut self, inputs: &[Vec<f32>]) -> Result<Vec<Prediction>, ManError> {
        self.infer_batch_shared(inputs)
    }
}
