//! The serving entry point: batched inference sessions.
//!
//! An [`InferenceSession`] owns a compiled [`man::fixed::FixedNet`] plus
//! a persistent [`SessionCache`] of pre-computer banks. A bank depends
//! only on the input magnitude and the layer's alphabet set, so across a
//! batch most multiplications find their bank already computed — the
//! software analogue of the paper's CSHM sharing, and the hot path the
//! ROADMAP's batching/throughput work builds on.

use std::sync::Arc;

use man::fixed::{argmax_raw, FixedNet, LayerTrace, SessionCache};

use crate::artifact::CompiledModel;

/// The outcome of one inference.
#[derive(Clone, Debug)]
pub struct Prediction {
    /// Argmax class over the raw scores.
    pub class: usize,
    /// Raw output-layer accumulators ("logits" at the final layer's
    /// accumulator fraction) — bit-identical to
    /// [`man::fixed::FixedNet::infer_raw`].
    pub scores: Vec<i64>,
    /// Per-layer operand traces, captured when the session was opened
    /// with [`InferenceSession::with_trace`].
    pub traces: Option<Vec<LayerTrace>>,
}

/// A batched inference session over a compiled model.
///
/// # Example
///
/// ```no_run
/// # use man_repro::CompiledModel;
/// # fn demo(model: &CompiledModel, batch: &[Vec<f32>]) {
/// let mut session = model.session();
/// for p in session.infer_batch(batch) {
///     println!("class {} (scores {:?})", p.class, p.scores);
/// }
/// # }
/// ```
pub struct InferenceSession {
    fixed: Arc<FixedNet>,
    cache: SessionCache,
    trace_limit: Option<usize>,
}

impl InferenceSession {
    /// Opens a session over a compiled model. The compiled engine is
    /// shared, not copied — opening many sessions is cheap.
    pub fn new(model: &CompiledModel) -> Self {
        let fixed = model.fixed_shared();
        let cache = fixed.session_cache();
        Self {
            fixed,
            cache,
            trace_limit: None,
        }
    }

    /// Enables per-layer operand tracing on every prediction (up to
    /// `limit` MACs per layer). Tracing costs time and memory; leave it
    /// off for throughput serving.
    #[must_use]
    pub fn with_trace(mut self, limit: usize) -> Self {
        self.trace_limit = Some(limit);
        self
    }

    /// The compiled engine the session serves.
    pub fn fixed(&self) -> &FixedNet {
        &self.fixed
    }

    /// Runs one inference.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message if `input` does not hold
    /// exactly `self.fixed().input_len()` values.
    pub fn infer(&mut self, input: &[f32]) -> Prediction {
        let (scores, traces) = match self.trace_limit {
            Some(limit) => {
                let (scores, traces) = self.fixed.infer_raw_traced(input, limit, &mut self.cache);
                (scores, Some(traces))
            }
            None => (
                self.fixed.infer_raw_with_cache(input, &mut self.cache),
                None,
            ),
        };
        Prediction {
            class: argmax_raw(&scores),
            scores,
            traces,
        }
    }

    /// Runs a batch of inferences, sharing pre-computer banks across the
    /// whole batch. Equivalent to (and bit-identical with) calling
    /// [`InferenceSession::infer`] once per input.
    pub fn infer_batch(&mut self, inputs: &[Vec<f32>]) -> Vec<Prediction> {
        inputs.iter().map(|x| self.infer(x)).collect()
    }
}
