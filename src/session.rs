//! The serving entry point: batched inference sessions.
//!
//! An [`InferenceSession`] owns a compiled [`man::fixed::FixedNet`] plus
//! one persistent [`man::fixed::SessionCache`] of pre-computer banks per
//! worker slot. A bank depends only on the input magnitude and the
//! layer's alphabet set, so across a batch most multiplications find
//! their bank already computed — the software analogue of the paper's
//! CSHM sharing. A session opened with [`InferenceSession::warm`] goes
//! one step further and memoizes whole `(weight, input)` products across
//! requests, the steady-state configuration the `man-serve` scheduler
//! workers run.
//!
//! # Parallel execution
//!
//! [`InferenceSession::with_parallelism`] turns the session into the
//! parallel batch engine: `infer_batch*` shards the rows of a batch
//! across worker slots (one bank cache per slot, threads drawn from the
//! process-wide persistent `man-par` pool), and a lone large inference
//! shards its big layers across output neurons instead. Both shardings
//! are bit-identical to the sequential path **by construction**: every
//! output neuron's shift-add chain is computed whole, on one thread, in
//! fan-in order, and the merge only reassembles finished rows/neurons —
//! accumulation within a neuron is never reordered, and the worker-local
//! caches memoize pure functions of the compiled network. See `man-par`
//! for the pool itself and DESIGN.md §8–§9 for the determinism argument.
//!
//! With [`Parallelism::Auto`] the session resolves the sharding *per
//! batch* through the `man-par` decision table ([`man_par::plan_shards`]):
//! the model's compile-time MACs-per-inference, the batch size and the
//! serve scheduler's queue pressure pick between staying sequential,
//! row sharding and neuron sharding — see
//! [`InferenceSession::plan_for_batch`] for the resolved plan and
//! [`InferenceSession::with_auto_tuning`] to override the table's
//! thresholds. Explicit `Threads(n)` keeps the static behavior.
//!
//! The mutable state (bank caches, product planes) lives behind internal
//! locks, so the shared-reference entry points
//! [`InferenceSession::infer_shared`] / [`infer_batch_shared`] work
//! through `&self` — which is what lets one session be driven from many
//! scheduler threads via an `Arc`. The original `&mut self` signatures
//! remain as thin wrappers.
//!
//! [`infer_batch_shared`]: InferenceSession::infer_batch_shared

use std::sync::{Arc, Mutex, MutexGuard};

use man::fixed::{argmax_raw, FixedNet, LayerTrace, SessionCache};
use man::kernel::{KernelKind, LayoutKind};
use man_par::{plan_shards, AutoContext, AutoTuning, Kernel, Layout, Parallelism, ShardPlan};
use serde::Serialize;

use crate::artifact::CompiledModel;
use crate::error::ManError;

/// The outcome of one inference.
#[derive(Clone, Debug)]
pub struct Prediction {
    /// Argmax class over the raw scores.
    pub class: usize,
    /// Raw output-layer accumulators ("logits" at the final layer's
    /// accumulator fraction) — bit-identical to
    /// [`man::fixed::FixedNet::infer_raw`].
    pub scores: Vec<i64>,
    /// Per-layer operand traces, captured when the session was opened
    /// with [`InferenceSession::with_trace`].
    pub traces: Option<Vec<LayerTrace>>,
}

/// A batched inference session over a compiled model.
///
/// # Example
///
/// ```no_run
/// # use man_repro::{CompiledModel, Parallelism};
/// # fn demo(model: &CompiledModel, batch: &[Vec<f32>]) {
/// let mut session = model.session().with_parallelism(Parallelism::Auto);
/// for p in session.infer_batch(batch).expect("inputs match the network") {
///     println!("class {} (scores {:?})", p.class, p.scores);
/// }
/// # }
/// ```
pub struct InferenceSession {
    fixed: Arc<FixedNet>,
    /// One cache per worker slot; `caches.len()` is the worker *budget*
    /// (`Parallelism::Auto` allocates one slot per core and the tuner
    /// resolves how many of them a given batch engages).
    caches: Vec<Mutex<SessionCache>>,
    parallelism: Parallelism,
    /// Compile-time MACs per inference — the tuner's work measure.
    macs_per_row: u64,
    /// Thresholds for the [`Parallelism::Auto`] decision table.
    auto_tuning: AutoTuning,
    /// The session-level MAC-kernel request. [`Kernel::Auto`] defers to
    /// [`AutoTuning::kernel`], which itself defaults to the engine's
    /// env-aware auto resolution.
    kernel: Kernel,
    /// The session-level layout request — the third tuner axis.
    /// [`Layout::Auto`] defers to [`AutoTuning::layout`] and the
    /// `MAN_LAYOUT` environment override; the resolved axis is decided
    /// per batch (see [`InferenceSession::resolved_layout`]).
    layout: Layout,
    /// The `(sharding plan, layout)` the most recent batch resolved to —
    /// what [`InferenceSession::stats`] reports so operators can see
    /// what the tuner actually chose.
    resolved_plan: Mutex<Option<(ShardPlan, LayoutKind)>>,
    warm: bool,
    trace_limit: Option<usize>,
}

/// A point-in-time observability snapshot of one session: the resolved
/// execution configuration (plan × kernel) plus the cache memory story
/// (per-layer bank arenas, the shared product plane, the engine's
/// shared SoA kernel plans).
#[derive(Clone, Debug, Serialize)]
pub struct SessionStats {
    /// The configured parallelism (`"sequential"`, `"threads(4)"`,
    /// `"auto(8)"`).
    pub parallelism: String,
    /// Worker-slot budget (persistent caches held).
    pub workers: u64,
    /// The resolved MAC kernel label (`"scalar"`, `"swar"`, `"avx2"`).
    pub kernel: String,
    /// The layout axis the most recent batch resolved to (`"row"`,
    /// `"batch"`); `"unresolved"` before the first inference.
    pub layout: String,
    /// The sharding plan the most recent batch resolved to, combined
    /// with the kernel and layout (e.g. `"rows(4)+swar+batch"`);
    /// `"unresolved"` before the first inference.
    pub plan: String,
    /// Compile-time MACs per inference (the tuner's work measure).
    pub macs_per_row: u64,
    /// Heap bytes of each layer's bank arenas, summed across worker
    /// slots.
    pub layer_bank_bytes: Vec<u64>,
    /// Total bank-arena bytes across layers and slots.
    pub bank_bytes: u64,
    /// Bytes of the warm product plane (counted once — slots share it
    /// by clone), 0 on plain sessions.
    pub plane_bytes: u64,
    /// Bytes of the engine's repacked SoA kernel plans (shared by every
    /// session over the same compiled model).
    pub kernel_plan_bytes: u64,
    /// Heap bytes of the batch-major transpose scratch, summed across
    /// worker slots (0 until a batch-major dispatch ran).
    pub transpose_bytes: u64,
    /// `bank_bytes + plane_bytes + transpose_bytes` — the session-owned
    /// cache total.
    pub cache_bytes: u64,
}

impl InferenceSession {
    /// Opens a session over a compiled model. The compiled engine is
    /// shared, not copied — opening many sessions is cheap.
    pub fn new(model: &CompiledModel) -> Self {
        let fixed = model.fixed_shared();
        let caches = Self::build_caches(&fixed, false, 1);
        let macs_per_row = fixed.macs_per_inference();
        Self {
            fixed,
            caches,
            parallelism: Parallelism::Sequential,
            macs_per_row,
            auto_tuning: AutoTuning::default(),
            kernel: Kernel::Auto,
            layout: Layout::Auto,
            resolved_plan: Mutex::new(None),
            warm: false,
            trace_limit: None,
        }
    }

    fn build_caches(fixed: &FixedNet, warm: bool, workers: usize) -> Vec<Mutex<SessionCache>> {
        // One template, cloned per worker slot: each slot gets a private
        // bank table, while a warm template's product plane (16 MiB at
        // the 12-bit maximum) is *shared* by clone — every slot fills
        // and profits from the same memo.
        let template = if warm {
            fixed.session_cache_warm()
        } else {
            fixed.session_cache()
        };
        (0..workers.max(1))
            .map(|_| Mutex::new(template.clone()))
            .collect()
    }

    /// Switches the session onto warm caches that memoize whole
    /// `(weight, input)` products across inferences (see
    /// [`man::fixed::FixedNet::session_cache_warm`]). Bit-identical to
    /// the plain caches; the right choice for long-lived serving
    /// sessions, and what the `man-serve` scheduler workers use. A
    /// no-op beyond the plain bank cache for word lengths past
    /// [`man::fixed::PRODUCT_PLANE_MAX_BITS`].
    #[must_use]
    pub fn warm(mut self) -> Self {
        self.warm = true;
        self.caches = Self::build_caches(&self.fixed, true, self.caches.len());
        self
    }

    /// Sets the worker budget batches may be sharded across. The
    /// session keeps one persistent bank cache per worker slot, so the
    /// cache-warmth story of a long-lived session survives going
    /// parallel; the threads themselves come from the process-wide
    /// persistent `man-par` pool, so resizing a session never spawns or
    /// kills OS threads. [`Parallelism::Sequential`] (the default)
    /// restores the single-threaded reference path;
    /// [`Parallelism::Auto`] lets the tuner resolve sharding mode and
    /// worker count per batch (see [`InferenceSession::plan_for_batch`]).
    /// Every setting returns bit-identical predictions.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self.caches = Self::build_caches(&self.fixed, self.warm, parallelism.workers());
        self
    }

    /// Overrides the [`Parallelism::Auto`] decision-table thresholds
    /// (a no-op under `Sequential`/`Threads`). The default table is
    /// [`AutoTuning::default`].
    #[must_use]
    pub fn with_auto_tuning(mut self, tuning: AutoTuning) -> Self {
        self.auto_tuning = tuning;
        self
    }

    /// Sets the session's MAC-kernel request (see [`Kernel`]):
    /// `Scalar` pins the per-weight reference loop, `Swar` the portable
    /// vector kernel, `Vector` the best vectorized kernel the host
    /// supports (AVX2 when detected), and `Auto` — the default — defers
    /// to [`AutoTuning::kernel`] and the `MAN_KERNEL` environment
    /// override. Every kernel returns bit-identical predictions; see
    /// [`InferenceSession::resolved_kernel`] for what actually runs.
    #[must_use]
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Sets the session's layout request (see [`Layout`]): `RowMajor`
    /// pins the per-image kernels, `BatchMajor` the batch-transposed
    /// lane kernels for every batch of ≥ 2 rows, and `Auto` — the
    /// default — defers to [`AutoTuning::layout`], the `MAN_LAYOUT`
    /// environment override, and the tuner's batch/MACs-per-row
    /// heuristic. Every layout returns bit-identical predictions; see
    /// [`InferenceSession::resolved_layout`] for what actually runs.
    #[must_use]
    pub fn with_layout(mut self, layout: Layout) -> Self {
        self.layout = layout;
        self
    }

    /// The MAC kernel this session's inferences run after dispatch
    /// (`scalar`/`swar`/`avx2`): the session-level request when
    /// explicit, else the tuning's kernel axis, else the engine's
    /// env-aware auto resolution.
    pub fn resolved_kernel(&self) -> KernelKind {
        match self.kernel {
            Kernel::Auto => man::kernel::resolve(self.auto_tuning.kernel),
            explicit => man::kernel::resolve(explicit),
        }
    }

    /// The layout a batch of `batch` rows runs under on this session:
    /// the session-level request when explicit, else the tuning's layout
    /// axis, through the engine's env-aware resolution
    /// ([`man::kernel::resolve_layout`]) — which degrades every batch of
    /// fewer than 2 rows to row-major, so the label always names the
    /// datapath that actually ran. Tracing forces row-major (the operand
    /// stream is ordered per image).
    pub fn resolved_layout(&self, batch: usize) -> LayoutKind {
        if self.trace_limit.is_some() {
            return LayoutKind::RowMajor;
        }
        let request = match self.layout {
            Layout::Auto => self.auto_tuning.layout,
            explicit => explicit,
        };
        man::kernel::resolve_layout(request, batch, self.macs_per_row, &self.auto_tuning)
    }

    /// The resolved kernel's label (`"scalar"`, `"swar"`, `"avx2"`) for
    /// logs and bench rows.
    pub fn kernel_label(&self) -> &'static str {
        self.resolved_kernel().label()
    }

    /// The `(sharding plan, layout)` the most recent batch resolved to,
    /// or `None` before the first inference — the cheap (`Copy`) form of
    /// what [`InferenceSession::stats`] renders as the `plan` label, for
    /// callers on a hot path (the serve scheduler records it per
    /// dispatch).
    pub fn last_dispatch(&self) -> Option<(ShardPlan, LayoutKind)> {
        *self
            .resolved_plan
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The sharding-plan half of [`InferenceSession::last_dispatch`].
    pub fn last_plan(&self) -> Option<ShardPlan> {
        self.last_dispatch().map(|(plan, _)| plan)
    }

    /// An observability snapshot: resolved plan × kernel plus the cache
    /// memory footprint (per-layer bank arenas summed across worker
    /// slots; the shared product plane counted once; the engine's
    /// shared SoA plan bytes alongside).
    pub fn stats(&self) -> SessionStats {
        let kernel = self.resolved_kernel();
        let dispatch = self.last_dispatch();
        let plan = dispatch
            .map(|(p, l)| p.label_with_kernel_layout(kernel.label(), l.label()))
            .unwrap_or_else(|| "unresolved".to_owned());
        let layout = dispatch
            .map(|(_, l)| l.label().to_owned())
            .unwrap_or_else(|| "unresolved".to_owned());
        let mut layer_bank_bytes: Vec<u64> = Vec::new();
        let mut plane_bytes = 0u64;
        let mut transpose_bytes = 0u64;
        for slot in 0..self.caches.len() {
            let fp = self.lock_cache(slot).footprint();
            if layer_bank_bytes.is_empty() {
                layer_bank_bytes = vec![0; fp.layer_bank_bytes.len()];
            }
            for (sum, bytes) in layer_bank_bytes.iter_mut().zip(&fp.layer_bank_bytes) {
                *sum += *bytes as u64;
            }
            // The plane is shared by clone across slots: count it once.
            // Transpose scratch (like the banks) is per slot: sum it.
            plane_bytes = plane_bytes.max(fp.plane_bytes as u64);
            transpose_bytes += fp.transpose_bytes as u64;
        }
        let bank_bytes: u64 = layer_bank_bytes.iter().sum();
        SessionStats {
            parallelism: self.parallelism.label(),
            workers: self.caches.len() as u64,
            kernel: kernel.label().to_owned(),
            layout,
            plan,
            macs_per_row: self.macs_per_row,
            layer_bank_bytes,
            bank_bytes,
            plane_bytes,
            kernel_plan_bytes: self.fixed.kernel_plan_bytes() as u64,
            transpose_bytes,
            cache_bytes: bank_bytes + plane_bytes + transpose_bytes,
        }
    }

    /// The parallelism the session was configured with.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// The worker budget (one persistent cache slot per worker; under
    /// [`Parallelism::Auto`] the per-batch resolved count can be lower —
    /// see [`InferenceSession::plan_for_batch`]).
    pub fn workers(&self) -> usize {
        self.caches.len()
    }

    /// Compile-time MACs one inference of this model costs — the work
    /// measure the Auto tuner plans with.
    pub fn macs_per_row(&self) -> u64 {
        self.macs_per_row
    }

    /// How a batch of `batch` rows would shard on this session, assuming
    /// no competing streams — the honest "what did `Auto` resolve to"
    /// answer the bench reports record. Sessions configured with
    /// explicit [`Parallelism`] values keep their static plan (rows when
    /// the batch has them, neurons for a lone row); [`Parallelism::Auto`]
    /// consults the `man-par` decision table with the model's
    /// compile-time MACs per row.
    pub fn plan_for_batch(&self, batch: usize) -> ShardPlan {
        self.plan_with_load(batch, 1)
    }

    fn plan_with_load(&self, batch: usize, streams: usize) -> ShardPlan {
        // Tracing forces the sequential path: the operand stream is
        // ordered.
        if self.trace_limit.is_some() || batch == 0 {
            return ShardPlan::Sequential;
        }
        let slots = self.caches.len();
        match self.parallelism {
            Parallelism::Sequential => ShardPlan::Sequential,
            Parallelism::Threads(_) => {
                // Static behavior: the caller asked for exactly this
                // many workers; rows when the batch has them, neurons
                // for a lone row.
                if slots <= 1 {
                    ShardPlan::Sequential
                } else if batch == 1 {
                    ShardPlan::Neurons { workers: slots }
                } else {
                    ShardPlan::Rows {
                        workers: slots.min(batch),
                    }
                }
            }
            Parallelism::Auto => plan_shards(
                &AutoContext {
                    macs_per_row: self.macs_per_row,
                    batch,
                    streams,
                    cores: slots,
                },
                &self.auto_tuning,
            ),
        }
    }

    /// Enables per-layer operand tracing on every prediction (up to
    /// `limit` MACs per layer). Tracing costs time and memory — and
    /// forces the sequential path, since the operand stream is ordered —
    /// so leave it off for throughput serving.
    #[must_use]
    pub fn with_trace(mut self, limit: usize) -> Self {
        self.trace_limit = Some(limit);
        self
    }

    /// The compiled engine the session serves.
    pub fn fixed(&self) -> &FixedNet {
        &self.fixed
    }

    fn check_shape(&self, input: &[f32]) -> Result<(), ManError> {
        let expected = self.fixed.input_len();
        if input.len() != expected {
            return Err(ManError::Shape {
                expected,
                got: input.len(),
            });
        }
        Ok(())
    }

    /// Remembers what the most recent batch resolved to (for
    /// [`InferenceSession::stats`]), then returns the dispatch unchanged.
    fn record_dispatch(&self, plan: ShardPlan, layout: LayoutKind) -> (ShardPlan, LayoutKind) {
        *self
            .resolved_plan
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some((plan, layout));
        (plan, layout)
    }

    fn infer_locked(&self, input: &[f32], cache: &mut SessionCache) -> Prediction {
        let (scores, traces) = match self.trace_limit {
            Some(limit) => {
                let (scores, traces) = self.fixed.infer_raw_traced(input, limit, cache);
                (scores, Some(traces))
            }
            None => (
                self.fixed
                    .infer_raw_with_cache_kernel(input, cache, self.resolved_kernel()),
                None,
            ),
        };
        Prediction {
            class: argmax_raw(&scores),
            scores,
            traces,
        }
    }

    /// One untraced inference with large layers neuron-sharded across
    /// `workers` pool threads.
    fn infer_locked_sharded(
        &self,
        input: &[f32],
        cache: &mut SessionCache,
        workers: usize,
    ) -> Prediction {
        let scores = self.fixed.infer_raw_with_cache_par_kernel(
            input,
            cache,
            Parallelism::Threads(workers),
            self.resolved_kernel(),
        );
        Prediction {
            class: argmax_raw(&scores),
            scores,
            traces: None,
        }
    }

    /// Runs one inference through a shared reference — the entry point
    /// scheduler workers drive via `Arc<InferenceSession>`. On a
    /// parallel session, large layers are sharded across the workers
    /// (under [`Parallelism::Auto`], only when the tuner decides the
    /// row is worth it).
    ///
    /// # Errors
    ///
    /// Returns [`ManError::Shape`] if `input` does not hold exactly
    /// `self.fixed().input_len()` values.
    pub fn infer_shared(&self, input: &[f32]) -> Result<Prediction, ManError> {
        self.check_shape(input)?;
        let mut cache = self.lock_cache(0);
        // A lone row always resolves row-major (the batch-major path
        // needs ≥ 2 lanes to pay for the transpose).
        let (plan, _) = self.record_dispatch(self.plan_with_load(1, 1), self.resolved_layout(1));
        match plan {
            ShardPlan::Neurons { workers } | ShardPlan::Rows { workers } => {
                Ok(self.infer_locked_sharded(input, &mut cache, workers))
            }
            ShardPlan::Sequential => Ok(self.infer_locked(input, &mut cache)),
        }
    }

    /// The caches stay internally consistent even if a thread panicked
    /// mid-inference (bank and plane slots are written atomically, and a
    /// half-run inference leaves no partial state behind), so a poisoned
    /// lock is recovered rather than propagated — one panicking request
    /// must not brick a long-lived serving session.
    fn lock_cache(&self, slot: usize) -> MutexGuard<'_, SessionCache> {
        self.caches[slot]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Runs a batch of inferences through a shared reference, sharing
    /// pre-computer banks (and, on a [`InferenceSession::warm`] session,
    /// memoized products) across the whole batch. Equivalent to — and
    /// bit-identical with — calling [`InferenceSession::infer_shared`]
    /// once per input, for every [`Parallelism`] setting.
    ///
    /// On a parallel session the rows are sharded across the worker
    /// slots (each with its own persistent cache); a batch smaller than
    /// the worker count falls back to neuron-sharding each row instead,
    /// so big lone requests still use every core. Under
    /// [`Parallelism::Auto`], the `man-par` decision table resolves the
    /// mode and worker count per batch.
    ///
    /// # Errors
    ///
    /// Returns [`ManError::Shape`] on the first wrong-length input; the
    /// whole batch is validated before any inference runs.
    pub fn infer_batch_shared(&self, inputs: &[Vec<f32>]) -> Result<Vec<Prediction>, ManError> {
        self.infer_batch_with_load(inputs, 1)
    }

    /// [`InferenceSession::infer_batch_shared`] with a load hint:
    /// `streams` is the number of concurrent batch streams competing for
    /// the same cores (≥ 1). The serve scheduler derives it from its
    /// queue depth so a deep backlog does not let one micro-batch grab
    /// every core; it only influences the [`Parallelism::Auto`] plan and
    /// never the predicted bits.
    ///
    /// # Errors
    ///
    /// As [`InferenceSession::infer_batch_shared`].
    pub fn infer_batch_with_load(
        &self,
        inputs: &[Vec<f32>],
        streams: usize,
    ) -> Result<Vec<Prediction>, ManError> {
        for input in inputs {
            self.check_shape(input)?;
        }
        // The kernel-execute stage of the obs taxonomy (DESIGN.md §12):
        // one span per batch, labeled with the resolved MAC kernel,
        // arg = batch size. A no-op branch when the plane is off.
        let _kernel_span = man_obs::Span::labeled(
            man_obs::Stage::Kernel,
            0,
            self.kernel_label(),
            inputs.len() as u64,
        );
        let mut plan = self.plan_with_load(inputs.len(), streams);
        let layout = self.resolved_layout(inputs.len());
        if layout.is_batch_major() {
            // Batch-major consumes whole rows per lane, so a Neurons
            // plan (rows too few/expensive to row-shard each) remaps to
            // row sharding over the same worker budget — each worker
            // then runs the widest lane block its rows allow.
            if let ShardPlan::Neurons { workers } = plan {
                plan = ShardPlan::Rows {
                    workers: workers.min(inputs.len()),
                };
            }
        }
        match self.record_dispatch(plan, layout) {
            (ShardPlan::Sequential, LayoutKind::BatchMajor) => {
                let mut cache = self.lock_cache(0);
                Ok(self
                    .fixed
                    .infer_batch_raw_batch_major_kernel(inputs, &mut cache, self.resolved_kernel())
                    .into_iter()
                    .map(|scores| Prediction {
                        class: argmax_raw(&scores),
                        scores,
                        traces: None,
                    })
                    .collect())
            }
            (ShardPlan::Sequential, LayoutKind::RowMajor) => {
                let mut cache = self.lock_cache(0);
                Ok(inputs
                    .iter()
                    .map(|x| self.infer_locked(x, &mut cache))
                    .collect())
            }
            (ShardPlan::Neurons { workers }, _) => {
                // Rows too few (or too expensive each) to row-shard:
                // shard each row's large layers across the workers
                // instead (a no-op on warm sessions, whose product
                // plane beats sharding — see
                // `FixedNet::infer_raw_with_cache_par`). Only reachable
                // row-major: batch-major remapped this plan above.
                let mut cache = self.lock_cache(0);
                Ok(inputs
                    .iter()
                    .map(|x| self.infer_locked_sharded(x, &mut cache, workers))
                    .collect())
            }
            (ShardPlan::Rows { workers }, layout) => {
                // Row sharding over as many worker slots as the plan
                // engaged; each slot's cache memoizes (banks and, when
                // warm, plane entries) on the ordinary mutable path.
                let mut guards: Vec<MutexGuard<'_, SessionCache>> =
                    (0..workers).map(|slot| self.lock_cache(slot)).collect();
                let mut caches: Vec<&mut SessionCache> =
                    guards.iter_mut().map(|g| &mut **g).collect();
                let raw = match layout {
                    LayoutKind::BatchMajor => self.fixed.infer_batch_raw_batch_major_par_kernel(
                        inputs,
                        &mut caches,
                        self.resolved_kernel(),
                    ),
                    LayoutKind::RowMajor => self.fixed.infer_batch_raw_par_kernel(
                        inputs,
                        &mut caches,
                        self.resolved_kernel(),
                    ),
                };
                Ok(raw
                    .into_iter()
                    .map(|scores| Prediction {
                        class: argmax_raw(&scores),
                        scores,
                        traces: None,
                    })
                    .collect())
            }
        }
    }

    /// Runs one inference ([`InferenceSession::infer_shared`] behind the
    /// historical `&mut self` receiver).
    ///
    /// # Errors
    ///
    /// Returns [`ManError::Shape`] if `input` does not hold exactly
    /// `self.fixed().input_len()` values.
    pub fn infer(&mut self, input: &[f32]) -> Result<Prediction, ManError> {
        self.infer_shared(input)
    }

    /// Runs a batch of inferences ([`InferenceSession::infer_batch_shared`]
    /// behind the historical `&mut self` receiver).
    ///
    /// # Errors
    ///
    /// Returns [`ManError::Shape`] on the first wrong-length input.
    pub fn infer_batch(&mut self, inputs: &[Vec<f32>]) -> Result<Vec<Prediction>, ManError> {
        self.infer_batch_shared(inputs)
    }
}
