//! The serving entry point: batched inference sessions.
//!
//! An [`InferenceSession`] owns a compiled [`man::fixed::FixedNet`] plus
//! one persistent [`man::fixed::SessionCache`] of pre-computer banks per
//! worker slot. A bank depends only on the input magnitude and the
//! layer's alphabet set, so across a batch most multiplications find
//! their bank already computed — the software analogue of the paper's
//! CSHM sharing. A session opened with [`InferenceSession::warm`] goes
//! one step further and memoizes whole `(weight, input)` products across
//! requests, the steady-state configuration the `man-serve` scheduler
//! workers run.
//!
//! # Parallel execution
//!
//! [`InferenceSession::with_parallelism`] turns the session into the
//! parallel batch engine: `infer_batch*` shards the rows of a batch
//! across `Parallelism::workers()` threads (one bank cache per worker
//! slot), and a lone large inference shards its big layers across output
//! neurons instead. Both shardings are bit-identical to the sequential
//! path **by construction**: every output neuron's shift-add chain is
//! computed whole, on one thread, in fan-in order, and the merge only
//! reassembles finished rows/neurons — accumulation within a neuron is
//! never reordered, and the worker-local caches memoize pure functions
//! of the compiled network. See `man-par` for the pool itself and
//! DESIGN.md §8 for the determinism argument.
//!
//! The mutable state (bank caches, product planes) lives behind internal
//! locks, so the shared-reference entry points
//! [`InferenceSession::infer_shared`] / [`infer_batch_shared`] work
//! through `&self` — which is what lets one session be driven from many
//! scheduler threads via an `Arc`. The original `&mut self` signatures
//! remain as thin wrappers.
//!
//! [`infer_batch_shared`]: InferenceSession::infer_batch_shared

use std::sync::{Arc, Mutex, MutexGuard};

use man::fixed::{argmax_raw, FixedNet, LayerTrace, SessionCache};
use man_par::Parallelism;

use crate::artifact::CompiledModel;
use crate::error::ManError;

/// The outcome of one inference.
#[derive(Clone, Debug)]
pub struct Prediction {
    /// Argmax class over the raw scores.
    pub class: usize,
    /// Raw output-layer accumulators ("logits" at the final layer's
    /// accumulator fraction) — bit-identical to
    /// [`man::fixed::FixedNet::infer_raw`].
    pub scores: Vec<i64>,
    /// Per-layer operand traces, captured when the session was opened
    /// with [`InferenceSession::with_trace`].
    pub traces: Option<Vec<LayerTrace>>,
}

/// A batched inference session over a compiled model.
///
/// # Example
///
/// ```no_run
/// # use man_repro::{CompiledModel, Parallelism};
/// # fn demo(model: &CompiledModel, batch: &[Vec<f32>]) {
/// let mut session = model.session().with_parallelism(Parallelism::Auto);
/// for p in session.infer_batch(batch).expect("inputs match the network") {
///     println!("class {} (scores {:?})", p.class, p.scores);
/// }
/// # }
/// ```
pub struct InferenceSession {
    fixed: Arc<FixedNet>,
    /// One cache per worker slot; `caches.len()` is the resolved worker
    /// count (`Parallelism::Auto` is resolved once, at construction).
    caches: Vec<Mutex<SessionCache>>,
    parallelism: Parallelism,
    warm: bool,
    trace_limit: Option<usize>,
}

impl InferenceSession {
    /// Opens a session over a compiled model. The compiled engine is
    /// shared, not copied — opening many sessions is cheap.
    pub fn new(model: &CompiledModel) -> Self {
        let fixed = model.fixed_shared();
        let caches = Self::build_caches(&fixed, false, 1);
        Self {
            fixed,
            caches,
            parallelism: Parallelism::Sequential,
            warm: false,
            trace_limit: None,
        }
    }

    fn build_caches(fixed: &FixedNet, warm: bool, workers: usize) -> Vec<Mutex<SessionCache>> {
        // One template, cloned per worker slot: each slot gets a private
        // bank table, while a warm template's product plane (16 MiB at
        // the 12-bit maximum) is *shared* by clone — every slot fills
        // and profits from the same memo.
        let template = if warm {
            fixed.session_cache_warm()
        } else {
            fixed.session_cache()
        };
        (0..workers.max(1))
            .map(|_| Mutex::new(template.clone()))
            .collect()
    }

    /// Switches the session onto warm caches that memoize whole
    /// `(weight, input)` products across inferences (see
    /// [`man::fixed::FixedNet::session_cache_warm`]). Bit-identical to
    /// the plain caches; the right choice for long-lived serving
    /// sessions, and what the `man-serve` scheduler workers use. A
    /// no-op beyond the plain bank cache for word lengths past
    /// [`man::fixed::PRODUCT_PLANE_MAX_BITS`].
    #[must_use]
    pub fn warm(mut self) -> Self {
        self.warm = true;
        self.caches = Self::build_caches(&self.fixed, true, self.caches.len());
        self
    }

    /// Sets how many worker threads batches may be sharded across. The
    /// session keeps one persistent bank cache per worker slot, so the
    /// cache-warmth story of a long-lived session survives going
    /// parallel. [`Parallelism::Sequential`] (the default) restores the
    /// single-threaded reference path; every setting returns
    /// bit-identical predictions.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self.caches = Self::build_caches(&self.fixed, self.warm, parallelism.workers());
        self
    }

    /// The parallelism the session was configured with.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// The resolved worker count ([`Parallelism::Auto`] resolved at
    /// construction time).
    pub fn workers(&self) -> usize {
        self.caches.len()
    }

    /// Enables per-layer operand tracing on every prediction (up to
    /// `limit` MACs per layer). Tracing costs time and memory — and
    /// forces the sequential path, since the operand stream is ordered —
    /// so leave it off for throughput serving.
    #[must_use]
    pub fn with_trace(mut self, limit: usize) -> Self {
        self.trace_limit = Some(limit);
        self
    }

    /// The compiled engine the session serves.
    pub fn fixed(&self) -> &FixedNet {
        &self.fixed
    }

    fn check_shape(&self, input: &[f32]) -> Result<(), ManError> {
        let expected = self.fixed.input_len();
        if input.len() != expected {
            return Err(ManError::Shape {
                expected,
                got: input.len(),
            });
        }
        Ok(())
    }

    fn infer_locked(&self, input: &[f32], cache: &mut SessionCache) -> Prediction {
        let (scores, traces) = match self.trace_limit {
            Some(limit) => {
                let (scores, traces) = self.fixed.infer_raw_traced(input, limit, cache);
                (scores, Some(traces))
            }
            None => (self.fixed.infer_raw_with_cache(input, cache), None),
        };
        Prediction {
            class: argmax_raw(&scores),
            scores,
            traces,
        }
    }

    /// One untraced inference with large layers neuron-sharded across
    /// the session's workers.
    fn infer_locked_sharded(&self, input: &[f32], cache: &mut SessionCache) -> Prediction {
        let scores =
            self.fixed
                .infer_raw_with_cache_par(input, cache, Parallelism::Threads(self.workers()));
        Prediction {
            class: argmax_raw(&scores),
            scores,
            traces: None,
        }
    }

    /// Runs one inference through a shared reference — the entry point
    /// scheduler workers drive via `Arc<InferenceSession>`. On a
    /// parallel session, large layers are sharded across the workers.
    ///
    /// # Errors
    ///
    /// Returns [`ManError::Shape`] if `input` does not hold exactly
    /// `self.fixed().input_len()` values.
    pub fn infer_shared(&self, input: &[f32]) -> Result<Prediction, ManError> {
        self.check_shape(input)?;
        let mut cache = self.lock_cache(0);
        if self.workers() > 1 && self.trace_limit.is_none() {
            return Ok(self.infer_locked_sharded(input, &mut cache));
        }
        Ok(self.infer_locked(input, &mut cache))
    }

    /// The caches stay internally consistent even if a thread panicked
    /// mid-inference (bank and plane slots are written atomically, and a
    /// half-run inference leaves no partial state behind), so a poisoned
    /// lock is recovered rather than propagated — one panicking request
    /// must not brick a long-lived serving session.
    fn lock_cache(&self, slot: usize) -> MutexGuard<'_, SessionCache> {
        self.caches[slot]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Runs a batch of inferences through a shared reference, sharing
    /// pre-computer banks (and, on a [`InferenceSession::warm`] session,
    /// memoized products) across the whole batch. Equivalent to — and
    /// bit-identical with — calling [`InferenceSession::infer_shared`]
    /// once per input, for every [`Parallelism`] setting.
    ///
    /// On a parallel session the rows are sharded across the worker
    /// slots (each with its own persistent cache); a batch smaller than
    /// the worker count falls back to neuron-sharding each row instead,
    /// so big lone requests still use every core.
    ///
    /// # Errors
    ///
    /// Returns [`ManError::Shape`] on the first wrong-length input; the
    /// whole batch is validated before any inference runs.
    pub fn infer_batch_shared(&self, inputs: &[Vec<f32>]) -> Result<Vec<Prediction>, ManError> {
        for input in inputs {
            self.check_shape(input)?;
        }
        let workers = self.workers().min(inputs.len().max(1));
        if workers <= 1 || self.trace_limit.is_some() {
            if self.workers() > 1 && self.trace_limit.is_none() && inputs.len() == 1 {
                // A lone row cannot row-shard: shard its large layers
                // across the workers instead (a no-op on warm sessions,
                // whose product plane beats sharding — see
                // `FixedNet::infer_raw_with_cache_par`).
                let mut cache = self.lock_cache(0);
                return Ok(inputs
                    .iter()
                    .map(|x| self.infer_locked_sharded(x, &mut cache))
                    .collect());
            }
            let mut cache = self.lock_cache(0);
            return Ok(inputs
                .iter()
                .map(|x| self.infer_locked(x, &mut cache))
                .collect());
        }
        // Row sharding over as many worker slots as there are rows to
        // fill; each slot's cache memoizes (banks and, when warm, plane
        // entries) on the ordinary mutable path.
        let mut guards: Vec<MutexGuard<'_, SessionCache>> =
            (0..workers).map(|slot| self.lock_cache(slot)).collect();
        let mut caches: Vec<&mut SessionCache> = guards.iter_mut().map(|g| &mut **g).collect();
        Ok(self
            .fixed
            .infer_batch_raw_par(inputs, &mut caches)
            .into_iter()
            .map(|scores| Prediction {
                class: argmax_raw(&scores),
                scores,
                traces: None,
            })
            .collect())
    }

    /// Runs one inference ([`InferenceSession::infer_shared`] behind the
    /// historical `&mut self` receiver).
    ///
    /// # Errors
    ///
    /// Returns [`ManError::Shape`] if `input` does not hold exactly
    /// `self.fixed().input_len()` values.
    pub fn infer(&mut self, input: &[f32]) -> Result<Prediction, ManError> {
        self.infer_shared(input)
    }

    /// Runs a batch of inferences ([`InferenceSession::infer_batch_shared`]
    /// behind the historical `&mut self` receiver).
    ///
    /// # Errors
    ///
    /// Returns [`ManError::Shape`] on the first wrong-length input.
    pub fn infer_batch(&mut self, inputs: &[Vec<f32>]) -> Result<Vec<Prediction>, ManError> {
        self.infer_batch_shared(inputs)
    }
}
