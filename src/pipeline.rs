//! The typed-stage pipeline: the paper's methodology as an API.
//!
//! Each stage is a concrete struct, so invalid orderings are
//! unrepresentable at the type level:
//!
//! ```text
//! Pipeline            configuration: source network, word length,
//!   |                 candidate alphabet sets, training data
//!   |-- train() ----------------> TrainedModel   (full Algorithm 2)
//!   |-- train_baseline() -> BaselineModel        (steps 1-2 only)
//!   |       |-- select() -------> TrainedModel   (steps 3-4)
//!   |       '-- retrain(a) -----> TrainedModel   (one assignment)
//!   '-- constrain() ------------> TrainedModel   (projection only)
//!                                      |
//!                                      '-- compile() -> CompiledModel
//!                                                           |-- session()
//!                                                           '-- cost()
//! ```
//!
//! `train` runs the paper's Algorithm 2 end to end; `train_baseline` +
//! `retrain` expose its two halves for sweep-style experiments;
//! `constrain` skips training entirely (Algorithm 1 projection only),
//! which is what the hardware cost experiments need.

use man::alphabet::AlphabetSet;
use man::fixed::{FixedNet, LayerAlphabets, QuantSpec};
use man::train::{
    constrained_retrain, train_unconstrained, Attempt, ConstraintProjector, MethodologyConfig,
};
use man::zoo::Benchmark;
use man_datasets::{Dataset, GenOptions};
use man_nn::network::Network;
use man_par::Parallelism;

use crate::artifact::CompiledModel;
use crate::error::ManError;

/// The train/test split a pipeline trains and evaluates on.
#[derive(Clone, Debug)]
pub struct TrainingData {
    /// Training images (flat pixel vectors).
    pub train_images: Vec<Vec<f32>>,
    /// Training labels.
    pub train_labels: Vec<usize>,
    /// Held-out test images.
    pub test_images: Vec<Vec<f32>>,
    /// Held-out test labels.
    pub test_labels: Vec<usize>,
}

impl TrainingData {
    /// Builds a split, validating the label counts.
    ///
    /// # Errors
    ///
    /// Returns [`ManError::Config`] if either split is empty or its image
    /// and label counts differ.
    pub fn new(
        train_images: Vec<Vec<f32>>,
        train_labels: Vec<usize>,
        test_images: Vec<Vec<f32>>,
        test_labels: Vec<usize>,
    ) -> Result<Self, ManError> {
        if train_images.is_empty() || test_images.is_empty() {
            return Err(ManError::config(
                "training and test splits must be non-empty",
            ));
        }
        if train_images.len() != train_labels.len() || test_images.len() != test_labels.len() {
            return Err(ManError::config("image/label counts differ"));
        }
        Ok(Self {
            train_images,
            train_labels,
            test_images,
            test_labels,
        })
    }
}

impl From<Dataset> for TrainingData {
    fn from(ds: Dataset) -> Self {
        Self {
            train_images: ds.train_images,
            train_labels: ds.train_labels,
            test_images: ds.test_images,
            test_labels: ds.test_labels,
        }
    }
}

impl From<&Dataset> for TrainingData {
    fn from(ds: &Dataset) -> Self {
        ds.clone().into()
    }
}

enum Source {
    Benchmark(Benchmark),
    Network(Network),
}

/// A registered hyper-parameter override (see [`Pipeline::configure`]).
type ConfigOverride = Box<dyn Fn(&mut MethodologyConfig)>;

/// Stage 0: pipeline configuration. Entry point of the API.
///
/// # Example
///
/// ```no_run
/// use man_repro::{Pipeline, TrainingData};
/// use man_repro::man::alphabet::AlphabetSet;
/// use man_repro::man::zoo::Benchmark;
///
/// # fn main() -> Result<(), man_repro::ManError> {
/// let trained = Pipeline::for_benchmark(Benchmark::Faces)
///     .with_bits(8)
///     .with_alphabets(vec![AlphabetSet::a1(), AlphabetSet::a2(), AlphabetSet::a4()])
///     .train()?;
/// let compiled = trained.compile()?;
/// let _session = compiled.session();
/// # Ok(()) }
/// ```
pub struct Pipeline {
    source: Source,
    bits: Option<u32>,
    candidates: Vec<AlphabetSet>,
    assignment: Option<LayerAlphabets>,
    data: Option<TrainingData>,
    parallelism: Option<Parallelism>,
    overrides: Vec<ConfigOverride>,
}

impl Pipeline {
    /// A pipeline over one of the paper's Table-IV benchmarks: the
    /// network architecture, word length and tuned hyper-parameters come
    /// from the benchmark; a synthetic dataset is generated on `train()`
    /// unless [`Pipeline::with_data`] provides one.
    pub fn for_benchmark(benchmark: Benchmark) -> Self {
        Self {
            source: Source::Benchmark(benchmark),
            bits: None,
            candidates: vec![AlphabetSet::a1(), AlphabetSet::a2(), AlphabetSet::a4()],
            assignment: None,
            data: None,
            parallelism: None,
            overrides: Vec::new(),
        }
    }

    /// A pipeline over a caller-built float network. Training data must
    /// be supplied with [`Pipeline::with_data`] before `train()`.
    pub fn from_network(network: Network) -> Self {
        Self {
            source: Source::Network(network),
            bits: None,
            candidates: vec![AlphabetSet::a1(), AlphabetSet::a2(), AlphabetSet::a4()],
            assignment: None,
            data: None,
            parallelism: None,
            overrides: Vec::new(),
        }
    }

    /// Sets the weight/activation word length (paper: 8 or 12).
    #[must_use]
    pub fn with_bits(mut self, bits: u32) -> Self {
        self.bits = Some(bits);
        self
    }

    /// Sets the candidate alphabet sets Algorithm 2 tries, smallest
    /// first. Defaults to `{1}`, `{1,3}`, `{1,3,5,7}`.
    #[must_use]
    pub fn with_alphabets(mut self, candidates: Vec<AlphabetSet>) -> Self {
        self.candidates = candidates;
        self
    }

    /// Sets an explicit per-layer assignment used by
    /// [`Pipeline::constrain`] (e.g. Section VI-E's mixed networks).
    /// When unset, `constrain()` applies the first candidate uniformly.
    /// Training paths reject a set assignment with [`ManError::Config`]
    /// (retrain an explicit assignment via [`BaselineModel::retrain`]).
    #[must_use]
    pub fn with_assignment(mut self, assignment: LayerAlphabets) -> Self {
        self.assignment = Some(assignment);
        self
    }

    /// Supplies the train/test split.
    #[must_use]
    pub fn with_data(mut self, data: impl Into<TrainingData>) -> Self {
        self.data = Some(data.into());
        self
    }

    /// Sets the worker budget for the methodology's evaluation work:
    /// every accuracy measurement shards its test rows, and
    /// [`BaselineModel::select`] retrains candidate alphabet sets
    /// concurrently. All of it drains the process-wide persistent
    /// `man-par` pool (no threads spawned per evaluation), and
    /// [`Parallelism::Auto`] routes each evaluation through the
    /// `man-par` decision table — MACs per row × set size — so tiny
    /// quick-mode sets skip the pool handoff. Results are identical to
    /// the sequential run for every setting — only wall-clock time
    /// changes (SGD itself stays sequential; its update chain is
    /// order-dependent by definition).
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = Some(parallelism);
        self
    }

    /// Registers a hyper-parameter override applied after the defaults
    /// (and after benchmark tuning); overrides run in registration order.
    #[must_use]
    pub fn configure(mut self, f: impl Fn(&mut MethodologyConfig) + 'static) -> Self {
        self.overrides.push(Box::new(f));
        self
    }

    fn resolve_bits(&self) -> Result<u32, ManError> {
        let bits = self.bits.unwrap_or(match &self.source {
            Source::Benchmark(b) => b.default_bits(),
            Source::Network(_) => 8,
        });
        if !(4..=16).contains(&bits) {
            return Err(ManError::config(format!(
                "word length must be in 4..=16, got {bits}"
            )));
        }
        Ok(bits)
    }

    fn resolve_cfg(&self, bits: u32) -> Result<MethodologyConfig, ManError> {
        if self.candidates.is_empty() {
            return Err(ManError::config(
                "candidate alphabet list must not be empty",
            ));
        }
        let mut cfg = MethodologyConfig::paper(bits);
        cfg.candidates = self.candidates.clone();
        if let Source::Benchmark(b) = &self.source {
            b.tune(&mut cfg);
        }
        if let Some(p) = self.parallelism {
            cfg.parallelism = p;
        }
        for f in &self.overrides {
            f(&mut cfg);
        }
        if !(cfg.quality > 0.0 && cfg.quality <= 1.0) {
            return Err(ManError::config(format!(
                "quality constraint must be in (0, 1], got {}",
                cfg.quality
            )));
        }
        Ok(cfg)
    }

    /// Runs Algorithm 2 steps 1-2: unconstrained training to saturation,
    /// quantization-spec fitting, and the conventional fixed-point
    /// baseline accuracy `J`.
    ///
    /// # Errors
    ///
    /// Returns [`ManError::Config`] on inconsistent configuration and
    /// [`ManError::Compile`] if the conventional baseline fails to
    /// compile.
    pub fn train_baseline(self) -> Result<BaselineModel, ManError> {
        if self.assignment.is_some() {
            return Err(ManError::config(
                "with_assignment applies to constrain() only; training paths \
                 take candidate sets via with_alphabets, and an explicit \
                 per-layer assignment retrains via BaselineModel::retrain",
            ));
        }
        let bits = self.resolve_bits()?;
        let cfg = self.resolve_cfg(bits)?;
        // The stage owns `self`: move the source and data out instead of
        // cloning (a paper-scale split is tens of megabytes).
        let Pipeline { source, data, .. } = self;
        let (mut network, data) = match (source, data) {
            (Source::Benchmark(b), data) => (
                b.build_network(cfg.seed),
                data.unwrap_or_else(|| b.dataset(&GenOptions::quick(cfg.seed)).into()),
            ),
            (Source::Network(net), Some(data)) => (net, data),
            (Source::Network(_), None) => {
                return Err(ManError::config(
                    "a network pipeline needs training data (use with_data)",
                ))
            }
        };
        train_unconstrained(&mut network, &data.train_images, &data.train_labels, &cfg);
        let float_accuracy =
            network.accuracy_par(&data.test_images, &data.test_labels, cfg.parallelism);
        let spec = QuantSpec::fit(&network, bits);
        let layers = spec.layer_formats().len();
        let conventional = FixedNet::compile(
            &network,
            &spec,
            &LayerAlphabets::uniform(AlphabetSet::a8(), layers),
        )?;
        let conventional_accuracy =
            conventional.accuracy_par(&data.test_images, &data.test_labels, cfg.parallelism);
        Ok(BaselineModel {
            network,
            spec,
            cfg,
            data,
            float_accuracy,
            conventional_accuracy,
        })
    }

    /// Runs the complete Algorithm 2:
    /// [`Pipeline::train_baseline`] followed by [`BaselineModel::select`].
    ///
    /// # Errors
    ///
    /// Propagates stage failures as [`ManError`].
    pub fn train(self) -> Result<TrainedModel, ManError> {
        self.train_baseline()?.select()
    }

    /// Skips training entirely: fits the quantization spec on the source
    /// network as-is and projects its weights onto the constrained
    /// lattice (Algorithm 1 only). Uses the assignment from
    /// [`Pipeline::with_assignment`], or the first candidate set applied
    /// uniformly.
    ///
    /// This is the fast path for hardware cost studies and tests that
    /// need a *valid* constrained network without caring about accuracy.
    ///
    /// # Errors
    ///
    /// Returns [`ManError::Config`] on inconsistent configuration (e.g.
    /// an assignment whose length does not match the network).
    pub fn constrain(self) -> Result<TrainedModel, ManError> {
        let bits = self.resolve_bits()?;
        let cfg = self.resolve_cfg(bits)?;
        let Pipeline {
            source,
            assignment,
            mut candidates,
            ..
        } = self;
        let network = match source {
            Source::Benchmark(b) => b.build_network(cfg.seed),
            Source::Network(net) => net,
        };
        let spec = QuantSpec::fit(&network, bits);
        let layers = spec.layer_formats().len();
        let alphabets = match assignment {
            Some(a) => {
                if a.len() != layers {
                    return Err(ManError::config(format!(
                        "assignment covers {} layers but the network has {layers}",
                        a.len()
                    )));
                }
                a
            }
            None => LayerAlphabets::uniform(candidates.swap_remove(0), layers),
        };
        let mut constrained = network;
        // Algorithm 1 across the network: the same projector retraining
        // applies after every optimizer step.
        ConstraintProjector::new(&spec, &alphabets).project(&mut constrained);
        Ok(TrainedModel {
            network: constrained,
            spec,
            alphabets,
            attempts: Vec::new(),
            selected: None,
            float_accuracy: None,
            conventional_accuracy: None,
        })
    }
}

/// Stage 1a: the unconstrained trained network plus the frozen
/// quantization spec and the conventional baseline accuracy `J`
/// (Algorithm 2 steps 1-2).
#[derive(Debug)]
pub struct BaselineModel {
    network: Network,
    spec: QuantSpec,
    cfg: MethodologyConfig,
    data: TrainingData,
    /// Float test accuracy after unconstrained training.
    pub float_accuracy: f64,
    /// Conventional fixed-point accuracy `J` (exact multiplier).
    pub conventional_accuracy: f64,
}

impl BaselineModel {
    /// The trained (unconstrained) float network — the restore point.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The frozen quantization spec.
    pub fn spec(&self) -> &QuantSpec {
        &self.spec
    }

    /// The resolved methodology hyper-parameters.
    pub fn config(&self) -> &MethodologyConfig {
        &self.cfg
    }

    /// The train/test split in use.
    pub fn data(&self) -> &TrainingData {
        &self.data
    }

    /// Constrained-retrains one explicit per-layer assignment from the
    /// restore point (Algorithm 2 step 3 for a single configuration) and
    /// measures its fixed-point accuracy `K`.
    ///
    /// # Errors
    ///
    /// Returns [`ManError::Config`] if the assignment length does not
    /// match the network, or [`ManError::Compile`] if the retrained
    /// network fails to compile (it cannot, unless the projection is
    /// bypassed).
    pub fn retrain(&self, alphabets: &LayerAlphabets) -> Result<TrainedModel, ManError> {
        self.retrain_with_parallelism(alphabets, self.cfg.parallelism)
    }

    /// [`BaselineModel::retrain`] with an explicit worker budget for the
    /// accuracy evaluation (`K`). Results are identical for every
    /// setting; this exists so an *outer* stage that already fans
    /// candidates out across the cores — [`BaselineModel::select`], the
    /// bench sweeps — can run each candidate's inner evaluation
    /// sequentially instead of oversubscribing the machine with
    /// `workers × workers` threads.
    ///
    /// # Errors
    ///
    /// As [`BaselineModel::retrain`].
    pub fn retrain_with_parallelism(
        &self,
        alphabets: &LayerAlphabets,
        eval_parallelism: Parallelism,
    ) -> Result<TrainedModel, ManError> {
        let layers = self.spec.layer_formats().len();
        if alphabets.len() != layers {
            return Err(ManError::config(format!(
                "assignment covers {} layers but the network has {layers}",
                alphabets.len()
            )));
        }
        let candidate = constrained_retrain(
            &self.network,
            &self.spec,
            alphabets,
            &self.data.train_images,
            &self.data.train_labels,
            &self.cfg,
        );
        let fixed = FixedNet::compile(&candidate, &self.spec, alphabets)?;
        let k = fixed.accuracy_par(
            &self.data.test_images,
            &self.data.test_labels,
            eval_parallelism,
        );
        let j = self.conventional_accuracy;
        let accepted = k >= j * self.cfg.quality;
        Ok(TrainedModel {
            network: candidate,
            spec: self.spec.clone(),
            alphabets: alphabets.clone(),
            attempts: vec![Attempt {
                label: alphabets.label(),
                accuracy: k,
                loss_pp: (j - k) * 100.0,
                accepted,
            }],
            selected: accepted.then_some(0),
            float_accuracy: Some(self.float_accuracy),
            conventional_accuracy: Some(j),
        })
    }

    /// Runs Algorithm 2 steps 3-4: constrained retraining over the
    /// candidate sets, smallest first, accepting the first whose
    /// accuracy `K` satisfies `K >= J * quality`. If no candidate is
    /// accepted, the best-scoring one is kept and
    /// [`TrainedModel::accepted`] reports `false`.
    ///
    /// On a parallel configuration ([`Pipeline::with_parallelism`]) the
    /// candidates retrain concurrently — each retraining is independent
    /// and seeded per-candidate, so every per-candidate result is
    /// identical to the sequential run — and the attempt log is then
    /// truncated at the first accepted set. The selected model *and* the
    /// reported attempts therefore match the sequential algorithm
    /// exactly; the speculative extra retrains only cost core-time.
    ///
    /// # Errors
    ///
    /// Propagates retraining/compile failures as [`ManError`].
    pub fn select(self) -> Result<TrainedModel, ManError> {
        let candidates = self.cfg.candidates.clone();
        let layers = self.spec.layer_formats().len();
        let workers = self.cfg.parallelism.workers().min(candidates.len());
        let mut evaluated: Vec<TrainedModel> = Vec::new();
        if workers > 1 {
            // Walk the speculative results in candidate order, stopping —
            // exactly like the sequential loop — at the first accepted
            // set. An `Err` from a candidate *past* that point is a
            // candidate Algorithm 2 would never have evaluated, so it
            // must not surface; an `Err` at or before it is one the
            // sequential run would have hit, and propagates. The worker
            // budget is split between the two levels (candidates outer,
            // accuracy evaluations inner — see `man_par::split_budget`)
            // so parallel select never oversubscribes the machine.
            let (outer, inner) = man_par::split_budget(self.cfg.parallelism, candidates.len());
            for result in man_par::parallel_map(outer, candidates.len(), |i| {
                self.retrain_with_parallelism(
                    &LayerAlphabets::uniform(candidates[i].clone(), layers),
                    inner,
                )
            }) {
                let one = result?;
                let accepted = one.attempts.first().is_some_and(|a| a.accepted);
                evaluated.push(one);
                if accepted {
                    break; // Algorithm 2 would have stopped here.
                }
            }
        } else {
            for set in &candidates {
                let one = self.retrain(&LayerAlphabets::uniform(set.clone(), layers))?;
                let accepted = one.attempts.first().is_some_and(|a| a.accepted);
                evaluated.push(one);
                if accepted {
                    break; // Algorithm 2: "end the training".
                }
            }
        }
        let mut attempts: Vec<Attempt> = Vec::new();
        let mut models: Vec<(Network, LayerAlphabets)> = Vec::new();
        let mut selected = None;
        for (idx, one) in evaluated.into_iter().enumerate() {
            let attempt = one
                .attempts
                .into_iter()
                .next()
                .expect("retrain records one attempt");
            if attempt.accepted && selected.is_none() {
                selected = Some(idx);
            }
            attempts.push(attempt);
            models.push((one.network, one.alphabets));
        }
        // Fall back on the best-K attempt when nothing met the bar.
        let chosen = selected.unwrap_or_else(|| {
            attempts
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| {
                    a.accuracy
                        .partial_cmp(&b.accuracy)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(i, _)| i)
                .expect("at least one candidate was attempted")
        });
        let (network, alphabets) = models.swap_remove(chosen);
        Ok(TrainedModel {
            network,
            spec: self.spec,
            alphabets,
            attempts,
            selected,
            float_accuracy: Some(self.float_accuracy),
            conventional_accuracy: Some(self.conventional_accuracy),
        })
    }
}

/// Stage 1b: a constrained network on the alphabet lattice, ready to
/// compile.
#[derive(Debug)]
pub struct TrainedModel {
    network: Network,
    spec: QuantSpec,
    alphabets: LayerAlphabets,
    /// Every attempted configuration, in Algorithm-2 order (empty for
    /// the projection-only [`Pipeline::constrain`] path).
    pub attempts: Vec<Attempt>,
    /// Index into `attempts` of the configuration that met the quality
    /// constraint, if any did.
    pub selected: Option<usize>,
    /// Float accuracy of the unconstrained restore point (when trained).
    pub float_accuracy: Option<f64>,
    /// Conventional fixed-point baseline `J` (when trained).
    pub conventional_accuracy: Option<f64>,
}

impl TrainedModel {
    /// The constrained float network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The frozen quantization spec.
    pub fn spec(&self) -> &QuantSpec {
        &self.spec
    }

    /// The per-layer alphabet assignment the model is constrained to.
    pub fn alphabets(&self) -> &LayerAlphabets {
        &self.alphabets
    }

    /// `true` if a candidate met the Algorithm-2 quality constraint.
    pub fn accepted(&self) -> bool {
        self.selected.is_some()
    }

    /// Stage 2: compiles the constrained network onto the bit-accurate
    /// fixed-point ASM datapath.
    ///
    /// # Errors
    ///
    /// Returns [`ManError::Compile`] if any weight is off-lattice — only
    /// possible when the network was mutated outside the pipeline.
    pub fn compile(&self) -> Result<CompiledModel, ManError> {
        CompiledModel::from_parts(
            self.network.clone(),
            self.spec.clone(),
            self.alphabets.clone(),
        )
    }
}
