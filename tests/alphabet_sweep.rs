//! Sweep-style integration tests: every alphabet set × word length
//! combination must survive the whole pipeline, and the monotonicity the
//! paper relies on (more alphabets ⇒ finer lattice ⇒ no worse projection
//! error) must hold end to end.

use man_repro::man::alphabet::AlphabetSet;
use man_repro::man::asm::AsmMultiplier;
use man_repro::man::constrain::WeightLattice;
use man_repro::man_nn::layers::{Activation, ActivationLayer, Dense, Layer};
use man_repro::man_nn::network::Network;
use man_repro::{Parallelism, Pipeline};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn sets() -> Vec<AlphabetSet> {
    vec![
        AlphabetSet::a1(),
        AlphabetSet::a2(),
        AlphabetSet::a4(),
        AlphabetSet::a8(),
    ]
}

#[test]
fn every_configuration_compiles_and_infers() {
    for bits in [8u32, 12] {
        for set in sets() {
            let mut rng = SmallRng::seed_from_u64(11);
            let net = Network::new(vec![
                Layer::Dense(Dense::new(10, 7, &mut rng)),
                Layer::Activation(ActivationLayer::new(Activation::Sigmoid)),
                Layer::Dense(Dense::new(7, 3, &mut rng)),
            ]);
            let compiled = Pipeline::from_network(net)
                .with_bits(bits)
                .with_alphabets(vec![set.clone()])
                .constrain()
                .unwrap_or_else(|e| panic!("bits={bits} {set}: {e}"))
                .compile()
                .unwrap_or_else(|e| panic!("bits={bits} {set}: {e}"));
            let mut session = compiled.session();
            let p = session.infer(&[0.4; 10]).expect("input matches");
            assert_eq!(p.scores.len(), 3, "bits={bits} {set}");
            assert!(p.class < 3, "bits={bits} {set}");
        }
    }
}

#[test]
fn lattice_density_is_monotone_in_alphabet_count() {
    for bits in [8u32, 12] {
        let sizes: Vec<usize> = sets()
            .iter()
            .map(|s| WeightLattice::new(bits, s).len())
            .collect();
        assert!(
            sizes.windows(2).all(|w| w[0] < w[1]),
            "bits={bits}: lattice sizes must strictly grow: {sizes:?}"
        );
        // The full alphabet covers every magnitude.
        assert_eq!(sizes[3], 1usize << (bits - 1), "bits={bits}");
    }
}

#[test]
fn larger_alphabets_never_increase_projection_error() {
    for bits in [8u32, 12] {
        let lattices: Vec<WeightLattice> =
            sets().iter().map(|s| WeightLattice::new(bits, s)).collect();
        let max = (1u32 << (bits - 1)) - 1;
        for mag in (0..=max).step_by(13) {
            let mut last = u64::MAX;
            for (i, lat) in lattices.iter().enumerate() {
                let err = (lat.project_exact(mag) as i64 - mag as i64).unsigned_abs();
                assert!(
                    err <= last,
                    "bits={bits} mag={mag}: error grew at set index {i}"
                );
                last = err;
            }
        }
    }
}

#[test]
fn asm_plan_reuse_matches_fresh_decode() {
    // Decoding once and re-applying across many inputs (what the compiled
    // engine does) equals decoding per multiplication.
    let asm = AsmMultiplier::new(8, AlphabetSet::a4());
    let lattice = WeightLattice::new(8, &AlphabetSet::a4());
    for &w in lattice.values().iter().step_by(3) {
        let plan = asm.decode(w).unwrap();
        for x in [0u32, 1, 64, 127] {
            let bank = asm.precompute(x);
            assert_eq!(asm.apply(&plan, &bank), asm.multiply(w, &bank).unwrap());
        }
    }
}

#[test]
fn every_configuration_is_bit_identical_under_parallel_sessions() {
    // The sweep of `every_configuration_compiles_and_infers`, re-run
    // through the parallel batch engine: every alphabet set × word
    // length × thread count must reproduce the sequential batch exactly.
    let batch: Vec<Vec<f32>> = (0..12)
        .map(|i| (0..10).map(|j| ((i * 3 + j) % 7) as f32 / 7.0).collect())
        .collect();
    for bits in [8u32, 12] {
        for set in sets() {
            let mut rng = SmallRng::seed_from_u64(11);
            let net = Network::new(vec![
                Layer::Dense(Dense::new(10, 7, &mut rng)),
                Layer::Activation(ActivationLayer::new(Activation::Sigmoid)),
                Layer::Dense(Dense::new(7, 3, &mut rng)),
            ]);
            let compiled = Pipeline::from_network(net)
                .with_bits(bits)
                .with_alphabets(vec![set.clone()])
                .constrain()
                .unwrap_or_else(|e| panic!("bits={bits} {set}: {e}"))
                .compile()
                .unwrap_or_else(|e| panic!("bits={bits} {set}: {e}"));
            let expected: Vec<Vec<i64>> = compiled
                .session()
                .infer_batch_shared(&batch)
                .expect("inputs match")
                .into_iter()
                .map(|p| p.scores)
                .collect();
            for p in [
                Parallelism::Threads(2),
                Parallelism::Threads(5),
                Parallelism::Auto,
            ] {
                let got: Vec<Vec<i64>> = compiled
                    .session_parallel(p)
                    .infer_batch_shared(&batch)
                    .expect("inputs match")
                    .into_iter()
                    .map(|x| x.scores)
                    .collect();
                assert_eq!(got, expected, "bits={bits} {set} {}", p.label());
            }
        }
    }
}

#[test]
fn mixed_assignments_flow_through_the_pipeline() {
    use man_repro::man::fixed::LayerAlphabets;
    // Section VI-E style: MAN early, richer sets late — via the explicit
    // per-layer assignment on the projection-only path.
    let mut rng = SmallRng::seed_from_u64(21);
    let net = Network::new(vec![
        Layer::Dense(Dense::new(16, 10, &mut rng)),
        Layer::Activation(ActivationLayer::new(Activation::Sigmoid)),
        Layer::Dense(Dense::new(10, 6, &mut rng)),
        Layer::Activation(ActivationLayer::new(Activation::Sigmoid)),
        Layer::Dense(Dense::new(6, 3, &mut rng)),
    ]);
    let assignment = LayerAlphabets::mixed(vec![
        AlphabetSet::a1(),
        AlphabetSet::a2(),
        AlphabetSet::a4(),
    ]);
    let compiled = Pipeline::from_network(net)
        .with_bits(8)
        .with_assignment(assignment.clone())
        .constrain()
        .expect("mixed projection")
        .compile()
        .expect("mixed compile");
    assert_eq!(compiled.alphabets(), &assignment);
    assert_eq!(compiled.fixed().layer_count(), 3);
    let scores = compiled.fixed().infer_raw(&[0.3; 16]);
    assert_eq!(scores.len(), 3);
}
