//! Property tests of the parallel batch engine's one non-negotiable
//! contract: for ANY model, batch and thread count, parallel inference
//! is bit-identical to sequential inference — plus the pool's panic
//! containment, and the persistent pool's reuse story: every parallel
//! call in the process (facade batches, warm sessions, training
//! evaluations) drains the SAME long-lived worker pool, interleaved and
//! across session resizes, without changing a bit.

use man_repro::man::alphabet::AlphabetSet;
use man_repro::man_nn::layers::{Activation, ActivationLayer, Dense, Layer};
use man_repro::man_nn::network::Network;
use man_repro::man_par::{run_chunked, Kernel, Layout, Parallelism};
use man_repro::{CompiledModel, Pipeline};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn any_alphabet() -> impl Strategy<Value = AlphabetSet> {
    prop_oneof![
        Just(AlphabetSet::a1()),
        Just(AlphabetSet::a2()),
        Just(AlphabetSet::a4()),
        Just(AlphabetSet::a8()),
    ]
}

/// A random tiny MLP constrained onto `set`'s lattice and compiled.
fn random_model(
    seed: u64,
    bits: u32,
    in_dim: usize,
    hidden: usize,
    classes: usize,
    set: AlphabetSet,
) -> CompiledModel {
    let mut rng = SmallRng::seed_from_u64(seed);
    let net = Network::new(vec![
        Layer::Dense(Dense::new(in_dim, hidden, &mut rng)),
        Layer::Activation(ActivationLayer::new(Activation::Sigmoid)),
        Layer::Dense(Dense::new(hidden, classes, &mut rng)),
    ]);
    Pipeline::from_network(net)
        .with_bits(bits)
        .with_alphabets(vec![set])
        .constrain()
        .expect("projection-only pipeline")
        .compile()
        .expect("projected weights compile")
}

fn random_batch(seed: u64, rows: usize, in_dim: usize) -> Vec<Vec<f32>> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xBA7C);
    (0..rows)
        .map(|_| {
            (0..in_dim)
                .map(|_| rand::Rng::gen_range(&mut rng, 0.0f32..1.0))
                .collect()
        })
        .collect()
}

fn scores_of(predictions: Vec<man_repro::Prediction>) -> Vec<(usize, Vec<i64>)> {
    predictions
        .into_iter()
        .map(|p| (p.class, p.scores))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Parallel `infer_batch` == sequential `infer_batch`, across random
    /// models, batch sizes 0..64 and `Threads(1..8)`, for both plain and
    /// warm sessions.
    #[test]
    fn parallel_infer_batch_is_bit_identical(
        seed in any::<u64>(),
        bits in prop_oneof![Just(6u32), Just(8u32)],
        set in any_alphabet(),
        in_dim in 4usize..20,
        hidden in 4usize..48,
        classes in 2usize..6,
        rows in 0usize..64,
        threads in 1usize..8,
        warm in any::<bool>(),
    ) {
        let model = random_model(seed, bits, in_dim, hidden, classes, set);
        let batch = random_batch(seed, rows, in_dim);
        let sequential = scores_of(
            model.session().infer_batch_shared(&batch).expect("shapes match"),
        );
        let session = if warm {
            model.session().warm().with_parallelism(Parallelism::Threads(threads))
        } else {
            model.session_parallel(Parallelism::Threads(threads))
        };
        let parallel = scores_of(session.infer_batch_shared(&batch).expect("shapes match"));
        prop_assert_eq!(&parallel, &sequential);
        // A second pass over the same session (caches now warm from the
        // first) must still be identical — warmth never changes bits.
        let again = scores_of(session.infer_batch_shared(&batch).expect("shapes match"));
        prop_assert_eq!(&again, &sequential);
    }

    /// Single-inference neuron sharding agrees with the sequential path.
    #[test]
    fn parallel_single_inference_is_bit_identical(
        seed in any::<u64>(),
        set in any_alphabet(),
        hidden in 16usize..64,
        threads in 2usize..8,
    ) {
        let model = random_model(seed, 8, 12, hidden, 3, set);
        let input = random_batch(seed, 1, 12).remove(0);
        let sequential = model.session().infer_shared(&input).expect("shape ok");
        let parallel = model
            .session_parallel(Parallelism::Threads(threads))
            .infer_shared(&input)
            .expect("shape ok");
        prop_assert_eq!(parallel.scores, sequential.scores);
        prop_assert_eq!(parallel.class, sequential.class);
    }

    /// One persistent pool, many tenants: interleaving plain parallel
    /// batches, a warm session's batches, training-style accuracy
    /// evaluations and session resizes over the SAME process-wide pool
    /// (the `man-par` global pool every parallel call drains) never
    /// changes a bit relative to the sequential reference — the pool
    /// carries no job state from one call into the next.
    #[test]
    fn pool_reuse_across_interleaved_tenants_is_bit_identical(
        seed in any::<u64>(),
        set in any_alphabet(),
        hidden in 8usize..48,
        rows in 1usize..24,
        // Each element is one interleaved operation; the value picks
        // the tenant and (for resizes) the new worker count.
        ops in prop::collection::vec(0usize..12, 4..10),
    ) {
        let in_dim = 10;
        let model = random_model(seed, 8, in_dim, hidden, 4, set);
        let batch = random_batch(seed, rows, in_dim);
        let labels: Vec<usize> = (0..rows).map(|i| i % 4).collect();

        // Sequential references, computed once.
        let seq_scores = scores_of(
            model.session().infer_batch_shared(&batch).expect("shapes match"),
        );
        let seq_accuracy = model.fixed().accuracy(&batch, &labels);

        // Long-lived tenants sharing the pool across the op sequence.
        let mut plain = model.session_parallel(Parallelism::Threads(4));
        let warm = model.session().warm().with_parallelism(Parallelism::Threads(3));
        for op in ops {
            match op % 4 {
                0 => {
                    let got = scores_of(
                        plain.infer_batch_shared(&batch).expect("shapes match"),
                    );
                    prop_assert_eq!(&got, &seq_scores, "plain tenant diverged");
                }
                1 => {
                    let got = scores_of(
                        warm.infer_batch_shared(&batch).expect("shapes match"),
                    );
                    prop_assert_eq!(&got, &seq_scores, "warm tenant diverged");
                }
                2 => {
                    // Training-eval tenant: row-sharded accuracy over
                    // the same pool (Auto exercises the tuner).
                    let p = if op < 6 { Parallelism::Threads(1 + op) } else { Parallelism::Auto };
                    let acc = model.fixed().accuracy_par(&batch, &labels, p);
                    prop_assert_eq!(acc, seq_accuracy, "eval tenant diverged");
                }
                _ => {
                    // Resize: a fresh worker-slot allocation on the same
                    // pool; results must survive the resize.
                    plain = model.session_parallel(Parallelism::Threads(1 + op % 7));
                    let got = scores_of(
                        plain.infer_batch_shared(&batch).expect("shapes match"),
                    );
                    prop_assert_eq!(&got, &seq_scores, "resized tenant diverged");
                }
            }
        }
    }

    /// The §10 kernel matrix: the vectorized MAC kernels (portable
    /// SWAR and, where detected, AVX2 via `Vector`) are bit-identical
    /// to the scalar reference across random models × word lengths ×
    /// alphabets × batch 0..64 × warm/plain caches × `Threads(1..8)` —
    /// equivalence is asserted on the scores of every row, twice per
    /// session (the second pass runs over prefilled arenas and, when
    /// warm, a part-filled product plane).
    #[test]
    fn scalar_and_vector_kernels_are_bit_identical(
        seed in any::<u64>(),
        bits in prop_oneof![Just(6u32), Just(8u32), Just(12u32)],
        set in any_alphabet(),
        in_dim in 4usize..20,
        hidden in 4usize..48,
        classes in 2usize..6,
        rows in 0usize..64,
        threads in 1usize..8,
        warm in any::<bool>(),
    ) {
        let model = random_model(seed, bits, in_dim, hidden, classes, set);
        let batch = random_batch(seed, rows, in_dim);
        let scalar_session = model.session().with_kernel(Kernel::Scalar);
        prop_assert_eq!(scalar_session.kernel_label(), "scalar");
        let scalar = scores_of(
            scalar_session.infer_batch_shared(&batch).expect("shapes match"),
        );
        for kernel in [Kernel::Swar, Kernel::Vector] {
            let session = if warm { model.session().warm() } else { model.session() }
                .with_parallelism(Parallelism::Threads(threads))
                .with_kernel(kernel);
            prop_assert!(session.kernel_label() != "scalar");
            let vectored = scores_of(
                session.infer_batch_shared(&batch).expect("shapes match"),
            );
            prop_assert_eq!(&vectored, &scalar, "kernel={} first pass", kernel.label());
            let again = scores_of(
                session.infer_batch_shared(&batch).expect("shapes match"),
            );
            prop_assert_eq!(&again, &scalar, "kernel={} warm pass", kernel.label());
        }
    }

    /// The §10 layout matrix: the batch-major lane-block path (a
    /// transposed bank walk vectorizing across batch rows) is
    /// bit-identical to the row-major reference across random models ×
    /// word lengths × alphabets × batch 0..64 (straddling the
    /// `LANE_BLOCK` width and its remainders) × warm/plain caches ×
    /// `Threads(1..8)` — asserted twice per session, so the second pass
    /// also covers prefilled arenas and reused transpose scratch.
    #[test]
    fn batch_major_layout_is_bit_identical(
        seed in any::<u64>(),
        bits in prop_oneof![Just(6u32), Just(8u32), Just(12u32)],
        set in any_alphabet(),
        in_dim in 4usize..20,
        hidden in 4usize..48,
        classes in 2usize..6,
        rows in 0usize..64,
        threads in 1usize..8,
        warm in any::<bool>(),
    ) {
        let model = random_model(seed, bits, in_dim, hidden, classes, set);
        let batch = random_batch(seed, rows, in_dim);
        let row_major = scores_of(
            model.session()
                .with_layout(Layout::RowMajor)
                .infer_batch_shared(&batch)
                .expect("shapes match"),
        );
        let session = if warm { model.session().warm() } else { model.session() }
            .with_parallelism(Parallelism::Threads(threads))
            .with_layout(Layout::BatchMajor);
        let batch_major = scores_of(
            session.infer_batch_shared(&batch).expect("shapes match"),
        );
        prop_assert_eq!(&batch_major, &row_major, "first pass");
        let again = scores_of(
            session.infer_batch_shared(&batch).expect("shapes match"),
        );
        prop_assert_eq!(&again, &row_major, "reused-scratch pass");
    }

    /// `Parallelism::Auto` — whatever plan the tuner resolves (rows,
    /// neurons or sequential) — is bit-identical to the sequential
    /// path, warm or plain.
    #[test]
    fn auto_tuned_sessions_are_bit_identical(
        seed in any::<u64>(),
        set in any_alphabet(),
        hidden in 8usize..64,
        rows in 0usize..32,
        warm in any::<bool>(),
    ) {
        let model = random_model(seed, 8, 14, hidden, 3, set);
        let batch = random_batch(seed, rows, 14);
        let sequential = scores_of(
            model.session().infer_batch_shared(&batch).expect("shapes match"),
        );
        let session = if warm {
            model.session().warm().with_parallelism(Parallelism::Auto)
        } else {
            model.session_parallel(Parallelism::Auto)
        };
        let auto = scores_of(session.infer_batch_shared(&batch).expect("shapes match"));
        prop_assert_eq!(&auto, &sequential);
        // Load hints only influence the plan, never the bits.
        for streams in [1usize, 2, 16] {
            let hinted = scores_of(
                session.infer_batch_with_load(&batch, streams).expect("shapes match"),
            );
            prop_assert_eq!(&hinted, &sequential, "streams={}", streams);
        }
    }
}

/// A panic inside one worker must surface to the caller — with its
/// payload — after every worker slot has been accounted for, and leave
/// the engine usable: the containment discipline the serving scheduler
/// relies on (its `dispatch` then converts the panic into a typed
/// error). With the persistent pool this is a sharper claim than
/// before: the SAME pool threads that contained the panic keep serving
/// every later job, so the test drives several post-panic tenants
/// (plain parallel, warm, training eval) — and panics again — through
/// the reused pool.
#[test]
fn panic_in_worker_is_contained_and_pool_survives_reuse() {
    let poison = |marker: usize| {
        std::panic::catch_unwind(move || {
            let mut contexts = vec![(); 4];
            run_chunked(&mut contexts, 64, 1, move |(), range| {
                if range.start == marker {
                    panic!("poisoned row");
                }
                range.map(|i| i as u64).collect::<Vec<_>>()
            })
        })
    };
    let payload = poison(13).expect_err("worker panic must propagate");
    assert_eq!(payload.downcast_ref::<&str>(), Some(&"poisoned row"));

    // The pool is unaffected afterwards: a real model still infers,
    // in parallel, bit-identically, through the same pool threads.
    let model = random_model(7, 8, 10, 24, 3, AlphabetSet::a2());
    let batch = random_batch(7, 16, 10);
    let labels: Vec<usize> = (0..16).map(|i| i % 3).collect();
    let sequential = scores_of(
        model
            .session()
            .infer_batch_shared(&batch)
            .expect("shapes match"),
    );
    let parallel = scores_of(
        model
            .session_parallel(Parallelism::Threads(4))
            .infer_batch_shared(&batch)
            .expect("shapes match"),
    );
    assert_eq!(parallel, sequential);

    // A second panic on the reused pool is contained just the same...
    let payload = poison(31).expect_err("second panic must propagate too");
    assert_eq!(payload.downcast_ref::<&str>(), Some(&"poisoned row"));

    // ...and the other tenants keep getting exact answers.
    let warm = scores_of(
        model
            .session()
            .warm()
            .with_parallelism(Parallelism::Threads(3))
            .infer_batch_shared(&batch)
            .expect("shapes match"),
    );
    assert_eq!(warm, sequential);
    let seq_acc = model.fixed().accuracy(&batch, &labels);
    for p in [Parallelism::Threads(4), Parallelism::Auto] {
        assert_eq!(model.fixed().accuracy_par(&batch, &labels, p), seq_acc);
    }
}

/// The forced-AVX2-off path: `Kernel::Swar` must resolve to the
/// portable SWAR kernel on *every* host (explicit requests beat the
/// `MAN_KERNEL` environment too), and its results must match both the
/// scalar reference and whatever `Vector` resolves to — so the fallback
/// CI exercises on AVX2-less runners is pinned even on hosts that have
/// AVX2.
#[test]
fn forced_swar_fallback_matches_scalar_and_vector() {
    let model = random_model(21, 8, 14, 40, 4, AlphabetSet::a4());
    let batch = random_batch(21, 12, 14);
    let swar = model.session().with_kernel(Kernel::Swar);
    assert_eq!(
        swar.kernel_label(),
        "swar",
        "explicit Swar must never dispatch to AVX2 (or scalar)"
    );
    let scalar = scores_of(
        model
            .session()
            .with_kernel(Kernel::Scalar)
            .infer_batch_shared(&batch)
            .expect("shapes match"),
    );
    let got = scores_of(swar.infer_batch_shared(&batch).expect("shapes match"));
    assert_eq!(got, scalar);
    let vector = model.session().with_kernel(Kernel::Vector);
    assert!(vector.resolved_kernel().is_vectorized());
    let got = scores_of(vector.infer_batch_shared(&batch).expect("shapes match"));
    assert_eq!(got, scalar);
}

/// Batch-major is a batch-path optimization: below two rows there is
/// nothing to vectorize across, so an explicit `Layout::BatchMajor`
/// request degrades to the row-major path — same bits, and the
/// dispatch record says `row`, so operators never see a phantom
/// `batch` label on single-row traffic. From two rows up the explicit
/// request is honoured again.
#[test]
fn batch_major_request_degrades_to_row_major_below_two_rows() {
    let model = random_model(23, 8, 12, 32, 3, AlphabetSet::a2());
    let session = model.session().with_layout(Layout::BatchMajor);
    let single = random_batch(23, 1, 12);
    let reference = scores_of(
        model
            .session()
            .infer_batch_shared(&single)
            .expect("shapes match"),
    );
    let got = scores_of(session.infer_batch_shared(&single).expect("shapes match"));
    assert_eq!(got, reference);
    let (_, layout) = session.last_dispatch().expect("a batch resolved");
    assert_eq!(layout.label(), "row", "batch=1 must degrade to row-major");
    assert_eq!(session.stats().layout, "row");
    let pair = random_batch(24, 2, 12);
    session.infer_batch_shared(&pair).expect("shapes match");
    assert_eq!(
        session.stats().layout,
        "batch",
        "two rows honour the explicit batch-major request"
    );
}

/// Session `stats` surface the resolved plan × kernel × layout and the
/// cache memory story (per-layer bank bytes, plane bytes counted once
/// across worker slots, transpose scratch) — the observability
/// satellite.
#[test]
fn session_stats_report_plan_kernel_and_memory() {
    let model = random_model(22, 8, 12, 32, 3, AlphabetSet::a2());
    let batch = random_batch(22, 16, 12);
    let session = model
        .session()
        .warm()
        .with_parallelism(Parallelism::Threads(2));
    let fresh = session.stats();
    assert_eq!(fresh.plan, "unresolved", "no batch has resolved yet");
    assert_eq!(fresh.workers, 2);
    assert_eq!(
        fresh.plane_bytes,
        128 * 128 * 4,
        "8-bit plane, counted once"
    );
    session.infer_batch_shared(&batch).expect("shapes match");
    let stats = session.stats();
    assert!(
        stats.plan.contains(&stats.kernel)
            && stats.plan.contains(&stats.layout)
            && stats.plan.matches('+').count() == 2,
        "plan must carry the plan×kernel×layout label, got {:?}",
        stats.plan
    );
    assert!(
        stats.layout == "row" || stats.layout == "batch",
        "a resolved batch pins one layout, got {:?}",
        stats.layout
    );
    assert_eq!(stats.layer_bank_bytes.len(), 2, "one entry per layer");
    assert!(stats.bank_bytes > 0, "inference filled bank rows");
    assert_eq!(
        stats.cache_bytes,
        stats.bank_bytes + stats.plane_bytes + stats.transpose_bytes
    );
    if stats.layout == "batch" {
        assert!(
            stats.transpose_bytes > 0,
            "a batch-major dispatch leaves transpose scratch behind"
        );
    }
    assert!(stats.kernel_plan_bytes > 0);
    assert_eq!(stats.macs_per_row, model.macs_per_inference());
}
