//! Property tests of the parallel batch engine's one non-negotiable
//! contract: for ANY model, batch and thread count, parallel inference
//! is bit-identical to sequential inference — plus the pool's panic
//! containment.

use man_repro::man::alphabet::AlphabetSet;
use man_repro::man_nn::layers::{Activation, ActivationLayer, Dense, Layer};
use man_repro::man_nn::network::Network;
use man_repro::man_par::{run_chunked, Parallelism};
use man_repro::{CompiledModel, Pipeline};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn any_alphabet() -> impl Strategy<Value = AlphabetSet> {
    prop_oneof![
        Just(AlphabetSet::a1()),
        Just(AlphabetSet::a2()),
        Just(AlphabetSet::a4()),
        Just(AlphabetSet::a8()),
    ]
}

/// A random tiny MLP constrained onto `set`'s lattice and compiled.
fn random_model(
    seed: u64,
    bits: u32,
    in_dim: usize,
    hidden: usize,
    classes: usize,
    set: AlphabetSet,
) -> CompiledModel {
    let mut rng = SmallRng::seed_from_u64(seed);
    let net = Network::new(vec![
        Layer::Dense(Dense::new(in_dim, hidden, &mut rng)),
        Layer::Activation(ActivationLayer::new(Activation::Sigmoid)),
        Layer::Dense(Dense::new(hidden, classes, &mut rng)),
    ]);
    Pipeline::from_network(net)
        .with_bits(bits)
        .with_alphabets(vec![set])
        .constrain()
        .expect("projection-only pipeline")
        .compile()
        .expect("projected weights compile")
}

fn random_batch(seed: u64, rows: usize, in_dim: usize) -> Vec<Vec<f32>> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xBA7C);
    (0..rows)
        .map(|_| {
            (0..in_dim)
                .map(|_| rand::Rng::gen_range(&mut rng, 0.0f32..1.0))
                .collect()
        })
        .collect()
}

fn scores_of(predictions: Vec<man_repro::Prediction>) -> Vec<(usize, Vec<i64>)> {
    predictions
        .into_iter()
        .map(|p| (p.class, p.scores))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Parallel `infer_batch` == sequential `infer_batch`, across random
    /// models, batch sizes 0..64 and `Threads(1..8)`, for both plain and
    /// warm sessions.
    #[test]
    fn parallel_infer_batch_is_bit_identical(
        seed in any::<u64>(),
        bits in prop_oneof![Just(6u32), Just(8u32)],
        set in any_alphabet(),
        in_dim in 4usize..20,
        hidden in 4usize..48,
        classes in 2usize..6,
        rows in 0usize..64,
        threads in 1usize..8,
        warm in any::<bool>(),
    ) {
        let model = random_model(seed, bits, in_dim, hidden, classes, set);
        let batch = random_batch(seed, rows, in_dim);
        let sequential = scores_of(
            model.session().infer_batch_shared(&batch).expect("shapes match"),
        );
        let session = if warm {
            model.session().warm().with_parallelism(Parallelism::Threads(threads))
        } else {
            model.session_parallel(Parallelism::Threads(threads))
        };
        let parallel = scores_of(session.infer_batch_shared(&batch).expect("shapes match"));
        prop_assert_eq!(&parallel, &sequential);
        // A second pass over the same session (caches now warm from the
        // first) must still be identical — warmth never changes bits.
        let again = scores_of(session.infer_batch_shared(&batch).expect("shapes match"));
        prop_assert_eq!(&again, &sequential);
    }

    /// Single-inference neuron sharding agrees with the sequential path.
    #[test]
    fn parallel_single_inference_is_bit_identical(
        seed in any::<u64>(),
        set in any_alphabet(),
        hidden in 16usize..64,
        threads in 2usize..8,
    ) {
        let model = random_model(seed, 8, 12, hidden, 3, set);
        let input = random_batch(seed, 1, 12).remove(0);
        let sequential = model.session().infer_shared(&input).expect("shape ok");
        let parallel = model
            .session_parallel(Parallelism::Threads(threads))
            .infer_shared(&input)
            .expect("shape ok");
        prop_assert_eq!(parallel.scores, sequential.scores);
        prop_assert_eq!(parallel.class, sequential.class);
    }
}

/// A panic inside one worker must surface to the caller — with its
/// payload — after every thread has been joined, and leave the engine
/// usable: the containment discipline the serving scheduler relies on
/// (its `dispatch` then converts the panic into a typed error).
#[test]
fn panic_in_worker_is_contained() {
    let result = std::panic::catch_unwind(|| {
        let mut contexts = vec![(); 4];
        run_chunked(&mut contexts, 64, 1, |(), range| {
            if range.start == 13 {
                panic!("poisoned row");
            }
            range.map(|i| i as u64).collect::<Vec<_>>()
        })
    });
    let payload = result.expect_err("worker panic must propagate");
    assert_eq!(payload.downcast_ref::<&str>(), Some(&"poisoned row"));

    // The engine is unaffected afterwards: a real model still infers,
    // in parallel, bit-identically.
    let model = random_model(7, 8, 10, 24, 3, AlphabetSet::a2());
    let batch = random_batch(7, 16, 10);
    let sequential = scores_of(
        model
            .session()
            .infer_batch_shared(&batch)
            .expect("shapes match"),
    );
    let parallel = scores_of(
        model
            .session_parallel(Parallelism::Threads(4))
            .infer_batch_shared(&batch)
            .expect("shapes match"),
    );
    assert_eq!(parallel, sequential);
}
