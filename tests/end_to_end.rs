//! Cross-crate integration through the typed-stage pipeline: dataset ->
//! training -> constraint -> fixed inference -> hardware cost, on
//! small-but-real configurations.

use man_repro::man::alphabet::AlphabetSet;
use man_repro::man::engine::CostModel;
use man_repro::man::zoo::Benchmark;
use man_repro::man_datasets::GenOptions;
use man_repro::{ManError, Pipeline};

fn small_opts(seed: u64) -> GenOptions {
    GenOptions {
        train: 500,
        test: 150,
        seed,
    }
}

fn quick(cfg: &mut man_repro::man::train::MethodologyConfig) {
    cfg.initial_epochs = 6;
    cfg.retrain_epochs = 3;
}

#[test]
fn faces_methodology_reaches_usable_accuracy() {
    let ds = Benchmark::Faces.dataset(&small_opts(42));
    let trained = Pipeline::for_benchmark(Benchmark::Faces)
        .with_bits(8)
        .with_data(&ds)
        .configure(quick)
        .train()
        .expect("methodology runs");
    let j = trained
        .conventional_accuracy
        .expect("trained model records J");
    assert!(j > 0.75, "8-bit conventional baseline too weak: {j}");
    // Error resilience: even the first attempted (smallest) alphabet set
    // stays within a few points of the conventional baseline.
    let first = &trained.attempts[0];
    assert!(
        first.accuracy > j - 0.08,
        "MAN lost too much: {} vs {j}",
        first.accuracy
    );
    // The winning model compiles and serves.
    let compiled = trained.compile().expect("selected model compiles");
    let session = compiled.session();
    let predictions = session
        .infer_batch_shared(&ds.test_images[..10])
        .expect("test images match the input layer");
    assert_eq!(predictions.len(), 10);
}

#[test]
fn digits_energy_ordering_matches_paper() {
    // MAN < ASM2 < conventional in energy, at identical cycle counts.
    // Cost studies need a *trained*, constrained, compiled network (so
    // operand traces carry realistic activity) but no constrained
    // retraining — the baseline + projection-only pipeline path.
    let ds = Benchmark::DigitsMlp.dataset(&small_opts(7));
    let baseline = Pipeline::for_benchmark(Benchmark::DigitsMlp)
        .with_bits(8)
        .with_data(&ds)
        .configure(quick)
        .train_baseline()
        .expect("brief training runs");
    let mut model = CostModel::default();
    model.stream_limit = 300;

    let mut energy = Vec::new();
    let mut cycles = Vec::new();
    for set in [None, Some(AlphabetSet::a2()), Some(AlphabetSet::a1())] {
        let pipeline = Pipeline::from_network(baseline.network().clone())
            .with_bits(8)
            .with_alphabets(vec![set.clone().unwrap_or_else(AlphabetSet::a8)]);
        let compiled = pipeline
            .constrain()
            .expect("projection")
            .compile()
            .expect("compiles");
        let costed = match set {
            None => compiled.cost_conventional(&mut model, &ds.test_images),
            Some(_) => compiled.cost(&mut model, &ds.test_images),
        }
        .expect("synthesis at paper clocks succeeds");
        energy.push(costed.report.energy_pj);
        cycles.push(costed.report.cycles);
    }
    assert!(
        energy[2] < energy[1],
        "MAN {} !< ASM2 {}",
        energy[2],
        energy[1]
    );
    assert!(
        energy[1] < energy[0],
        "ASM2 {} !< conv {}",
        energy[1],
        energy[0]
    );
    assert_eq!(cycles[0], cycles[1], "iso-speed engines share cycle counts");
    assert_eq!(cycles[1], cycles[2]);
}

#[test]
fn cnn_compiles_and_infers_in_fixed_point() {
    let ds = Benchmark::DigitsCnn.dataset(&GenOptions {
        train: 150,
        test: 40,
        seed: 3,
    });
    let baseline = Pipeline::for_benchmark(Benchmark::DigitsCnn)
        .with_bits(12)
        .with_data(&ds)
        .configure(|cfg| {
            cfg.initial_epochs = 2;
            cfg.retrain_epochs = 3;
        })
        .train_baseline()
        .expect("baseline trains");
    assert_eq!(
        baseline.spec().layer_formats().len(),
        6,
        "LeNet has 6 parameterized layers"
    );
    // Conventional path: 12-bit quantization tracks the float network.
    assert!(
        (baseline.float_accuracy - baseline.conventional_accuracy).abs() < 0.25,
        "12-bit quantization should track float: {} vs {}",
        baseline.float_accuracy,
        baseline.conventional_accuracy
    );
    // MAN path: projection-only from the trained restore point, through
    // the pipeline's network source.
    let man = Pipeline::from_network(baseline.network().clone())
        .with_bits(12)
        .with_alphabets(vec![AlphabetSet::a1()])
        .constrain()
        .expect("projects")
        .compile()
        .expect("compiles");
    let _ = man.accuracy(&ds.test_images, &ds.test_labels);
}

#[test]
fn pipeline_errors_are_typed_not_panics() {
    // A custom-network pipeline without data cannot train.
    let ds = Benchmark::Faces.dataset(&GenOptions {
        train: 10,
        test: 10,
        seed: 1,
    });
    let net = Benchmark::Faces.build_network(0);
    let err = Pipeline::from_network(net.clone())
        .train_baseline()
        .unwrap_err();
    assert!(matches!(err, ManError::Config(_)), "{err}");

    // An empty candidate list is a configuration error.
    let err = Pipeline::from_network(net.clone())
        .with_alphabets(vec![])
        .with_data(&ds)
        .train_baseline()
        .unwrap_err();
    assert!(matches!(err, ManError::Config(_)), "{err}");

    // An out-of-range word length is a configuration error.
    let err = Pipeline::from_network(net.clone())
        .with_bits(40)
        .with_data(&ds)
        .train_baseline()
        .unwrap_err();
    assert!(matches!(err, ManError::Config(_)), "{err}");

    // An explicit assignment on a training path is rejected loudly
    // instead of being silently ignored.
    use man_repro::man::alphabet::AlphabetSet;
    use man_repro::man::fixed::LayerAlphabets;
    let err = Pipeline::from_network(net)
        .with_assignment(LayerAlphabets::uniform(AlphabetSet::a1(), 2))
        .with_data(&ds)
        .train_baseline()
        .unwrap_err();
    assert!(matches!(err, ManError::Config(_)), "{err}");
    assert!(err.to_string().contains("constrain"));
}

#[test]
fn concurrent_serving_is_bit_identical_to_sequential_inference() {
    // The batch-equivalence property, extended to the serving runtime:
    // N client threads hammering one model through the micro-batching
    // scheduler receive exactly the scores a sequential session
    // produces, whatever the interleaving and batch composition.
    use man_serve::{Client, ModelRegistry};
    use std::sync::Arc;

    let ds = Benchmark::Faces.dataset(&small_opts(11));
    let compiled = Pipeline::for_benchmark(Benchmark::Faces)
        .with_bits(8)
        .with_alphabets(vec![AlphabetSet::a1()])
        .constrain()
        .expect("projection")
        .compile()
        .expect("projected weights compile");
    let probes = &ds.test_images[..32];
    let sequential: Vec<Vec<i64>> = {
        let mut session = compiled.session();
        probes
            .iter()
            .map(|x| session.infer(x).expect("dataset image").scores)
            .collect()
    };

    let registry = ModelRegistry::with_defaults();
    registry.install("faces", compiled);
    let client = Client::new(Arc::clone(&registry));
    std::thread::scope(|scope| {
        for t in 0..6usize {
            let client = client.clone();
            let sequential = &sequential;
            scope.spawn(move || {
                for round in 0..3 {
                    for i in 0..probes.len() {
                        let i = (i + t * 5 + round * 13) % probes.len();
                        let p = client
                            .predict("faces", probes[i].clone())
                            .expect("serving must not fail");
                        assert_eq!(
                            p.scores, sequential[i],
                            "thread {t} probe {i}: serving must be bit-identical"
                        );
                    }
                }
            });
        }
    });
    let stats = registry.stats(Some("faces")).expect("stats");
    assert_eq!(stats[0].completed, 6 * 3 * 32);
    assert_eq!(stats[0].errors + stats[0].rejected, 0);
}

#[test]
fn asm_functional_model_matches_gate_level_datapath() {
    // The software ASM and the synthesized netlist agree bit-for-bit.
    use man_repro::man_hw::components::adder::AdderKind;
    use man_repro::man_hw::components::asm::asm_mult_stage;
    use man_repro::man_hw::eval::Evaluator;

    let alphabet = AlphabetSet::a2();
    let asm = man_repro::man::asm::AsmMultiplier::new(8, alphabet.clone());
    let stage = asm_mult_stage(8, alphabet.members(), AdderKind::Ripple);
    let mut sim = Evaluator::new(stage.netlist());
    for w_mag in 0..128u32 {
        if asm.decode(w_mag).is_err() {
            continue;
        }
        for x in [1u32, 55, 127] {
            let bank = asm.precompute(x);
            sim.step(&[
                ("w_mag", w_mag as u64),
                ("alpha1", bank[0]),
                ("alpha3", bank[1]),
                ("w_sign", 0),
                ("x_sign", 0),
            ]);
            assert_eq!(
                sim.output("p_mag"),
                asm.multiply(w_mag, &bank).unwrap(),
                "w={w_mag} x={x}"
            );
        }
    }
}

#[test]
fn plan_activation_shared_between_engine_and_hardware() {
    use man_repro::man_hw::components::activation::{
        activation_unit, activation_unit_fixed, PlanParams,
    };
    use man_repro::man_hw::components::adder::AdderKind;
    use man_repro::man_hw::eval::Evaluator;

    let params = PlanParams {
        in_bits: 11,
        in_frac: 7,
        out_bits: 7,
    };
    let acc_bits = 20u32;
    let acc_frac = 13u32;
    let unit = activation_unit(acc_bits, acc_frac, &params, AdderKind::Ripple);
    let mut sim = Evaluator::new(unit.netlist());
    let mask = (1u64 << acc_bits) - 1;
    for acc in (-400_000i64..400_000).step_by(17_771) {
        sim.step(&[("acc", (acc as u64) & mask)]);
        assert_eq!(
            sim.output("y"),
            activation_unit_fixed(acc, acc_bits, acc_frac, &params),
            "acc={acc}"
        );
    }
}
