//! Cross-crate integration: dataset -> training -> constraint -> fixed
//! inference -> hardware cost, on small-but-real configurations.

use man_repro::man::alphabet::AlphabetSet;
use man_repro::man::engine::{kinds_conventional, kinds_from_alphabets, CostModel};
use man_repro::man::fixed::{FixedNet, LayerAlphabets, QuantSpec};
use man_repro::man::train::{run_methodology, MethodologyConfig};
use man_repro::man::zoo::Benchmark;
use man_repro::man_datasets::GenOptions;

fn small_opts(seed: u64) -> GenOptions {
    GenOptions {
        train: 500,
        test: 150,
        seed,
    }
}

fn quick_cfg(bits: u32) -> MethodologyConfig {
    let mut cfg = MethodologyConfig::paper(bits);
    cfg.initial_epochs = 6;
    cfg.retrain_epochs = 3;
    cfg
}

#[test]
fn faces_methodology_reaches_usable_accuracy() {
    let ds = Benchmark::Faces.dataset(&small_opts(42));
    let cfg = quick_cfg(8);
    let outcome = run_methodology(
        Benchmark::Faces.build_network(cfg.seed),
        &ds.train_images,
        &ds.train_labels,
        &ds.test_images,
        &ds.test_labels,
        &cfg,
    );
    assert!(
        outcome.conventional_accuracy > 0.75,
        "8-bit conventional baseline too weak: {}",
        outcome.conventional_accuracy
    );
    // Error resilience: even the first attempted (smallest) alphabet set
    // stays within a few points of the conventional baseline.
    let first = &outcome.attempts[0];
    assert!(
        first.accuracy > outcome.conventional_accuracy - 0.08,
        "MAN lost too much: {} vs {}",
        first.accuracy,
        outcome.conventional_accuracy
    );
}

#[test]
fn digits_energy_ordering_matches_paper() {
    // MAN < ASM2 < conventional in energy, at identical cycle counts.
    let ds = Benchmark::DigitsMlp.dataset(&small_opts(7));
    let cfg = quick_cfg(8);
    let mut net = Benchmark::DigitsMlp.build_network(cfg.seed);
    man_repro::man::train::train_unconstrained(&mut net, &ds.train_images, &ds.train_labels, &cfg);
    let spec = QuantSpec::fit(&net, 8);
    let mut model = CostModel::default();
    model.stream_limit = 300;

    let mut energy = Vec::new();
    let mut cycles = Vec::new();
    for set in [None, Some(AlphabetSet::a2()), Some(AlphabetSet::a1())] {
        let (alphabets, kinds, label) = match &set {
            None => {
                let a = LayerAlphabets::uniform(AlphabetSet::a8(), 2);
                (a, kinds_conventional(2), "conv")
            }
            Some(s) => {
                let a = LayerAlphabets::uniform(s.clone(), 2);
                let k = kinds_from_alphabets(&a);
                (a, k, "asm")
            }
        };
        let mut candidate = net.clone();
        man_repro::man::train::ConstraintProjector::new(&spec, &alphabets).project(&mut candidate);
        let fixed = FixedNet::compile(&candidate, &spec, &alphabets).unwrap();
        let traces = fixed.sample_traces(&ds.test_images, 300);
        let report = model.network_cost(&fixed, &kinds, &traces, label).unwrap();
        energy.push(report.energy_pj);
        cycles.push(report.cycles);
    }
    assert!(energy[2] < energy[1], "MAN {} !< ASM2 {}", energy[2], energy[1]);
    assert!(energy[1] < energy[0], "ASM2 {} !< conv {}", energy[1], energy[0]);
    assert_eq!(cycles[0], cycles[1], "iso-speed engines share cycle counts");
    assert_eq!(cycles[1], cycles[2]);
}

#[test]
fn cnn_compiles_and_infers_in_fixed_point() {
    let ds = Benchmark::DigitsCnn.dataset(&GenOptions {
        train: 150,
        test: 40,
        seed: 3,
    });
    let mut cfg = quick_cfg(12);
    cfg.initial_epochs = 2;
    let mut net = Benchmark::DigitsCnn.build_network(cfg.seed);
    man_repro::man::train::train_unconstrained(&mut net, &ds.train_images, &ds.train_labels, &cfg);
    let spec = QuantSpec::fit(&net, 12);
    let layers = spec.layer_formats().len();
    assert_eq!(layers, 6, "LeNet has 6 parameterized layers");
    // Conventional path.
    let fixed = FixedNet::compile(
        &net,
        &spec,
        &LayerAlphabets::uniform(AlphabetSet::a8(), layers),
    )
    .unwrap();
    let float_acc = net.accuracy(&ds.test_images, &ds.test_labels);
    let fixed_acc = fixed.accuracy(&ds.test_images, &ds.test_labels);
    assert!(
        (float_acc - fixed_acc).abs() < 0.25,
        "12-bit quantization should track float: {float_acc} vs {fixed_acc}"
    );
    // MAN path after projection.
    let alphabets = LayerAlphabets::uniform(AlphabetSet::a1(), layers);
    let mut constrained = net.clone();
    man_repro::man::train::ConstraintProjector::new(&spec, &alphabets).project(&mut constrained);
    let man_fixed = FixedNet::compile(&constrained, &spec, &alphabets).unwrap();
    let _ = man_fixed.accuracy(&ds.test_images, &ds.test_labels);
}

#[test]
fn asm_functional_model_matches_gate_level_datapath() {
    // The software ASM and the synthesized netlist agree bit-for-bit.
    use man_repro::man_hw::components::asm::asm_mult_stage;
    use man_repro::man_hw::components::adder::AdderKind;
    use man_repro::man_hw::eval::Evaluator;

    let alphabet = AlphabetSet::a2();
    let asm = man_repro::man::asm::AsmMultiplier::new(8, alphabet.clone());
    let stage = asm_mult_stage(8, alphabet.members(), AdderKind::Ripple);
    let mut sim = Evaluator::new(stage.netlist());
    for w_mag in 0..128u32 {
        if asm.decode(w_mag).is_err() {
            continue;
        }
        for x in [1u32, 55, 127] {
            let bank = asm.precompute(x);
            sim.step(&[
                ("w_mag", w_mag as u64),
                ("alpha1", bank[0]),
                ("alpha3", bank[1]),
                ("w_sign", 0),
                ("x_sign", 0),
            ]);
            assert_eq!(
                sim.output("p_mag"),
                asm.multiply(w_mag, &bank).unwrap(),
                "w={w_mag} x={x}"
            );
        }
    }
}

#[test]
fn plan_activation_shared_between_engine_and_hardware() {
    use man_repro::man_hw::components::activation::{
        activation_unit, activation_unit_fixed, PlanParams,
    };
    use man_repro::man_hw::components::adder::AdderKind;
    use man_repro::man_hw::eval::Evaluator;

    let params = PlanParams {
        in_bits: 11,
        in_frac: 7,
        out_bits: 7,
    };
    let acc_bits = 20u32;
    let acc_frac = 13u32;
    let unit = activation_unit(acc_bits, acc_frac, &params, AdderKind::Ripple);
    let mut sim = Evaluator::new(unit.netlist());
    let mask = (1u64 << acc_bits) - 1;
    for acc in (-400_000i64..400_000).step_by(17_771) {
        sim.step(&[("acc", (acc as u64) & mask)]);
        assert_eq!(
            sim.output("y"),
            activation_unit_fixed(acc, acc_bits, acc_frac, &params),
            "acc={acc}"
        );
    }
}
