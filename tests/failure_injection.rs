//! Failure injection: every typed error path fires with a useful message
//! through the unified `ManError` taxonomy, and extreme inputs exercise
//! the saturating paths without panicking.

use man_repro::man::alphabet::AlphabetSet;
use man_repro::man::asm::AsmMultiplier;
use man_repro::man::fixed::{CompileError, FixedNet, LayerAlphabets, QuantSpec};
use man_repro::man_hw::cell::CellLibrary;
use man_repro::man_hw::synth::synthesize_adder;
use man_repro::man_nn::layers::{Activation, ActivationLayer, Dense, Layer};
use man_repro::man_nn::network::Network;
use man_repro::{CompiledModel, ManError, Pipeline};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn mlp(seed: u64) -> Network {
    let mut rng = SmallRng::seed_from_u64(seed);
    Network::new(vec![
        Layer::Dense(Dense::new(8, 6, &mut rng)),
        Layer::Activation(ActivationLayer::new(Activation::Sigmoid)),
        Layer::Dense(Dense::new(6, 2, &mut rng)),
    ])
}

#[test]
fn unconstrained_compile_reports_layer_and_magnitude() {
    // Bypassing the pipeline's projection (compiling an unconstrained
    // network directly) is caught and reported with full context.
    let net = mlp(1);
    let spec = QuantSpec::fit(&net, 8);
    let err = CompiledModel::from_parts(net, spec, LayerAlphabets::uniform(AlphabetSet::a1(), 2))
        .unwrap_err();
    match &err {
        ManError::Compile(CompileError::UnconstrainedWeight { layer, magnitude }) => {
            assert!(*layer < 2);
            assert!(*magnitude <= 127);
        }
        other => panic!("wrong error: {other}"),
    }
    assert!(err.to_string().contains("constrain the network first"));
}

#[test]
fn layer_count_mismatch_is_reported() {
    let net = mlp(2);
    let spec = QuantSpec::fit(&net, 8);
    let err = CompiledModel::from_parts(net, spec, LayerAlphabets::uniform(AlphabetSet::a8(), 5))
        .unwrap_err();
    assert!(matches!(
        err,
        ManError::Compile(CompileError::LayerCountMismatch {
            expected: 2,
            got: 5
        })
    ));
}

#[test]
fn assignment_length_mismatch_is_a_config_error() {
    // The pipeline catches a wrong-length explicit assignment before
    // compiling.
    let err = Pipeline::from_network(mlp(7))
        .with_bits(8)
        .with_assignment(LayerAlphabets::uniform(AlphabetSet::a1(), 5))
        .constrain()
        .unwrap_err();
    assert!(matches!(err, ManError::Config(_)), "{err}");
    assert!(err.to_string().contains("5"));
}

#[test]
fn bare_activation_architecture_is_rejected() {
    let mut rng = SmallRng::seed_from_u64(3);
    // Two stacked activations: the second has no parameterized layer
    // before it.
    let net = Network::new(vec![
        Layer::Activation(ActivationLayer::new(Activation::Sigmoid)),
        Layer::Dense(Dense::new(4, 2, &mut rng)),
    ]);
    let spec = QuantSpec::fit(&net, 8);
    let err =
        FixedNet::compile(&net, &spec, &LayerAlphabets::uniform(AlphabetSet::a8(), 1)).unwrap_err();
    assert!(matches!(err, CompileError::UnsupportedArchitecture(_)));
    // And the same failure wrapped at the pipeline surface.
    let err: ManError = err.into();
    assert!(err.to_string().contains("unsupported architecture"));
}

#[test]
fn non_sigmoid_activation_is_rejected() {
    let mut rng = SmallRng::seed_from_u64(4);
    let net = Network::new(vec![
        Layer::Dense(Dense::new(4, 4, &mut rng)),
        Layer::Activation(ActivationLayer::new(Activation::Relu)),
        Layer::Dense(Dense::new(4, 2, &mut rng)),
    ]);
    let err = Pipeline::from_network(net)
        .with_bits(8)
        .with_alphabets(vec![AlphabetSet::a8()])
        .constrain()
        .expect("projection itself succeeds")
        .compile()
        .unwrap_err();
    assert!(matches!(err, ManError::Compile(_)));
    assert!(err.to_string().contains("sigmoid"));
}

#[test]
fn asm_error_identifies_the_offending_quartet() {
    let asm = AsmMultiplier::new(12, AlphabetSet::a2());
    // Magnitude with the middle quartet set to the unsupported value 9.
    let err = asm.decode(9 << 4).unwrap_err();
    assert_eq!(err.index, 1);
    assert_eq!(err.value, 9);
    // The pipeline taxonomy keeps the detail.
    let wrapped: ManError = err.into();
    assert!(wrapped.to_string().contains("quartet 1"));
}

#[test]
fn impossible_clock_is_a_typed_error_not_a_panic() {
    let lib = CellLibrary::nominal_45nm();
    let err = synthesize_adder(32, &lib, 1.0).unwrap_err();
    assert!(err.best_ps > err.clock_ps);
    assert!(err.block.contains("adder32"));
    let wrapped: ManError = err.into();
    assert!(matches!(wrapped, ManError::TimingClosure(_)));
}

#[test]
fn layer_alphabets_get_is_total() {
    let a = LayerAlphabets::uniform(AlphabetSet::a2(), 3);
    assert!(a.get(2).is_some());
    assert!(a.get(3).is_none(), "out of bounds is None, not a panic");
    assert_eq!(a.len(), 3);
    assert!(!a.is_empty());
}

#[test]
fn extreme_inputs_saturate_gracefully() {
    let mut net = mlp(5);
    // Blow the weights up so accumulators hit the PLAN saturation region.
    net.visit_params_mut(|_, _, values, _| {
        for v in values.iter_mut() {
            *v *= 50.0;
        }
    });
    let compiled = Pipeline::from_network(net)
        .with_bits(8)
        .with_alphabets(vec![AlphabetSet::a1()])
        .constrain()
        .expect("projection")
        .compile()
        .expect("compiles");
    let mut session = compiled.session();
    for pixel in [0.0f32, 0.999, 1.0, 123.0, -5.0] {
        // Out-of-range pixels clamp at quantization; nothing panics.
        let p = session.infer(&[pixel; 8]).expect("shape matches");
        assert_eq!(p.scores.len(), 2);
    }
    // A wrong-length input is a typed error, not a panic deep in the
    // engine.
    match session.infer(&[0.5; 5]) {
        Err(man_repro::ManError::Shape { expected, got }) => {
            assert_eq!((expected, got), (8, 5));
        }
        other => panic!("expected ManError::Shape, got {other:?}"),
    }
}
