//! Model persistence: trained (and constrained) networks serialize with
//! serde and reload to bit-identical fixed-point behavior — the workflow a
//! downstream user needs to deploy a constrained model.

use man_repro::man::alphabet::AlphabetSet;
use man_repro::man::fixed::{FixedNet, LayerAlphabets, QuantSpec};
use man_repro::man::train::ConstraintProjector;
use man_repro::man_nn::layers::{Activation, ActivationLayer, Dense, Layer};
use man_repro::man_nn::network::Network;
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn constrained_network_roundtrips_through_json() {
    let mut rng = SmallRng::seed_from_u64(4);
    let mut net = Network::new(vec![
        Layer::Dense(Dense::new(24, 12, &mut rng)),
        Layer::Activation(ActivationLayer::new(Activation::Sigmoid)),
        Layer::Dense(Dense::new(12, 4, &mut rng)),
    ]);
    let spec = QuantSpec::fit(&net, 8);
    let alphabets = LayerAlphabets::uniform(AlphabetSet::a2(), 2);
    ConstraintProjector::new(&spec, &alphabets).project(&mut net);

    let json_net = serde_json::to_string(&net).expect("network serializes");
    let json_spec = serde_json::to_string(&spec).expect("spec serializes");
    let net2: Network = serde_json::from_str(&json_net).expect("network deserializes");
    let spec2: QuantSpec = serde_json::from_str(&json_spec).expect("spec deserializes");

    let a = FixedNet::compile(&net, &spec, &alphabets).unwrap();
    let b = FixedNet::compile(&net2, &spec2, &alphabets).unwrap();
    for i in 0..16 {
        let x: Vec<f32> = (0..24).map(|j| ((i * 5 + j * 3) % 11) as f32 / 11.0).collect();
        assert_eq!(
            a.infer_raw(&x),
            b.infer_raw(&x),
            "reloaded model must be bit-identical"
        );
    }
}

#[test]
fn quant_spec_is_stable_across_serialization() {
    let mut rng = SmallRng::seed_from_u64(9);
    let net = Network::new(vec![Layer::Dense(Dense::new(5, 3, &mut rng))]);
    let spec = QuantSpec::fit(&net, 12);
    let spec2: QuantSpec =
        serde_json::from_str(&serde_json::to_string(&spec).unwrap()).unwrap();
    assert_eq!(spec, spec2);
    assert_eq!(spec2.bits(), 12);
}
