//! Model persistence through the single-file artifact format: a
//! `CompiledModel` saves as one JSON document and reloads to
//! bit-identical fixed-point behavior, and the batched
//! `InferenceSession` matches single-shot inference exactly.

use man_repro::man::alphabet::AlphabetSet;
use man_repro::man::fixed::LayerAlphabets;
use man_repro::man_nn::layers::{Activation, ActivationLayer, Dense, Layer};
use man_repro::man_nn::network::Network;
use man_repro::{CompiledModel, ManError, Pipeline};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn small_net(seed: u64) -> Network {
    let mut rng = SmallRng::seed_from_u64(seed);
    Network::new(vec![
        Layer::Dense(Dense::new(24, 12, &mut rng)),
        Layer::Activation(ActivationLayer::new(Activation::Sigmoid)),
        Layer::Dense(Dense::new(12, 4, &mut rng)),
    ])
}

fn compiled_model(seed: u64, set: AlphabetSet) -> CompiledModel {
    Pipeline::from_network(small_net(seed))
        .with_bits(8)
        .with_alphabets(vec![set])
        .constrain()
        .expect("projection-only pipeline")
        .compile()
        .expect("projected weights compile")
}

fn probe_inputs(n: usize, dim: usize) -> Vec<Vec<f32>> {
    (0..n)
        .map(|i| {
            (0..dim)
                .map(|j| ((i * 5 + j * 3) % 11) as f32 / 11.0)
                .collect()
        })
        .collect()
}

#[test]
fn artifact_roundtrips_bit_identically_through_json() {
    for set in [AlphabetSet::a1(), AlphabetSet::a2(), AlphabetSet::a4()] {
        let model = compiled_model(4, set);
        let json = model.to_json().expect("serializes");
        let reloaded = CompiledModel::from_json(&json).expect("deserializes");
        for x in probe_inputs(16, 24) {
            assert_eq!(
                model.fixed().infer_raw(&x),
                reloaded.fixed().infer_raw(&x),
                "reloaded model must be bit-identical"
            );
        }
        assert_eq!(model.spec(), reloaded.spec());
        assert_eq!(model.alphabets(), reloaded.alphabets());
    }
}

#[test]
fn artifact_roundtrips_through_a_file() {
    let model = compiled_model(9, AlphabetSet::a2());
    let path = std::env::temp_dir().join("man_repro_persistence_test.man.json");
    model.save(&path).expect("saves");
    let reloaded = CompiledModel::load(&path).expect("loads");
    std::fs::remove_file(&path).ok();
    for x in probe_inputs(8, 24) {
        assert_eq!(model.fixed().infer_raw(&x), reloaded.fixed().infer_raw(&x));
    }
}

#[test]
fn artifact_rejects_wrong_format_version_and_garbage() {
    let model = compiled_model(5, AlphabetSet::a1());
    let json = model.to_json().unwrap();

    let wrong_format = json.replacen("man-compiled-model", "other-model", 1);
    assert!(matches!(
        CompiledModel::from_json(&wrong_format),
        Err(ManError::Artifact(_))
    ));

    let wrong_version = json.replacen("\"version\":1", "\"version\":999", 1);
    assert!(matches!(
        CompiledModel::from_json(&wrong_version),
        Err(ManError::Artifact(_))
    ));

    assert!(matches!(
        CompiledModel::from_json("{ not json"),
        Err(ManError::Artifact(_))
    ));

    assert!(matches!(
        CompiledModel::load(std::env::temp_dir().join("man_repro_does_not_exist.json")),
        Err(ManError::Io(_))
    ));
}

#[test]
fn tampered_off_lattice_weights_are_rejected_on_load() {
    // Recompiling on load means an artifact whose network was edited off
    // the lattice cannot silently mis-multiply: swap the MAN assignment
    // for an unconstrained network's weights.
    let strict = compiled_model(6, AlphabetSet::a1());
    let loose_json = compiled_model(6, AlphabetSet::a4()).to_json().unwrap();
    // Graft the strict {1} assignment onto the {1,3,5,7}-projected
    // weights; many of those magnitudes are off the {1} lattice.
    let strict_alphabets = serde_json::to_string(strict.alphabets()).expect("alphabets serialize");
    let loose_alphabets = serde_json::to_string(&LayerAlphabets::uniform(AlphabetSet::a4(), 2))
        .expect("alphabets serialize");
    let tampered = loose_json.replacen(&loose_alphabets, &strict_alphabets, 1);
    assert_ne!(tampered, loose_json, "the graft must hit");
    assert!(matches!(
        CompiledModel::from_json(&tampered),
        Err(ManError::Compile(_))
    ));
}

#[test]
fn infer_batch_matches_single_infer_calls() {
    let model = compiled_model(7, AlphabetSet::a2());
    let batch = probe_inputs(12, 24);

    // Reference: a fresh session per input (no shared bank cache).
    let singles: Vec<_> = batch
        .iter()
        .map(|x| {
            let mut fresh = model.session();
            fresh.infer(x).expect("probe inputs match the input layer")
        })
        .collect();
    // Batched: one session, banks shared across the whole batch. A warm
    // (product-memoizing) session must also not change a single bit.
    let session = model.session().warm();
    let batched = session
        .infer_batch_shared(&batch)
        .expect("probe inputs match the input layer");

    assert_eq!(singles.len(), batched.len());
    for (s, b) in singles.iter().zip(&batched) {
        assert_eq!(s.scores, b.scores, "batched scores must be bit-identical");
        assert_eq!(s.class, b.class);
    }
    // And both agree with the raw engine.
    for (x, b) in batch.iter().zip(&batched) {
        assert_eq!(model.fixed().infer_raw(x), b.scores);
    }
}

#[test]
fn traced_sessions_capture_real_operands_without_changing_scores() {
    let model = compiled_model(8, AlphabetSet::a1());
    let batch = probe_inputs(4, 24);
    let mut plain = model.session();
    let mut traced = model.session().with_trace(64);
    for x in &batch {
        let p = plain.infer(x).expect("shape matches");
        let t = traced.infer(x).expect("shape matches");
        assert_eq!(p.scores, t.scores, "tracing must not perturb inference");
        assert!(p.traces.is_none());
        let traces = t.traces.expect("tracing enabled");
        assert_eq!(traces.len(), model.fixed().layer_count());
        for tr in &traces {
            assert!(!tr.is_empty(), "every layer records operands");
            for i in 0..tr.len() {
                let sign = if tr.w_neg[i] ^ tr.x_neg[i] { -1i64 } else { 1 };
                assert_eq!(
                    tr.product[i],
                    sign * (tr.w_mag[i] as i64) * (tr.x_mag[i] as i64),
                    "trace product must be the real product"
                );
            }
        }
    }
}
