//! Loss functions: softmax cross-entropy for classification, MSE for
//! regression-style training.

/// Loss function choice.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Loss {
    /// Softmax over the outputs followed by cross-entropy against the
    /// class label.
    SoftmaxCrossEntropy,
    /// Mean squared error against a one-hot target (the classic MLP
    /// formulation used by the toolboxes the paper modified).
    Mse,
}

impl Loss {
    /// Computes the loss value and the gradient w.r.t. the network output
    /// for a classification target.
    ///
    /// # Panics
    ///
    /// Panics if `label >= output.len()`.
    pub fn loss_and_grad(&self, output: &[f32], label: usize) -> (f32, Vec<f32>) {
        assert!(label < output.len(), "label out of range");
        match self {
            Loss::SoftmaxCrossEntropy => {
                let max = output.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                let exps: Vec<f32> = output.iter().map(|&v| (v - max).exp()).collect();
                let sum: f32 = exps.iter().sum();
                let probs: Vec<f32> = exps.iter().map(|&e| e / sum).collect();
                let loss = -(probs[label].max(1e-12)).ln();
                let grad = probs
                    .iter()
                    .enumerate()
                    .map(|(i, &p)| p - (i == label) as u8 as f32)
                    .collect();
                (loss, grad)
            }
            Loss::Mse => {
                let mut loss = 0.0;
                let mut grad = Vec::with_capacity(output.len());
                for (i, &y) in output.iter().enumerate() {
                    let t = (i == label) as u8 as f32;
                    let d = y - t;
                    loss += 0.5 * d * d;
                    grad.push(d);
                }
                (loss / output.len() as f32, grad)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_grad_sums_to_zero() {
        let (_, g) = Loss::SoftmaxCrossEntropy.loss_and_grad(&[1.0, 2.0, 0.5], 1);
        let sum: f32 = g.iter().sum();
        assert!(sum.abs() < 1e-6);
        assert!(g[1] < 0.0, "correct class gradient pushes up");
    }

    #[test]
    fn softmax_loss_decreases_with_confidence() {
        let (l_bad, _) = Loss::SoftmaxCrossEntropy.loss_and_grad(&[2.0, 0.0], 1);
        let (l_good, _) = Loss::SoftmaxCrossEntropy.loss_and_grad(&[0.0, 2.0], 1);
        assert!(l_good < l_bad);
    }

    #[test]
    fn mse_is_zero_at_target() {
        let (l, g) = Loss::Mse.loss_and_grad(&[0.0, 1.0, 0.0], 1);
        assert_eq!(l, 0.0);
        assert!(g.iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn bad_label_rejected() {
        let _ = Loss::Mse.loss_and_grad(&[0.0], 3);
    }
}
