//! Mini-batch training loop with an optional per-step weight projection —
//! the hook through which the `man` crate imposes the paper's Algorithm 1
//! constraint during retraining ("restrictions in the weight update were
//! imposed during retraining of the NNs").

use rand::seq::SliceRandom;
use rand::Rng;

use crate::loss::Loss;
use crate::network::Network;
use crate::optim::Sgd;

/// Training hyper-parameters.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Samples per optimizer step.
    pub batch_size: usize,
    /// Loss function.
    pub loss: Loss,
    /// Per-epoch learning-rate decay factor (1.0 = none).
    pub lr_decay: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 10,
            batch_size: 16,
            loss: Loss::SoftmaxCrossEntropy,
            lr_decay: 0.95,
        }
    }
}

/// Per-epoch training statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct EpochStats {
    /// Mean per-sample loss over the epoch.
    pub mean_loss: f64,
}

/// Trains `net` on `(samples, labels)`, shuffling each epoch with `rng`,
/// calling `project` after every optimizer step (pass a no-op closure for
/// unconstrained training).
///
/// Returns one [`EpochStats`] per epoch.
///
/// # Panics
///
/// Panics if the sample and label counts differ or the dataset is empty.
pub fn train(
    net: &mut Network,
    sgd: &mut Sgd,
    samples: &[Vec<f32>],
    labels: &[usize],
    config: &TrainConfig,
    rng: &mut impl Rng,
    mut project: impl FnMut(&mut Network),
) -> Vec<EpochStats> {
    assert_eq!(samples.len(), labels.len(), "sample/label count mismatch");
    assert!(!samples.is_empty(), "empty training set");
    let mut order: Vec<usize> = (0..samples.len()).collect();
    let mut stats = Vec::with_capacity(config.epochs);
    for _ in 0..config.epochs {
        order.shuffle(rng);
        let mut total = 0.0f64;
        for batch in order.chunks(config.batch_size) {
            net.zero_grads();
            for &i in batch {
                total += net.accumulate_sample(&samples[i], labels[i], config.loss) as f64;
            }
            sgd.step(net, batch.len());
            project(net);
        }
        sgd.decay_lr(config.lr_decay);
        stats.push(EpochStats {
            mean_loss: total / samples.len() as f64,
        });
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Activation, ActivationLayer, Dense, Layer};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// A linearly separable two-class problem.
    fn toy_data(rng: &mut SmallRng, n: usize) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let a: f32 = rng.gen_range(-1.0..1.0);
            let b: f32 = rng.gen_range(-1.0..1.0);
            xs.push(vec![a, b]);
            ys.push((a + b > 0.0) as usize);
        }
        (xs, ys)
    }

    #[test]
    fn learns_linearly_separable_data() {
        let mut rng = SmallRng::seed_from_u64(11);
        let (xs, ys) = toy_data(&mut rng, 200);
        let mut net = Network::new(vec![
            Layer::Dense(Dense::new(2, 8, &mut rng)),
            Layer::Activation(ActivationLayer::new(Activation::Sigmoid)),
            Layer::Dense(Dense::new(8, 2, &mut rng)),
        ]);
        let mut sgd = Sgd::new(0.5, 0.9);
        let config = TrainConfig {
            epochs: 30,
            ..TrainConfig::default()
        };
        let stats = train(&mut net, &mut sgd, &xs, &ys, &config, &mut rng, |_| {});
        assert!(stats.last().unwrap().mean_loss < stats[0].mean_loss);
        assert!(
            net.accuracy(&xs, &ys) > 0.95,
            "acc={}",
            net.accuracy(&xs, &ys)
        );
    }

    #[test]
    fn projection_hook_is_applied() {
        let mut rng = SmallRng::seed_from_u64(13);
        let (xs, ys) = toy_data(&mut rng, 50);
        let mut net = Network::new(vec![Layer::Dense(Dense::new(2, 2, &mut rng))]);
        let mut sgd = Sgd::new(0.1, 0.0);
        let config = TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        };
        // Project every weight onto a coarse grid after each step.
        train(&mut net, &mut sgd, &xs, &ys, &config, &mut rng, |net| {
            net.visit_params_mut(|_, kind, values, _| {
                if kind == crate::layers::ParamKind::Weights {
                    for v in values.iter_mut() {
                        *v = (*v * 4.0).round() / 4.0;
                    }
                }
            });
        });
        let mut on_grid = true;
        net.visit_params_mut(|_, kind, values, _| {
            if kind == crate::layers::ParamKind::Weights {
                on_grid &= values.iter().all(|v| (v * 4.0).fract().abs() < 1e-6);
            }
        });
        assert!(on_grid, "weights must stay on the projected lattice");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut rng = SmallRng::seed_from_u64(21);
            let (xs, ys) = toy_data(&mut rng, 40);
            let mut net = Network::new(vec![Layer::Dense(Dense::new(2, 2, &mut rng))]);
            let mut sgd = Sgd::new(0.2, 0.5);
            let config = TrainConfig {
                epochs: 3,
                ..TrainConfig::default()
            };
            let s = train(&mut net, &mut sgd, &xs, &ys, &config, &mut rng, |_| {});
            s.last().unwrap().mean_loss
        };
        assert_eq!(run(), run());
    }
}
