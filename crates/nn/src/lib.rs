//! Neural-network substrate for the MAN reproduction: the training side of
//! the paper's methodology.
//!
//! The paper trains multilayer perceptrons and a LeNet-style CNN with
//! modified open-source toolboxes; this crate provides the equivalent from
//! scratch — layers with backpropagation ([`layers`]), losses ([`loss`]),
//! SGD with momentum ([`optim`]), a training loop with a per-step weight
//! projection hook ([`train`]) through which the `man` crate imposes the
//! alphabet constraint, and the [`network::Network`] container whose
//! enum-based layer stack the fixed-point inference engine can replay
//! bit-accurately.
//!
//! # Example
//!
//! ```
//! use man_nn::layers::{Activation, ActivationLayer, Dense, Layer};
//! use man_nn::network::Network;
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//!
//! let mut rng = SmallRng::seed_from_u64(1);
//! let net = Network::new(vec![
//!     Layer::Dense(Dense::new(1024, 100, &mut rng)),
//!     Layer::Activation(ActivationLayer::new(Activation::Sigmoid)),
//!     Layer::Dense(Dense::new(100, 10, &mut rng)),
//! ]);
//! // The paper's Table IV digit-recognition MLP: 103,510 synapses.
//! assert_eq!(net.param_count(), 103_510);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod layers;
pub mod loss;
pub mod network;
pub mod optim;
pub mod tensor;
pub mod train;
