//! Stochastic gradient descent with classical momentum and step decay.

use crate::network::Network;

/// SGD with momentum. Velocities are kept per parameter tensor, matched by
/// visitation order (which is stable for a fixed architecture).
#[derive(Clone, Debug)]
pub struct Sgd {
    /// Current learning rate.
    pub lr: f32,
    /// Momentum coefficient in `[0, 1)`.
    pub momentum: f32,
    /// Optional per-tensor RMS gradient clip: before each update, a
    /// tensor's gradient is rescaled so its root-mean-square element does
    /// not exceed this value. Weight-sharing layers (convolutions, the
    /// LeNet pooling coefficients) accumulate gradients over hundreds of
    /// spatial positions; without clipping their few parameters blow
    /// through the sigmoid's active region in the first epoch.
    pub clip_rms: Option<f32>,
    velocities: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates an optimizer.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0` or `momentum` is outside `[0, 1)`.
    pub fn new(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Self {
            lr,
            momentum,
            clip_rms: None,
            velocities: Vec::new(),
        }
    }

    /// Enables per-tensor RMS gradient clipping.
    ///
    /// # Panics
    ///
    /// Panics if `clip <= 0`.
    pub fn with_clip_rms(mut self, clip: f32) -> Self {
        assert!(clip > 0.0, "clip must be positive");
        self.clip_rms = Some(clip);
        self
    }

    /// Applies one update using the gradients accumulated in the network,
    /// scaled by `1 / batch_size`.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn step(&mut self, net: &mut Network, batch_size: usize) {
        assert!(batch_size > 0, "batch size must be positive");
        let scale = 1.0 / batch_size as f32;
        let (lr, momentum, clip_rms) = (self.lr, self.momentum, self.clip_rms);
        let velocities = &mut self.velocities;
        let mut tensor_idx = 0;
        net.visit_params_mut(|_, _, values, grads| {
            if velocities.len() == tensor_idx {
                velocities.push(vec![0.0; values.len()]);
            }
            let vel = &mut velocities[tensor_idx];
            assert_eq!(vel.len(), values.len(), "network architecture changed");
            let mut gscale = scale;
            if let Some(clip) = clip_rms {
                let rms = (grads.iter().map(|g| (g * scale).powi(2)).sum::<f32>()
                    / grads.len() as f32)
                    .sqrt();
                if rms > clip {
                    gscale *= clip / rms;
                }
            }
            for ((v, g), w) in vel.iter_mut().zip(grads.iter()).zip(values.iter_mut()) {
                *v = momentum * *v - lr * g * gscale;
                *w += *v;
            }
            tensor_idx += 1;
        });
    }

    /// Multiplies the learning rate by `factor` (step decay).
    pub fn decay_lr(&mut self, factor: f32) {
        self.lr *= factor;
    }

    /// Clears momentum state (used when retraining restarts from a restore
    /// point, per Algorithm 2 step 4).
    pub fn reset(&mut self) {
        self.velocities.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Layer};
    use crate::loss::Loss;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn one_layer() -> Network {
        let mut rng = SmallRng::seed_from_u64(9);
        Network::new(vec![Layer::Dense(Dense::new(2, 2, &mut rng))])
    }

    #[test]
    fn step_reduces_loss_on_fixed_sample() {
        let mut net = one_layer();
        let mut sgd = Sgd::new(0.5, 0.0);
        let x = [1.0, -0.5];
        let mut last = f32::INFINITY;
        for _ in 0..20 {
            net.zero_grads();
            let l = net.accumulate_sample(&x, 0, Loss::SoftmaxCrossEntropy);
            sgd.step(&mut net, 1);
            assert!(l <= last + 1e-4, "loss must not increase: {l} > {last}");
            last = l;
        }
        assert!(last < 0.1, "loss should converge, got {last}");
    }

    #[test]
    fn momentum_accelerates_convergence() {
        let run = |momentum: f32| {
            let mut net = one_layer();
            let mut sgd = Sgd::new(0.05, momentum);
            let x = [1.0, -0.5];
            let mut l = 0.0;
            for _ in 0..30 {
                net.zero_grads();
                l = net.accumulate_sample(&x, 0, Loss::SoftmaxCrossEntropy);
                sgd.step(&mut net, 1);
            }
            l
        };
        assert!(run(0.9) < run(0.0));
    }

    #[test]
    fn decay_shrinks_lr() {
        let mut sgd = Sgd::new(1.0, 0.0);
        sgd.decay_lr(0.1);
        assert!((sgd.lr - 0.1).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "momentum")]
    fn bad_momentum_rejected() {
        let _ = Sgd::new(0.1, 1.0);
    }
}
