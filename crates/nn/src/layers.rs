//! Network layers: dense, 2-D convolution, LeNet-style trainable scaled
//! average pooling, element-wise activations and flatten.
//!
//! Layers are an enum (not trait objects) so the fixed-point inference
//! engine in the `man` crate can pattern-match on the architecture and
//! replay it bit-accurately on the ASM datapath.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which parameter tensor of a layer is being visited.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParamKind {
    /// Multiplicative weights (the tensors the ASM constraint applies to).
    Weights,
    /// Additive biases (never constrained — they feed the accumulator
    /// directly without a multiplier).
    Bias,
}

/// Element-wise activation functions.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// Logistic sigmoid (the paper's soft-limiting neuron).
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Rectified linear unit.
    Relu,
}

impl Activation {
    /// Applies the function.
    pub fn eval(&self, x: f32) -> f32 {
        match self {
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
            Activation::Relu => x.max(0.0),
        }
    }

    /// Derivative expressed through the *output* value `y = eval(x)`.
    pub fn derivative_from_output(&self, y: f32) -> f32 {
        match self {
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Tanh => 1.0 - y * y,
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

/// Fully connected layer: `y = W·x + b`, weights stored row-major
/// `[out][in]`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Dense {
    /// Input width.
    pub in_dim: usize,
    /// Output width.
    pub out_dim: usize,
    pub(crate) weights: Vec<f32>,
    pub(crate) bias: Vec<f32>,
    pub(crate) grad_w: Vec<f32>,
    pub(crate) grad_b: Vec<f32>,
    pub(crate) cached_input: Vec<f32>,
}

impl Dense {
    /// A dense layer with Xavier-uniform initialized weights.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "degenerate dense layer");
        let bound = (6.0f32 / (in_dim + out_dim) as f32).sqrt();
        let weights = (0..in_dim * out_dim)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Self {
            in_dim,
            out_dim,
            weights,
            bias: vec![0.0; out_dim],
            grad_w: vec![0.0; in_dim * out_dim],
            grad_b: vec![0.0; out_dim],
            cached_input: Vec::new(),
        }
    }

    /// The weight matrix, row-major `[out][in]`.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// The bias vector.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Overwrites the biases (e.g. sigmoid-centering initialization).
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the output width.
    pub fn set_bias(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.bias.len(), "bias length mismatch");
        self.bias.copy_from_slice(bias);
    }

    fn forward(&mut self, x: Vec<f32>, train: bool) -> Vec<f32> {
        debug_assert_eq!(x.len(), self.in_dim);
        let mut y = self.bias.clone();
        for (o, yo) in y.iter_mut().enumerate() {
            let row = &self.weights[o * self.in_dim..(o + 1) * self.in_dim];
            let mut acc = 0.0f32;
            for (w, xi) in row.iter().zip(&x) {
                acc += w * xi;
            }
            *yo += acc;
        }
        if train {
            self.cached_input = x;
        }
        y
    }

    fn backward(&mut self, g: Vec<f32>) -> Vec<f32> {
        debug_assert_eq!(g.len(), self.out_dim);
        let x = &self.cached_input;
        let mut gx = vec![0.0f32; self.in_dim];
        for (o, go) in g.iter().enumerate() {
            self.grad_b[o] += go;
            let row = &self.weights[o * self.in_dim..(o + 1) * self.in_dim];
            let grow = &mut self.grad_w[o * self.in_dim..(o + 1) * self.in_dim];
            for i in 0..self.in_dim {
                grow[i] += go * x[i];
                gx[i] += go * row[i];
            }
        }
        gx
    }
}

/// 2-D convolution (stride 1, valid padding), channels-first
/// `[C, H, W]`; kernels `[OC, IC, K, K]`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Conv2d {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Input height/width.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    pub(crate) weights: Vec<f32>,
    pub(crate) bias: Vec<f32>,
    pub(crate) grad_w: Vec<f32>,
    pub(crate) grad_b: Vec<f32>,
    pub(crate) cached_input: Vec<f32>,
}

impl Conv2d {
    /// A convolution layer with He-uniform initialized kernels.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        in_h: usize,
        in_w: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(kernel <= in_h && kernel <= in_w, "kernel larger than input");
        let fan_in = (in_channels * kernel * kernel) as f32;
        let bound = (3.0f32 / fan_in).sqrt();
        let n = out_channels * in_channels * kernel * kernel;
        Self {
            in_channels,
            out_channels,
            kernel,
            in_h,
            in_w,
            weights: (0..n).map(|_| rng.gen_range(-bound..bound)).collect(),
            bias: vec![0.0; out_channels],
            grad_w: vec![0.0; n],
            grad_b: vec![0.0; out_channels],
            cached_input: Vec::new(),
        }
    }

    /// Output height.
    pub fn out_h(&self) -> usize {
        self.in_h - self.kernel + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        self.in_w - self.kernel + 1
    }

    /// The kernel tensor, `[OC, IC, K, K]` row-major.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Per-output-channel biases.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Overwrites the biases (e.g. sigmoid-centering initialization).
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the output channel count.
    pub fn set_bias(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.bias.len(), "bias length mismatch");
        self.bias.copy_from_slice(bias);
    }

    fn forward(&mut self, x: Vec<f32>, train: bool) -> Vec<f32> {
        let (ic, k, ih, iw) = (self.in_channels, self.kernel, self.in_h, self.in_w);
        debug_assert_eq!(x.len(), ic * ih * iw);
        let (oh, ow) = (self.out_h(), self.out_w());
        let mut y = vec![0.0f32; self.out_channels * oh * ow];
        for oc in 0..self.out_channels {
            let kbase = oc * ic * k * k;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = self.bias[oc];
                    for c in 0..ic {
                        let kc = kbase + c * k * k;
                        let xc = c * ih * iw;
                        for ky in 0..k {
                            let xrow = xc + (oy + ky) * iw + ox;
                            let krow = kc + ky * k;
                            for kx in 0..k {
                                acc += self.weights[krow + kx] * x[xrow + kx];
                            }
                        }
                    }
                    y[oc * oh * ow + oy * ow + ox] = acc;
                }
            }
        }
        if train {
            self.cached_input = x;
        }
        y
    }

    fn backward(&mut self, g: Vec<f32>) -> Vec<f32> {
        let (ic, k, ih, iw) = (self.in_channels, self.kernel, self.in_h, self.in_w);
        let (oh, ow) = (self.out_h(), self.out_w());
        let x = &self.cached_input;
        let mut gx = vec![0.0f32; ic * ih * iw];
        for oc in 0..self.out_channels {
            let kbase = oc * ic * k * k;
            for oy in 0..oh {
                for ox in 0..ow {
                    let go = g[oc * oh * ow + oy * ow + ox];
                    if go == 0.0 {
                        continue;
                    }
                    self.grad_b[oc] += go;
                    for c in 0..ic {
                        let kc = kbase + c * k * k;
                        let xc = c * ih * iw;
                        for ky in 0..k {
                            let xrow = xc + (oy + ky) * iw + ox;
                            let krow = kc + ky * k;
                            for kx in 0..k {
                                self.grad_w[krow + kx] += go * x[xrow + kx];
                                gx[xrow + kx] += go * self.weights[krow + kx];
                            }
                        }
                    }
                }
            }
        }
        gx
    }
}

/// LeNet-style trainable subsampling: a 2×2 average pool scaled by one
/// trainable coefficient and bias per channel — exactly the S2/S4 layers
/// whose 12 + 32 parameters make the paper's CNN total 51,946 synapses.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScaledAvgPool {
    /// Channels.
    pub channels: usize,
    /// Input height (must be even).
    pub in_h: usize,
    /// Input width (must be even).
    pub in_w: usize,
    pub(crate) weights: Vec<f32>,
    pub(crate) bias: Vec<f32>,
    pub(crate) grad_w: Vec<f32>,
    pub(crate) grad_b: Vec<f32>,
    pub(crate) cached_avg: Vec<f32>,
}

impl ScaledAvgPool {
    /// A trainable 2×2 average pool (coefficients start at 1, biases at 0).
    ///
    /// # Panics
    ///
    /// Panics if the spatial dimensions are not even.
    pub fn new(channels: usize, in_h: usize, in_w: usize) -> Self {
        assert!(
            in_h.is_multiple_of(2) && in_w.is_multiple_of(2),
            "pool needs even dimensions"
        );
        Self {
            channels,
            in_h,
            in_w,
            weights: vec![1.0; channels],
            bias: vec![0.0; channels],
            grad_w: vec![0.0; channels],
            grad_b: vec![0.0; channels],
            cached_avg: Vec::new(),
        }
    }

    /// Per-channel scale coefficients.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Per-channel biases.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Overwrites coefficients and biases (sigmoid-centering init).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ from the channel count.
    pub fn set_params(&mut self, weights: &[f32], bias: &[f32]) {
        assert_eq!(weights.len(), self.weights.len(), "weight length mismatch");
        assert_eq!(bias.len(), self.bias.len(), "bias length mismatch");
        self.weights.copy_from_slice(weights);
        self.bias.copy_from_slice(bias);
    }

    /// Output height.
    pub fn out_h(&self) -> usize {
        self.in_h / 2
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        self.in_w / 2
    }

    fn forward(&mut self, x: Vec<f32>, train: bool) -> Vec<f32> {
        let (c, ih, iw) = (self.channels, self.in_h, self.in_w);
        debug_assert_eq!(x.len(), c * ih * iw);
        let (oh, ow) = (self.out_h(), self.out_w());
        let mut avg = vec![0.0f32; c * oh * ow];
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let base = ch * ih * iw + 2 * oy * iw + 2 * ox;
                    avg[ch * oh * ow + oy * ow + ox] =
                        0.25 * (x[base] + x[base + 1] + x[base + iw] + x[base + iw + 1]);
                }
            }
        }
        let y = avg
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                let ch = i / (oh * ow);
                self.weights[ch] * a + self.bias[ch]
            })
            .collect();
        if train {
            self.cached_avg = avg;
        }
        y
    }

    fn backward(&mut self, g: Vec<f32>) -> Vec<f32> {
        let (c, ih, iw) = (self.channels, self.in_h, self.in_w);
        let (oh, ow) = (self.out_h(), self.out_w());
        let mut gx = vec![0.0f32; c * ih * iw];
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let idx = ch * oh * ow + oy * ow + ox;
                    let go = g[idx];
                    self.grad_w[ch] += go * self.cached_avg[idx];
                    self.grad_b[ch] += go;
                    let spread = go * self.weights[ch] * 0.25;
                    let base = ch * ih * iw + 2 * oy * iw + 2 * ox;
                    gx[base] += spread;
                    gx[base + 1] += spread;
                    gx[base + iw] += spread;
                    gx[base + iw + 1] += spread;
                }
            }
        }
        gx
    }
}

/// Element-wise activation layer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ActivationLayer {
    /// The function applied.
    pub activation: Activation,
    pub(crate) cached_output: Vec<f32>,
}

impl ActivationLayer {
    /// Wraps an [`Activation`] as a layer.
    pub fn new(activation: Activation) -> Self {
        Self {
            activation,
            cached_output: Vec::new(),
        }
    }
}

/// One network layer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Layer {
    /// Fully connected.
    Dense(Dense),
    /// 2-D convolution.
    Conv2d(Conv2d),
    /// LeNet-style trainable scaled average pooling.
    ScaledAvgPool(ScaledAvgPool),
    /// Element-wise activation.
    Activation(ActivationLayer),
}

impl Layer {
    /// Forward pass. With `train == true` the layer caches what backward
    /// needs.
    pub fn forward(&mut self, x: Vec<f32>, train: bool) -> Vec<f32> {
        match self {
            Layer::Dense(l) => l.forward(x, train),
            Layer::Conv2d(l) => l.forward(x, train),
            Layer::ScaledAvgPool(l) => l.forward(x, train),
            Layer::Activation(l) => {
                let y: Vec<f32> = x.iter().map(|&v| l.activation.eval(v)).collect();
                if train {
                    l.cached_output = y.clone();
                }
                y
            }
        }
    }

    /// Inference-only forward pass (no caching, immutable).
    pub fn infer(&self, x: &[f32]) -> Vec<f32> {
        // Forward never mutates observable state when train == false; clone
        // the cheap parts instead of duplicating the arithmetic.
        match self {
            Layer::Dense(l) => {
                let mut tmp = l.clone();
                tmp.forward(x.to_vec(), false)
            }
            Layer::Conv2d(l) => {
                let mut tmp = l.clone();
                tmp.forward(x.to_vec(), false)
            }
            Layer::ScaledAvgPool(l) => {
                let mut tmp = l.clone();
                tmp.forward(x.to_vec(), false)
            }
            Layer::Activation(l) => x.iter().map(|&v| l.activation.eval(v)).collect(),
        }
    }

    /// Backward pass: consumes the upstream gradient, accumulates parameter
    /// gradients and returns the gradient w.r.t. the layer input.
    pub fn backward(&mut self, g: Vec<f32>) -> Vec<f32> {
        match self {
            Layer::Dense(l) => l.backward(g),
            Layer::Conv2d(l) => l.backward(g),
            Layer::ScaledAvgPool(l) => l.backward(g),
            Layer::Activation(l) => g
                .iter()
                .zip(&l.cached_output)
                .map(|(go, &y)| go * l.activation.derivative_from_output(y))
                .collect(),
        }
    }

    /// Clears accumulated gradients.
    pub fn zero_grads(&mut self) {
        let (gw, gb) = match self {
            Layer::Dense(l) => (&mut l.grad_w, &mut l.grad_b),
            Layer::Conv2d(l) => (&mut l.grad_w, &mut l.grad_b),
            Layer::ScaledAvgPool(l) => (&mut l.grad_w, &mut l.grad_b),
            Layer::Activation(_) => return,
        };
        gw.fill(0.0);
        gb.fill(0.0);
    }

    /// Number of trainable parameters (the paper's "synapses", biases
    /// included as in Table IV).
    pub fn param_count(&self) -> usize {
        match self {
            Layer::Dense(l) => l.weights.len() + l.bias.len(),
            Layer::Conv2d(l) => l.weights.len() + l.bias.len(),
            Layer::ScaledAvgPool(l) => l.weights.len() + l.bias.len(),
            Layer::Activation(_) => 0,
        }
    }

    /// Visits `(kind, values, grads)` for every parameter tensor.
    pub fn visit_params_mut(&mut self, f: &mut impl FnMut(ParamKind, &mut [f32], &mut [f32])) {
        match self {
            Layer::Dense(l) => {
                f(ParamKind::Weights, &mut l.weights, &mut l.grad_w);
                f(ParamKind::Bias, &mut l.bias, &mut l.grad_b);
            }
            Layer::Conv2d(l) => {
                f(ParamKind::Weights, &mut l.weights, &mut l.grad_w);
                f(ParamKind::Bias, &mut l.bias, &mut l.grad_b);
            }
            Layer::ScaledAvgPool(l) => {
                f(ParamKind::Weights, &mut l.weights, &mut l.grad_w);
                f(ParamKind::Bias, &mut l.bias, &mut l.grad_b);
            }
            Layer::Activation(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn dense_forward_matches_manual() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut d = Dense::new(2, 2, &mut rng);
        d.weights = vec![1.0, 2.0, 3.0, 4.0];
        d.bias = vec![0.5, -0.5];
        let y = d.forward(vec![1.0, -1.0], false);
        assert_eq!(y, vec![1.0 - 2.0 + 0.5, 3.0 - 4.0 - 0.5]);
    }

    #[test]
    fn conv_forward_matches_manual() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut c = Conv2d::new(1, 1, 2, 3, 3, &mut rng);
        c.weights = vec![1.0, 0.0, 0.0, 1.0]; // identity-ish: x[0,0] + x[1,1]
        c.bias = vec![0.0];
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let y = c.forward(x, false);
        assert_eq!(y, vec![1.0 + 5.0, 2.0 + 6.0, 4.0 + 8.0, 5.0 + 9.0]);
    }

    #[test]
    fn pool_averages_and_scales() {
        let mut p = ScaledAvgPool::new(1, 2, 2);
        p.weights = vec![2.0];
        p.bias = vec![1.0];
        let y = p.forward(vec![1.0, 2.0, 3.0, 4.0], false);
        assert_eq!(y, vec![2.0 * 2.5 + 1.0]);
    }

    #[test]
    fn activation_shapes_preserved() {
        let mut a = Layer::Activation(ActivationLayer::new(Activation::Sigmoid));
        let y = a.forward(vec![0.0; 10], true);
        assert_eq!(y.len(), 10);
        assert!((y[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn lenet_param_counts_match_paper_table4() {
        let mut rng = SmallRng::seed_from_u64(3);
        let c1 = Layer::Conv2d(Conv2d::new(1, 6, 5, 32, 32, &mut rng));
        let s2 = Layer::ScaledAvgPool(ScaledAvgPool::new(6, 28, 28));
        let c3 = Layer::Conv2d(Conv2d::new(6, 16, 5, 14, 14, &mut rng));
        let s4 = Layer::ScaledAvgPool(ScaledAvgPool::new(16, 10, 10));
        let f5 = Layer::Dense(Dense::new(400, 120, &mut rng));
        let f6 = Layer::Dense(Dense::new(120, 10, &mut rng));
        let total: usize = [&c1, &s2, &c3, &s4, &f5, &f6]
            .iter()
            .map(|l| l.param_count())
            .sum();
        assert_eq!(c1.param_count(), 156);
        assert_eq!(s2.param_count(), 12);
        assert_eq!(c3.param_count(), 2416);
        assert_eq!(s4.param_count(), 32);
        assert_eq!(f5.param_count(), 48120);
        assert_eq!(f6.param_count(), 1210);
        assert_eq!(total, 51_946, "Table IV: 51,946 trainable synapses");
    }

    #[test]
    fn relu_and_tanh_derivatives() {
        assert_eq!(Activation::Relu.derivative_from_output(2.0), 1.0);
        assert_eq!(Activation::Relu.derivative_from_output(0.0), 0.0);
        let y = Activation::Tanh.eval(0.3);
        assert!((Activation::Tanh.derivative_from_output(y) - (1.0 - y * y)).abs() < 1e-6);
    }
}
