//! The sequential network container.

use serde::{Deserialize, Serialize};

use crate::layers::{Layer, ParamKind};
use crate::loss::Loss;

/// A feedforward network: an ordered stack of layers.
///
/// # Example
///
/// ```
/// use man_nn::layers::{Activation, ActivationLayer, Dense, Layer};
/// use man_nn::network::Network;
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let mut rng = SmallRng::seed_from_u64(0);
/// let net = Network::new(vec![
///     Layer::Dense(Dense::new(4, 8, &mut rng)),
///     Layer::Activation(ActivationLayer::new(Activation::Sigmoid)),
///     Layer::Dense(Dense::new(8, 2, &mut rng)),
/// ]);
/// assert_eq!(net.param_count(), 4 * 8 + 8 + 8 * 2 + 2);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Network {
    layers: Vec<Layer>,
}

impl Network {
    /// Builds a network from layers.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty.
    pub fn new(layers: Vec<Layer>) -> Self {
        assert!(!layers.is_empty(), "network needs at least one layer");
        Self { layers }
    }

    /// The layer stack.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable access to the layer stack (used by the constraint
    /// projector).
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Total trainable parameter count (the paper's "synapses").
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Layer::param_count).sum()
    }

    /// Number of neurons: the output width of every parameterized layer
    /// (dense outputs, convolution maps, pooling maps), matching how
    /// Table IV counts them.
    pub fn neuron_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| match l {
                Layer::Dense(d) => d.out_dim,
                Layer::Conv2d(c) => c.out_channels * c.out_h() * c.out_w(),
                Layer::ScaledAvgPool(p) => p.channels * p.out_h() * p.out_w(),
                Layer::Activation(_) => 0,
            })
            .sum()
    }

    /// Multiply-accumulate operations one inference costs — the float
    /// twin of the fixed engine's compile-time MAC count, and the work
    /// measure [`Network::accuracy_par`] hands the `man-par` Auto tuner.
    pub fn macs_per_inference(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| match l {
                Layer::Dense(d) => (d.in_dim * d.out_dim) as u64,
                Layer::Conv2d(c) => {
                    (c.in_channels * c.out_channels * c.kernel * c.kernel * c.out_h() * c.out_w())
                        as u64
                }
                Layer::ScaledAvgPool(p) => (p.channels * p.out_h() * p.out_w()) as u64,
                Layer::Activation(_) => 0,
            })
            .sum()
    }

    /// Inference forward pass (no gradient caches touched).
    pub fn infer(&self, x: &[f32]) -> Vec<f32> {
        let mut v = x.to_vec();
        for layer in &self.layers {
            v = layer.infer(&v);
        }
        v
    }

    /// Training forward pass (caches activations for backward).
    pub fn forward(&mut self, x: &[f32]) -> Vec<f32> {
        let mut v = x.to_vec();
        for layer in &mut self.layers {
            v = layer.forward(v, true);
        }
        v
    }

    /// Backpropagates a loss gradient, accumulating parameter gradients.
    pub fn backward(&mut self, grad_out: Vec<f32>) {
        let mut g = grad_out;
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(g);
        }
    }

    /// Clears all accumulated gradients.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    /// Runs forward + backward for one sample, returning the loss.
    pub fn accumulate_sample(&mut self, x: &[f32], label: usize, loss: Loss) -> f32 {
        let out = self.forward(x);
        let (l, g) = loss.loss_and_grad(&out, label);
        self.backward(g);
        l
    }

    /// The predicted class (argmax of the output).
    pub fn predict(&self, x: &[f32]) -> usize {
        let out = self.infer(x);
        argmax(&out)
    }

    /// Classification accuracy over a dataset given as flat samples.
    pub fn accuracy(&self, samples: &[Vec<f32>], labels: &[usize]) -> f64 {
        assert_eq!(samples.len(), labels.len(), "sample/label count mismatch");
        if samples.is_empty() {
            return 0.0;
        }
        let correct = samples
            .iter()
            .zip(labels)
            .filter(|(x, &l)| self.predict(x) == l)
            .count();
        correct as f64 / samples.len() as f64
    }

    /// [`Network::accuracy`] with the dataset row-sharded across
    /// `parallelism` worker threads. Each sample's forward pass is
    /// independent and deterministic, so the count — and therefore the
    /// returned accuracy — is identical to the sequential pass. Under
    /// [`man_par::Parallelism::Auto`] the worker count comes from the
    /// `man-par` decision table (MACs per row × set size), so tiny
    /// evaluation sets skip the pool handoff entirely.
    ///
    /// # Panics
    ///
    /// Panics if the sample and label counts differ.
    pub fn accuracy_par(
        &self,
        samples: &[Vec<f32>],
        labels: &[usize],
        parallelism: man_par::Parallelism,
    ) -> f64 {
        assert_eq!(samples.len(), labels.len(), "sample/label count mismatch");
        if samples.is_empty() {
            return 0.0;
        }
        let resolved = match parallelism {
            man_par::Parallelism::Auto => {
                // The float engine has no neuron-sharded forward pass,
                // so the only plans this path can honor are Sequential
                // and Rows — disable the decision table's neuron row
                // rather than misreading a Neurons plan's worker count
                // as a row-shard width.
                let plan = man_par::plan_shards(
                    &man_par::AutoContext {
                        macs_per_row: self.macs_per_inference(),
                        batch: samples.len(),
                        streams: 1,
                        cores: man_par::available_cores(),
                    },
                    &man_par::AutoTuning {
                        neuron_shard_min_macs: u64::MAX,
                        ..man_par::AutoTuning::default()
                    },
                );
                debug_assert!(!matches!(plan, man_par::ShardPlan::Neurons { .. }));
                man_par::Parallelism::Threads(plan.workers())
            }
            other => other,
        };
        if resolved.workers() <= 1 {
            return self.accuracy(samples, labels);
        }
        let hits = man_par::parallel_map(resolved, samples.len(), |i| {
            u64::from(self.predict(&samples[i]) == labels[i])
        });
        hits.iter().sum::<u64>() as f64 / samples.len() as f64
    }

    /// Visits every parameter tensor as `(layer_index, kind, values,
    /// grads)`, in a stable order.
    pub fn visit_params_mut(
        &mut self,
        mut f: impl FnMut(usize, ParamKind, &mut [f32], &mut [f32]),
    ) {
        for (i, layer) in self.layers.iter_mut().enumerate() {
            layer.visit_params_mut(&mut |kind, values, grads| f(i, kind, values, grads));
        }
    }
}

/// Index of the largest element (first on ties).
pub fn argmax(v: &[f32]) -> usize {
    let mut best = 0;
    for (i, &x) in v.iter().enumerate().skip(1) {
        if x > v[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Activation, ActivationLayer, Dense};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn tiny_net(seed: u64) -> Network {
        let mut rng = SmallRng::seed_from_u64(seed);
        Network::new(vec![
            Layer::Dense(Dense::new(3, 5, &mut rng)),
            Layer::Activation(ActivationLayer::new(Activation::Sigmoid)),
            Layer::Dense(Dense::new(5, 2, &mut rng)),
        ])
    }

    #[test]
    fn infer_and_forward_agree() {
        let mut net = tiny_net(7);
        let x = [0.3, -0.2, 0.9];
        let a = net.infer(&x);
        let b = net.forward(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn paper_mlp_synapse_counts() {
        let mut rng = SmallRng::seed_from_u64(0);
        // Digit recognition: 1024-100-10 -> 103,510 synapses, 110 neurons.
        let digits = Network::new(vec![
            Layer::Dense(Dense::new(1024, 100, &mut rng)),
            Layer::Activation(ActivationLayer::new(Activation::Sigmoid)),
            Layer::Dense(Dense::new(100, 10, &mut rng)),
        ]);
        assert_eq!(digits.param_count(), 103_510);
        assert_eq!(digits.neuron_count(), 110);
        // Face detection: 1024-100-2 -> 102,702 synapses, 102 neurons.
        let faces = Network::new(vec![
            Layer::Dense(Dense::new(1024, 100, &mut rng)),
            Layer::Activation(ActivationLayer::new(Activation::Sigmoid)),
            Layer::Dense(Dense::new(100, 2, &mut rng)),
        ]);
        assert_eq!(faces.param_count(), 102_702);
        assert_eq!(faces.neuron_count(), 102);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut net = tiny_net(42);
        let x = [0.5, -1.0, 0.25];
        let label = 1;
        let loss = Loss::SoftmaxCrossEntropy;
        net.zero_grads();
        let _ = net.accumulate_sample(&x, label, loss);
        // Collect analytic gradients.
        let mut analytic = Vec::new();
        net.visit_params_mut(|_, _, _, grads| analytic.extend_from_slice(grads));
        // Finite differences over every parameter.
        let eps = 1e-3f32;
        let mut max_err = 0.0f32;
        for (p, &expected) in analytic.iter().enumerate() {
            let bump = |net: &mut Network, delta: f32| {
                let mut k = 0;
                net.visit_params_mut(|_, _, values, _| {
                    for v in values.iter_mut() {
                        if k == p {
                            *v += delta;
                        }
                        k += 1;
                    }
                });
            };
            bump(&mut net, eps);
            let (lp, _) = loss.loss_and_grad(&net.infer(&x), label);
            bump(&mut net, -2.0 * eps);
            let (lm, _) = loss.loss_and_grad(&net.infer(&x), label);
            bump(&mut net, eps);
            let numeric = (lp - lm) / (2.0 * eps);
            max_err = max_err.max((numeric - expected).abs());
        }
        assert!(max_err < 1e-2, "max gradient error {max_err}");
    }

    #[test]
    fn argmax_picks_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), 1);
        assert_eq!(argmax(&[]), 0);
    }

    #[test]
    fn accuracy_counts_correct_predictions() {
        let net = tiny_net(3);
        let samples = vec![vec![0.0, 0.0, 0.0], vec![1.0, 1.0, 1.0]];
        let p0 = net.predict(&samples[0]);
        let p1 = net.predict(&samples[1]);
        let acc = net.accuracy(&samples, &[p0, p1]);
        assert_eq!(acc, 1.0);
    }
}
