//! A minimal shaped `f32` buffer.
//!
//! The layers in this crate operate on flat slices with explicit shape
//! bookkeeping; `Tensor` exists for the places where a shape must travel
//! with its data (dataset samples, intermediate feature maps in tests).

use serde::{Deserialize, Serialize};

/// A dense, row-major `f32` tensor.
///
/// # Example
///
/// ```
/// use man_nn::tensor::Tensor;
///
/// let t = Tensor::zeros(&[6, 28, 28]);
/// assert_eq!(t.len(), 6 * 28 * 28);
/// assert_eq!(t.shape(), &[6, 28, 28]);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// A zero-filled tensor of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty or has a zero dimension.
    pub fn zeros(shape: &[usize]) -> Self {
        assert!(!shape.is_empty(), "tensor needs at least one dimension");
        assert!(shape.iter().all(|&d| d > 0), "zero-sized dimension");
        Self {
            shape: shape.to_vec(),
            data: vec![0.0; shape.iter().product()],
        }
    }

    /// Wraps existing data with a shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the shape's element count.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "data length does not match shape"
        );
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the tensor has no elements (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The flat data, row-major.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_shape_and_data() {
        let t = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.data()[4], 5.0);
        assert_eq!(t.into_vec().len(), 6);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_shape_rejected() {
        let _ = Tensor::from_vec(&[2, 2], vec![0.0; 5]);
    }

    #[test]
    #[should_panic(expected = "zero-sized")]
    fn zero_dimension_rejected() {
        let _ = Tensor::zeros(&[3, 0]);
    }
}
