//! Property-based tests for the training substrate: analytic gradients
//! must match finite differences for randomly shaped networks, and losses
//! must behave like losses.

use man_nn::layers::{Activation, ActivationLayer, Conv2d, Dense, Layer, ScaledAvgPool};
use man_nn::loss::Loss;
use man_nn::network::Network;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Checks analytic vs central-difference gradients for all parameters.
fn max_gradient_error(net: &mut Network, x: &[f32], label: usize) -> f32 {
    let loss = Loss::SoftmaxCrossEntropy;
    net.zero_grads();
    let _ = net.accumulate_sample(x, label, loss);
    let mut analytic = Vec::new();
    net.visit_params_mut(|_, _, _, grads| analytic.extend_from_slice(grads));
    let eps = 1e-3f32;
    let mut max_err = 0.0f32;
    for (p, &expected) in analytic.iter().enumerate() {
        let bump = |net: &mut Network, delta: f32| {
            let mut k = 0;
            net.visit_params_mut(|_, _, values, _| {
                for v in values.iter_mut() {
                    if k == p {
                        *v += delta;
                    }
                    k += 1;
                }
            });
        };
        bump(net, eps);
        let (lp, _) = loss.loss_and_grad(&net.infer(x), label);
        bump(net, -2.0 * eps);
        let (lm, _) = loss.loss_and_grad(&net.infer(x), label);
        bump(net, eps);
        max_err = max_err.max(((lp - lm) / (2.0 * eps) - expected).abs());
    }
    max_err
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Dense/sigmoid stacks of random shape have correct gradients.
    #[test]
    fn random_mlp_gradients_check(
        seed in any::<u64>(),
        hidden in 2usize..8,
        inputs in 2usize..6,
        classes in 2usize..4,
        act in prop_oneof![Just(Activation::Sigmoid), Just(Activation::Tanh), Just(Activation::Relu)],
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut net = Network::new(vec![
            Layer::Dense(Dense::new(inputs, hidden, &mut rng)),
            Layer::Activation(ActivationLayer::new(act)),
            Layer::Dense(Dense::new(hidden, classes, &mut rng)),
        ]);
        let x: Vec<f32> = (0..inputs).map(|i| ((seed as usize + i) % 7) as f32 / 7.0 - 0.4).collect();
        let err = max_gradient_error(&mut net, &x, seed as usize % classes);
        prop_assert!(err < 2e-2, "gradient error {err}");
    }

    /// Conv + trainable-pool stacks have correct gradients.
    #[test]
    fn random_cnn_gradients_check(seed in any::<u64>(), channels in 1usize..3) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut net = Network::new(vec![
            Layer::Conv2d(Conv2d::new(1, channels, 3, 6, 6, &mut rng)),
            Layer::ScaledAvgPool(ScaledAvgPool::new(channels, 4, 4)),
            Layer::Activation(ActivationLayer::new(Activation::Sigmoid)),
            Layer::Dense(Dense::new(channels * 4, 2, &mut rng)),
        ]);
        let x: Vec<f32> = (0..36).map(|i| ((i * 13 + seed as usize) % 11) as f32 / 11.0).collect();
        let err = max_gradient_error(&mut net, &x, seed as usize % 2);
        prop_assert!(err < 2e-2, "gradient error {err}");
    }

    /// Softmax cross-entropy: loss non-negative, gradient sums to ~0, and
    /// nudging the correct logit up always reduces the loss.
    #[test]
    fn softmax_ce_properties(logits in prop::collection::vec(-5.0f32..5.0, 2..8), pick in any::<usize>()) {
        let label = pick % logits.len();
        let (l, g) = Loss::SoftmaxCrossEntropy.loss_and_grad(&logits, label);
        prop_assert!(l >= 0.0);
        prop_assert!(g.iter().sum::<f32>().abs() < 1e-4);
        let mut better = logits.clone();
        better[label] += 0.1;
        let (l2, _) = Loss::SoftmaxCrossEntropy.loss_and_grad(&better, label);
        prop_assert!(l2 <= l + 1e-6);
    }

    /// Inference is deterministic and independent of training caches.
    #[test]
    fn infer_is_pure(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut net = Network::new(vec![
            Layer::Dense(Dense::new(4, 3, &mut rng)),
            Layer::Activation(ActivationLayer::new(Activation::Sigmoid)),
            Layer::Dense(Dense::new(3, 2, &mut rng)),
        ]);
        let x = [0.1f32, -0.2, 0.3, 0.7];
        let a = net.infer(&x);
        let _ = net.forward(&[0.9, 0.9, 0.9, 0.9]); // pollute caches
        let b = net.infer(&x);
        prop_assert_eq!(a, b);
    }
}
