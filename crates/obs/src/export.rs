//! Prometheus text-exposition rendering (format version 0.0.4).
//!
//! A tiny append-only builder: the serving tier composes one page per
//! scrape from `ModelStats` snapshots, pool utilization counters, and
//! the per-stage octave histograms. Octave buckets map directly onto
//! Prometheus cumulative `le` buckets (upper bound `2^(i+1)`
//! microseconds, rendered in seconds); only buckets where the
//! cumulative count changes are emitted, plus the mandatory `+Inf`.

use crate::hist::{HistogramSnapshot, OCTAVE_BUCKETS};

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// An append-only Prometheus text page.
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
}

impl PromText {
    /// An empty page.
    pub fn new() -> Self {
        Self::default()
    }

    /// Emits `# HELP` / `# TYPE` headers for a metric family.
    pub fn header(&mut self, name: &str, kind: &str, help: &str) {
        self.out.push_str(&format!("# HELP {name} {help}\n"));
        self.out.push_str(&format!("# TYPE {name} {kind}\n"));
    }

    /// Emits one integer sample.
    pub fn sample_u64(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.out
            .push_str(&format!("{name}{} {value}\n", render_labels(labels)));
    }

    /// Emits one floating-point sample.
    pub fn sample_f64(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out
            .push_str(&format!("{name}{} {value}\n", render_labels(labels)));
    }

    /// Emits a full histogram family from an octave snapshot of
    /// microsecond samples: cumulative `_bucket` series with `le` in
    /// seconds, then `_sum` (seconds) and `_count`.
    pub fn histogram_us(&mut self, name: &str, labels: &[(&str, &str)], snap: &HistogramSnapshot) {
        let mut cumulative = 0u64;
        for (i, &c) in snap.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cumulative += c;
            let le = ((1u128 << (i + 1)) as f64) / 1e6;
            let mut labels: Vec<(&str, &str)> = labels.to_vec();
            let le = format!("{le}");
            labels.push(("le", le.as_str()));
            self.sample_u64(&format!("{name}_bucket"), &labels, cumulative);
        }
        debug_assert!(snap.buckets.len() == OCTAVE_BUCKETS);
        let mut inf_labels: Vec<(&str, &str)> = labels.to_vec();
        inf_labels.push(("le", "+Inf"));
        self.sample_u64(&format!("{name}_bucket"), &inf_labels, snap.count);
        self.sample_f64(&format!("{name}_sum"), labels, snap.sum as f64 / 1e6);
        self.sample_u64(&format!("{name}_count"), labels, snap.count);
    }

    /// The rendered page.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::OctaveHistogram;

    #[test]
    fn escapes_label_values() {
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn renders_counter_with_labels() {
        let mut page = PromText::new();
        page.header("man_requests_total", "counter", "Requests by outcome.");
        page.sample_u64(
            "man_requests_total",
            &[("model", "digits"), ("outcome", "completed")],
            17,
        );
        let text = page.finish();
        assert!(text.contains("# TYPE man_requests_total counter"));
        assert!(text.contains("man_requests_total{model=\"digits\",outcome=\"completed\"} 17"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_capped_by_inf() {
        let h = OctaveHistogram::new();
        h.record(3); // bucket 1 ([2,4)) -> le 4e-6
        h.record(3);
        h.record(100); // bucket 6 ([64,128)) -> le 128e-6
        let mut page = PromText::new();
        page.histogram_us("man_stage_seconds", &[("stage", "kernel")], &h.snapshot());
        let text = page.finish();
        assert!(
            text.contains("man_stage_seconds_bucket{stage=\"kernel\",le=\"0.000004\"} 2"),
            "first octave cumulative: {text}"
        );
        assert!(
            text.contains("man_stage_seconds_bucket{stage=\"kernel\",le=\"0.000128\"} 3"),
            "second octave cumulative: {text}"
        );
        assert!(text.contains("man_stage_seconds_bucket{stage=\"kernel\",le=\"+Inf\"} 3"));
        assert!(text.contains("man_stage_seconds_count{stage=\"kernel\"} 3"));
        assert!(text.contains("man_stage_seconds_sum{stage=\"kernel\"} 0.000106"));
    }

    #[test]
    fn empty_histogram_renders_only_inf() {
        let mut page = PromText::new();
        page.histogram_us("m", &[], &HistogramSnapshot::empty());
        let text = page.finish();
        assert!(text.contains("m_bucket{le=\"+Inf\"} 0"));
        assert!(text.contains("m_count 0"));
    }
}
