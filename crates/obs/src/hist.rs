//! The shared octave-bucket histogram.
//!
//! Extracted from `man-serve`'s per-model latency metrics (DESIGN.md
//! §7) so the serving tier, the per-stage tracing plane, and the
//! Prometheus exporter all agree on one bucket layout. Samples land in
//! power-of-two buckets, so reported quantiles are exact to within one
//! octave — plenty for capacity planning, and free of locks: every
//! write is a relaxed atomic increment.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two buckets: bucket `i` holds samples in
/// `[2^i, 2^(i+1))`. With microsecond samples, 40 buckets cover about
/// 12.7 days — beyond any sane request timeout.
pub const OCTAVE_BUCKETS: usize = 40;

/// Lock-free octave histogram over `u64` samples (microseconds by
/// convention everywhere in this workspace).
#[derive(Debug)]
pub struct OctaveHistogram {
    buckets: [AtomicU64; OCTAVE_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl OctaveHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    ///
    /// ORDERING: monotonic statistics counters; readers tolerate torn
    /// cross-counter views (see `snapshot`), so Relaxed is sufficient.
    pub fn record(&self, value: u64) {
        let bucket = (value.max(1).ilog2() as usize).min(OCTAVE_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records one duration as microseconds.
    pub fn observe(&self, latency: Duration) {
        self.record(latency.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// A consistent-enough copy of the counters.
    ///
    /// ORDERING: reporting-only reads of monotonic counters; a slightly
    /// stale or mutually-inconsistent view is acceptable by contract,
    /// so no acquire ordering is needed.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

impl Default for OctaveHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A point-in-time copy of an [`OctaveHistogram`]'s counters.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Per-octave sample counts (`buckets[i]` covers `[2^i, 2^(i+1))`).
    pub buckets: [u64; OCTAVE_BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all recorded sample values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// A zeroed snapshot.
    pub fn empty() -> Self {
        Self {
            buckets: [0; OCTAVE_BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Whether any sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Estimates the `q`-quantile (0..=1): the geometric midpoint of
    /// the first bucket whose cumulative count reaches the rank.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Midpoint of [2^i, 2^(i+1)): 1.5 * 2^i.
                return (1u64 << i) + (1u64 << i) / 2;
            }
        }
        1u64 << (OCTAVE_BUCKETS - 1)
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Merges another snapshot into this one (bucket-wise sum).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_track_bucket_order() {
        let h = OctaveHistogram::new();
        for _ in 0..90 {
            h.observe(Duration::from_micros(100)); // bucket 6 ([64, 128))
        }
        for _ in 0..10 {
            h.observe(Duration::from_micros(10_000)); // bucket 13
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        let p50 = s.quantile(0.50);
        let p99 = s.quantile(0.99);
        assert!(
            (64..128).contains(&p50),
            "p50 {p50} should sit in the 100us octave"
        );
        assert!(
            (8_192..16_384).contains(&p99),
            "p99 {p99} should sit in the 10ms octave"
        );
        assert!(p50 < p99);
    }

    #[test]
    fn sum_and_count_are_exact() {
        let h = OctaveHistogram::new();
        h.record(3);
        h.record(5);
        h.record(1 << 20);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 3 + 5 + (1 << 20));
        assert!((s.mean() - (s.sum as f64 / 3.0)).abs() < 1e-9);
    }

    #[test]
    fn zero_sample_lands_in_first_bucket() {
        let h = OctaveHistogram::new();
        h.record(0);
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.quantile(0.5), 1);
    }

    #[test]
    fn empty_snapshot_is_zeroed() {
        let s = OctaveHistogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.99), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn merge_adds_bucketwise() {
        let a = OctaveHistogram::new();
        let b = OctaveHistogram::new();
        a.record(100);
        b.record(100);
        b.record(1_000_000);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 3);
        assert_eq!(m.sum, 100 + 100 + 1_000_000);
    }
}
