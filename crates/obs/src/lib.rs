//! `man-obs`: the std-only observability plane (DESIGN.md §12).
//!
//! Three layers, each cheap enough to leave on in production:
//!
//! 1. **Tracing spans** — [`Span::enter`] RAII guards record
//!    `(stage, request, start, duration)` tuples against monotonic
//!    clocks only. The hot path writes into a fixed-size thread-local
//!    buffer (no allocation, no locks); full buffers drain into the
//!    process-wide flight-recorder ring ([`flight`]).
//! 2. **Flight recorder** — a bounded ring of recent [`SpanEvent`]s
//!    with triggered JSON dumps on incidents (overload, timeout,
//!    worker panic). See [`flight`].
//! 3. **Export plane** — per-stage octave histograms ([`hist`])
//!    rendered as Prometheus text exposition ([`export`]).
//!
//! Everything is gated by a runtime [`ObsLevel`]: `Off` is a single
//! relaxed load and a branch, `Counters` adds per-stage histogram
//! increments, `Spans` additionally records events for the flight
//! recorder. The <2% overhead contract between `Off` and `Spans` is
//! measured by the `obs` bench bin and enforced by `regression_gate`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod flight;
pub mod hist;

pub use hist::{HistogramSnapshot, OctaveHistogram, OCTAVE_BUCKETS};

use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;
// DETERMINISM: the one sanctioned time source of the observability
// plane — Instants feed histograms and span events only, never any
// numeric result (§8 bit-identity is untouched by this crate).
use std::time::Instant;

/// How much the observability plane records at runtime.
///
/// The ordering is meaningful: each level is a superset of the one
/// below it.
///
/// # Example
///
/// ```
/// use man_obs::ObsLevel;
///
/// // Each level is a superset of the one below it.
/// assert!(ObsLevel::Spans > ObsLevel::Counters);
/// assert!(ObsLevel::Counters > ObsLevel::Off);
/// assert_eq!(ObsLevel::parse("spans"), Some(ObsLevel::Spans));
///
/// // The process-wide level gates every instrumentation site.
/// man_obs::set_level(ObsLevel::Spans);
/// assert_eq!(man_obs::level(), ObsLevel::Spans);
/// assert_eq!(man_obs::level().label(), "spans");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum ObsLevel {
    /// Record nothing; every instrumentation site is one relaxed
    /// atomic load and an untaken branch.
    Off = 0,
    /// Per-stage octave histograms (and pool utilization counters),
    /// no span events.
    Counters = 1,
    /// Histograms plus span events into the flight-recorder ring.
    Spans = 2,
}

impl ObsLevel {
    /// Stable lower-case label (`"off"` / `"counters"` / `"spans"`).
    pub fn label(self) -> &'static str {
        match self {
            ObsLevel::Off => "off",
            ObsLevel::Counters => "counters",
            ObsLevel::Spans => "spans",
        }
    }

    /// Parses a level label (as accepted in `MAN_OBS`).
    pub fn parse(s: &str) -> Option<ObsLevel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "none" => Some(ObsLevel::Off),
            "counters" | "1" => Some(ObsLevel::Counters),
            "spans" | "2" | "full" => Some(ObsLevel::Spans),
            _ => None,
        }
    }
}

/// Sentinel meaning "not initialised yet — consult `MAN_OBS`".
const LEVEL_UNSET: u8 = u8::MAX;

static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

/// Reads `MAN_OBS` once to seed the level; unset or unparseable means
/// [`ObsLevel::Counters`] — histograms are cheap enough to be the
/// default, span recording is opt-in.
fn level_from_env() -> ObsLevel {
    std::env::var("MAN_OBS")
        .ok()
        .and_then(|v| ObsLevel::parse(&v))
        .unwrap_or(ObsLevel::Counters)
}

/// The current recording level.
///
/// ORDERING: the level is an advisory gate, not a synchronisation
/// point — a racing `set_level` may be observed a beat late, which
/// only means a few events more or fewer get recorded.
pub fn level() -> ObsLevel {
    let raw = LEVEL.load(Ordering::Relaxed);
    if raw != LEVEL_UNSET {
        // ORDERING: see `level` doc — advisory gate only.
        return match raw {
            0 => ObsLevel::Off,
            1 => ObsLevel::Counters,
            _ => ObsLevel::Spans,
        };
    }
    let seeded = level_from_env();
    // ORDERING: first-call initialisation race is benign — every
    // contender computes the same env-derived value.
    LEVEL.store(seeded as u8, Ordering::Relaxed);
    seeded
}

/// Sets the recording level process-wide (overrides `MAN_OBS`).
pub fn set_level(level: ObsLevel) {
    // ORDERING: advisory gate; see `level`.
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Whether per-stage histograms (and pool counters) are recorded.
#[inline]
pub fn counters_enabled() -> bool {
    level() >= ObsLevel::Counters
}

/// Whether span events are recorded for the flight recorder.
#[inline]
pub fn spans_enabled() -> bool {
    level() == ObsLevel::Spans
}

/// The instrumented lifecycle stages (DESIGN.md §12 span taxonomy).
///
/// The first seven are the serving request pipeline in order; `Park`,
/// `Chunk` and `Steal` are `man-par` worker-pool internals; the last
/// three are incident markers recorded at the moment something goes
/// wrong (their duration is 0, their purpose is to anchor a
/// flight-recorder dump to the failing request).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum Stage {
    /// `submit` admitting one request into a model's queue.
    Accept = 0,
    /// Protocol line parse (NDJSON → `Request`).
    Decode = 1,
    /// Enqueue → scheduler drain, per request.
    QueueWait = 2,
    /// Scheduler drain loop forming one micro-batch.
    Coalesce = 3,
    /// One batch dispatch end-to-end (plan resolution + inference +
    /// replies); the event label carries the resolved shard plan.
    Dispatch = 4,
    /// Kernel execution of one batch inside the session; the event
    /// label carries the resolved MAC kernel.
    Kernel = 5,
    /// Response render + socket write.
    Encode = 6,
    /// A pool worker parked on the condvar (duration = idle wait).
    Park = 7,
    /// One chunk handed out and executed by a pool worker.
    Chunk = 8,
    /// The submitter stealing back an unstarted slot.
    Steal = 9,
    /// Incident: a request rejected with `Overloaded`.
    Overloaded = 10,
    /// Incident: a submitter gave up waiting (`request_timeout`).
    Timeout = 11,
    /// Incident: a worker panic was contained.
    Panic = 12,
}

/// Number of [`Stage`] variants.
pub const STAGE_COUNT: usize = 13;

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::Accept,
        Stage::Decode,
        Stage::QueueWait,
        Stage::Coalesce,
        Stage::Dispatch,
        Stage::Kernel,
        Stage::Encode,
        Stage::Park,
        Stage::Chunk,
        Stage::Steal,
        Stage::Overloaded,
        Stage::Timeout,
        Stage::Panic,
    ];

    /// Stable snake_case label (used in dumps and Prometheus labels).
    pub fn label(self) -> &'static str {
        match self {
            Stage::Accept => "accept",
            Stage::Decode => "decode",
            Stage::QueueWait => "queue_wait",
            Stage::Coalesce => "coalesce",
            Stage::Dispatch => "dispatch",
            Stage::Kernel => "kernel",
            Stage::Encode => "encode",
            Stage::Park => "park",
            Stage::Chunk => "chunk",
            Stage::Steal => "steal",
            Stage::Overloaded => "overloaded",
            Stage::Timeout => "timeout",
            Stage::Panic => "panic",
        }
    }
}

/// One recorded span: a stage, the request it served (0 when the work
/// is not request-scoped), where it sat on the process-monotonic
/// clock, and an optional static label + numeric argument (e.g. shard
/// plan + worker count).
#[derive(Clone, Copy, Debug)]
pub struct SpanEvent {
    /// Which lifecycle stage this span covers.
    pub stage: Stage,
    /// Request id ([`next_request_id`]); 0 for non-request work.
    pub req: u64,
    /// Start, in nanoseconds on the process-monotonic clock.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for incident markers).
    pub dur_ns: u64,
    /// Static annotation (plan / kernel label); `""` when unused.
    pub label: &'static str,
    /// Numeric annotation (worker count, batch size, ...); 0 unused.
    pub arg: u64,
    /// Recording thread (process-unique small integer).
    pub thread: u32,
}

/// Nanoseconds since the process-wide monotonic epoch (the first call
/// into the observability plane).
pub fn now_ns() -> u64 {
    // DETERMINISM: monotonic observability clock; never feeds results.
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    // DETERMINISM: epoch-relative monotonic read; never feeds results.
    let epoch = *EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

static NEXT_REQUEST: AtomicU64 = AtomicU64::new(0);

/// Allocates a process-unique request id (starting at 1; 0 means
/// "no request" in [`SpanEvent::req`]).
pub fn next_request_id() -> u64 {
    // ORDERING: a pure id dispenser — uniqueness is all that is
    // promised, and fetch_add is atomic at every ordering.
    NEXT_REQUEST.fetch_add(1, Ordering::Relaxed) + 1
}

fn stage_hists() -> &'static [OctaveHistogram; STAGE_COUNT] {
    static HISTS: OnceLock<[OctaveHistogram; STAGE_COUNT]> = OnceLock::new();
    HISTS.get_or_init(|| std::array::from_fn(|_| OctaveHistogram::new()))
}

/// Snapshots every per-stage latency histogram (microsecond samples),
/// in [`Stage::ALL`] order.
pub fn stage_snapshot() -> Vec<(Stage, HistogramSnapshot)> {
    Stage::ALL
        .iter()
        .map(|&s| (s, stage_hists()[s as usize].snapshot()))
        .collect()
}

/// Capacity of each thread-local event buffer. A full buffer drains
/// into the flight-recorder ring; the constant trades drain frequency
/// (one ring-mutex acquisition per `THREAD_BUFFER_EVENTS` events)
/// against how much history a quiet thread can sit on before a
/// lifecycle flush pushes it out.
pub const THREAD_BUFFER_EVENTS: usize = 256;

static NEXT_THREAD: AtomicU32 = AtomicU32::new(0);

/// The per-thread collector buffer: a preallocated `Vec` that never
/// reallocates (push is append-into-capacity), drained into
/// [`flight`] when full, at explicit [`flush`] points, and on thread
/// exit (`Drop`).
struct ThreadBuffer {
    thread: u32,
    events: Vec<SpanEvent>,
}

impl ThreadBuffer {
    fn new() -> Self {
        Self {
            // ORDERING: a pure id dispenser, as `next_request_id`.
            thread: NEXT_THREAD.fetch_add(1, Ordering::Relaxed) + 1,
            events: Vec::with_capacity(THREAD_BUFFER_EVENTS),
        }
    }

    fn push(&mut self, mut event: SpanEvent) {
        event.thread = self.thread;
        if self.events.len() == THREAD_BUFFER_EVENTS {
            flight::extend(&self.events);
            self.events.clear();
        }
        self.events.push(event);
    }

    fn drain(&mut self) {
        if !self.events.is_empty() {
            flight::extend(&self.events);
            self.events.clear();
        }
    }
}

impl Drop for ThreadBuffer {
    fn drop(&mut self) {
        self.drain();
    }
}

thread_local! {
    static BUFFER: RefCell<ThreadBuffer> = RefCell::new(ThreadBuffer::new());
}

fn push_event(event: SpanEvent) {
    // try_with + try_borrow_mut: recording must never panic, not even
    // during thread teardown or from a re-entrant drop.
    let _ = BUFFER.try_with(|b| {
        if let Ok(mut b) = b.try_borrow_mut() {
            b.push(event);
        }
    });
}

/// Drains the calling thread's event buffer into the flight-recorder
/// ring. The serving scheduler calls this after each batch and the
/// protocol layer after each incident, so dumps see complete request
/// lifecycles without waiting for a buffer to fill.
pub fn flush() {
    let _ = BUFFER.try_with(|b| {
        if let Ok(mut b) = b.try_borrow_mut() {
            b.drain();
        }
    });
}

/// Records one finished span: feeds the per-stage histogram at
/// [`ObsLevel::Counters`] and above, and the flight-recorder event
/// stream at [`ObsLevel::Spans`].
pub fn record(stage: Stage, req: u64, start_ns: u64, dur_ns: u64, label: &'static str, arg: u64) {
    let level = level();
    if level < ObsLevel::Counters {
        return;
    }
    stage_hists()[stage as usize].record(dur_ns / 1_000);
    if level == ObsLevel::Spans {
        push_event(SpanEvent {
            stage,
            req,
            start_ns,
            dur_ns,
            label,
            arg,
            thread: 0,
        });
    }
}

/// Records an event without touching the stage histogram — for
/// per-request annotations of work whose histogram truth is recorded
/// once per batch (e.g. each request's share of a batch dispatch).
/// No-op below [`ObsLevel::Spans`].
pub fn record_event(
    stage: Stage,
    req: u64,
    start_ns: u64,
    dur_ns: u64,
    label: &'static str,
    arg: u64,
) {
    if !spans_enabled() {
        return;
    }
    push_event(SpanEvent {
        stage,
        req,
        start_ns,
        dur_ns,
        label,
        arg,
        thread: 0,
    });
}

/// Records an incident marker (zero-duration event at "now") — the
/// anchor a flight-recorder dump is built around.
pub fn incident(stage: Stage, req: u64) {
    let level = level();
    if level < ObsLevel::Counters {
        return;
    }
    stage_hists()[stage as usize].record(0);
    if level == ObsLevel::Spans {
        push_event(SpanEvent {
            stage,
            req,
            start_ns: now_ns(),
            dur_ns: 0,
            label: "",
            arg: 0,
            thread: 0,
        });
    }
}

/// An RAII span: construction timestamps the start, drop records the
/// stage duration. Below [`ObsLevel::Counters`] construction reads no
/// clock and drop is a no-op (`start_ns == 0` disarms it).
#[derive(Debug)]
pub struct Span {
    stage: Stage,
    req: u64,
    label: &'static str,
    arg: u64,
    start_ns: u64,
}

impl Span {
    /// Enters a stage for non-request-scoped work.
    pub fn enter(stage: Stage) -> Span {
        Span::labeled(stage, 0, "", 0)
    }

    /// Enters a stage on behalf of one request.
    pub fn enter_for(stage: Stage, req: u64) -> Span {
        Span::labeled(stage, req, "", 0)
    }

    /// Enters a stage with a static label and numeric argument (e.g.
    /// the resolved plan label and worker count).
    pub fn labeled(stage: Stage, req: u64, label: &'static str, arg: u64) -> Span {
        let start_ns = if counters_enabled() {
            now_ns().max(1)
        } else {
            0
        };
        Span {
            stage,
            req,
            label,
            arg,
            start_ns,
        }
    }

    /// Overrides the numeric argument after entry (for values only
    /// known once the work ran, e.g. a drained batch size).
    pub fn set_arg(&mut self, arg: u64) {
        self.arg = arg;
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.start_ns == 0 {
            return;
        }
        let dur_ns = now_ns().saturating_sub(self.start_ns);
        record(
            self.stage,
            self.req,
            self.start_ns,
            dur_ns,
            self.label,
            self.arg,
        );
    }
}

/// Serialises tests that mutate the process-wide level (unit tests in
/// this binary run concurrently; the level is a global).
#[cfg(test)]
pub(crate) fn test_level_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parse_round_trips() {
        for l in [ObsLevel::Off, ObsLevel::Counters, ObsLevel::Spans] {
            assert_eq!(ObsLevel::parse(l.label()), Some(l));
        }
        assert_eq!(ObsLevel::parse("bogus"), None);
        assert!(ObsLevel::Off < ObsLevel::Counters);
        assert!(ObsLevel::Counters < ObsLevel::Spans);
    }

    #[test]
    fn request_ids_are_unique_and_nonzero() {
        let a = next_request_id();
        let b = next_request_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn now_ns_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn stage_labels_are_unique() {
        let mut labels: Vec<&str> = Stage::ALL.iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), STAGE_COUNT);
    }

    #[test]
    fn span_records_into_stage_histogram_and_ring() {
        let _guard = test_level_lock();
        set_level(ObsLevel::Spans);
        let before = stage_hists()[Stage::Decode as usize].snapshot().count;
        {
            let mut s = Span::labeled(Stage::Decode, 42, "test", 0);
            s.set_arg(7);
        }
        flush();
        let after = stage_hists()[Stage::Decode as usize].snapshot().count;
        assert_eq!(after, before + 1);
        let events = flight::snapshot_recent(u64::MAX);
        assert!(events
            .iter()
            .any(|e| e.req == 42 && e.stage == Stage::Decode && e.arg == 7));
        set_level(ObsLevel::Counters);
    }

    #[test]
    fn off_level_disarms_spans() {
        let _guard = test_level_lock();
        set_level(ObsLevel::Off);
        let before = stage_hists()[Stage::Encode as usize].snapshot().count;
        drop(Span::enter(Stage::Encode));
        let after = stage_hists()[Stage::Encode as usize].snapshot().count;
        assert_eq!(after, before);
        set_level(ObsLevel::Counters);
    }
}
