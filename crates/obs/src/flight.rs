//! The flight recorder: a process-wide bounded ring of recent span
//! events, and triggered JSON dumps for post-mortems.
//!
//! Thread-local collector buffers ([`crate::flush`] / full-buffer
//! drains) land here. The ring holds the last [`RING_CAPACITY`]
//! events and overwrites the oldest on overflow — recording never
//! blocks on a reader and never grows without bound. When something
//! goes wrong (`Overloaded`, a request timeout, a contained worker
//! panic) the serving tier calls [`trigger_dump`], which freezes the
//! last [`DUMP_WINDOW_MS`] of events into a JSON document retrievable
//! over the wire via the `dump_trace` protocol verb.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use serde::Value;

use crate::{now_ns, spans_enabled, SpanEvent};

/// Capacity of the event ring. At serving rates of ~10k spans/s this
/// is roughly the last second of activity — sized to comfortably
/// cover [`DUMP_WINDOW_MS`].
pub const RING_CAPACITY: usize = 8192;

/// How far back a triggered dump reaches, in milliseconds.
pub const DUMP_WINDOW_MS: u64 = 1000;

/// Minimum spacing between two triggered dumps, in nanoseconds: an
/// overload storm rejects thousands of requests per second, and one
/// post-mortem per 100ms is plenty.
const TRIGGER_INTERVAL_NS: u64 = 100_000_000;

fn ring() -> &'static Mutex<VecDeque<SpanEvent>> {
    static RING: OnceLock<Mutex<VecDeque<SpanEvent>>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(VecDeque::with_capacity(RING_CAPACITY)))
}

fn last_dump_slot() -> &'static Mutex<Option<String>> {
    static LAST: OnceLock<Mutex<Option<String>>> = OnceLock::new();
    LAST.get_or_init(|| Mutex::new(None))
}

/// Appends a drained collector batch to the ring, evicting the oldest
/// events past [`RING_CAPACITY`] (the overwrite semantics of §12).
pub fn extend(events: &[SpanEvent]) {
    if events.is_empty() {
        return;
    }
    let mut ring = ring()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    for &e in events {
        if ring.len() == RING_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(e);
    }
}

/// Copies out every ring event that started within the last
/// `window_ns` nanoseconds (pass `u64::MAX` for everything held).
pub fn snapshot_recent(window_ns: u64) -> Vec<SpanEvent> {
    let cutoff = now_ns().saturating_sub(window_ns);
    let ring = ring()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    ring.iter()
        .filter(|e| e.start_ns >= cutoff)
        .copied()
        .collect()
}

/// Empties the ring and forgets the last triggered dump (tests and
/// the bench bin use this to isolate scenarios).
pub fn clear() {
    ring()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clear();
    *last_dump_slot()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
    // ORDERING: monotonic rate-limiter reset; advisory only.
    LAST_TRIGGER_NS.store(u64::MAX, Ordering::Relaxed);
}

/// Renders a dump document for the last `window_ns` of events.
///
/// The format is stable: `reason`, `req` (the anchoring request, 0 if
/// none), `at_us` (process-monotonic trigger time), `window_ms`, and
/// an `events` array of `{stage, req, start_us, dur_us, label, arg,
/// thread}` objects in ring (arrival) order.
pub fn render_dump(reason: &str, req: u64, window_ns: u64) -> String {
    let events = snapshot_recent(window_ns);
    let rows: Vec<Value> = events
        .iter()
        .map(|e| {
            Value::Object(vec![
                ("stage".to_owned(), Value::Str(e.stage.label().to_owned())),
                ("req".to_owned(), Value::U64(e.req)),
                ("start_us".to_owned(), Value::U64(e.start_ns / 1_000)),
                ("dur_us".to_owned(), Value::U64(e.dur_ns / 1_000)),
                ("label".to_owned(), Value::Str(e.label.to_owned())),
                ("arg".to_owned(), Value::U64(e.arg)),
                ("thread".to_owned(), Value::U64(u64::from(e.thread))),
            ])
        })
        .collect();
    let doc = Value::Object(vec![
        ("reason".to_owned(), Value::Str(reason.to_owned())),
        ("req".to_owned(), Value::U64(req)),
        ("at_us".to_owned(), Value::U64(now_ns() / 1_000)),
        ("window_ms".to_owned(), Value::U64(window_ns / 1_000_000)),
        ("events".to_owned(), Value::Array(rows)),
    ]);
    serde_json::to_string(&doc).expect("dump document serialises")
}

static LAST_TRIGGER_NS: AtomicU64 = AtomicU64::new(u64::MAX);

/// Freezes the last [`DUMP_WINDOW_MS`] of events into the retained
/// dump, anchored to `reason` and `req`. Rate-limited (at most one
/// dump per 100ms) and a no-op below [`crate::ObsLevel::Spans`] —
/// there are no events to dump. Returns whether a dump was taken.
pub fn trigger_dump(reason: &str, req: u64) -> bool {
    if !spans_enabled() {
        return false;
    }
    let now = now_ns();
    // ORDERING: the rate limiter is advisory — losing a race only
    // means one extra (or one fewer) dump in a 100ms window; the dump
    // slot itself is guarded by its mutex.
    let last = LAST_TRIGGER_NS.load(Ordering::Relaxed);
    if last != u64::MAX && now.saturating_sub(last) < TRIGGER_INTERVAL_NS {
        return false;
    }
    // ORDERING: see above — advisory rate limiter.
    LAST_TRIGGER_NS.store(now, Ordering::Relaxed);
    let doc = render_dump(reason, req, DUMP_WINDOW_MS * 1_000_000);
    *last_dump_slot()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(doc);
    true
}

/// The most recent triggered dump, if any (a JSON document from
/// [`render_dump`]).
pub fn last_dump() -> Option<String> {
    last_dump_slot()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{set_level, test_level_lock, ObsLevel, Stage};

    fn event(stage: Stage, req: u64, start_ns: u64) -> SpanEvent {
        SpanEvent {
            stage,
            req,
            start_ns,
            dur_ns: 5_000,
            label: "plan",
            arg: 4,
            thread: 1,
        }
    }

    #[test]
    fn ring_overwrites_oldest() {
        let _guard = test_level_lock();
        set_level(ObsLevel::Spans);
        clear();
        let now = now_ns();
        let batch: Vec<SpanEvent> = (0..RING_CAPACITY + 10)
            .map(|i| event(Stage::Chunk, i as u64 + 1, now))
            .collect();
        extend(&batch);
        let held = snapshot_recent(u64::MAX);
        assert_eq!(held.len(), RING_CAPACITY);
        // The 10 oldest were evicted.
        assert_eq!(held.first().map(|e| e.req), Some(11));
        clear();
        set_level(ObsLevel::Counters);
    }

    #[test]
    fn dump_round_trips_through_json() {
        let _guard = test_level_lock();
        set_level(ObsLevel::Spans);
        clear();
        extend(&[event(Stage::Dispatch, 7, now_ns())]);
        assert!(trigger_dump("overloaded", 9));
        let dump = last_dump().expect("dump retained");
        let parsed: Value = serde_json::from_str(&dump).expect("dump parses");
        let obj = parsed.as_object().expect("dump is an object");
        let reason = obj.iter().find(|(k, _)| k == "reason").map(|(_, v)| v);
        assert!(matches!(reason, Some(Value::Str(s)) if s == "overloaded"));
        let events = obj.iter().find(|(k, _)| k == "events").map(|(_, v)| v);
        match events {
            Some(Value::Array(rows)) => assert!(!rows.is_empty()),
            other => panic!("events array missing: {other:?}"),
        }
        clear();
        set_level(ObsLevel::Counters);
    }

    #[test]
    fn triggers_are_rate_limited_and_gated() {
        let _guard = test_level_lock();
        set_level(ObsLevel::Spans);
        clear();
        assert!(trigger_dump("first", 1));
        assert!(!trigger_dump("second", 2), "within the 100ms window");
        set_level(ObsLevel::Counters);
        clear();
        assert!(!trigger_dump("gated", 3), "no dump below Spans");
        assert!(last_dump().is_none());
    }

    #[test]
    fn snapshot_window_filters_old_events() {
        let _guard = test_level_lock();
        set_level(ObsLevel::Spans);
        clear();
        extend(&[event(Stage::Kernel, 1, now_ns())]);
        std::thread::sleep(std::time::Duration::from_millis(40));
        extend(&[event(Stage::Kernel, 2, now_ns())]);
        let recent = snapshot_recent(10_000_000);
        assert_eq!(recent.len(), 1);
        assert_eq!(recent[0].req, 2);
        clear();
        set_level(ObsLevel::Counters);
    }
}
