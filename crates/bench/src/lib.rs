//! Shared support for the experiment binaries that regenerate every table
//! and figure of the paper's evaluation (see DESIGN.md §4 for the index).
//!
//! Every binary accepts `--full` (paper-scale datasets and epochs) and
//! defaults to a `--quick` configuration that reproduces the trends in
//! seconds to minutes. Results are printed as the paper's rows and also
//! serialized to `target/experiments/<name>.json`.
#![forbid(unsafe_code)]

use std::fs;
use std::path::PathBuf;

use man::alphabet::AlphabetSet;
use man::engine::{CostModel, CostReport};
use man::fixed::LayerAlphabets;
use man::train::MethodologyConfig;
use man::zoo::Benchmark;
use man_datasets::GenOptions;
use man_par::Parallelism;
use man_repro::Pipeline;
use serde::Serialize;

pub mod regression;

/// Quick vs. full (paper-scale) execution.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RunMode {
    /// Reduced samples/epochs; minutes for the whole suite.
    Quick,
    /// Paper-scale runs.
    Full,
}

impl RunMode {
    /// Parses `--full` / `--quick` from the process arguments.
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--full") {
            RunMode::Full
        } else {
            RunMode::Quick
        }
    }

    /// Dataset sizing for this mode.
    pub fn gen_options(self, seed: u64) -> GenOptions {
        match self {
            RunMode::Quick => GenOptions {
                train: 1500,
                test: 400,
                seed,
            },
            RunMode::Full => GenOptions {
                train: 6000,
                test: 1500,
                seed,
            },
        }
    }
}

/// Parses the shared `--threads N` / `--threads=N` flag: `Threads(N)`
/// when given, `Parallelism::Auto` (every available core) otherwise —
/// so the experiment binaries use the whole machine by default and CI
/// can pin an exact worker count for reproducible timing. A malformed
/// value aborts loudly (exit 2) instead of silently falling back to
/// `Auto`: a run that *believes* it pinned its worker count but did not
/// would poison any timing comparison built on it.
pub fn parallelism_from_args() -> Parallelism {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        let value = if a == "--threads" {
            Some(args.next().unwrap_or_default())
        } else {
            a.strip_prefix("--threads=").map(str::to_owned)
        };
        if let Some(value) = value {
            match value.parse::<usize>() {
                Ok(n) if n >= 1 => return Parallelism::Threads(n),
                _ => {
                    eprintln!("--threads expects a worker count >= 1, got `{value}`");
                    std::process::exit(2);
                }
            }
        }
    }
    Parallelism::Auto
}

/// The alphabet sweep of the paper's tables, largest first (as Tables II
/// and III list them): `{1,3,5,7}`, `{1,3}`, `{1}`.
pub fn table_alphabets() -> Vec<AlphabetSet> {
    vec![AlphabetSet::a4(), AlphabetSet::a2(), AlphabetSet::a1()]
}

/// Applies a [`RunMode`]'s epoch budget for `benchmark` — the closure
/// the experiment pipelines register with `configure`. Since pipeline
/// overrides run *after* benchmark tuning, the tune pass is re-applied
/// so Quick mode cannot drop below a tuned floor (the CNN's 12-epoch
/// minimum).
pub fn apply_mode(cfg: &mut MethodologyConfig, mode: RunMode, benchmark: Benchmark) {
    if mode == RunMode::Quick {
        cfg.initial_epochs = 8;
        cfg.retrain_epochs = 4;
    }
    benchmark.tune(cfg);
}

/// One accuracy row: configuration label, accuracy %, loss vs conventional
/// in percentage points.
#[derive(Clone, Debug, Serialize)]
pub struct AccuracyRow {
    /// Configuration (e.g. "conventional NN" or "2 {1,3}").
    pub config: String,
    /// Test accuracy in percent.
    pub accuracy_pct: f64,
    /// Accuracy loss vs. the conventional NN, percentage points.
    pub loss_pct: f64,
}

/// A full accuracy experiment on one benchmark at one word length.
#[derive(Clone, Debug, Serialize)]
pub struct AccuracyExperiment {
    /// Benchmark name.
    pub benchmark: String,
    /// Word length.
    pub bits: u32,
    /// Float accuracy after unconstrained training (for reference).
    pub float_pct: f64,
    /// Rows: conventional first, then each alphabet set.
    pub rows: Vec<AccuracyRow>,
}

/// Trains the benchmark once (pipeline baseline stage), measures the
/// conventional fixed-point accuracy `J`, then constrained-retrains and
/// measures each alphabet set in [`table_alphabets`] order — the
/// procedure behind Tables II/III and Fig. 7.
///
/// The alphabet-set retrains are independent restarts from the same
/// restore point, so with a multi-worker `parallelism` they run
/// concurrently; each set's retraining is seeded per-set and its
/// accuracy evaluation shards deterministically, so every row is
/// identical to the sequential sweep.
pub fn accuracy_experiment(
    benchmark: Benchmark,
    bits: u32,
    mode: RunMode,
    parallelism: Parallelism,
) -> AccuracyExperiment {
    let ds = benchmark.dataset(&mode.gen_options(0xDA7E + bits as u64));
    let baseline = Pipeline::for_benchmark(benchmark)
        .with_bits(bits)
        .with_data(&ds)
        .with_parallelism(parallelism)
        .configure(move |cfg| apply_mode(cfg, mode, benchmark))
        .train_baseline()
        .expect("baseline training runs");
    let layers = baseline.spec().layer_formats().len();
    let j = 100.0 * baseline.conventional_accuracy;
    let mut rows = vec![AccuracyRow {
        config: "conventional NN".into(),
        accuracy_pct: j,
        loss_pct: 0.0,
    }];
    let sets = table_alphabets();
    // Outer workers fan over the per-set retrains; each set's accuracy
    // evaluation gets the remaining budget (see `man_par::split_budget`).
    let (parallelism, inner) = man_par::split_budget(parallelism, sets.len());
    rows.extend(man_par::parallel_map(parallelism, sets.len(), |i| {
        let alphabets = LayerAlphabets::uniform(sets[i].clone(), layers);
        let retrained = baseline
            .retrain_with_parallelism(&alphabets, inner)
            .expect("projected weights always compile");
        AccuracyRow {
            config: retrained.alphabets().label(),
            accuracy_pct: 100.0 * retrained.attempts[0].accuracy,
            loss_pct: retrained.attempts[0].loss_pp,
        }
    }));
    AccuracyExperiment {
        benchmark: benchmark.name().to_owned(),
        bits,
        float_pct: 100.0 * baseline.float_accuracy,
        rows,
    }
}

/// Prints an accuracy experiment in the layout of Tables II/III.
pub fn print_accuracy_table(exp: &AccuracyExperiment) {
    println!(
        "\n{} — {} bit synapses (float reference {:.2}%)",
        exp.benchmark, exp.bits, exp.float_pct
    );
    println!(
        "{:<18} {:>12} {:>18}",
        "No. of Alphabets", "Accuracy (%)", "Accuracy Loss (%)"
    );
    for row in &exp.rows {
        if row.config == "conventional NN" {
            println!("{:<18} {:>12.2} {:>18}", row.config, row.accuracy_pct, "--");
        } else {
            println!(
                "{:<18} {:>12.2} {:>18.2}",
                row.config, row.accuracy_pct, row.loss_pct
            );
        }
    }
}

/// Energy/area/cycle measurements of one benchmark across neuron kinds.
#[derive(Clone, Debug, Serialize)]
pub struct CostExperiment {
    /// Benchmark name.
    pub benchmark: String,
    /// Word length.
    pub bits: u32,
    /// Conventional first, then each alphabet set (Tables order).
    pub reports: Vec<CostReport>,
}

/// Runs the engine cost model on a benchmark: trains briefly, projects
/// onto each alphabet lattice, samples real operand traces, and measures
/// cycles / energy / area — the procedure behind Figs. 8–10.
///
/// Costs need a *constrained, compiled* network but not a fully retrained
/// one, so the (expensive) retraining step is skipped; DESIGN.md §5 notes
/// this.
pub fn cost_experiment(
    benchmark: Benchmark,
    bits: u32,
    mode: RunMode,
    model: &mut CostModel,
    parallelism: Parallelism,
) -> CostExperiment {
    let ds = benchmark.dataset(&GenOptions {
        train: 400,
        test: 64,
        seed: 0xC057 + bits as u64,
    });
    let baseline = Pipeline::for_benchmark(benchmark)
        .with_bits(bits)
        .with_data(&ds)
        .with_parallelism(parallelism)
        .configure(move |cfg| {
            apply_mode(cfg, mode, benchmark);
            cfg.initial_epochs = cfg.initial_epochs.min(4);
        })
        .train_baseline()
        .expect("brief training runs");
    model.stream_limit = trace_limit(mode);
    let mut reports = Vec::new();
    // Conventional baseline: full-alphabet weights, conventional datapath.
    let project = |set: AlphabetSet| {
        Pipeline::from_network(baseline.network().clone())
            .with_bits(bits)
            .with_alphabets(vec![set])
            .constrain()
            .expect("projection")
            .compile()
            .expect("projected weights always compile")
    };
    reports.push(
        project(AlphabetSet::a8())
            .cost_conventional(model, &ds.test_images)
            .expect("synthesis at paper clocks succeeds")
            .report,
    );
    for set in table_alphabets() {
        reports.push(
            project(set)
                .cost(model, &ds.test_images)
                .expect("synthesis at paper clocks succeeds")
                .report,
        );
    }
    CostExperiment {
        benchmark: benchmark.name().to_owned(),
        bits,
        reports,
    }
}

fn trace_limit(mode: RunMode) -> usize {
    match mode {
        RunMode::Quick => 600,
        RunMode::Full => 2000,
    }
}

/// Prints a cost experiment normalized to the conventional row.
pub fn print_cost_table(exp: &CostExperiment, metric: &str) {
    println!(
        "\n{} — {} bit ({} normalized to conventional)",
        exp.benchmark, exp.bits, metric
    );
    let base = &exp.reports[0];
    for r in &exp.reports {
        let (value, norm) = match metric {
            "energy" => (r.energy_pj, r.energy_pj / base.energy_pj),
            "power" => (r.power_mw, r.power_mw / base.power_mw),
            "area" => (r.neuron_area_um2, r.neuron_area_um2 / base.neuron_area_um2),
            _ => panic!("unknown metric {metric}"),
        };
        println!(
            "  {:<14} {:>12.2} {:>8.3}  ({:>5.1}% reduction)",
            r.label,
            value,
            norm,
            (1.0 - norm) * 100.0
        );
    }
}

/// Outcome of a closed-loop load run: every client thread issues its
/// next request the moment the previous one completes, for a fixed
/// duration — the standard way to measure a serving stack's saturated
/// throughput.
#[derive(Clone, Debug, Serialize)]
pub struct LoadReport {
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests that completed successfully.
    pub completed: u64,
    /// Requests that returned an error (e.g. `Overloaded` rejections).
    pub errored: u64,
    /// Wall-clock seconds measured.
    pub elapsed_s: f64,
    /// Completed requests per second.
    pub throughput_rps: f64,
}

/// Runs `op(client, iteration) -> Ok/Err` from `clients` threads in a
/// closed loop for `duration`, and aggregates the counts. `op` must be
/// cheap to call repeatedly; errors are counted, not fatal.
pub fn closed_loop<F>(clients: usize, duration: std::time::Duration, op: F) -> LoadReport
where
    F: Fn(usize, u64) -> bool + Sync,
{
    use std::time::Instant;
    let start = Instant::now();
    let (completed, errored) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let op = &op;
                scope.spawn(move || {
                    let mut done = 0u64;
                    let mut failed = 0u64;
                    let mut i = 0u64;
                    while start.elapsed() < duration {
                        if op(c, i) {
                            done += 1;
                        } else {
                            failed += 1;
                        }
                        i += 1;
                    }
                    (done, failed)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load client panicked"))
            .fold((0u64, 0u64), |(a, b), (c, d)| (a + c, b + d))
    });
    let elapsed_s = start.elapsed().as_secs_f64();
    LoadReport {
        clients,
        completed,
        errored,
        elapsed_s,
        throughput_rps: completed as f64 / elapsed_s,
    }
}

/// Serializes an experiment result under `target/experiments/`.
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    let dir = PathBuf::from("target/experiments");
    let _ = fs::create_dir_all(&dir);
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = fs::write(&path, json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("[saved {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_mode_options_scale() {
        let q = RunMode::Quick.gen_options(1);
        let f = RunMode::Full.gen_options(1);
        assert!(f.train > q.train && f.test > q.test);
    }

    #[test]
    fn table_alphabets_are_paper_order() {
        let labels: Vec<String> = table_alphabets().iter().map(|a| a.label()).collect();
        assert_eq!(labels, vec!["4 {1,3,5,7}", "2 {1,3}", "1 {1}"]);
    }
}
