//! The CI perf-regression comparator behind the `bench-regression` job.
//!
//! The checked-in `BENCH_*.json` files are the performance baselines of
//! record. CI re-runs the bench binaries in `--quick` mode and compares
//! every *throughput-shaped* metric of the fresh run against the
//! baseline with a relative noise tolerance; a metric that fell by more
//! than the tolerance — or disappeared entirely — fails the build.
//!
//! The comparison logic lives here (not in workflow YAML) so it is unit
//! tested like any other code; the `regression_gate` binary is a thin
//! argv/exit-code wrapper around [`compare`].
//!
//! Metrics are extracted *structurally*: any numeric field whose key is
//! in [`THROUGHPUT_KEYS`] counts, wherever it sits in the document, and
//! its identity is the path of object keys leading to it. Array elements
//! are labelled by their identifying fields (`benchmark`, `alphabet`,
//! `mode`, `threads`, …) rather than position, so reordering rows — or
//! appending new ones — never mis-pairs baseline and current values.

use serde::Value;

/// Keys whose numeric values are throughput-shaped (higher is better).
/// Latencies and counters are deliberately excluded: they need opposite
/// polarity and absolute thresholds, and the gate's job is throughput.
pub const THROUGHPUT_KEYS: &[&str] = &[
    "batched_ips",
    "cold_ips",
    "throughput_rps",
    "predict_rps",
    "ips",
];

/// Keys that identify an array element (used to label rows stably).
const ID_KEYS: &[&str] = &[
    "benchmark",
    "alphabet",
    "mode",
    "model",
    "bits",
    "threads",
    "parallelism",
    "batch",
    "queue_capacity",
    "clients",
];

/// One extracted throughput metric.
#[derive(Clone, Debug, PartialEq)]
pub struct Metric {
    /// Stable identity: object keys and row labels joined with `/`.
    pub path: String,
    /// The metric value (inferences/requests per second).
    pub value: f64,
}

fn numeric(v: &Value) -> Option<f64> {
    match v {
        Value::I64(n) => Some(*n as f64),
        Value::U64(n) => Some(*n as f64),
        Value::F64(f) => Some(*f),
        _ => None,
    }
}

/// A stable label for an array element: its identifying fields when it
/// is an object (`benchmark=Digit-8bit,alphabet=1 {1}`), else its index.
fn element_label(v: &Value, index: usize) -> String {
    if let Some(entries) = v.as_object() {
        let ids: Vec<String> = ID_KEYS
            .iter()
            .filter_map(|key| {
                entries
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|(k, v)| match v {
                        Value::Str(s) => format!("{k}={s}"),
                        other => format!("{k}={}", numeric(other).unwrap_or(f64::NAN)),
                    })
            })
            .collect();
        if !ids.is_empty() {
            return ids.join(",");
        }
    }
    index.to_string()
}

fn walk(v: &Value, path: &str, out: &mut Vec<Metric>) {
    match v {
        Value::Object(entries) => {
            for (key, child) in entries {
                let child_path = if path.is_empty() {
                    key.clone()
                } else {
                    format!("{path}/{key}")
                };
                if THROUGHPUT_KEYS.contains(&key.as_str()) {
                    if let Some(value) = numeric(child) {
                        out.push(Metric {
                            path: child_path,
                            value,
                        });
                        continue;
                    }
                }
                walk(child, &child_path, out);
            }
        }
        Value::Array(items) => {
            for (i, item) in items.iter().enumerate() {
                let label = element_label(item, i);
                let child_path = if path.is_empty() {
                    format!("[{label}]")
                } else {
                    format!("{path}/[{label}]")
                };
                walk(item, &child_path, out);
            }
        }
        _ => {}
    }
}

/// Extracts every throughput metric from a bench JSON document.
pub fn extract_metrics(doc: &Value) -> Vec<Metric> {
    let mut out = Vec::new();
    walk(doc, "", &mut out);
    out
}

/// One metric that fell below the tolerance band.
#[derive(Clone, Debug)]
pub struct Finding {
    /// The metric's stable path.
    pub path: String,
    /// Baseline value.
    pub baseline: f64,
    /// Freshly measured value.
    pub current: f64,
    /// `current / baseline` (< 1 means slower).
    pub ratio: f64,
}

/// Outcome of comparing one current document against its baseline.
#[derive(Clone, Debug, Default)]
pub struct Comparison {
    /// Metrics that regressed beyond the tolerance.
    pub regressions: Vec<Finding>,
    /// Baseline metrics absent from the current run — treated as
    /// failures, so a bench surface cannot silently rot away.
    pub missing: Vec<String>,
    /// Metrics present in both documents.
    pub compared: usize,
    /// Compared metrics that improved beyond the tolerance (informational).
    pub improved: usize,
}

impl Comparison {
    /// `true` when nothing regressed and nothing went missing.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty() && self.missing.is_empty()
    }
}

/// Compares `current` against `baseline` with a relative `tolerance`
/// (`0.25` = a metric may fall to 75% of its baseline before failing —
/// wide enough to absorb shared-runner noise, tight enough to catch a
/// real engine regression). Metrics new in `current` pass silently —
/// they become binding once the refreshed baseline is checked in.
///
/// # Panics
///
/// Panics if `tolerance` is not in `[0, 1)`.
pub fn compare(baseline: &Value, current: &Value, tolerance: f64) -> Comparison {
    assert!(
        (0.0..1.0).contains(&tolerance),
        "tolerance must be a fraction in [0, 1)"
    );
    let base_metrics = extract_metrics(baseline);
    let cur_metrics = extract_metrics(current);
    let mut cmp = Comparison::default();
    for base in &base_metrics {
        let Some(cur) = cur_metrics.iter().find(|m| m.path == base.path) else {
            cmp.missing.push(base.path.clone());
            continue;
        };
        cmp.compared += 1;
        // A zero/negative baseline can't anchor a ratio; count it as
        // compared but never as a regression (quick-mode benches can
        // legitimately record 0.0 for an unexercised path).
        if base.value <= 0.0 {
            continue;
        }
        let ratio = cur.value / base.value;
        if ratio < 1.0 - tolerance {
            cmp.regressions.push(Finding {
                path: base.path.clone(),
                baseline: base.value,
                current: cur.value,
                ratio,
            });
        } else if ratio > 1.0 + tolerance {
            cmp.improved += 1;
        }
    }
    cmp.regressions.sort_by(|a, b| {
        a.ratio
            .partial_cmp(&b.ratio)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    cmp
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Value {
        serde_json::from_str(s).expect("test JSON parses")
    }

    const BASELINE: &str = r#"[
        {"benchmark": "A", "alphabet": "1 {1}", "batched_ips": 1000.0, "cold_ips": 100.0, "macs": 5},
        {"benchmark": "B", "alphabet": "2 {1,3}", "batched_ips": 2000.0, "cold_ips": 150.0, "macs": 9}
    ]"#;

    #[test]
    fn extracts_throughput_keys_with_stable_row_labels() {
        let metrics = extract_metrics(&parse(BASELINE));
        let paths: Vec<&str> = metrics.iter().map(|m| m.path.as_str()).collect();
        assert_eq!(
            paths,
            vec![
                "[benchmark=A,alphabet=1 {1}]/batched_ips",
                "[benchmark=A,alphabet=1 {1}]/cold_ips",
                "[benchmark=B,alphabet=2 {1,3}]/batched_ips",
                "[benchmark=B,alphabet=2 {1,3}]/cold_ips",
            ]
        );
        assert_eq!(metrics[0].value, 1000.0);
        // `macs` is not throughput-shaped and must not be gated.
        assert!(!paths.iter().any(|p| p.contains("macs")));
    }

    #[test]
    fn row_reordering_does_not_mispair_metrics() {
        let reordered = r#"[
            {"benchmark": "B", "alphabet": "2 {1,3}", "batched_ips": 2000.0, "cold_ips": 150.0},
            {"benchmark": "A", "alphabet": "1 {1}", "batched_ips": 1000.0, "cold_ips": 100.0}
        ]"#;
        let cmp = compare(&parse(BASELINE), &parse(reordered), 0.25);
        assert!(cmp.passed(), "{cmp:?}");
        assert_eq!(cmp.compared, 4);
    }

    #[test]
    fn within_tolerance_noise_passes() {
        let noisy = r#"[
            {"benchmark": "A", "alphabet": "1 {1}", "batched_ips": 800.0, "cold_ips": 95.0},
            {"benchmark": "B", "alphabet": "2 {1,3}", "batched_ips": 1600.0, "cold_ips": 140.0}
        ]"#;
        let cmp = compare(&parse(BASELINE), &parse(noisy), 0.25);
        assert!(cmp.passed(), "-20% sits inside the ±25% band: {cmp:?}");
    }

    #[test]
    fn regression_beyond_tolerance_fails_and_ranks_worst_first() {
        let slow = r#"[
            {"benchmark": "A", "alphabet": "1 {1}", "batched_ips": 400.0, "cold_ips": 100.0},
            {"benchmark": "B", "alphabet": "2 {1,3}", "batched_ips": 1400.0, "cold_ips": 150.0}
        ]"#;
        let cmp = compare(&parse(BASELINE), &parse(slow), 0.25);
        assert!(!cmp.passed());
        assert_eq!(cmp.regressions.len(), 2);
        // Worst ratio first: A fell to 40%, B to 70%.
        assert!(cmp.regressions[0].path.contains("benchmark=A"));
        assert!((cmp.regressions[0].ratio - 0.4).abs() < 1e-9);
        assert!(cmp.regressions[1].path.contains("benchmark=B"));
    }

    #[test]
    fn missing_metric_fails_new_metric_passes() {
        let dropped_and_added = r#"[
            {"benchmark": "A", "alphabet": "1 {1}", "batched_ips": 1000.0},
            {"benchmark": "B", "alphabet": "2 {1,3}", "batched_ips": 2000.0, "cold_ips": 150.0,
             "throughput_rps": 99.0}
        ]"#;
        let cmp = compare(&parse(BASELINE), &parse(dropped_and_added), 0.25);
        assert_eq!(
            cmp.missing,
            vec!["[benchmark=A,alphabet=1 {1}]/cold_ips".to_owned()]
        );
        assert!(!cmp.passed(), "a dropped metric must fail the gate");
    }

    #[test]
    fn zero_baseline_never_divides_or_fails() {
        let base = parse(r#"{"predict_rps": 0.0}"#);
        let cur = parse(r#"{"predict_rps": 0.0}"#);
        let cmp = compare(&base, &cur, 0.25);
        assert!(cmp.passed());
        assert_eq!(cmp.compared, 1);
    }

    #[test]
    fn nested_documents_are_walked() {
        let base = parse(r#"{"modes": [{"mode": "micro", "load": {"throughput_rps": 500.0}}]}"#);
        let cur = parse(r#"{"modes": [{"mode": "micro", "load": {"throughput_rps": 100.0}}]}"#);
        let cmp = compare(&base, &cur, 0.25);
        assert_eq!(cmp.regressions.len(), 1);
        assert_eq!(
            cmp.regressions[0].path,
            "modes/[mode=micro]/load/throughput_rps"
        );
    }

    #[test]
    fn improvements_are_counted_not_failed() {
        let cur = r#"[
            {"benchmark": "A", "alphabet": "1 {1}", "batched_ips": 5000.0, "cold_ips": 100.0},
            {"benchmark": "B", "alphabet": "2 {1,3}", "batched_ips": 2000.0, "cold_ips": 150.0}
        ]"#;
        let cmp = compare(&parse(BASELINE), &parse(cur), 0.25);
        assert!(cmp.passed());
        assert_eq!(cmp.improved, 1);
    }
}
