//! The CI perf-regression comparator behind the `bench-regression` job.
//!
//! The checked-in `BENCH_*.json` files are the performance baselines of
//! record. CI re-runs the bench binaries in `--quick` mode and compares
//! every *throughput-shaped* metric of the fresh run against the
//! baseline with a relative noise tolerance; a metric that fell by more
//! than the tolerance — or disappeared entirely — fails the build.
//!
//! The comparison logic lives here (not in workflow YAML) so it is unit
//! tested like any other code; the `regression_gate` binary is a thin
//! argv/exit-code wrapper around [`compare`].
//!
//! Metrics are extracted *structurally*: any numeric field whose key is
//! in [`THROUGHPUT_KEYS`] counts, wherever it sits in the document, and
//! its identity is the path of object keys leading to it. Array elements
//! are labelled by their identifying fields (`benchmark`, `alphabet`,
//! `mode`, `threads`, …) rather than position, so reordering rows — or
//! appending new ones — never mis-pairs baseline and current values.

use serde::Value;

/// Keys whose numeric values are throughput-shaped (higher is better).
/// Latencies and counters are deliberately excluded: they need opposite
/// polarity and absolute thresholds, and the gate's job is throughput.
pub const THROUGHPUT_KEYS: &[&str] = &[
    "batched_ips",
    "cold_ips",
    "throughput_rps",
    "predict_rps",
    "ips",
];

/// Keys that identify an array element (used to label rows stably).
const ID_KEYS: &[&str] = &[
    "benchmark",
    "alphabet",
    "mode",
    "model",
    "bits",
    "threads",
    "parallelism",
    "batch",
    "queue_capacity",
    "clients",
    "phase",
    "node",
];

/// One extracted throughput metric.
#[derive(Clone, Debug, PartialEq)]
pub struct Metric {
    /// Stable identity: object keys and row labels joined with `/`.
    pub path: String,
    /// The metric value (inferences/requests per second).
    pub value: f64,
    /// The MAC-kernel label of the nearest enclosing row that records
    /// one (`"scalar"`/`"swar"`/`"avx2"`), if any. A baseline and
    /// current metric measured under *different* kernels are
    /// incomparable — a kernel switch is a configuration change, not a
    /// regression — so [`compare`] skips such pairs instead of gating
    /// them. `kernel` is deliberately **not** part of the row identity:
    /// paths stay stable across kernel changes, so a switched row pairs
    /// up (and is then skipped) rather than reported missing.
    pub kernel: Option<String>,
    /// The layout label of the nearest enclosing row that records one
    /// (`"row"`/`"batch"`), if any — the third tuner axis, handled
    /// exactly like `kernel`: mismatched labels make a pair
    /// incomparable, and the label is not part of the row identity.
    pub layout: Option<String>,
}

fn numeric(v: &Value) -> Option<f64> {
    match v {
        Value::I64(n) => Some(*n as f64),
        Value::U64(n) => Some(*n as f64),
        Value::F64(f) => Some(*f),
        _ => None,
    }
}

/// A stable label for an array element: its identifying fields when it
/// is an object (`benchmark=Digit-8bit,alphabet=1 {1}`), else its index.
fn element_label(v: &Value, index: usize) -> String {
    if let Some(entries) = v.as_object() {
        let ids: Vec<String> = ID_KEYS
            .iter()
            .filter_map(|key| {
                entries
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|(k, v)| match v {
                        Value::Str(s) => format!("{k}={s}"),
                        other => format!("{k}={}", numeric(other).unwrap_or(f64::NAN)),
                    })
            })
            .collect();
        if !ids.is_empty() {
            return ids.join(",");
        }
    }
    index.to_string()
}

/// The object's own string field named `key`, if it records one.
fn label_of(v: &Value, key: &str) -> Option<String> {
    let entries = v.as_object()?;
    entries
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| match v {
            Value::Str(s) => Some(s.clone()),
            _ => None,
        })
}

fn walk(v: &Value, path: &str, kernel: Option<&str>, layout: Option<&str>, out: &mut Vec<Metric>) {
    match v {
        Value::Object(entries) => {
            // A row that records its kernel/layout scopes every metric
            // below it (the closest enclosing label wins, per axis).
            let own_kernel = label_of(v, "kernel");
            let kernel = own_kernel.as_deref().or(kernel);
            let own_layout = label_of(v, "layout");
            let layout = own_layout.as_deref().or(layout);
            for (key, child) in entries {
                let child_path = if path.is_empty() {
                    key.clone()
                } else {
                    format!("{path}/{key}")
                };
                if THROUGHPUT_KEYS.contains(&key.as_str()) {
                    if let Some(value) = numeric(child) {
                        out.push(Metric {
                            path: child_path,
                            value,
                            kernel: kernel.map(str::to_owned),
                            layout: layout.map(str::to_owned),
                        });
                        continue;
                    }
                }
                walk(child, &child_path, kernel, layout, out);
            }
        }
        Value::Array(items) => {
            for (i, item) in items.iter().enumerate() {
                let label = element_label(item, i);
                let child_path = if path.is_empty() {
                    format!("[{label}]")
                } else {
                    format!("{path}/[{label}]")
                };
                walk(item, &child_path, kernel, layout, out);
            }
        }
        _ => {}
    }
}

/// Extracts every throughput metric from a bench JSON document.
pub fn extract_metrics(doc: &Value) -> Vec<Metric> {
    let mut out = Vec::new();
    walk(doc, "", None, None, &mut out);
    out
}

/// One metric that fell below the tolerance band.
#[derive(Clone, Debug)]
pub struct Finding {
    /// The metric's stable path.
    pub path: String,
    /// Baseline value.
    pub baseline: f64,
    /// Freshly measured value.
    pub current: f64,
    /// `current / baseline` (< 1 means slower).
    pub ratio: f64,
}

/// Outcome of comparing one current document against its baseline.
#[derive(Clone, Debug, Default)]
pub struct Comparison {
    /// Metrics that regressed beyond the tolerance.
    pub regressions: Vec<Finding>,
    /// Baseline metrics absent from the current run — treated as
    /// failures, so a bench surface cannot silently rot away.
    pub missing: Vec<String>,
    /// Metrics present in both documents.
    pub compared: usize,
    /// Compared metrics that improved beyond the tolerance (informational).
    pub improved: usize,
    /// Metric pairs skipped because baseline and current were measured
    /// under different MAC kernels or layouts (both rows record the
    /// label and the labels differ): a kernel or layout switch changes
    /// the configuration, so the pair is incomparable rather than
    /// regressed. Informational — the gate still fails if the metric
    /// vanished outright.
    pub incomparable: usize,
}

impl Comparison {
    /// `true` when nothing regressed and nothing went missing.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty() && self.missing.is_empty()
    }

    /// `true` when the comparison passed *without comparing anything* —
    /// a pass by absence of evidence, not by evidence. In scaling-shape
    /// mode this happens when the two hosts' core classes share no
    /// multi-worker points (e.g. a baseline seeded on a 1-core
    /// container): correct by physics, but the gate is not actually
    /// guarding the metric, so callers should surface it loudly and
    /// re-seed the baseline from a core-classed runner.
    pub fn vacuous(&self) -> bool {
        self.passed() && self.compared == 0
    }
}

/// Compares `current` against `baseline` with a relative `tolerance`
/// (`0.25` = a metric may fall to 75% of its baseline before failing —
/// wide enough to absorb shared-runner noise, tight enough to catch a
/// real engine regression). Metrics new in `current` pass silently —
/// they become binding once the refreshed baseline is checked in.
///
/// # Panics
///
/// Panics if `tolerance` is not in `[0, 1)`.
pub fn compare(baseline: &Value, current: &Value, tolerance: f64) -> Comparison {
    assert!(
        (0.0..1.0).contains(&tolerance),
        "tolerance must be a fraction in [0, 1)"
    );
    let base_metrics = extract_metrics(baseline);
    let cur_metrics = extract_metrics(current);
    let mut cmp = Comparison::default();
    for base in &base_metrics {
        let Some(cur) = cur_metrics.iter().find(|m| m.path == base.path) else {
            cmp.missing.push(base.path.clone());
            continue;
        };
        if let (Some(bk), Some(ck)) = (&base.kernel, &cur.kernel) {
            if bk != ck {
                // Measured under different MAC kernels: a configuration
                // change, not a regression — skip rather than gate.
                cmp.incomparable += 1;
                continue;
            }
        }
        if let (Some(bl), Some(cl)) = (&base.layout, &cur.layout) {
            if bl != cl {
                // Measured under different layouts (row- vs
                // batch-major): same reasoning as the kernel axis.
                cmp.incomparable += 1;
                continue;
            }
        }
        cmp.compared += 1;
        // A zero/negative baseline can't anchor a ratio; count it as
        // compared but never as a regression (quick-mode benches can
        // legitimately record 0.0 for an unexercised path).
        if base.value <= 0.0 {
            continue;
        }
        let ratio = cur.value / base.value;
        if ratio < 1.0 - tolerance {
            cmp.regressions.push(Finding {
                path: base.path.clone(),
                baseline: base.value,
                current: cur.value,
                ratio,
            });
        } else if ratio > 1.0 + tolerance {
            cmp.improved += 1;
        }
    }
    cmp.regressions.sort_by(|a, b| {
        a.ratio
            .partial_cmp(&b.ratio)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    cmp
}

// ---------------------------------------------------------------------------
// Scaling-shape comparison (cross-core-class baselines)
// ---------------------------------------------------------------------------

/// One benchmark's thread-scaling curve: resolved worker count → best
/// measured ips, extracted from a `BENCH_par.json`-shaped report.
#[derive(Clone, Debug, PartialEq)]
pub struct ScalingCurve {
    /// Stable identity of the benchmark block (its ID fields).
    pub key: String,
    /// `(workers, ips)` points, ascending by workers, deduplicated by
    /// best ips (the `sequential` and a 1-core-resolved `auto` row both
    /// land on `workers == 1`).
    pub points: Vec<(usize, f64)>,
}

impl ScalingCurve {
    /// Speedup at `workers`, normalized to the curve's `workers == 1`
    /// anchor. `None` when the curve lacks the anchor or the point.
    pub fn speedup(&self, workers: usize) -> Option<f64> {
        let anchor = self.anchor()?;
        let (_, ips) = self.points.iter().find(|(w, _)| *w == workers)?;
        (anchor > 0.0).then(|| ips / anchor)
    }

    fn anchor(&self) -> Option<f64> {
        self.points
            .iter()
            .find(|(w, _)| *w == 1)
            .map(|(_, ips)| *ips)
    }
}

/// The top-level `host_cores` field of a bench report, when present.
pub fn host_cores(doc: &Value) -> Option<usize> {
    let entries = doc.as_object()?;
    entries
        .iter()
        .find(|(k, _)| k == "host_cores")
        .and_then(|(_, v)| numeric(v))
        .map(|n| n as usize)
}

/// Extracts per-benchmark scaling curves from a report shaped like
/// `BENCH_par.json`: a `benchmarks` array whose elements carry ID fields
/// plus a `rows` array of `{workers, ips}` measurements. `workers` must
/// be the *resolved* count (the par bench records what `Auto` actually
/// engaged), so curve points from different hosts pair honestly.
pub fn extract_scaling_curves(doc: &Value) -> Vec<ScalingCurve> {
    let Some(entries) = doc.as_object() else {
        return Vec::new();
    };
    let Some(benchmarks) = entries
        .iter()
        .find(|(k, _)| k == "benchmarks")
        .and_then(|(_, v)| v.as_array())
    else {
        return Vec::new();
    };
    benchmarks
        .iter()
        .enumerate()
        .map(|(i, bench)| {
            let key = element_label(bench, i);
            let mut points: Vec<(usize, f64)> = Vec::new();
            let rows = bench
                .as_object()
                .and_then(|fields| {
                    fields
                        .iter()
                        .find(|(k, _)| k == "rows")
                        .and_then(|(_, v)| v.as_array())
                })
                .unwrap_or(&[]);
            for row in rows {
                let Some(fields) = row.as_object() else {
                    continue;
                };
                let field = |name: &str| {
                    fields
                        .iter()
                        .find(|(k, _)| k == name)
                        .and_then(|(_, v)| numeric(v))
                };
                let (Some(workers), Some(ips)) = (field("workers"), field("ips")) else {
                    continue;
                };
                let workers = workers as usize;
                match points.iter_mut().find(|(w, _)| *w == workers) {
                    // Two rows can resolve to the same worker count
                    // (`sequential` and a 1-core `auto`): keep the best.
                    Some((_, best)) => *best = best.max(ips),
                    None => points.push((workers, ips)),
                }
            }
            points.sort_by_key(|(w, _)| *w);
            ScalingCurve { key, points }
        })
        .collect()
}

/// Compares thread-scaling *shape* instead of absolute ips: for every
/// benchmark, the speedup-over-`workers == 1` curves of baseline and
/// current are compared at matching worker counts, capped at the
/// smaller of the two hosts' core counts (a worker count beyond either
/// host's cores measures oversubscription, not scaling). This is the
/// comparison that stays meaningful when the baseline was recorded on a
/// different core class than the current runner.
///
/// A baseline point inside the cap that the current run no longer
/// measures is `missing` (a bench surface must not silently rot); a
/// point whose relative speedup fell below `1 - tolerance` of the
/// baseline's is a regression. Reports without `host_cores` yield a
/// `missing` finding for that field.
///
/// # Panics
///
/// Panics if `tolerance` is not in `[0, 1)`.
pub fn compare_scaling_shape(baseline: &Value, current: &Value, tolerance: f64) -> Comparison {
    assert!(
        (0.0..1.0).contains(&tolerance),
        "tolerance must be a fraction in [0, 1)"
    );
    let mut cmp = Comparison::default();
    let (Some(base_cores), Some(cur_cores)) = (host_cores(baseline), host_cores(current)) else {
        cmp.missing.push("host_cores".to_owned());
        return cmp;
    };
    let cap = base_cores.min(cur_cores);
    let cur_curves = extract_scaling_curves(current);
    for base in extract_scaling_curves(baseline) {
        let Some(cur) = cur_curves.iter().find(|c| c.key == base.key) else {
            cmp.missing.push(format!("[{}]", base.key));
            continue;
        };
        let Some(base_anchor) = base.anchor() else {
            // No workers==1 row to normalize against: nothing to compare
            // for this benchmark (quick-mode reports always record one).
            continue;
        };
        if base_anchor <= 0.0 {
            continue;
        }
        for &(workers, ips) in &base.points {
            if workers <= 1 || workers > cap {
                continue;
            }
            let base_speedup = ips / base_anchor;
            let Some(cur_speedup) = cur.speedup(workers) else {
                cmp.missing
                    .push(format!("[{}]/speedup@{workers}", base.key));
                continue;
            };
            cmp.compared += 1;
            if base_speedup <= 0.0 {
                continue;
            }
            let ratio = cur_speedup / base_speedup;
            if ratio < 1.0 - tolerance {
                cmp.regressions.push(Finding {
                    path: format!("[{}]/speedup@{workers}", base.key),
                    baseline: base_speedup,
                    current: cur_speedup,
                    ratio,
                });
            } else if ratio > 1.0 + tolerance {
                cmp.improved += 1;
            }
        }
    }
    cmp.regressions.sort_by(|a, b| {
        a.ratio
            .partial_cmp(&b.ratio)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    cmp
}

/// How [`compare_report`] compared a file (for gate logs).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CompareMode {
    /// Absolute throughput metrics ([`compare`]).
    Absolute,
    /// Thread-scaling shape ([`compare_scaling_shape`]).
    ScalingShape,
}

/// The gate's entry point: picks the right comparison for one report
/// pair. With `scaling_shape` enabled and both reports carrying a
/// `host_cores` field that *differs*, absolute ips are meaningless —
/// the baseline was measured on a different core class — so the
/// thread-scaling shape is compared instead; in every other case the
/// absolute comparison runs (same core class ⇒ like against like).
pub fn compare_report(
    baseline: &Value,
    current: &Value,
    tolerance: f64,
    scaling_shape: bool,
) -> (Comparison, CompareMode) {
    if scaling_shape {
        if let (Some(base_cores), Some(cur_cores)) = (host_cores(baseline), host_cores(current)) {
            if base_cores != cur_cores {
                return (
                    compare_scaling_shape(baseline, current, tolerance),
                    CompareMode::ScalingShape,
                );
            }
        }
    }
    (compare(baseline, current, tolerance), CompareMode::Absolute)
}

// ---------------------------------------------------------------------------
// Observability overhead contracts (BENCH_obs.json)
// ---------------------------------------------------------------------------

/// One tracing-overhead contract found in a bench report, with its
/// measurements.
///
/// A contract is any JSON object carrying numeric `off_ips`,
/// `spans_ips` and `max_overhead` fields: the report promises that full
/// span tracing (`ObsLevel::Spans`) costs at most `max_overhead` (a
/// fraction) of the tracing-off throughput. Unlike [`compare`], the
/// check is *intrinsic to one run* — both sides were measured
/// interleaved in the same process on the same host, so no baseline
/// pairing or cross-run noise tolerance applies; the contract's own
/// bound is the whole verdict.
#[derive(Clone, Debug)]
pub struct OverheadContract {
    /// Path of the contract object within the document.
    pub path: String,
    /// Throughput with the observability plane off.
    pub off_ips: f64,
    /// Throughput with full span tracing.
    pub spans_ips: f64,
    /// Measured overhead fraction `1 - spans_ips / off_ips` (negative
    /// when the spans window happened to measure faster — noise).
    pub overhead: f64,
    /// The promised overhead ceiling (e.g. `0.02` for the 2% budget).
    pub max_overhead: f64,
}

impl OverheadContract {
    /// `true` when the measured overhead is within the promised ceiling.
    pub fn holds(&self) -> bool {
        self.overhead <= self.max_overhead
    }
}

fn field_f64(entries: &[(String, Value)], key: &str) -> Option<f64> {
    entries
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| numeric(v))
}

fn walk_contracts(v: &Value, path: &str, out: &mut Vec<OverheadContract>) {
    match v {
        Value::Object(entries) => {
            if let (Some(off_ips), Some(spans_ips), Some(max_overhead)) = (
                field_f64(entries, "off_ips"),
                field_f64(entries, "spans_ips"),
                field_f64(entries, "max_overhead"),
            ) {
                // A zero/negative off throughput can't anchor a
                // fraction; such a contract records zero overhead (a
                // quick-mode report from an unexercised path must not
                // fail the gate on a division artifact).
                let overhead = if off_ips > 0.0 {
                    1.0 - spans_ips / off_ips
                } else {
                    0.0
                };
                out.push(OverheadContract {
                    path: path.to_owned(),
                    off_ips,
                    spans_ips,
                    overhead,
                    max_overhead,
                });
            }
            for (key, child) in entries {
                let child_path = if path.is_empty() {
                    key.clone()
                } else {
                    format!("{path}/{key}")
                };
                walk_contracts(child, &child_path, out);
            }
        }
        Value::Array(items) => {
            for (index, item) in items.iter().enumerate() {
                let child_path = format!("{path}[{}]", element_label(item, index));
                walk_contracts(item, &child_path, out);
            }
        }
        _ => {}
    }
}

/// Extracts every overhead contract from a bench report (usually the
/// single `overhead_contract` object of `BENCH_obs.json`, but the scan
/// is structural like [`extract_metrics`], so reports may carry any
/// number anywhere). The gate fails when any extracted contract does
/// not [`hold`](OverheadContract::holds).
pub fn check_overhead_contracts(doc: &Value) -> Vec<OverheadContract> {
    let mut out = Vec::new();
    walk_contracts(doc, "", &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Value {
        serde_json::from_str(s).expect("test JSON parses")
    }

    const BASELINE: &str = r#"[
        {"benchmark": "A", "alphabet": "1 {1}", "batched_ips": 1000.0, "cold_ips": 100.0, "macs": 5},
        {"benchmark": "B", "alphabet": "2 {1,3}", "batched_ips": 2000.0, "cold_ips": 150.0, "macs": 9}
    ]"#;

    #[test]
    fn extracts_throughput_keys_with_stable_row_labels() {
        let metrics = extract_metrics(&parse(BASELINE));
        let paths: Vec<&str> = metrics.iter().map(|m| m.path.as_str()).collect();
        assert_eq!(
            paths,
            vec![
                "[benchmark=A,alphabet=1 {1}]/batched_ips",
                "[benchmark=A,alphabet=1 {1}]/cold_ips",
                "[benchmark=B,alphabet=2 {1,3}]/batched_ips",
                "[benchmark=B,alphabet=2 {1,3}]/cold_ips",
            ]
        );
        assert_eq!(metrics[0].value, 1000.0);
        // `macs` is not throughput-shaped and must not be gated.
        assert!(!paths.iter().any(|p| p.contains("macs")));
    }

    #[test]
    fn row_reordering_does_not_mispair_metrics() {
        let reordered = r#"[
            {"benchmark": "B", "alphabet": "2 {1,3}", "batched_ips": 2000.0, "cold_ips": 150.0},
            {"benchmark": "A", "alphabet": "1 {1}", "batched_ips": 1000.0, "cold_ips": 100.0}
        ]"#;
        let cmp = compare(&parse(BASELINE), &parse(reordered), 0.25);
        assert!(cmp.passed(), "{cmp:?}");
        assert_eq!(cmp.compared, 4);
    }

    #[test]
    fn within_tolerance_noise_passes() {
        let noisy = r#"[
            {"benchmark": "A", "alphabet": "1 {1}", "batched_ips": 800.0, "cold_ips": 95.0},
            {"benchmark": "B", "alphabet": "2 {1,3}", "batched_ips": 1600.0, "cold_ips": 140.0}
        ]"#;
        let cmp = compare(&parse(BASELINE), &parse(noisy), 0.25);
        assert!(cmp.passed(), "-20% sits inside the ±25% band: {cmp:?}");
    }

    #[test]
    fn regression_beyond_tolerance_fails_and_ranks_worst_first() {
        let slow = r#"[
            {"benchmark": "A", "alphabet": "1 {1}", "batched_ips": 400.0, "cold_ips": 100.0},
            {"benchmark": "B", "alphabet": "2 {1,3}", "batched_ips": 1400.0, "cold_ips": 150.0}
        ]"#;
        let cmp = compare(&parse(BASELINE), &parse(slow), 0.25);
        assert!(!cmp.passed());
        assert_eq!(cmp.regressions.len(), 2);
        // Worst ratio first: A fell to 40%, B to 70%.
        assert!(cmp.regressions[0].path.contains("benchmark=A"));
        assert!((cmp.regressions[0].ratio - 0.4).abs() < 1e-9);
        assert!(cmp.regressions[1].path.contains("benchmark=B"));
    }

    #[test]
    fn missing_metric_fails_new_metric_passes() {
        let dropped_and_added = r#"[
            {"benchmark": "A", "alphabet": "1 {1}", "batched_ips": 1000.0},
            {"benchmark": "B", "alphabet": "2 {1,3}", "batched_ips": 2000.0, "cold_ips": 150.0,
             "throughput_rps": 99.0}
        ]"#;
        let cmp = compare(&parse(BASELINE), &parse(dropped_and_added), 0.25);
        assert_eq!(
            cmp.missing,
            vec!["[benchmark=A,alphabet=1 {1}]/cold_ips".to_owned()]
        );
        assert!(!cmp.passed(), "a dropped metric must fail the gate");
    }

    #[test]
    fn zero_baseline_never_divides_or_fails() {
        let base = parse(r#"{"predict_rps": 0.0}"#);
        let cur = parse(r#"{"predict_rps": 0.0}"#);
        let cmp = compare(&base, &cur, 0.25);
        assert!(cmp.passed());
        assert_eq!(cmp.compared, 1);
    }

    #[test]
    fn nested_documents_are_walked() {
        let base = parse(r#"{"modes": [{"mode": "micro", "load": {"throughput_rps": 500.0}}]}"#);
        let cur = parse(r#"{"modes": [{"mode": "micro", "load": {"throughput_rps": 100.0}}]}"#);
        let cmp = compare(&base, &cur, 0.25);
        assert_eq!(cmp.regressions.len(), 1);
        assert_eq!(
            cmp.regressions[0].path,
            "modes/[mode=micro]/load/throughput_rps"
        );
    }

    #[test]
    fn kernel_mismatched_rows_are_incomparable_not_regressed() {
        let base = parse(
            r#"[
            {"benchmark": "A", "kernel": "scalar", "batched_ips": 1000.0},
            {"benchmark": "B", "kernel": "avx2", "batched_ips": 2000.0}
        ]"#,
        );
        // A's kernel switched (scalar -> avx2) and its throughput
        // "fell" 10x: incomparable, not a regression. B kept its kernel
        // and genuinely collapsed: still a regression.
        let cur = parse(
            r#"[
            {"benchmark": "A", "kernel": "avx2", "batched_ips": 100.0},
            {"benchmark": "B", "kernel": "avx2", "batched_ips": 900.0}
        ]"#,
        );
        let cmp = compare(&base, &cur, 0.25);
        assert_eq!(cmp.incomparable, 1);
        assert_eq!(cmp.compared, 1);
        assert_eq!(cmp.regressions.len(), 1);
        assert!(cmp.regressions[0].path.contains("benchmark=B"));
        // The kernel label scopes but does not rename rows: nothing is
        // "missing" just because a kernel switched.
        assert!(cmp.missing.is_empty());
    }

    #[test]
    fn kernel_label_scopes_nested_metrics_and_absent_labels_compare() {
        // The label on an enclosing row scopes metrics nested below it
        // (serve's ModeRow.kernel scoping load/throughput_rps)...
        let base = parse(
            r#"{"modes": [{"mode": "m", "kernel": "swar", "load": {"throughput_rps": 500.0}}]}"#,
        );
        let cur = parse(
            r#"{"modes": [{"mode": "m", "kernel": "avx2", "load": {"throughput_rps": 100.0}}]}"#,
        );
        let cmp = compare(&base, &cur, 0.25);
        assert_eq!(cmp.incomparable, 1);
        assert!(cmp.passed(), "{cmp:?}");
        // ...while a pre-kernel baseline (no labels) keeps comparing
        // absolutely against a labelled current run.
        let old_base = parse(r#"{"modes": [{"mode": "m", "load": {"throughput_rps": 500.0}}]}"#);
        let cmp = compare(&old_base, &cur, 0.25);
        assert_eq!(cmp.compared, 1);
        assert_eq!(cmp.regressions.len(), 1);
    }

    #[test]
    fn layout_mismatched_rows_are_incomparable_not_regressed() {
        let base = parse(
            r#"[
            {"benchmark": "A", "kernel": "swar", "layout": "row", "batched_ips": 1000.0},
            {"benchmark": "B", "kernel": "swar", "layout": "batch", "batched_ips": 2000.0}
        ]"#,
        );
        // A's layout flipped (row -> batch) and its throughput "fell"
        // 10x: incomparable, not a regression. B kept both axes and
        // genuinely collapsed: still a regression.
        let cur = parse(
            r#"[
            {"benchmark": "A", "kernel": "swar", "layout": "batch", "batched_ips": 100.0},
            {"benchmark": "B", "kernel": "swar", "layout": "batch", "batched_ips": 900.0}
        ]"#,
        );
        let cmp = compare(&base, &cur, 0.25);
        assert_eq!(cmp.incomparable, 1);
        assert_eq!(cmp.compared, 1);
        assert_eq!(cmp.regressions.len(), 1);
        assert!(cmp.regressions[0].path.contains("benchmark=B"));
        // The layout label scopes but does not rename rows: nothing is
        // "missing" just because the layout axis flipped.
        assert!(cmp.missing.is_empty());
    }

    #[test]
    fn layout_label_scopes_nested_metrics_and_absent_labels_compare() {
        // An enclosing row's layout label scopes nested metrics, and
        // the axes are independent: same kernel but flipped layout is
        // already incomparable...
        let base = parse(
            r#"{"modes": [{"mode": "m", "kernel": "swar", "layout": "row",
                           "load": {"throughput_rps": 500.0}}]}"#,
        );
        let cur = parse(
            r#"{"modes": [{"mode": "m", "kernel": "swar", "layout": "batch",
                           "load": {"throughput_rps": 100.0}}]}"#,
        );
        let cmp = compare(&base, &cur, 0.25);
        assert_eq!(cmp.incomparable, 1);
        assert!(cmp.passed(), "{cmp:?}");
        // ...while a pre-layout baseline (kernel label only) keeps
        // comparing absolutely against a layout-labelled current run.
        let old_base = parse(
            r#"{"modes": [{"mode": "m", "kernel": "swar", "load": {"throughput_rps": 500.0}}]}"#,
        );
        let cmp = compare(&old_base, &cur, 0.25);
        assert_eq!(cmp.compared, 1);
        assert_eq!(cmp.regressions.len(), 1);
    }

    #[test]
    fn cluster_rows_are_labelled_by_mode_and_phase() {
        // The BENCH_cluster.json surface: the same wire mode appears
        // once per phase, so `mode` alone would collide — `phase` must
        // join the row identity for the gate to pair rows stably.
        let base = parse(
            r#"{"active": [
                {"mode": "binary", "phase": "steady",   "predict_rps": 900.0},
                {"mode": "binary", "phase": "failover", "predict_rps": 700.0}
            ]}"#,
        );
        let metrics = extract_metrics(&base);
        let paths: Vec<&str> = metrics.iter().map(|m| m.path.as_str()).collect();
        assert_eq!(
            paths,
            vec![
                "active/[mode=binary,phase=steady]/predict_rps",
                "active/[mode=binary,phase=failover]/predict_rps",
            ]
        );
        // Reordering phases must not mispair: steady regressing to
        // failover's throughput is fine, failover collapsing is not.
        let cur = parse(
            r#"{"active": [
                {"mode": "binary", "phase": "failover", "predict_rps": 100.0},
                {"mode": "binary", "phase": "steady",   "predict_rps": 880.0}
            ]}"#,
        );
        let cmp = compare(&base, &cur, 0.25);
        assert_eq!(cmp.regressions.len(), 1);
        assert!(cmp.regressions[0].path.contains("phase=failover"));
    }

    #[test]
    fn cluster_node_rows_are_labelled_but_not_gated() {
        // Per-backend rows are identified by `node`; their counters and
        // latencies are informational — only throughput keys gate.
        let doc = parse(
            r#"{"nodes": [
                {"node": "127.0.0.1:7001", "requests": 5000, "p99_us": 900},
                {"node": "127.0.0.1:7002", "requests": 12, "p99_us": 100}
            ]}"#,
        );
        assert!(extract_metrics(&doc).is_empty());
        assert_eq!(
            element_label(&doc.as_object().unwrap()[0].1.as_array().unwrap()[0], 0),
            "node=127.0.0.1:7001"
        );
    }

    #[test]
    fn improvements_are_counted_not_failed() {
        let cur = r#"[
            {"benchmark": "A", "alphabet": "1 {1}", "batched_ips": 5000.0, "cold_ips": 100.0},
            {"benchmark": "B", "alphabet": "2 {1,3}", "batched_ips": 2000.0, "cold_ips": 150.0}
        ]"#;
        let cmp = compare(&parse(BASELINE), &parse(cur), 0.25);
        assert!(cmp.passed());
        assert_eq!(cmp.improved, 1);
    }

    // -- scaling shape -------------------------------------------------

    /// A synthetic BENCH_par-shaped report: one benchmark, a thread
    /// sweep with the given `(workers, ips)` points.
    fn par_report(host_cores: usize, points: &[(usize, f64)]) -> Value {
        let rows: Vec<String> = points
            .iter()
            .map(|(w, ips)| {
                format!(r#"{{"parallelism": "threads({w})", "workers": {w}, "ips": {ips}}}"#)
            })
            .collect();
        parse(&format!(
            r#"{{"host_cores": {host_cores}, "quick": true, "benchmarks": [
                {{"benchmark": "Digit", "bits": 8, "alphabet": "1 {{1}}", "rows": [{}]}}
            ]}}"#,
            rows.join(",")
        ))
    }

    #[test]
    fn scaling_curves_extract_resolved_workers_and_dedupe_by_best() {
        // `sequential` and a 1-core-resolved `auto` both land on w=1.
        let doc = parse(
            r#"{"host_cores": 8, "benchmarks": [{"benchmark": "D", "bits": 8, "rows": [
                {"parallelism": "sequential", "workers": 1, "ips": 100.0},
                {"parallelism": "threads(4)", "workers": 4, "ips": 350.0},
                {"parallelism": "auto", "workers": 1, "ips": 110.0}
            ]}]}"#,
        );
        assert_eq!(host_cores(&doc), Some(8));
        let curves = extract_scaling_curves(&doc);
        assert_eq!(curves.len(), 1);
        assert_eq!(curves[0].key, "benchmark=D,bits=8");
        assert_eq!(curves[0].points, vec![(1, 110.0), (4, 350.0)]);
        assert!((curves[0].speedup(4).unwrap() - 350.0 / 110.0).abs() < 1e-12);
    }

    #[test]
    fn matching_shape_across_core_classes_passes() {
        // 8-core baseline, 4-core current: absolute ips differ wildly
        // (different silicon), but the speedup curve matches where the
        // worker counts overlap (cap = 4).
        let base = par_report(8, &[(1, 100.0), (2, 190.0), (4, 370.0), (8, 700.0)]);
        let cur = par_report(4, &[(1, 1000.0), (2, 1850.0), (4, 3600.0)]);
        let cmp = compare_scaling_shape(&base, &cur, 0.25);
        assert!(cmp.passed(), "{cmp:?}");
        // w=2 and w=4 compared; w=8 is beyond the current host's cores.
        assert_eq!(cmp.compared, 2);
    }

    #[test]
    fn collapsed_scaling_fails_the_shape_gate() {
        // The pool regressed: threads no longer help at all.
        let base = par_report(8, &[(1, 100.0), (2, 190.0), (4, 370.0)]);
        let cur = par_report(8, &[(1, 100.0), (2, 100.0), (4, 95.0)]);
        let cmp = compare_scaling_shape(&base, &cur, 0.25);
        assert!(!cmp.passed());
        assert_eq!(cmp.regressions.len(), 2);
        // Worst ratio first: w=4 collapsed to 0.95/3.7 of baseline.
        assert!(cmp.regressions[0].path.contains("speedup@4"));
    }

    #[test]
    fn one_core_host_trivially_passes_shape() {
        // A 1-core runner cannot measure scaling; the cap leaves
        // nothing to compare and the gate must not fail on physics.
        let base = par_report(8, &[(1, 100.0), (2, 190.0), (4, 370.0)]);
        let cur = par_report(1, &[(1, 950.0)]);
        let cmp = compare_scaling_shape(&base, &cur, 0.25);
        assert!(cmp.passed(), "{cmp:?}");
        assert_eq!(cmp.compared, 0);
        // ...but the pass is flagged as vacuous, so the gate can warn
        // that the baseline needs re-seeding on a core-classed runner.
        assert!(cmp.vacuous());
        let real = par_report(4, &[(1, 1000.0), (2, 1850.0)]);
        assert!(!compare_scaling_shape(&base, &real, 0.25).vacuous());
    }

    #[test]
    fn vanished_benchmark_or_point_is_missing_in_shape_mode() {
        let base = par_report(8, &[(1, 100.0), (2, 190.0), (4, 370.0)]);
        // Current dropped the w=4 measurement entirely.
        let cur = par_report(8, &[(1, 100.0), (2, 190.0)]);
        let cmp = compare_scaling_shape(&base, &cur, 0.25);
        assert_eq!(
            cmp.missing,
            vec!["[benchmark=Digit,alphabet=1 {1},bits=8]/speedup@4".to_owned()]
        );
        assert!(!cmp.passed());
        // And a report without host_cores cannot be shape-compared.
        let anon = parse(r#"{"benchmarks": []}"#);
        assert!(!compare_scaling_shape(&anon, &cur, 0.25).passed());
    }

    #[test]
    fn compare_report_picks_shape_only_across_core_classes() {
        let base = par_report(8, &[(1, 100.0), (2, 190.0)]);
        let same_cores = par_report(8, &[(1, 100.0), (2, 190.0)]);
        let cross_cores = par_report(2, &[(1, 400.0), (2, 760.0)]);
        let (_, mode) = compare_report(&base, &same_cores, 0.25, true);
        assert_eq!(mode, CompareMode::Absolute);
        let (cmp, mode) = compare_report(&base, &cross_cores, 0.25, true);
        assert_eq!(mode, CompareMode::ScalingShape);
        assert!(cmp.passed(), "{cmp:?}");
        // The flag off keeps the absolute comparison everywhere.
        let (_, mode) = compare_report(&base, &cross_cores, 0.25, false);
        assert_eq!(mode, CompareMode::Absolute);
    }

    #[test]
    fn overhead_contract_within_budget_holds() {
        let doc = parse(
            r#"{"overhead_contract":
                {"off_ips": 1000.0, "spans_ips": 985.0, "max_overhead": 0.02}}"#,
        );
        let contracts = check_overhead_contracts(&doc);
        assert_eq!(contracts.len(), 1);
        let c = &contracts[0];
        assert_eq!(c.path, "overhead_contract");
        assert!((c.overhead - 0.015).abs() < 1e-9, "{c:?}");
        assert!(c.holds());
        // Spans measuring *faster* than off (one-sided noise) is a
        // negative overhead and trivially holds.
        let noisy = parse(
            r#"{"overhead_contract":
                {"off_ips": 1000.0, "spans_ips": 1004.0, "max_overhead": 0.02}}"#,
        );
        assert!(check_overhead_contracts(&noisy)[0].holds());
    }

    #[test]
    fn overhead_contract_beyond_budget_is_violated() {
        let doc = parse(
            r#"{"overhead_contract":
                {"off_ips": 1000.0, "spans_ips": 900.0, "max_overhead": 0.02}}"#,
        );
        let contracts = check_overhead_contracts(&doc);
        assert_eq!(contracts.len(), 1);
        assert!(!contracts[0].holds());
        assert!((contracts[0].overhead - 0.10).abs() < 1e-9);
    }

    #[test]
    fn overhead_contracts_are_found_structurally() {
        // Contracts nest anywhere — inside arrays with labelled rows —
        // and objects missing one of the three keys are not contracts.
        let doc = parse(
            r#"{"suites": [
                {"benchmark": "A",
                 "contract": {"off_ips": 10.0, "spans_ips": 9.0, "max_overhead": 0.2}},
                {"benchmark": "B", "off_ips": 10.0, "spans_ips": 1.0}
            ]}"#,
        );
        let contracts = check_overhead_contracts(&doc);
        assert_eq!(contracts.len(), 1);
        assert_eq!(contracts[0].path, "suites[benchmark=A]/contract");
        assert!(contracts[0].holds());
        // A zero off-side anchors no fraction: zero overhead, holds.
        let zero = parse(r#"{"c": {"off_ips": 0.0, "spans_ips": 0.0, "max_overhead": 0.02}}"#);
        let contracts = check_overhead_contracts(&zero);
        assert_eq!(contracts[0].overhead, 0.0);
        assert!(contracts[0].holds());
    }
}
