//! Table I: decomposition of multiplication operations into shift-add
//! combinations of alphabets.
#![forbid(unsafe_code)]

use man::alphabet::AlphabetSet;
use man::asm::AsmMultiplier;
use man::quartet::QuartetScheme;

fn main() {
    println!("Table I — decomposition of the multiplication operation\n");
    let scheme = QuartetScheme::for_bits(8);
    let asm = AsmMultiplier::new(8, AlphabetSet::a8());
    for (name, w) in [("W1", 105u32), ("W2", 66u32)] {
        let quartets = scheme.decompose(w);
        let plan = asm.decode(w).expect("full alphabet decodes everything");
        print!("{name} = {w:#010b} ({w}10)   {name}×I = ");
        let mut parts = Vec::new();
        for (qi, control) in plan.controls.iter().enumerate() {
            if let Some((idx, shift)) = control {
                let a = asm.alphabet().members()[*idx];
                let offset = 4 * qi as u32 + shift;
                parts.push(format!("2^{offset}.({a:04b}).I"));
            }
        }
        println!("{}", parts.join(" + "));
        println!("    quartets (LSB first): {quartets:?}");
        // Verify on a sample input, as the paper's running example does.
        let bank = asm.precompute(0b1011);
        assert_eq!(asm.multiply(w, &bank).unwrap(), w as u64 * 0b1011);
    }
    println!("\n(If I, 3I, 5I, 7I, 9I, 11I, 13I, 15I are available, the entire");
    println!(" multiplication reduces to a few shift and add operations.)");
}
