//! Closed-loop load benchmark of the `man-serve` runtime on the paper's
//! Digit-8bit MLP: single-request-per-call serving vs dynamic
//! micro-batching, a queue-depth sweep, and a loopback-TCP round-trip.
//!
//! Modes (all through the full registry + scheduler stack, 8 closed-loop
//! client threads):
//!
//! * `single_request_per_call` — `max_batch = 1`, cold sessions: every
//!   dispatch opens a fresh `InferenceSession`, shares nothing. This is
//!   the naive stateless server one would write directly on the PR-1
//!   `CompiledModel::session()` API.
//! * `single_request_persistent` — `max_batch = 1` but a persistent warm
//!   session, isolating how much of the win is session reuse vs
//!   coalescing.
//! * `micro_batched` — the production configuration: whatever queued
//!   while the previous batch computed coalesces (up to 32) into one
//!   `infer_batch_shared` call on a persistent warm (product-plane)
//!   session.
//!
//! Emits `BENCH_serve.json` in the working directory.
//!
//! Run with: `cargo run --release -p man-bench --bin serve [-- --full]`
#![forbid(unsafe_code)]

use std::sync::Arc;
use std::time::Duration;

use man::alphabet::AlphabetSet;
use man::zoo::Benchmark;
use man_bench::{closed_loop, LoadReport};
use man_datasets::GenOptions;
use man_repro::{CompiledModel, Pipeline};
use man_serve::{BatchConfig, Client, ModelRegistry, ModelStats, Server, SessionMode, TcpClient};
use serde::Serialize;

const MODEL: &str = "digits";
const CLIENTS: usize = 8;

#[derive(Serialize)]
struct ModeRow {
    mode: String,
    max_batch: usize,
    session: String,
    /// The resolved MAC kernel the mode's scheduler sessions ran
    /// (`scalar`/`swar`/`avx2`) — scopes this row's throughput in the
    /// regression gate (kernel-mismatched rows are incomparable).
    kernel: String,
    /// The resolved data layout of the mode's most recent dispatch
    /// (`row`/`batch`) — the third scoping label; a layout flip makes
    /// the row incomparable rather than a regression.
    layout: String,
    /// Throughput of the mode's *best* measurement window.
    load: LoadReport,
    /// Scheduler metrics accumulated over the warmup plus every
    /// repetition — a cumulative profile of the mode under this load
    /// level, not a snapshot of the single window `load` reports.
    stats: ModelStats,
}

#[derive(Serialize)]
struct QueueRow {
    queue_capacity: usize,
    clients: usize,
    load: LoadReport,
    rejected: u64,
    p95_us: u64,
}

#[derive(Serialize)]
struct TcpReport {
    roundtrip_ok: bool,
    predict_rps: f64,
}

#[derive(Serialize)]
struct ServeBench {
    benchmark: String,
    bits: u32,
    alphabet: String,
    clients: usize,
    quick: bool,
    modes: Vec<ModeRow>,
    /// `micro_batched` vs `single_request_per_call` throughput — the
    /// headline number (acceptance target: >= 2x at 8 clients).
    speedup_micro_batched_vs_single_request: f64,
    queue_sweep: Vec<QueueRow>,
    tcp: TcpReport,
}

fn session_label(mode: SessionMode) -> &'static str {
    match mode {
        SessionMode::Cold => "cold (fresh per call)",
        SessionMode::Persistent => "persistent",
        SessionMode::Warm => "persistent + product plane",
    }
}

/// Measures every mode in interleaved repetitions (so background noise
/// on the host hits all modes alike) and keeps each mode's best window —
/// the standard way to bench throughput on a shared machine.
fn run_modes(
    model: &CompiledModel,
    images: &[Vec<f32>],
    configs: Vec<(&'static str, BatchConfig)>,
    warmup: Duration,
    measure: Duration,
    reps: usize,
) -> Vec<ModeRow> {
    let runs: Vec<(&'static str, BatchConfig, Arc<ModelRegistry>, Client)> = configs
        .into_iter()
        .map(|(name, config)| {
            let registry = ModelRegistry::new(config.clone());
            registry.install(MODEL, model.clone());
            let client = Client::new(Arc::clone(&registry));
            (name, config, registry, client)
        })
        .collect();
    let predict = |client: &Client, c: usize, i: u64| {
        let image = &images[(c * 7 + i as usize) % images.len()];
        client.predict(MODEL, image.clone()).is_ok()
    };
    // Warm caches/planes and settle the thread pools before measuring.
    for (_, _, _, client) in &runs {
        let _ = closed_loop(CLIENTS, warmup, |c, i| predict(client, c, i));
    }
    let mut best: Vec<Option<LoadReport>> = vec![None; runs.len()];
    for _ in 0..reps {
        for (idx, (_, _, _, client)) in runs.iter().enumerate() {
            let load = closed_loop(CLIENTS, measure, |c, i| predict(client, c, i));
            if best[idx]
                .as_ref()
                .is_none_or(|b| load.throughput_rps > b.throughput_rps)
            {
                best[idx] = Some(load);
            }
        }
    }
    runs.into_iter()
        .zip(best)
        .map(|((name, config, registry, _), load)| {
            let load = load.expect("at least one rep ran");
            let stats = registry
                .stats(Some(MODEL))
                .expect("model is loaded")
                .remove(0);
            println!(
                "  {name:<26} {:>9.1} req/s   p50 {:>6} us   p99 {:>7} us   mean batch {:>5.2}   plan {}",
                load.throughput_rps, stats.p50_us, stats.p99_us, stats.mean_batch, stats.plan
            );
            ModeRow {
                mode: name.to_owned(),
                max_batch: config.max_batch,
                session: session_label(config.session_mode).to_owned(),
                kernel: stats.kernel.clone(),
                layout: stats.layout.clone(),
                load,
                stats,
            }
        })
        .collect()
}

fn queue_sweep(model: &CompiledModel, images: &[Vec<f32>], measure: Duration) -> Vec<QueueRow> {
    // More clients than the smallest queue so backpressure actually
    // fires; rejected requests count as errors in the load report.
    let clients = 16;
    println!("\nqueue-depth sweep ({clients} clients, micro-batched):");
    [2usize, 8, 64, 256]
        .into_iter()
        .map(|cap| {
            let registry = ModelRegistry::new(BatchConfig {
                queue_capacity: cap,
                ..BatchConfig::default()
            });
            registry.install(MODEL, model.clone());
            let client = Client::new(Arc::clone(&registry));
            let load = closed_loop(clients, measure, |c, i| {
                let image = &images[(c * 5 + i as usize) % images.len()];
                let ok = client.predict(MODEL, image.clone()).is_ok();
                if !ok {
                    // A sane client backs off after an Overloaded
                    // rejection instead of spin-hammering the queue.
                    std::thread::sleep(Duration::from_micros(500));
                }
                ok
            });
            let stats = registry
                .stats(Some(MODEL))
                .expect("model is loaded")
                .remove(0);
            println!(
                "  capacity {cap:>4}: {:>9.1} req/s   rejected {:>7}   p95 {:>7} us",
                load.throughput_rps, stats.rejected, stats.p95_us
            );
            QueueRow {
                queue_capacity: cap,
                clients,
                load,
                rejected: stats.rejected,
                p95_us: stats.p95_us,
            }
        })
        .collect()
}

fn tcp_roundtrip(model: &CompiledModel, images: &[Vec<f32>], rounds: usize) -> TcpReport {
    println!("\nloopback TCP round-trip:");
    let expected = model
        .session()
        .infer_shared(&images[0])
        .expect("image matches the input layer");
    let path = std::env::temp_dir().join("man_bench_serve_digits.man.json");
    model.save(&path).expect("artifact saves");

    let registry = ModelRegistry::with_defaults();
    let mut server = Server::bind("127.0.0.1:0", registry).expect("loopback bind");
    let mut client = TcpClient::connect(server.local_addr()).expect("loopback connect");

    // load -> predict -> stats -> unload, all over the wire.
    client
        .load(MODEL, path.to_str().expect("utf-8 temp path"))
        .expect("wire load");
    let (class, scores) = client.predict(MODEL, &images[0]).expect("wire predict");
    assert_eq!(
        (class, &scores),
        (expected.class, &expected.scores),
        "wire prediction must be bit-identical to the in-process session"
    );

    let start = std::time::Instant::now();
    let mut ok = 0usize;
    for i in 0..rounds {
        if client.predict(MODEL, &images[i % images.len()]).is_ok() {
            ok += 1;
        }
    }
    let predict_rps = ok as f64 / start.elapsed().as_secs_f64();

    client.stats(Some(MODEL)).expect("wire stats");
    client.unload(MODEL).expect("wire unload");
    let gone = client
        .predict(MODEL, &images[0])
        .expect_err("unloaded model must be gone");
    assert_eq!(gone.code, "unknown_model");

    server.shutdown();
    std::fs::remove_file(&path).ok();
    println!("  load -> predict -> stats -> unload OK   {predict_rps:>9.1} req/s over TCP");
    TcpReport {
        roundtrip_ok: true,
        predict_rps,
    }
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let (warmup, measure, reps) = if full {
        (Duration::from_secs(2), Duration::from_secs(4), 4)
    } else {
        (Duration::from_secs(1), Duration::from_secs(2), 2)
    };
    let benchmark = Benchmark::DigitsMlp;
    let bits = benchmark.default_bits();
    let set = AlphabetSet::a1();
    let ds = benchmark.dataset(&GenOptions {
        train: 1,
        test: 64,
        seed: 0x5E12,
    });
    let compiled = Pipeline::for_benchmark(benchmark)
        .with_bits(bits)
        .with_alphabets(vec![set.clone()])
        .constrain()
        .expect("projection")
        .compile()
        .expect("projected weights compile");

    println!(
        "[man-kernel] cpu: {}; default kernel: {}",
        man::kernel::cpu_features(),
        man::kernel::default_kernel().label()
    );
    println!(
        "man-serve load benchmark — {} ({bits}-bit, {}) with {CLIENTS} closed-loop clients\n",
        benchmark.name(),
        set.label()
    );
    let modes = run_modes(
        &compiled,
        &ds.test_images,
        vec![
            (
                "single_request_per_call",
                BatchConfig {
                    max_batch: 1,
                    max_wait: Duration::ZERO,
                    session_mode: SessionMode::Cold,
                    ..BatchConfig::default()
                },
            ),
            (
                "single_request_persistent",
                BatchConfig {
                    max_batch: 1,
                    max_wait: Duration::ZERO,
                    session_mode: SessionMode::Warm,
                    ..BatchConfig::default()
                },
            ),
            ("micro_batched", BatchConfig::default()),
        ],
        warmup,
        measure,
        reps,
    );
    let single = modes[0].load.throughput_rps;
    let batched = modes[2].load.throughput_rps;
    let speedup = batched / single;
    println!("\nmicro-batched vs single-request-per-call: {speedup:.2}x");

    let queue = queue_sweep(
        &compiled,
        &ds.test_images,
        measure.min(Duration::from_secs(2)),
    );
    let tcp = tcp_roundtrip(&compiled, &ds.test_images, if full { 2000 } else { 400 });

    let bench = ServeBench {
        benchmark: benchmark.name().to_owned(),
        bits,
        alphabet: set.label(),
        clients: CLIENTS,
        quick: !full,
        modes,
        speedup_micro_batched_vs_single_request: speedup,
        queue_sweep: queue,
        tcp,
    };
    match serde_json::to_string_pretty(&bench) {
        Ok(json) => match std::fs::write("BENCH_serve.json", json) {
            Ok(()) => println!("\n[saved BENCH_serve.json]"),
            Err(e) => eprintln!("warning: could not write BENCH_serve.json: {e}"),
        },
        Err(e) => eprintln!("warning: could not serialize serve bench: {e}"),
    }
}
