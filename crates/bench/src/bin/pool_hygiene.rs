//! CI pool-lifecycle gate: proves that `man-par` worker threads never
//! outlive their pool and that repeated create/drop cycles do not leak
//! threads.
//!
//! The persistent-pool design keeps OS threads parked between jobs, so
//! the failure mode to guard against is no longer "spawn too much" but
//! "never tear down": a pool whose drop stopped joining (or whose
//! shutdown stopped draining) would accumulate parked threads across
//! reloads and leak a thread per model swap in a long-lived server.
//! This binary measures the process thread count around pool lifecycles
//! (via `/proc/self/task` on Linux — the CI runner) and exits non-zero
//! on any violation, so a lifecycle regression fails CI rather than
//! ships.
//!
//! Run with: `cargo run --release -p man-bench --bin pool_hygiene`
#![forbid(unsafe_code)]

use man_par::{global_pool, Parallelism, WorkerPool};

/// Live threads in this process. On Linux, one directory entry per
/// thread under `/proc/self/task`; `None` elsewhere (the check is then
/// skipped — CI runs on Linux).
fn thread_count() -> Option<usize> {
    let entries = std::fs::read_dir("/proc/self/task").ok()?;
    Some(entries.count())
}

/// Polls until the process thread count settles at `expected`, or a
/// generous deadline passes, returning the last observation. `join()`
/// returns when the kernel clears the thread's TID futex, which happens
/// a beat *before* the `/proc/self/task` entry disappears — on a loaded
/// runner a one-shot sample right after drop can still see an exiting
/// worker, which is scheduling noise, not a leak. A real leak (a parked
/// thread that was never asked to exit) never settles, so the deadline
/// converts it into a failure.
fn settled_thread_count(expected: usize) -> usize {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let now = thread_count().expect("/proc/self/task readable");
        if now == expected || std::time::Instant::now() > deadline {
            return now;
        }
        std::thread::yield_now();
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
}

fn exercise(pool: &WorkerPool, rounds: usize) {
    for round in 0..rounds {
        let mut contexts = vec![0u64; pool.threads().max(1) + 1];
        let out = pool.run_chunked(&mut contexts, 257, 8, move |ctx, range| {
            *ctx += range.len() as u64;
            range.map(|i| (i + round) as u64).collect()
        });
        let expected: Vec<u64> = (0..257).map(|i| (i + round) as u64).collect();
        assert_eq!(out, expected, "pool produced wrong results");
        assert_eq!(contexts.iter().sum::<u64>(), 257);
    }
}

fn main() {
    let Some(baseline) = thread_count() else {
        println!("pool-hygiene: /proc/self/task unavailable on this platform — skipping");
        return;
    };
    println!("pool-hygiene: baseline threads = {baseline}");

    // 1. Repeated create/exercise/drop cycles must return the process
    //    to its baseline thread count every time.
    for cycle in 0..8 {
        for threads in [0usize, 1, 4, 9] {
            let pool = WorkerPool::new(threads);
            exercise(&pool, 3);
            drop(pool);
            let now = settled_thread_count(baseline);
            assert_eq!(
                now,
                baseline,
                "cycle {cycle}: {threads}-thread pool leaked {} thread(s) past drop",
                now.saturating_sub(baseline)
            );
        }
    }
    println!("pool-hygiene: 32 create/drop cycles leaked nothing");

    // 2. Explicit shutdown is idempotent and equivalent to drop; a
    //    shut-down pool still completes work (inline on the caller).
    let pool = WorkerPool::new(4);
    exercise(&pool, 1);
    pool.shutdown();
    pool.shutdown();
    assert_eq!(
        settled_thread_count(baseline),
        baseline,
        "shutdown() left workers alive"
    );
    exercise(&pool, 1); // inline completion after shutdown
    drop(pool);
    assert_eq!(
        settled_thread_count(baseline),
        baseline,
        "drop after shutdown changed the thread count"
    );
    println!("pool-hygiene: shutdown is idempotent, drop after shutdown is a no-op");

    // 3. The global pool spawns exactly once (its workers are the only
    //    allowed steady-state growth) and repeated use adds nothing.
    let before_global = thread_count().expect("/proc/self/task readable");
    let expected_workers = global_pool().threads();
    for _ in 0..16 {
        let out = man_par::parallel_map(Parallelism::Auto, 503, |i| i as u64 * 3);
        assert_eq!(out.len(), 503);
        assert_eq!(out[500], 1500);
    }
    let after_global = settled_thread_count(before_global + expected_workers);
    assert_eq!(
        after_global,
        before_global + expected_workers,
        "global pool grew past its one-time spawn of {expected_workers} worker(s)"
    );
    println!(
        "pool-hygiene: global pool holds steady at {expected_workers} worker(s) across 16 jobs"
    );
    println!("pool-hygiene: PASS");
}
