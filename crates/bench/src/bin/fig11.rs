//! Fig. 11: mixed-alphabet configurations — 1 alphabet {1} in the large
//! early layers, 2/4 alphabets in the small concluding layers — trading a
//! little energy for recovered accuracy (Section VI-E). Runs on the
//! pipeline's baseline/retrain split: one unconstrained training per
//! benchmark, then each assignment retrains from the same restore point.
#![forbid(unsafe_code)]

use man::alphabet::AlphabetSet;
use man::engine::CostModel;
use man::fixed::LayerAlphabets;
use man::zoo::Benchmark;
use man_bench::{apply_mode, parallelism_from_args, save_json, RunMode};
use man_repro::Pipeline;
use serde::Serialize;

#[derive(Serialize)]
struct MixedRow {
    benchmark: String,
    config: String,
    accuracy_pct: f64,
    energy_pj: f64,
}

/// The paper's Fig. 11 layer assignments.
fn configs(b: Benchmark) -> Vec<(&'static str, Vec<AlphabetSet>)> {
    let (a1, a2, a4) = (AlphabetSet::a1(), AlphabetSet::a2(), AlphabetSet::a4());
    match b {
        // 2-layer MLP: 1-alphabet hidden layer, 4-alphabet output layer.
        Benchmark::DigitsMlp => vec![
            ("1 alphabet", vec![a1.clone(), a1.clone()]),
            ("1,4 mixed", vec![a1, a4]),
        ],
        // 6-layer MLP: {1}x4, then {1,3}, then {1,3,5,7}.
        Benchmark::Svhn => vec![
            ("1 alphabet", vec![a1.clone(); 6]),
            (
                "1,2,4 mixed",
                vec![a1.clone(), a1.clone(), a1.clone(), a1, a2, a4],
            ),
        ],
        // 5-layer MLP: {1}x3, then {1,3}, then {1,3,5,7}.
        Benchmark::Tich => vec![
            ("1 alphabet", vec![a1.clone(); 5]),
            ("1,2,4 mixed", vec![a1.clone(), a1.clone(), a1, a2, a4]),
        ],
        _ => panic!("Fig. 11 covers DigitsMlp, Svhn and Tich"),
    }
}

fn main() {
    let mode = RunMode::from_args();
    println!("Fig. 11 — mixed alphabet configurations ({mode:?})\n");
    let mut model = CostModel::default();
    model.stream_limit = 600;
    let mut rows = Vec::new();
    for b in [Benchmark::DigitsMlp, Benchmark::Svhn, Benchmark::Tich] {
        let ds = b.dataset(&mode.gen_options(0xF16 + b.paper_neurons() as u64));
        let baseline = Pipeline::for_benchmark(b)
            .with_bits(8)
            .with_data(&ds)
            .with_parallelism(parallelism_from_args())
            .configure(move |cfg| apply_mode(cfg, mode, b))
            .train_baseline()
            .expect("baseline trains");
        println!(
            "{} (conventional fixed-point: {:.2}%)",
            b.name(),
            100.0 * baseline.conventional_accuracy
        );
        let mut base_energy = 0.0;
        for (label, sets) in configs(b) {
            let retrained = baseline
                .retrain(&LayerAlphabets::mixed(sets))
                .expect("retraining runs");
            // retrain() already measured K on this test set.
            let acc = 100.0 * retrained.attempts[0].accuracy;
            let costed = retrained
                .compile()
                .expect("constrained networks compile")
                .cost(&mut model, &ds.test_images)
                .expect("synthesis at paper clocks succeeds");
            if base_energy == 0.0 {
                base_energy = costed.report.energy_pj;
            }
            println!(
                "  {:<12} accuracy {:>6.2}%  energy {:>10.1} pJ ({:+.1}% vs all-MAN)",
                label,
                acc,
                costed.report.energy_pj,
                100.0 * (costed.report.energy_pj / base_energy - 1.0)
            );
            rows.push(MixedRow {
                benchmark: b.name().into(),
                config: label.into(),
                accuracy_pct: acc,
                energy_pj: costed.report.energy_pj,
            });
        }
    }
    println!("\n(Accuracy improves with mixed alphabets at a small energy overhead,");
    println!(" because the concluding layers account for few processing cycles.)");
    save_json("fig11", &rows);
}
