//! Fig. 11: mixed-alphabet configurations — 1 alphabet {1} in the large
//! early layers, 2/4 alphabets in the small concluding layers — trading a
//! little energy for recovered accuracy (Section VI-E).

use man::alphabet::AlphabetSet;
use man::engine::{kinds_from_alphabets, CostModel};
use man::fixed::{FixedNet, LayerAlphabets, QuantSpec};
use man::train::{constrained_retrain, train_unconstrained};
use man::zoo::Benchmark;
use man_bench::{save_json, RunMode};
use serde::Serialize;

#[derive(Serialize)]
struct MixedRow {
    benchmark: String,
    config: String,
    accuracy_pct: f64,
    energy_pj: f64,
}

/// The paper's Fig. 11 layer assignments.
fn configs(b: Benchmark) -> Vec<(&'static str, Vec<AlphabetSet>)> {
    let (a1, a2, a4) = (AlphabetSet::a1(), AlphabetSet::a2(), AlphabetSet::a4());
    match b {
        // 2-layer MLP: 1-alphabet hidden layer, 4-alphabet output layer.
        Benchmark::DigitsMlp => vec![
            ("1 alphabet", vec![a1.clone(), a1.clone()]),
            ("1,4 mixed", vec![a1, a4]),
        ],
        // 6-layer MLP: {1}x4, then {1,3}, then {1,3,5,7}.
        Benchmark::Svhn => vec![
            ("1 alphabet", vec![a1.clone(); 6]),
            (
                "1,2,4 mixed",
                vec![a1.clone(), a1.clone(), a1.clone(), a1, a2, a4],
            ),
        ],
        // 5-layer MLP: {1}x3, then {1,3}, then {1,3,5,7}.
        Benchmark::Tich => vec![
            ("1 alphabet", vec![a1.clone(); 5]),
            ("1,2,4 mixed", vec![a1.clone(), a1.clone(), a1, a2, a4]),
        ],
        _ => panic!("Fig. 11 covers DigitsMlp, Svhn and Tich"),
    }
}

fn main() {
    let mode = RunMode::from_args();
    println!("Fig. 11 — mixed alphabet configurations ({mode:?})\n");
    let mut model = CostModel::default();
    let mut rows = Vec::new();
    for b in [Benchmark::DigitsMlp, Benchmark::Svhn, Benchmark::Tich] {
        let bits = 8;
        let ds = b.dataset(&mode.gen_options(0xF16 + b.paper_neurons() as u64));
        let mut cfg = mode.methodology(bits);
        b.tune(&mut cfg);
        let mut net = b.build_network(cfg.seed);
        train_unconstrained(&mut net, &ds.train_images, &ds.train_labels, &cfg);
        let spec = QuantSpec::fit(&net, bits);
        let layers = spec.layer_formats().len();
        // Conventional reference for accuracy context.
        let conv = FixedNet::compile(
            &net,
            &spec,
            &LayerAlphabets::uniform(AlphabetSet::a8(), layers),
        )
        .unwrap();
        let j = 100.0 * conv.accuracy(&ds.test_images, &ds.test_labels);
        println!("{} (conventional fixed-point: {j:.2}%)", b.name());
        let mut base_energy = 0.0;
        for (label, sets) in configs(b) {
            let alphabets = LayerAlphabets::mixed(sets);
            let retrained = constrained_retrain(
                &net,
                &spec,
                &alphabets,
                &ds.train_images,
                &ds.train_labels,
                &cfg,
            );
            let fixed = FixedNet::compile(&retrained, &spec, &alphabets).unwrap();
            let acc = 100.0 * fixed.accuracy(&ds.test_images, &ds.test_labels);
            let traces = fixed.sample_traces(&ds.test_images, 600);
            let cost = model
                .network_cost(&fixed, &kinds_from_alphabets(&alphabets), &traces, label)
                .unwrap();
            if base_energy == 0.0 {
                base_energy = cost.energy_pj;
            }
            println!(
                "  {:<12} accuracy {:>6.2}%  energy {:>10.1} pJ ({:+.1}% vs all-MAN)",
                label,
                acc,
                cost.energy_pj,
                100.0 * (cost.energy_pj / base_energy - 1.0)
            );
            rows.push(MixedRow {
                benchmark: b.name().into(),
                config: label.into(),
                accuracy_pct: acc,
                energy_pj: cost.energy_pj,
            });
        }
    }
    println!("\n(Accuracy improves with mixed alphabets at a small energy overhead,");
    println!(" because the concluding layers account for few processing cycles.)");
    save_json("fig11", &rows);
}
