//! Table V: experimental parameters, with the synthesized datapaths'
//! timing closure verified at the paper's clocks.
#![forbid(unsafe_code)]

use man_hw::cell::CellLibrary;
use man_hw::neuron::{NeuronDatapath, NeuronKind, NeuronSpec};

fn main() {
    let lib = CellLibrary::nominal_45nm();
    println!("Table V — experimental parameters\n");
    println!(
        "Feature size                      45nm-class library ({})",
        lib.name()
    );
    println!("Clock frequency for 8-bit neuron  3 GHz (333 ps)");
    println!("Clock frequency for 12-bit neuron 2.5 GHz (400 ps)\n");
    println!("Timing closure at iso-speed:");
    for bits in [8u32, 12] {
        for kind in [
            NeuronKind::Conventional,
            NeuronKind::Asm(vec![1, 3, 5, 7]),
            NeuronKind::Asm(vec![1, 3]),
            NeuronKind::Asm(vec![1]),
        ] {
            let spec = NeuronSpec::paper(bits, kind.clone());
            let clock = spec.clock_ps;
            let dp = NeuronDatapath::build(spec, &lib).expect("timing closes");
            println!(
                "  {:>2}-bit {:<14} worst stage {:>6.1} ps <= clock {:>5.0} ps  (mult: {})",
                bits,
                kind.label(),
                dp.cycle_delay_ps(&lib),
                clock,
                dp.mult_stage.name()
            );
        }
    }
}
