//! Batched-inference throughput of the `Pipeline` serving path: builds
//! each of the five Table-IV benchmark networks at the A1/A2/A4 alphabet
//! sets (projection-only — throughput does not depend on training),
//! opens an `InferenceSession`, and measures inferences/second with and
//! without the session's shared pre-computer bank cache.
//!
//! Emits `BENCH_pipeline.json` in the working directory — the seed of
//! the perf trajectory for the ROADMAP's batching/throughput work.
//!
//! Run with: `cargo run --release -p man-bench --bin pipeline [--full]`
#![forbid(unsafe_code)]

use std::time::Instant;

use man::alphabet::AlphabetSet;
use man::zoo::Benchmark;
use man_datasets::GenOptions;
use man_repro::Pipeline;
use serde::Serialize;

#[derive(Serialize)]
struct ThroughputRow {
    benchmark: String,
    bits: u32,
    alphabet: String,
    batch: usize,
    /// The resolved MAC kernel these rows were measured under
    /// (`scalar`/`swar`/`avx2`). The regression gate treats rows whose
    /// kernel differs from the baseline's as incomparable.
    kernel: String,
    /// The data layout the *batched* path resolved to (`row`/`batch`).
    /// Like `kernel`, a layout flip makes rows incomparable in the
    /// regression gate rather than a regression. The cold path is
    /// batch=1 and therefore always row-major; this field records the
    /// batched run.
    layout: String,
    /// Inferences per second through `infer_batch` (shared bank cache).
    batched_ips: f64,
    /// Inferences per second with a fresh session per input (no sharing).
    cold_ips: f64,
    /// batched_ips / cold_ips.
    speedup: f64,
    /// Multiply-accumulates per inference.
    macs: u64,
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let batch_size = if full { 128 } else { 24 };
    // One-shot timings of a small batch swing ~2x with host noise; the
    // regression gate gets best-of-N with the two paths interleaved so
    // noise hits both alike. Each rep still opens fresh sessions — the
    // row measures bank sharing *within* a batch, not across reps.
    let reps = if full { 5 } else { 3 };
    println!(
        "[man-kernel] cpu: {}; default kernel: {}",
        man::kernel::cpu_features(),
        man::kernel::default_kernel().label()
    );
    println!("Pipeline serving throughput (batch = {batch_size}, best of {reps})\n");
    println!(
        "{:<30} {:>4} {:<14} {:<7} {:>12} {:>12} {:>8}",
        "Benchmark", "bits", "alphabet", "layout", "batched i/s", "cold i/s", "speedup"
    );
    let mut rows = Vec::new();
    for b in Benchmark::ALL {
        let bits = b.default_bits();
        let ds = b.dataset(&GenOptions {
            train: 1,
            test: batch_size,
            seed: 0xBE9C + bits as u64,
        });
        for set in [AlphabetSet::a1(), AlphabetSet::a2(), AlphabetSet::a4()] {
            let compiled = Pipeline::for_benchmark(b)
                .with_bits(bits)
                .with_alphabets(vec![set.clone()])
                .constrain()
                .expect("projection")
                .compile()
                .expect("projected weights compile");
            let macs: u64 = compiled.fixed().macs_per_layer().iter().sum();

            let (mut batched_s, mut cold_s) = (f64::MAX, f64::MAX);
            let kernel = compiled.session().kernel_label().to_owned();
            let mut layout = String::new();
            for _ in 0..reps {
                // Shared path: one session, banks shared across the batch.
                let mut session = compiled.session();
                let start = Instant::now();
                let predictions = session
                    .infer_batch(&ds.test_images)
                    .expect("dataset images match the input layer");
                batched_s = batched_s.min(start.elapsed().as_secs_f64());
                assert_eq!(predictions.len(), batch_size);
                // What the batched dispatch actually resolved to —
                // identical every rep (same session config, same batch).
                if let Some((_, kind)) = session.last_dispatch() {
                    layout = kind.label().to_owned();
                }

                // Cold path: a fresh session (empty cache) per input.
                let start = Instant::now();
                for image in &ds.test_images {
                    let mut fresh = compiled.session();
                    let p = fresh.infer(image).expect("dataset image matches");
                    assert!(p.class < 64);
                }
                cold_s = cold_s.min(start.elapsed().as_secs_f64());
            }

            let row = ThroughputRow {
                benchmark: b.name().to_owned(),
                bits,
                alphabet: set.label(),
                batch: batch_size,
                kernel,
                layout,
                batched_ips: batch_size as f64 / batched_s,
                cold_ips: batch_size as f64 / cold_s,
                speedup: cold_s / batched_s,
                macs,
            };
            println!(
                "{:<30} {:>4} {:<14} {:<7} {:>12.1} {:>12.1} {:>7.2}x",
                row.benchmark,
                row.bits,
                row.alphabet,
                row.layout,
                row.batched_ips,
                row.cold_ips,
                row.speedup
            );
            rows.push(row);
        }
    }
    match serde_json::to_string_pretty(&rows) {
        Ok(json) => match std::fs::write("BENCH_pipeline.json", json) {
            Ok(()) => println!("\n[saved BENCH_pipeline.json]"),
            Err(e) => eprintln!("warning: could not write BENCH_pipeline.json: {e}"),
        },
        Err(e) => eprintln!("warning: could not serialize throughput rows: {e}"),
    }
}
