//! Table III: NN accuracy results for digit recognition — 8-bit MLP and
//! 12-bit LeNet-style CNN on the MNIST-like set.
#![forbid(unsafe_code)]

use man::zoo::Benchmark;
use man_bench::{
    accuracy_experiment, parallelism_from_args, print_accuracy_table, save_json, RunMode,
};

fn main() {
    let mode = RunMode::from_args();
    let par = parallelism_from_args();
    println!("Table III — NN accuracy results for digit recognition ({mode:?})");
    let mlp = accuracy_experiment(Benchmark::DigitsMlp, 8, mode, par);
    print_accuracy_table(&mlp);
    let cnn = accuracy_experiment(Benchmark::DigitsCnn, 12, mode, par);
    print_accuracy_table(&cnn);
    save_json("table3", &vec![mlp, cnn]);
}
