//! Cluster-tier benchmark of the `man-serve` router: a router
//! front-end process fanning out to three worker processes over the
//! binary framing, measured through both wire modes in three phases —
//! steady state, a worker killed mid-load (failover), and a
//! join/leave rebalance with drain.
//!
//! Multiple processes, because that is the thing under test: the
//! cluster tier's contract is that worker *processes* can die and
//! join while clients see zero errors and bit-identical answers. The
//! parent runs the router and re-execs itself with `--worker` for
//! each worker node; a worker serves until its stdin closes, then
//! shuts down cleanly (the drain proof is its exit status).
//!
//! Every predict in every phase is checked byte-for-byte against a
//! single in-process reference session — the paper's determinism
//! contract extended to "any replica answers identically".
//!
//! Emits `BENCH_cluster.json` in the working directory (gated by the
//! `bench-regression` CI job: `predict_rps` per mode × phase).
//!
//! Run with: `cargo run --release -p man-bench --bin cluster [-- --full]`
#![forbid(unsafe_code)]

use std::io::{BufRead, BufReader, Read};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use man::alphabet::AlphabetSet;
use man::zoo::Benchmark;
use man_datasets::GenOptions;
use man_repro::Pipeline;
use man_serve::{
    BatchConfig, BinaryClient, FrontendMode, ModelRegistry, ReactorConfig, RequestHandler, Router,
    RouterConfig, Server, ServerConfig, TcpClient,
};
use serde::Serialize;

const MODEL: &str = "digits";
/// Worker processes behind the router.
const WORKERS: usize = 3;
/// Replica set size for the model (2 of the 3 workers host it).
const REPLICAS: usize = 2;
/// Closed-loop clients per wire mode (the container is small and the
/// bench runs 5 processes; the router hop, not client count, is the
/// thing measured).
const ACTIVE_PER_MODE: usize = 2;
/// Distinct probe inputs checked against the reference session.
const REF_COUNT: usize = 64;

/// One wire mode's closed-loop measurement in one phase.
#[derive(Serialize)]
struct PhaseReport {
    mode: String,
    phase: String,
    clients: usize,
    completed: u64,
    /// Client-visible failures *or* bit-mismatches vs the reference
    /// session — the failover contract demands this stays 0.
    errored: u64,
    elapsed_s: f64,
    /// Successful, bit-verified predicts per second through the router
    /// hop — the regression-gated throughput metric.
    predict_rps: f64,
    p50_us: u64,
    p99_us: u64,
}

/// The failover phase's window metrics, from a dedicated sequential
/// prober running across the kill.
#[derive(Serialize)]
struct FailoverReport {
    killed_node: String,
    /// Longest single bit-verified predict observed by the prober —
    /// bounds the client-visible failover window (the request that ate
    /// the dead-replica retry).
    window_max_us: u64,
    /// Router predicts answered by a non-preferred replica (lifetime).
    failovers: u64,
    /// Predicts that burned the whole retry budget — must be 0.
    no_backend: u64,
    prober_errors: u64,
}

/// Join/leave rebalance outcome.
#[derive(Serialize)]
struct RebalanceReport {
    joined_node: String,
    moved_on_join: usize,
    left_node: String,
    moved_on_leave: usize,
    /// Models still hosted by the drained worker after `leave` — must
    /// be 0 (drain-then-leave emptied its registry).
    drained_models: usize,
    /// The drained worker's process exit reported success.
    drained_exit_ok: bool,
}

/// Per-backend router-side stats row (informational, `node`-labelled).
#[derive(Serialize)]
struct NodeReport {
    node: String,
    healthy: bool,
    requests: u64,
    failures: u64,
    p50_us: u64,
    p99_us: u64,
}

/// The checked-in report.
#[derive(Serialize)]
struct ClusterBench {
    benchmark: String,
    bits: u32,
    alphabet: String,
    /// Resolved MAC kernel of the serving sessions — scopes the gated
    /// rows (kernel-mismatched baselines are incomparable).
    kernel: String,
    quick: bool,
    workers: usize,
    replicas: usize,
    active: Vec<PhaseReport>,
    failover: FailoverReport,
    rebalance: RebalanceReport,
    nodes: Vec<NodeReport>,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn probe_input(len: usize, i: usize) -> Vec<f32> {
    (0..len)
        .map(|j| ((i * 7 + j * 3) % 13) as f32 / 13.0)
        .collect()
}

/// Closed-loop latency measurement: `clients` threads, each running
/// `op` back-to-back for `secs`; an op returning `false` (error or
/// bit-mismatch) counts as errored.
fn measure<C>(mode: &str, phase: &str, clients: usize, secs: f64, connect: C) -> PhaseReport
where
    C: Fn() -> Option<Box<dyn FnMut(usize) -> bool + Send>> + Sync,
{
    let start = Instant::now();
    let deadline = start + Duration::from_secs_f64(secs);
    let results: Vec<(Vec<u64>, u64, u64)> = std::thread::scope(|scope| {
        (0..clients)
            .map(|c| {
                let connect = &connect;
                scope.spawn(move || {
                    let Some(mut predict) = connect() else {
                        return (Vec::new(), 0, 1);
                    };
                    let mut lat = Vec::with_capacity(4096);
                    let (mut done, mut err) = (0u64, 0u64);
                    let mut i = c * 31;
                    while Instant::now() < deadline {
                        let t = Instant::now();
                        if predict(i) {
                            lat.push(t.elapsed().as_micros() as u64);
                            done += 1;
                        } else {
                            err += 1;
                        }
                        i += 1;
                    }
                    (lat, done, err)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("active client panicked"))
            .collect()
    });
    let elapsed_s = start.elapsed().as_secs_f64();
    let mut all: Vec<u64> = results
        .iter()
        .flat_map(|(l, _, _)| l.iter().copied())
        .collect();
    all.sort_unstable();
    let completed: u64 = results.iter().map(|(_, d, _)| d).sum();
    let errored: u64 = results.iter().map(|(_, _, e)| e).sum();
    PhaseReport {
        mode: mode.to_owned(),
        phase: phase.to_owned(),
        clients,
        completed,
        errored,
        elapsed_s,
        predict_rps: completed as f64 / elapsed_s,
        p50_us: percentile(&all, 0.50),
        p99_us: percentile(&all, 0.99),
    }
}

/// The worker side, re-exec'd: an empty registry + binary-capable
/// server, address printed as the first stdout line, serving until
/// stdin closes — then a clean drain-and-exit (the parent asserts the
/// exit status as the drain proof).
fn run_worker() {
    let registry = ModelRegistry::new(BatchConfig::default());
    let mut server = Server::bind_with(
        "127.0.0.1:0",
        Arc::clone(&registry),
        ServerConfig {
            mode: Some(FrontendMode::Reactor),
            reactor: ReactorConfig {
                reactor_threads: 1,
                dispatch_threads: 1,
                ..ReactorConfig::default()
            },
        },
    )
    .expect("worker server binds");
    println!("{}", server.local_addr());
    // println! to a pipe is line-buffered per call; the addr line is
    // flushed by the newline, but be explicit for portability.
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    let mut sink = Vec::new();
    std::io::stdin()
        .read_to_end(&mut sink)
        .expect("worker waits on stdin");
    server.shutdown();
    registry.shutdown();
}

/// One spawned worker process and its advertised address.
struct Worker {
    child: Child,
    addr: String,
}

fn spawn_worker(exe: &std::path::Path) -> Worker {
    let mut child = Command::new(exe)
        .arg("--worker")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("worker process spawns");
    let stdout = child.stdout.take().expect("worker stdout piped");
    let mut reader = BufReader::new(stdout);
    let mut addr = String::new();
    reader
        .read_line(&mut addr)
        .expect("worker prints its address");
    // Keep the pipe's read end open for the worker's lifetime (a
    // closed pipe would SIGPIPE any later worker print).
    child.stdout = Some(reader.into_inner());
    Worker {
        child,
        addr: addr.trim().to_owned(),
    }
}

impl Worker {
    /// Closes stdin (the worker's exit signal) and reaps the process.
    fn drain_and_wait(mut self) -> bool {
        drop(self.child.stdin.take());
        self.child
            .wait()
            .map(|status| status.success())
            .unwrap_or(false)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("--worker") {
        run_worker();
        return;
    }
    let full = args.iter().any(|a| a == "--full");
    let secs = if full { 3.0 } else { 1.5 };

    // The model: same artifact on every replica, saved once and loaded
    // through the router's `load` fan-out.
    let benchmark = Benchmark::DigitsMlp;
    let bits = benchmark.default_bits();
    let set = AlphabetSet::a1();
    let ds = benchmark.dataset(&GenOptions {
        train: 1,
        test: 4,
        seed: 0xC0,
    });
    let input_len = ds.test_images[0].len();
    let compiled = Pipeline::for_benchmark(benchmark)
        .with_bits(bits)
        .with_alphabets(vec![set.clone()])
        .constrain()
        .expect("projection")
        .compile()
        .expect("projected weights compile");
    let artifact =
        std::env::temp_dir().join(format!("man_bench_cluster_{}.man.json", std::process::id()));
    compiled.save(&artifact).expect("artifact saves");
    let artifact_path = artifact.to_str().expect("utf-8 temp path").to_owned();

    // The bit-equality reference: the same artifact in one in-process
    // session. Every routed answer must match these byte-for-byte.
    let reference: Vec<(usize, Vec<i64>)> = {
        let batch: Vec<Vec<f32>> = (0..REF_COUNT).map(|i| probe_input(input_len, i)).collect();
        compiled
            .session()
            .infer_batch_shared(&batch)
            .expect("reference inference")
            .into_iter()
            .map(|p| (p.class, p.scores))
            .collect()
    };
    let kernel = {
        let local = ModelRegistry::new(BatchConfig::default());
        local.install(MODEL, compiled);
        let kernel = local
            .stats(Some(MODEL))
            .expect("model is loaded")
            .remove(0)
            .kernel;
        local.shutdown();
        kernel
    };

    // Workers, router, front-end.
    let exe = std::env::current_exe().expect("own binary path");
    let mut workers: Vec<Worker> = (0..WORKERS).map(|_| spawn_worker(&exe)).collect();
    let router = Router::new(RouterConfig {
        default_replicas: REPLICAS,
        request_timeout: Duration::from_millis(1_500),
        health_interval: Duration::from_millis(100),
        unhealthy_after: 1,
        ..RouterConfig::default()
    });
    for w in &workers {
        router.join_node(&w.addr).expect("worker joins the cluster");
    }
    let mut front = Server::bind_handler(
        "127.0.0.1:0",
        Arc::clone(&router) as Arc<dyn RequestHandler>,
        ServerConfig {
            mode: Some(FrontendMode::Reactor),
            reactor: ReactorConfig {
                reactor_threads: 1,
                dispatch_threads: 2,
                ..ReactorConfig::default()
            },
        },
    )
    .expect("router front-end binds");
    let front_addr = front.local_addr().to_string();
    router
        .load_model(MODEL, &artifact_path)
        .expect("model loads on its replica set");
    println!(
        "man-serve cluster benchmark — router + {WORKERS} workers, {REPLICAS} replicas, {ACTIVE_PER_MODE}x2 clients"
    );
    println!("[man-serve] front-end: {}", front.mode().label());

    // A verified-predict closure factory: checks every answer against
    // the reference session (bit-equality is part of "success").
    let reference = &reference;
    let verified_ndjson = |addr: String| {
        move || -> Option<Box<dyn FnMut(usize) -> bool + Send>> {
            let mut client = TcpClient::connect(&addr).ok()?;
            let reference = reference.clone();
            Some(Box::new(move |i: usize| {
                let k = i % REF_COUNT;
                match client.predict(MODEL, &probe_input(input_len, k)) {
                    Ok((class, scores)) => (class, scores) == reference[k],
                    Err(_) => false,
                }
            }))
        }
    };
    let verified_binary = |addr: String| {
        move || -> Option<Box<dyn FnMut(usize) -> bool + Send>> {
            let mut client = BinaryClient::connect(&addr).ok()?;
            let reference = reference.clone();
            Some(Box::new(move |i: usize| {
                let k = i % REF_COUNT;
                match client.predict(MODEL, &probe_input(input_len, k)) {
                    Ok((class, scores)) => (class, scores) == reference[k],
                    Err(_) => false,
                }
            }))
        }
    };

    // Phase 1: steady state, both wire modes through the router hop.
    let steady_nd = measure(
        "ndjson",
        "steady",
        ACTIVE_PER_MODE,
        secs,
        verified_ndjson(front_addr.clone()),
    );
    let steady_bin = measure(
        "binary",
        "steady",
        ACTIVE_PER_MODE,
        secs,
        verified_binary(front_addr.clone()),
    );

    // Phase 2: kill the model's preferred replica mid-load. The
    // contract: zero client-visible errors, answers still bit-identical
    // — failover is the router's problem, not the client's.
    let placement = router
        .stats()
        .models
        .first()
        .expect("model is placed")
        .replicas
        .clone();
    let victim_addr = placement.first().expect("replica set non-empty").clone();
    let victim_idx = workers
        .iter()
        .position(|w| w.addr == victim_addr)
        .expect("preferred replica is one of our workers");
    let failovers_before = router.stats().failovers;
    let mut victim = workers.remove(victim_idx);
    let stop = AtomicBool::new(false);
    let window_max = AtomicU64::new(0);
    let prober_errors = AtomicU64::new(0);
    let (failover_nd, failover_bin) = std::thread::scope(|scope| {
        // The killer: lets the load ramp, then takes the preferred
        // replica down hard (SIGKILL — no graceful drain).
        let killer = scope.spawn(|| {
            std::thread::sleep(Duration::from_secs_f64(secs * 0.25));
            victim.child.kill().expect("victim killed");
            victim.child.wait().ok();
        });
        // The window prober: one sequential binary client timing every
        // predict across the kill; its max latency bounds the
        // client-visible failover window.
        let prober = scope.spawn(|| {
            let Ok(mut client) = BinaryClient::connect(&front_addr) else {
                // ORDERING: single-writer bench counter, read after join.
                prober_errors.fetch_add(1, Ordering::Relaxed);
                return;
            };
            let mut i = 0usize;
            // ORDERING: advisory stop flag; the scope join is the
            // synchronization point.
            while !stop.load(Ordering::Relaxed) {
                let k = i % REF_COUNT;
                let t = Instant::now();
                let ok = match client.predict(MODEL, &probe_input(input_len, k)) {
                    Ok((class, scores)) => (class, scores) == reference[k],
                    Err(_) => false,
                };
                let us = t.elapsed().as_micros() as u64;
                // ORDERING: single-writer bench maximum, read after join.
                window_max.fetch_max(us, Ordering::Relaxed);
                if !ok {
                    // ORDERING: single-writer bench counter, read after join.
                    prober_errors.fetch_add(1, Ordering::Relaxed);
                }
                i += 1;
            }
        });
        let nd = measure(
            "ndjson",
            "failover",
            ACTIVE_PER_MODE,
            secs,
            verified_ndjson(front_addr.clone()),
        );
        let bin = measure(
            "binary",
            "failover",
            ACTIVE_PER_MODE,
            secs,
            verified_binary(front_addr.clone()),
        );
        // ORDERING: advisory stop flag (see the prober's load).
        stop.store(true, Ordering::Relaxed);
        killer.join().expect("killer thread");
        prober.join().expect("prober thread");
        (nd, bin)
    });
    let stats = router.stats();
    let failover = FailoverReport {
        killed_node: victim_addr.clone(),
        // ORDERING: prober thread already joined; these are quiescent.
        window_max_us: window_max.load(Ordering::Relaxed),
        failovers: stats.failovers - failovers_before,
        no_backend: stats.no_backend,
        // ORDERING: prober thread already joined; quiescent.
        prober_errors: prober_errors.load(Ordering::Relaxed),
    };
    // Remove the corpse from the table before rebalancing.
    router
        .leave_node(&victim_addr)
        .expect("dead node leaves the table");

    // Phase 3: rebalance — a fresh worker joins (pre-loaded before the
    // table swap), then a live worker leaves with drain; traffic keeps
    // flowing bit-identically throughout.
    let joined = spawn_worker(&exe);
    let joined_addr = joined.addr.clone();
    workers.push(joined);
    let moved_on_join = router
        .join_node(&joined_addr)
        .expect("replacement worker joins");
    // Leave any live worker: `leave` pre-loads the gaining replicas
    // before the table swap, so the model never goes dark regardless
    // of which node departs.
    let leaver_addr = workers[0].addr.clone();
    let moved_on_leave = router
        .leave_node(&leaver_addr)
        .expect("live worker leaves with drain");
    let rebalance_bin = measure(
        "binary",
        "rebalance",
        ACTIVE_PER_MODE,
        secs,
        verified_binary(front_addr.clone()),
    );
    // The drained worker's registry must be empty before it exits.
    let drained_models = BinaryClient::connect(&leaver_addr)
        .and_then(|mut c| c.request_ok(r#"{"op":"stats"}"#))
        .map(|v| {
            v.as_object()
                .and_then(|o| {
                    o.iter()
                        .find(|(k, _)| k == "models")
                        .and_then(|(_, m)| m.as_array().map(|rows| rows.len()))
                })
                .unwrap_or(usize::MAX)
        })
        .unwrap_or(usize::MAX);
    let leaver_idx = workers
        .iter()
        .position(|w| w.addr == leaver_addr)
        .expect("leaver is a live worker");
    let drained_exit_ok = workers.remove(leaver_idx).drain_and_wait();

    let nodes: Vec<NodeReport> = router
        .stats()
        .nodes
        .into_iter()
        .map(|b| NodeReport {
            node: b.node,
            healthy: b.healthy,
            requests: b.requests,
            failures: b.failures,
            p50_us: b.p50_us,
            p99_us: b.p99_us,
        })
        .collect();
    let rebalance = RebalanceReport {
        joined_node: joined_addr,
        moved_on_join,
        left_node: leaver_addr,
        moved_on_leave,
        drained_models,
        drained_exit_ok,
    };

    let active = vec![
        steady_nd,
        steady_bin,
        failover_nd,
        failover_bin,
        rebalance_bin,
    ];
    for r in &active {
        println!(
            "  {:<8} {:<9} {} clients: {:>8.1} predict/s   p50 {:>6} us   p99 {:>7} us   ({} ok, {} err)",
            r.mode, r.phase, r.clients, r.predict_rps, r.p50_us, r.p99_us, r.completed, r.errored
        );
    }
    println!(
        "  failover: killed {} — window ≤ {} us, {} failovers, {} no_backend, {} prober errors",
        failover.killed_node,
        failover.window_max_us,
        failover.failovers,
        failover.no_backend,
        failover.prober_errors
    );
    println!(
        "  rebalance: +{} moved {} models, -{} moved {} (drained: {} models left, exit ok = {})",
        rebalance.joined_node,
        rebalance.moved_on_join,
        rebalance.left_node,
        rebalance.moved_on_leave,
        rebalance.drained_models,
        rebalance.drained_exit_ok
    );

    // The cluster contract, asserted hard: zero client-visible errors
    // in every phase (failover included), clean drain, bounded retry
    // never exhausted.
    for r in &active {
        assert_eq!(
            r.errored, 0,
            "phase {}/{} saw client-visible errors or bit-mismatches",
            r.mode, r.phase
        );
        assert!(r.completed > 0, "phase {}/{} did no work", r.mode, r.phase);
    }
    assert_eq!(failover.prober_errors, 0, "failover prober saw errors");
    assert!(
        failover.failovers > 0,
        "killing the preferred replica must force failovers"
    );
    assert_eq!(failover.no_backend, 0, "retry budget was exhausted");
    assert_eq!(
        rebalance.drained_models, 0,
        "leave did not drain the worker"
    );
    assert!(rebalance.drained_exit_ok, "drained worker exited uncleanly");

    let bench = ClusterBench {
        benchmark: benchmark.name().to_owned(),
        bits,
        alphabet: set.label(),
        kernel,
        quick: !full,
        workers: WORKERS,
        replicas: REPLICAS,
        active,
        failover,
        rebalance,
        nodes,
    };
    front.shutdown();
    router.shutdown();
    for w in workers {
        w.drain_and_wait();
    }
    std::fs::remove_file(&artifact).ok();
    match serde_json::to_string_pretty(&bench) {
        Ok(json) => match std::fs::write("BENCH_cluster.json", json) {
            Ok(()) => println!("\n[saved BENCH_cluster.json]"),
            Err(e) => eprintln!("warning: could not write BENCH_cluster.json: {e}"),
        },
        Err(e) => eprintln!("warning: could not serialize cluster bench: {e}"),
    }
}
