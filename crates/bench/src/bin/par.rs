//! Parallel batch-engine throughput: `InferenceSession::infer_batch`
//! across the zoo models at `Sequential` vs `Threads(2)` / `Threads(4)`
//! / `Auto`, with bit-equality against the sequential path asserted on
//! every configuration before anything is timed.
//!
//! Emits `BENCH_par.json` in the working directory. The file records the
//! host's core count (`host_cores`) next to every measurement: thread
//! scaling is only meaningful relative to the cores that were actually
//! available, and the CI regression gate compares like against like via
//! the per-thread-count `ips` metrics.
//!
//! Run with: `cargo run --release -p man-bench --bin par [-- --full]`
#![forbid(unsafe_code)]

use std::time::Instant;

use man::alphabet::AlphabetSet;
use man::zoo::Benchmark;
use man_datasets::GenOptions;
use man_par::{available_cores, Layout, Parallelism};
use man_repro::Pipeline;
use serde::Serialize;

#[derive(Serialize)]
struct ThreadRow {
    /// Requested configuration: `sequential`, `threads(2)`,
    /// `threads(4)`, `auto` (normalized — `Auto` resolves per host).
    parallelism: String,
    /// The worker count the session *resolved* for this batch (for
    /// `Auto`, what the tuner actually engaged — the honest x-axis the
    /// scaling-shape gate compares across core classes).
    workers: usize,
    /// The resolved sharding plan (`sequential`, `rows(N)`,
    /// `neurons(N)`).
    plan: String,
    /// The resolved MAC kernel (`scalar`/`swar`/`avx2`) — the second
    /// tuner axis; kernel-mismatched rows are incomparable in the gate.
    kernel: String,
    /// The resolved data layout (`row`/`batch`) — the third tuner axis;
    /// like `kernel`, a layout flip makes rows incomparable in the gate.
    layout: String,
    /// Inferences per second through `infer_batch` (best window).
    ips: f64,
    /// `ips / sequential ips` on the same host — the scaling headline.
    speedup_vs_sequential: f64,
}

#[derive(Serialize)]
struct LayoutRow {
    /// Identity-bearing label for the forced layout under measurement
    /// (`row`/`batch`). Unlike `ThreadRow.layout` (an environment
    /// *annotation*), this field names what the row *is*, so the
    /// regression gate pairs row-vs-row and batch-vs-batch across
    /// baselines.
    mode: String,
    /// The resolved sharding plan for this batch.
    plan: String,
    /// The resolved MAC kernel the layout ran under.
    kernel: String,
    /// Inferences per second through a sequential `infer_batch`.
    ips: f64,
    /// `ips / row-major ips` on the same host — the batch-major
    /// headline the ROADMAP's >=1.5x target reads.
    speedup_vs_row_major: f64,
}

#[derive(Serialize)]
struct ParBench {
    benchmark: String,
    bits: u32,
    alphabet: String,
    batch: usize,
    /// MACs per inference — the work each row represents.
    macs: u64,
    rows: Vec<ThreadRow>,
    /// Row-major vs batch-major head-to-head on a sequential session —
    /// same batch, same kernel, layout forced on each side. Bit-equality
    /// against the thread rows' reference is asserted before timing.
    layout_rows: Vec<LayoutRow>,
}

#[derive(Serialize)]
struct ParReport {
    /// Hardware threads available when the numbers were taken. Thread
    /// scaling on an N-core host tops out near N; a 1-core container
    /// measures ~1.0x by physics, not by regression.
    host_cores: usize,
    quick: bool,
    benchmarks: Vec<ParBench>,
}

/// One untimed warmup pass (fills the per-worker caches), returning the
/// scores for the bit-equality check.
fn warmup(session: &man_repro::InferenceSession, images: &[Vec<f32>]) -> Vec<Vec<i64>> {
    session
        .infer_batch_shared(images)
        .expect("dataset images match the input layer")
        .into_iter()
        .map(|p| p.scores)
        .collect()
}

/// One timed pass: inferences per second for a single `infer_batch`.
fn timed_ips(session: &man_repro::InferenceSession, images: &[Vec<f32>]) -> f64 {
    let start = Instant::now();
    let n = session
        .infer_batch_shared(images)
        .expect("dataset images match the input layer")
        .len();
    n as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let (batch, reps) = if full { (256, 4) } else { (64, 2) };
    let host_cores = available_cores();
    let configs = [
        Parallelism::Sequential,
        Parallelism::Threads(2),
        Parallelism::Threads(4),
        Parallelism::Auto,
    ];
    println!(
        "[man-kernel] cpu: {}; default kernel: {}",
        man::kernel::cpu_features(),
        man::kernel::default_kernel().label()
    );
    println!("Parallel batch engine — infer_batch over {batch} rows, {host_cores} host core(s)\n");
    println!(
        "{:<30} {:>4} {:<12} {:>14} {:>22} {:>12} {:>9}",
        "Benchmark", "bits", "alphabet", "parallelism", "plan+kernel+layout", "i/s", "speedup"
    );
    let mut benchmarks = Vec::new();
    for b in Benchmark::ALL {
        let bits = b.default_bits();
        let set = AlphabetSet::a1();
        let ds = b.dataset(&GenOptions {
            train: 1,
            test: batch,
            seed: 0x9A12 + bits as u64,
        });
        let compiled = Pipeline::for_benchmark(b)
            .with_bits(bits)
            .with_alphabets(vec![set.clone()])
            .constrain()
            .expect("projection")
            .compile()
            .expect("projected weights compile");
        let macs: u64 = compiled.fixed().macs_per_layer().iter().sum();

        // Warm every configuration first (checking bit-equality against
        // the sequential reference), then interleave the timed reps so
        // host noise hits all configurations alike.
        let sessions: Vec<_> = configs
            .iter()
            .map(|&p| compiled.session_parallel(p))
            .collect();
        let mut reference: Option<Vec<Vec<i64>>> = None;
        for (p, session) in configs.iter().zip(&sessions) {
            let scores = warmup(session, &ds.test_images);
            match &reference {
                None => reference = Some(scores),
                Some(want) => assert_eq!(
                    want,
                    &scores,
                    "{} @ {}: parallel batch must be bit-identical to sequential",
                    b.name(),
                    p.label()
                ),
            }
        }
        let mut best = vec![0.0f64; configs.len()];
        for _ in 0..reps {
            for (i, session) in sessions.iter().enumerate() {
                best[i] = best[i].max(timed_ips(session, &ds.test_images));
            }
        }
        let sequential_ips = best[0];
        let mut rows: Vec<ThreadRow> = Vec::new();
        for ((p, session), ips) in configs.into_iter().zip(&sessions).zip(best) {
            let speedup = if sequential_ips > 0.0 {
                ips / sequential_ips
            } else {
                1.0
            };
            // What the session actually engaged for this batch — under
            // `Auto` the tuner's answer, not the request — on all
            // three axes: sharding plan, MAC kernel, and data layout
            // (the latter read back from the recorded dispatch).
            let plan = session.plan_for_batch(ds.test_images.len());
            let kernel = session.kernel_label();
            let layout = session
                .last_dispatch()
                .map(|(_, kind)| kind.label())
                .unwrap_or("unresolved");
            println!(
                "{:<30} {:>4} {:<12} {:>14} {:>22} {:>12.1} {:>8.2}x",
                b.name(),
                bits,
                set.label(),
                p.label(),
                plan.label_with_kernel_layout(kernel, layout),
                ips,
                speedup
            );
            rows.push(ThreadRow {
                // `Auto` resolves to a host-dependent worker count;
                // normalize its label so baselines taken on different
                // machines still pair up in the regression gate.
                parallelism: match p {
                    Parallelism::Auto => "auto".to_owned(),
                    other => other.label(),
                },
                workers: plan.workers(),
                plan: plan.label(),
                kernel: kernel.to_owned(),
                layout: layout.to_owned(),
                ips,
                speedup_vs_sequential: speedup,
            });
        }

        // Layout head-to-head: the same sequential session, layout
        // forced to each side, bit-equality asserted against the thread
        // rows' reference before anything is timed. This is the
        // ROADMAP's batch-major evidence — per-benchmark, not
        // per-thread-count, because layout pays off inside one worker.
        let layout_sessions: Vec<(Layout, _)> = [Layout::RowMajor, Layout::BatchMajor]
            .into_iter()
            .map(|l| {
                (
                    l,
                    compiled
                        .session_parallel(Parallelism::Sequential)
                        .with_layout(l),
                )
            })
            .collect();
        for (l, session) in &layout_sessions {
            let scores = warmup(session, &ds.test_images);
            assert_eq!(
                reference.as_ref().expect("reference scores recorded"),
                &scores,
                "{} @ forced {}: layout must be bit-identical",
                b.name(),
                l.label()
            );
        }
        let mut layout_best = vec![0.0f64; layout_sessions.len()];
        for _ in 0..reps {
            for (i, (_, session)) in layout_sessions.iter().enumerate() {
                layout_best[i] = layout_best[i].max(timed_ips(session, &ds.test_images));
            }
        }
        let row_major_ips = layout_best[0];
        let mut layout_rows: Vec<LayoutRow> = Vec::new();
        for ((l, session), ips) in layout_sessions.iter().zip(layout_best) {
            let speedup = if row_major_ips > 0.0 {
                ips / row_major_ips
            } else {
                1.0
            };
            let plan = session.plan_for_batch(ds.test_images.len());
            let kernel = session.kernel_label();
            println!(
                "{:<30} {:>4} {:<12} {:>14} {:>22} {:>12.1} {:>8.2}x",
                b.name(),
                bits,
                set.label(),
                format!("layout={}", l.label()),
                plan.label_with_kernel_layout(kernel, l.label()),
                ips,
                speedup
            );
            layout_rows.push(LayoutRow {
                mode: l.label().to_owned(),
                plan: plan.label(),
                kernel: kernel.to_owned(),
                ips,
                speedup_vs_row_major: speedup,
            });
        }
        benchmarks.push(ParBench {
            benchmark: b.name().to_owned(),
            bits,
            alphabet: set.label(),
            batch,
            macs,
            rows,
            layout_rows,
        });
    }
    let report = ParReport {
        host_cores,
        quick: !full,
        benchmarks,
    };
    match serde_json::to_string_pretty(&report) {
        Ok(json) => match std::fs::write("BENCH_par.json", json) {
            Ok(()) => println!("\n[saved BENCH_par.json]"),
            Err(e) => eprintln!("warning: could not write BENCH_par.json: {e}"),
        },
        Err(e) => eprintln!("warning: could not serialize par bench: {e}"),
    }
}
