//! Table II: NN accuracy results for face detection (8- and 12-bit
//! synapses, conventional vs ASM with 4/2/1 alphabets).
#![forbid(unsafe_code)]

use man::zoo::Benchmark;
use man_bench::{
    accuracy_experiment, parallelism_from_args, print_accuracy_table, save_json, RunMode,
};

fn main() {
    let mode = RunMode::from_args();
    let par = parallelism_from_args();
    println!("Table II — NN accuracy results for face detection ({mode:?})");
    let mut results = Vec::new();
    for bits in [8u32, 12] {
        let exp = accuracy_experiment(Benchmark::Faces, bits, mode, par);
        print_accuracy_table(&exp);
        results.push(exp);
    }
    save_json("table2", &results);
}
