//! Connection-scaling benchmark of the `man-serve` reactor front-end:
//! 10k mostly-idle TCP connections held open on a handful of reactor
//! threads while a small set of active NDJSON and binary-framing
//! clients measure request latency (p50/p99) through the loaded slab.
//!
//! Two processes, because file descriptors: the container's
//! `ulimit -n` cannot hold both halves of 10k loopback connections in
//! one process. The parent runs the server and re-execs itself with
//! `--child` for the client side; the child reports its measurements
//! as one JSON line on stdout.
//!
//! Emits `BENCH_conn.json` in the working directory (gated by the
//! `bench-regression` CI job: `predict_rps` per active mode).
//!
//! Run with: `cargo run --release -p man-bench --bin conn [-- --full]`
#![forbid(unsafe_code)]

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use man::alphabet::AlphabetSet;
use man::zoo::Benchmark;
use man_datasets::GenOptions;
use man_repro::Pipeline;
use man_serve::{
    BatchConfig, BinaryClient, FrontendMode, ModelRegistry, ReactorConfig, Server, ServerConfig,
    TcpClient,
};
use serde::{Deserialize, Serialize};

const MODEL: &str = "digits";
/// Mostly-idle connections the bench tries to hold open.
const IDLE_TARGET: usize = 10_000;
/// Active closed-loop clients per wire mode.
const ACTIVE_PER_MODE: usize = 4;
/// Descriptors reserved for everything that is not an idle connection
/// (active clients, the artifact, stdio, the waker pairs...).
const FD_HEADROOM: usize = 1_000;

/// One active wire mode's closed-loop measurement (child-side).
#[derive(Serialize, Deserialize)]
struct ActiveReport {
    mode: String,
    clients: usize,
    completed: u64,
    errored: u64,
    elapsed_s: f64,
    /// Successful predicts per second across the mode's clients —
    /// the regression-gated throughput metric.
    predict_rps: f64,
    p50_us: u64,
    p99_us: u64,
}

/// Everything the `--child` process measured, printed as one JSON line.
#[derive(Serialize, Deserialize)]
struct ChildReport {
    idle_target: usize,
    idle_opened: usize,
    /// Idle connections probed with a request *after* the load phase —
    /// proof the slab kept them serviceable, not merely open.
    idle_probed_ok: usize,
    connect_s: f64,
    ndjson: ActiveReport,
    binary: ActiveReport,
}

/// The checked-in report.
#[derive(Serialize)]
struct ConnBench {
    benchmark: String,
    bits: u32,
    alphabet: String,
    /// Resolved MAC kernel of the serving sessions — scopes the gated
    /// rows (kernel-mismatched baselines are incomparable).
    kernel: String,
    quick: bool,
    fd_limit: usize,
    reactor_threads: usize,
    dispatch_threads: usize,
    idle_target: usize,
    idle_opened: usize,
    idle_probed_ok: usize,
    connect_s: f64,
    /// Server-side slab high-water mark — must cover idle + active.
    slab_high_water: usize,
    accepted_conns: u64,
    active: Vec<ActiveReport>,
}

/// Soft `RLIMIT_NOFILE` from procfs (std exposes no getrlimit; the
/// reactor itself never needs it — only this bench's capacity planning).
fn fd_limit() -> usize {
    std::fs::read_to_string("/proc/self/limits")
        .ok()
        .and_then(|text| {
            text.lines()
                .find(|l| l.starts_with("Max open files"))
                .and_then(|l| l.split_whitespace().nth(3))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(1_024)
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn probe_input(len: usize, i: usize) -> Vec<f32> {
    (0..len)
        .map(|j| ((i * 7 + j * 3) % 13) as f32 / 13.0)
        .collect()
}

/// Closed-loop latency measurement: `clients` threads, each running
/// `op` back-to-back for `secs`, latencies merged and ranked.
fn measure<C, F>(mode: &str, clients: usize, secs: f64, connect: C, op: F) -> ActiveReport
where
    C: Fn() -> Option<Box<dyn FnMut(&[f32]) -> bool + Send>> + Sync,
    F: Fn(usize, u64) -> Vec<f32> + Sync,
{
    let start = Instant::now();
    let deadline = start + Duration::from_secs_f64(secs);
    let results: Vec<(Vec<u64>, u64, u64)> = std::thread::scope(|scope| {
        (0..clients)
            .map(|c| {
                let connect = &connect;
                let op = &op;
                scope.spawn(move || {
                    let Some(mut predict) = connect() else {
                        return (Vec::new(), 0, 1);
                    };
                    let mut lat = Vec::with_capacity(4096);
                    let (mut done, mut err) = (0u64, 0u64);
                    let mut i = 0u64;
                    while Instant::now() < deadline {
                        let input = op(c, i);
                        let t = Instant::now();
                        if predict(&input) {
                            lat.push(t.elapsed().as_micros() as u64);
                            done += 1;
                        } else {
                            err += 1;
                        }
                        i += 1;
                    }
                    (lat, done, err)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("active client panicked"))
            .collect()
    });
    let elapsed_s = start.elapsed().as_secs_f64();
    let mut all: Vec<u64> = results
        .iter()
        .flat_map(|(l, _, _)| l.iter().copied())
        .collect();
    all.sort_unstable();
    let completed: u64 = results.iter().map(|(_, d, _)| d).sum();
    let errored: u64 = results.iter().map(|(_, _, e)| e).sum();
    ActiveReport {
        mode: mode.to_owned(),
        clients,
        completed,
        errored,
        elapsed_s,
        predict_rps: completed as f64 / elapsed_s,
        p50_us: percentile(&all, 0.50),
        p99_us: percentile(&all, 0.99),
    }
}

/// The client side, re-exec'd: holds the idle herd, drives the active
/// load, probes the herd, prints one JSON line.
fn run_child(addr: &str, idle_target: usize, input_len: usize, secs: f64) {
    let connect_start = Instant::now();
    let mut idle: Vec<TcpStream> = Vec::with_capacity(idle_target);
    for i in 0..idle_target {
        match TcpStream::connect(addr) {
            Ok(s) => idle.push(s),
            Err(_) => break, // local fd exhaustion: hold what we have
        }
        // Pace the ramp: loopback connects complete in the kernel
        // without a userspace accept, so an unpaced serial loop fills
        // the fixed 128-entry listen backlog within one scheduler
        // timeslice on a small box and the next SYN eats a ~1s
        // retransmit. A breath every 64 connects lets the reactor
        // drain the backlog; this bench measures the loaded slab, not
        // SYN-flood survival.
        if i % 64 == 63 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    let connect_s = connect_start.elapsed().as_secs_f64();
    let idle_opened = idle.len();

    let ndjson = measure(
        "ndjson",
        ACTIVE_PER_MODE,
        secs,
        || {
            let mut client = TcpClient::connect(addr).ok()?;
            Some(
                Box::new(move |input: &[f32]| client.predict(MODEL, input).is_ok())
                    as Box<dyn FnMut(&[f32]) -> bool + Send>,
            )
        },
        |c, i| probe_input(input_len, c * 7 + i as usize),
    );
    let binary = measure(
        "binary",
        ACTIVE_PER_MODE,
        secs,
        || {
            let mut client = BinaryClient::connect(addr).ok()?;
            Some(
                Box::new(move |input: &[f32]| client.predict(MODEL, input).is_ok())
                    as Box<dyn FnMut(&[f32]) -> bool + Send>,
            )
        },
        |c, i| probe_input(input_len, c * 11 + i as usize),
    );

    // The herd must still be serviceable after the load phase: promote a
    // sample of idle connections to NDJSON with a `stats` request.
    let mut idle_probed_ok = 0usize;
    for stream in idle.iter_mut().step_by((idle_opened / 32).max(1)).take(32) {
        let ok = stream
            .write_all(b"{\"op\":\"stats\"}\n")
            .and_then(|()| {
                let mut line = String::new();
                BufReader::new(&mut *stream).read_line(&mut line)?;
                Ok(line.contains("\"ok\":true"))
            })
            .unwrap_or(false);
        idle_probed_ok += usize::from(ok);
    }

    let report = ChildReport {
        idle_target,
        idle_opened,
        idle_probed_ok,
        connect_s,
        ndjson,
        binary,
    };
    println!(
        "{}",
        serde_json::to_string(&report).expect("child report serializes")
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("--child") {
        let addr = &args[2];
        let idle: usize = args[3].parse().expect("idle count");
        let input_len: usize = args[4].parse().expect("input len");
        let secs: f64 = args[5].parse().expect("measure seconds");
        run_child(addr, idle, input_len, secs);
        return;
    }

    let full = args.iter().any(|a| a == "--full");
    let secs = if full { 4.0 } else { 2.0 };
    let limit = fd_limit();
    let idle_target = IDLE_TARGET.min(limit.saturating_sub(FD_HEADROOM));

    let benchmark = Benchmark::DigitsMlp;
    let bits = benchmark.default_bits();
    let set = AlphabetSet::a1();
    let ds = benchmark.dataset(&GenOptions {
        train: 1,
        test: 4,
        seed: 0xC0,
    });
    let input_len = ds.test_images[0].len();
    let compiled = Pipeline::for_benchmark(benchmark)
        .with_bits(bits)
        .with_alphabets(vec![set.clone()])
        .constrain()
        .expect("projection")
        .compile()
        .expect("projected weights compile");
    let registry = ModelRegistry::new(BatchConfig::default());
    registry.install(MODEL, compiled);

    // ≤ 4 front-end threads total for 10k connections — the point of
    // the reactor vs 10k threads.
    let reactor = ReactorConfig {
        reactor_threads: 2,
        dispatch_threads: 2,
        ..ReactorConfig::default()
    };
    let mut server = Server::bind_with(
        "127.0.0.1:0",
        Arc::clone(&registry),
        ServerConfig {
            mode: Some(FrontendMode::Reactor),
            reactor: reactor.clone(),
        },
    )
    .expect("reactor server binds");
    println!(
        "man-serve connection-scaling benchmark — {} idle + {}x2 active clients, fd limit {limit}",
        idle_target, ACTIVE_PER_MODE
    );
    println!(
        "[man-serve] front-end: {} ({} reactor + {} dispatch threads)",
        server.mode().label(),
        reactor.reactor_threads,
        reactor.dispatch_threads
    );

    let exe = std::env::current_exe().expect("own binary path");
    let output = std::process::Command::new(exe)
        .arg("--child")
        .arg(server.local_addr().to_string())
        .arg(idle_target.to_string())
        .arg(input_len.to_string())
        .arg(secs.to_string())
        .output()
        .expect("client child process runs");
    assert!(
        output.status.success(),
        "child failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    let json_line = stdout
        .lines()
        .rev()
        .find(|l| l.trim_start().starts_with('{'))
        .expect("child printed a JSON report");
    let child: ChildReport = serde_json::from_str(json_line).expect("child report parses");

    let fe = server.frontend_stats();
    let kernel = registry
        .stats(Some(MODEL))
        .expect("model is loaded")
        .remove(0)
        .kernel;
    for r in [&child.ndjson, &child.binary] {
        println!(
            "  {:<8} {} clients: {:>9.1} predict/s   p50 {:>6} us   p99 {:>7} us   ({} ok, {} err)",
            r.mode, r.clients, r.predict_rps, r.p50_us, r.p99_us, r.completed, r.errored
        );
    }
    println!(
        "  idle herd: {}/{} opened in {:.2}s, {} probed alive after load; slab high-water {}",
        child.idle_opened,
        child.idle_target,
        child.connect_s,
        child.idle_probed_ok,
        fe.slab_high_water
    );
    assert!(
        child.idle_opened >= idle_target * 9 / 10,
        "could not hold the idle herd: {}/{idle_target}",
        child.idle_opened
    );
    assert!(
        child.idle_probed_ok > 0,
        "idle connections went dead under load"
    );
    assert!(
        fe.slab_high_water >= child.idle_opened,
        "slab high-water {} below the idle herd {}",
        fe.slab_high_water,
        child.idle_opened
    );

    let bench = ConnBench {
        benchmark: benchmark.name().to_owned(),
        bits,
        alphabet: set.label(),
        kernel,
        quick: !full,
        fd_limit: limit,
        reactor_threads: reactor.reactor_threads,
        dispatch_threads: reactor.dispatch_threads,
        idle_target,
        idle_opened: child.idle_opened,
        idle_probed_ok: child.idle_probed_ok,
        connect_s: child.connect_s,
        slab_high_water: fe.slab_high_water,
        accepted_conns: fe.accepted_conns,
        active: vec![child.ndjson, child.binary],
    };
    server.shutdown();
    registry.shutdown();
    match serde_json::to_string_pretty(&bench) {
        Ok(json) => match std::fs::write("BENCH_conn.json", json) {
            Ok(()) => println!("\n[saved BENCH_conn.json]"),
            Err(e) => eprintln!("warning: could not write BENCH_conn.json: {e}"),
        },
        Err(e) => eprintln!("warning: could not serialize conn bench: {e}"),
    }
}
