//! Fig. 7: classification accuracy of conventional vs ASM-based NNs across
//! all five applications, normalized to the conventional implementation.
#![forbid(unsafe_code)]

use man::zoo::Benchmark;
use man_bench::{accuracy_experiment, parallelism_from_args, save_json, RunMode};

fn main() {
    let mode = RunMode::from_args();
    let par = parallelism_from_args();
    println!("Fig. 7 — normalized accuracy across applications ({mode:?})\n");
    let mut results = Vec::new();
    println!(
        "{:<30} {:>12} {:>12} {:>12} {:>12}",
        "Application", "conventional", "4 {1,3,5,7}", "2 {1,3}", "1 {1}"
    );
    for b in Benchmark::ALL {
        let exp = accuracy_experiment(b, b.default_bits(), mode, par);
        let base = exp.rows[0].accuracy_pct;
        let normalized: Vec<f64> = exp.rows.iter().map(|r| r.accuracy_pct / base).collect();
        println!(
            "{:<30} {:>12.4} {:>12.4} {:>12.4} {:>12.4}",
            exp.benchmark, normalized[0], normalized[1], normalized[2], normalized[3]
        );
        results.push(exp);
    }
    println!("\n(Simple sets — digits, faces — stay closest to 1.0; the complex");
    println!(" SVHN-like and TICH-like sets degrade more, as in the paper.)");
    save_json("fig7", &results);
}
