//! Ablations of the design choices called out in DESIGN.md §5:
//!
//! 1. retraining vs projection-only accuracy,
//! 2. the paper's greedy Algorithm 1 vs the exact nearest projection,
//! 3. CSHM sharing degree (pre-computer bank amortized over 1/2/4/8 lanes),
//! 4. trace-driven switching activity vs a constant-α analytic estimate.
#![forbid(unsafe_code)]

use man::alphabet::AlphabetSet;
use man::constrain::{project_greedy, WeightLattice};
use man::engine::CostModel;
use man::fixed::{FixedNet, LayerAlphabets};
use man::zoo::Benchmark;
use man_bench::{apply_mode, parallelism_from_args, RunMode};
use man_fixed::bits::{apply_sign, sign_magnitude};
use man_hw::cell::CellLibrary;
use man_hw::neuron::{NeuronDatapath, NeuronKind, NeuronSpec};
use man_repro::Pipeline;

fn main() {
    let mode = RunMode::from_args();
    let par = parallelism_from_args();
    let b = Benchmark::Faces;
    let bits = 8;
    let ds = b.dataset(&mode.gen_options(0xAB1A));
    let baseline = Pipeline::for_benchmark(b)
        .with_bits(bits)
        .with_data(&ds)
        .with_parallelism(par)
        .configure(move |cfg| apply_mode(cfg, mode, b))
        .train_baseline()
        .expect("baseline trains");
    let net = baseline.network().clone();
    let spec = baseline.spec().clone();
    let layers = spec.layer_formats().len();

    // Projection-only helper on the trained restore point.
    let project = |alphabets: &LayerAlphabets| {
        Pipeline::from_network(net.clone())
            .with_bits(bits)
            .with_assignment(alphabets.clone())
            .constrain()
            .expect("projection")
            .compile()
            .expect("projected weights compile")
    };

    // --- 1. retraining vs projection-only ------------------------------
    println!("== Ablation 1: does retraining matter? (faces, 8-bit, MAN) ==");
    let alphabets = LayerAlphabets::uniform(AlphabetSet::a1(), layers);
    let j = baseline.conventional_accuracy;
    let acc_proj = project(&alphabets).accuracy(&ds.test_images, &ds.test_labels);
    let acc_retr = baseline
        .retrain(&alphabets)
        .expect("retraining runs")
        .attempts[0]
        .accuracy;
    println!("  conventional baseline J : {:.2}%", 100.0 * j);
    println!("  projection only         : {:.2}%", 100.0 * acc_proj);
    println!(
        "  projection + retraining : {:.2}%  (the paper's Algorithm 2)",
        100.0 * acc_retr
    );

    // --- 2. greedy Algorithm 1 vs exact nearest ------------------------
    println!("\n== Ablation 2: greedy Algorithm 1 vs exact projection ==");
    for set in [AlphabetSet::a1(), AlphabetSet::a2(), AlphabetSet::a4()] {
        let lattice = WeightLattice::new(bits, &set);
        // Projection distance statistics over all magnitudes.
        let (mut same, mut d_exact, mut d_greedy) = (0u32, 0u64, 0u64);
        for mag in 0..=lattice.values().last().copied().unwrap_or(127) {
            let e = lattice.project_exact(mag);
            let g = project_greedy(bits, &set, mag);
            same += (e == g) as u32;
            d_exact += (e as i64 - mag as i64).unsigned_abs();
            d_greedy += (g as i64 - mag as i64).unsigned_abs();
        }
        // Accuracy with a greedily projected network (no retraining).
        let mut greedy_net = net.clone();
        let formats = spec.layer_formats().to_vec();
        let mut pi = 0usize;
        greedy_net.visit_params_mut(|_, kind, values, _| {
            if kind == man_nn::layers::ParamKind::Weights {
                let fmt = formats[pi];
                for v in values.iter_mut() {
                    let q = fmt.quantize(*v as f64);
                    let (neg, mag) = sign_magnitude(q.raw(), bits);
                    let p = project_greedy(bits, &set, mag);
                    *v = (apply_sign(p as u64, neg) as f64 / fmt.scale()) as f32;
                }
                pi += 1;
            }
        });
        let alphas = LayerAlphabets::uniform(set.clone(), layers);
        let acc_greedy = FixedNet::compile(&greedy_net, &spec, &alphas)
            .unwrap()
            .accuracy(&ds.test_images, &ds.test_labels);
        let acc_exact = project(&alphas).accuracy(&ds.test_images, &ds.test_labels);
        println!(
            "  {:12} identical {:5.1}%  Σ|err| exact {:5} greedy {:5}  acc exact {:.2}% greedy {:.2}%",
            set.label(),
            100.0 * same as f64 / 128.0,
            d_exact,
            d_greedy,
            100.0 * acc_exact,
            100.0 * acc_greedy
        );
    }

    // --- 3. CSHM sharing degree ----------------------------------------
    println!("\n== Ablation 3: pre-computer bank sharing degree (8-bit ASM {{1,3,5,7}}) ==");
    let lib = CellLibrary::nominal_45nm();
    for lanes in [1u32, 2, 4, 8] {
        let mut spec_hw = NeuronSpec::paper(bits, NeuronKind::Asm(vec![1, 3, 5, 7]));
        spec_hw.lanes = lanes;
        let dp = NeuronDatapath::build(spec_hw, &lib).unwrap();
        println!(
            "  {lanes} lane(s): effective neuron area {:7.1} um^2 (bank amortized /{lanes})",
            dp.neuron_area_um2(&lib)
        );
    }

    // --- 4. trace-driven activity vs constant-α estimate ----------------
    println!("\n== Ablation 4: real-trace activity vs constant-alpha power model ==");
    let alphabets = LayerAlphabets::uniform(AlphabetSet::a2(), layers);
    let compiled = project(&alphabets);
    let traces = compiled.fixed().sample_traces(&ds.test_images, 600);
    let mut model = CostModel::default();
    let kinds = man::engine::kinds_from_alphabets(&alphabets);
    for (li, trace) in traces.iter().enumerate() {
        let le = model.layer_energy(bits, &kinds[li], trace).unwrap();
        // Constant-α estimate: every gate toggles with probability 0.5
        // per cycle (the textbook default when no activity data exists).
        let dp = model.datapath(bits, &kinds[li]).unwrap();
        let alpha = 0.5;
        let est: f64 = dp
            .mult_stage
            .netlist()
            .cell_counts()
            .iter()
            .map(|(k, n)| alpha * *n as f64 * lib.params(*k).switch_fj)
            .sum();
        println!(
            "  layer {li}: measured mult-stage+acc {:7.1} fJ/MAC, alpha=0.5 mult-only estimate {:7.1} fJ",
            le.per_mac_fj, est
        );
    }
    println!("\n(The constant-alpha model overestimates idle structures and misses");
    println!(" data-dependent variation — why the engine streams real operands.)");
}
