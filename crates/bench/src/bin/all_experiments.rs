//! Runs every table and figure in sequence — the one-shot regeneration of
//! EXPERIMENTS.md's measured columns.
#![forbid(unsafe_code)]

use std::process::Command;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let bins = [
        "table1",
        "table2",
        "table3",
        "table4",
        "table5",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "ablations",
    ];
    for bin in bins {
        println!("\n======================== {bin} ========================");
        let mut cmd = Command::new(std::env::current_exe().unwrap().parent().unwrap().join(bin));
        if full {
            cmd.arg("--full");
        }
        let status = cmd.status().expect("run experiment binary");
        assert!(status.success(), "{bin} failed");
    }
}
