//! CI gate: compares freshly measured `BENCH_*.json` files against the
//! checked-in baselines and exits non-zero on a throughput regression.
//!
//! All comparison logic lives in `man_bench::regression` (unit tested);
//! this binary only parses arguments, reads files, prints the verdict
//! and sets the exit code.
//!
//! Usage:
//!
//! ```text
//! regression_gate --baseline <dir> --current <dir> \
//!     [--tolerance 0.25] [--scaling-shape] [FILE ...]
//! ```
//!
//! `FILE`s default to the six bench reports (`BENCH_pipeline.json`,
//! `BENCH_serve.json`, `BENCH_par.json`, `BENCH_obs.json`,
//! `BENCH_conn.json`, `BENCH_cluster.json`). A file
//! with no baseline yet is reported and skipped (first run); a baseline
//! whose current counterpart is missing or unparsable fails the gate.
//!
//! Independently of the baseline comparison, any *overhead contract*
//! a current report carries (an object with `off_ips` / `spans_ips` /
//! `max_overhead`, as `BENCH_obs.json` emits) is checked intrinsically:
//! both sides were measured interleaved in the same run, so the
//! contract binds even on the first run, before a baseline exists.
//!
//! With `--scaling-shape`, a report pair whose `host_cores` fields
//! *differ* (a baseline recorded on a different core class than the CI
//! runner) is compared by thread-scaling shape — speedup at matching
//! resolved worker counts, normalized to `workers == 1` — instead of
//! absolute ips, which are meaningless across core classes. Pairs on
//! the same core class (or without `host_cores`) keep the absolute
//! comparison.
#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use man_bench::regression::{check_overhead_contracts, compare_report, CompareMode, Comparison};
use serde::Value;

const DEFAULT_FILES: &[&str] = &[
    "BENCH_pipeline.json",
    "BENCH_serve.json",
    "BENCH_par.json",
    "BENCH_obs.json",
    "BENCH_conn.json",
    "BENCH_cluster.json",
];
const DEFAULT_TOLERANCE: f64 = 0.25;

struct Args {
    baseline_dir: PathBuf,
    current_dir: PathBuf,
    tolerance: f64,
    scaling_shape: bool,
    files: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut baseline_dir = None;
    let mut current_dir = None;
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut scaling_shape = false;
    let mut files = Vec::new();
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--scaling-shape" => scaling_shape = true,
            "--baseline" => {
                baseline_dir = Some(PathBuf::from(
                    argv.next().ok_or("--baseline needs a directory")?,
                ));
            }
            "--current" => {
                current_dir = Some(PathBuf::from(
                    argv.next().ok_or("--current needs a directory")?,
                ));
            }
            "--tolerance" => {
                tolerance = argv
                    .next()
                    .ok_or("--tolerance needs a fraction")?
                    .parse::<f64>()
                    .map_err(|e| format!("bad tolerance: {e}"))?;
                if !(0.0..1.0).contains(&tolerance) {
                    return Err(format!("tolerance must be in [0, 1), got {tolerance}"));
                }
            }
            other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
            file => files.push(file.to_owned()),
        }
    }
    if files.is_empty() {
        files = DEFAULT_FILES.iter().map(|s| (*s).to_owned()).collect();
    }
    Ok(Args {
        baseline_dir: baseline_dir.ok_or("--baseline <dir> is required")?,
        current_dir: current_dir.ok_or("--current <dir> is required")?,
        tolerance,
        scaling_shape,
        files,
    })
}

fn load(path: &Path) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    serde_json::from_str(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn print_comparison(file: &str, cmp: &Comparison, tolerance: f64, mode: CompareMode) {
    let mode = match mode {
        CompareMode::Absolute => "absolute",
        CompareMode::ScalingShape => "scaling-shape (cross-core-class)",
    };
    println!(
        "  {file} [{mode}]: {} metrics compared, {} improved, {} regressed, {} missing, {} kernel-incomparable (tolerance -{:.0}%)",
        cmp.compared,
        cmp.improved,
        cmp.regressions.len(),
        cmp.missing.len(),
        cmp.incomparable,
        tolerance * 100.0
    );
    for r in &cmp.regressions {
        println!(
            "    REGRESSION {:<60} {:>10.1} -> {:>10.1}  ({:.0}% of baseline)",
            r.path,
            r.baseline,
            r.current,
            r.ratio * 100.0
        );
    }
    for m in &cmp.missing {
        println!("    MISSING    {m} (present in baseline, absent in current run)");
    }
    if cmp.vacuous() {
        println!(
            "    WARNING    0 metrics were comparable — the gate passed on absence of \
             evidence, not evidence. For scaling-shape pairs this means the baseline's \
             core class shares no multi-worker points with this runner (e.g. a baseline \
             seeded on a 1-core container): re-seed {file} from a core-classed runner to \
             make this gate binding."
        );
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("regression_gate: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "bench-regression gate: baseline {} vs current {}",
        args.baseline_dir.display(),
        args.current_dir.display()
    );
    let mut failed = false;
    for file in &args.files {
        let base_path = args.baseline_dir.join(file);
        let cur_path = args.current_dir.join(file);
        // Overhead contracts bind on the current run alone — check them
        // whenever the current report parses, baseline or not. (An
        // unreadable current report is handled by the comparison path
        // below when a baseline makes it binding.)
        if let Ok(cur) = load(&cur_path) {
            for c in check_overhead_contracts(&cur) {
                let ok = c.holds();
                println!(
                    "  {file}: overhead contract {}: off {:.1} ips vs spans {:.1} ips -> {:+.2}% overhead (budget {:.1}%) {}",
                    c.path,
                    c.off_ips,
                    c.spans_ips,
                    c.overhead * 100.0,
                    c.max_overhead * 100.0,
                    if ok { "OK" } else { "VIOLATED" }
                );
                failed |= !ok;
            }
        }
        if !base_path.exists() {
            println!("  {file}: no baseline yet — skipping (check the current run in to seed it)");
            continue;
        }
        let verdict = load(&base_path).and_then(|base| {
            load(&cur_path)
                .map(|cur| compare_report(&base, &cur, args.tolerance, args.scaling_shape))
        });
        match verdict {
            Ok((cmp, mode)) => {
                print_comparison(file, &cmp, args.tolerance, mode);
                failed |= !cmp.passed();
            }
            Err(e) => {
                println!("  {file}: FAILED to load/parse: {e}");
                failed = true;
            }
        }
    }
    if failed {
        println!(
            "\nVERDICT: FAIL — throughput regressed beyond tolerance, a bench surface \
             vanished, or an overhead contract was violated"
        );
        ExitCode::FAILURE
    } else {
        println!("\nVERDICT: PASS");
        ExitCode::SUCCESS
    }
}
