//! Fig. 10: neuron area, conventional vs ASM, 8- and 12-bit, under
//! iso-speed synthesis, normalized to conventional.
#![forbid(unsafe_code)]

use man_bench::save_json;
use man_hw::cell::CellLibrary;
use man_hw::neuron::{NeuronDatapath, NeuronKind, NeuronSpec};
use serde::Serialize;

#[derive(Serialize)]
struct AreaRow {
    bits: u32,
    label: String,
    area_um2: f64,
    normalized: f64,
}

fn main() {
    let lib = CellLibrary::nominal_45nm();
    println!("Fig. 10 — neuron area at iso-speed (normalized to conventional)");
    let mut rows = Vec::new();
    for bits in [8u32, 12] {
        println!("\n{}-bit neurons:", bits);
        let mut base = 0.0;
        for kind in [
            NeuronKind::Conventional,
            NeuronKind::Asm(vec![1, 3, 5, 7]),
            NeuronKind::Asm(vec![1, 3]),
            NeuronKind::Asm(vec![1]),
        ] {
            let dp = NeuronDatapath::build(NeuronSpec::paper(bits, kind.clone()), &lib)
                .expect("timing closes at paper clocks");
            let area = dp.neuron_area_um2(&lib);
            if base == 0.0 {
                base = area;
            }
            println!(
                "  {:<14} {:>9.1} um^2   {:>6.3}  ({:>5.1}% reduction)",
                kind.label(),
                area,
                area / base,
                (1.0 - area / base) * 100.0
            );
            rows.push(AreaRow {
                bits,
                label: kind.label(),
                area_um2: area,
                normalized: area / base,
            });
        }
    }
    save_json("fig10", &rows);
}
