//! Fig. 9: energy per inference across applications, grouped as in the
//! paper: (a) 2-layer MLPs, (b) 5-6 layer MLPs, (c) the 6-layer CNN.
#![forbid(unsafe_code)]

use man::engine::CostModel;
use man::zoo::Benchmark;
use man_bench::{cost_experiment, parallelism_from_args, print_cost_table, save_json, RunMode};

fn main() {
    let mode = RunMode::from_args();
    let par = parallelism_from_args();
    println!("Fig. 9 — energy per inference ({mode:?})");
    let mut model = CostModel::default();
    let groups: [(&str, Vec<Benchmark>); 3] = [
        (
            "(a) 2-layer MLPs",
            vec![Benchmark::DigitsMlp, Benchmark::Faces],
        ),
        ("(b) 5-6 layer MLPs", vec![Benchmark::Svhn, Benchmark::Tich]),
        ("(c) 6-layer CNN", vec![Benchmark::DigitsCnn]),
    ];
    let mut results = Vec::new();
    for (title, members) in groups {
        println!("\n=== {title} ===");
        for b in members {
            let exp = cost_experiment(b, b.default_bits(), mode, &mut model, par);
            print_cost_table(&exp, "energy");
            results.push(exp);
        }
    }
    save_json("fig9", &results);
}
