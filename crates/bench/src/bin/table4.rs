//! Table IV: the benchmark inventory — checked against the actual
//! constructed networks.
#![forbid(unsafe_code)]

use man::zoo::Benchmark;

fn main() {
    println!("Table IV — benchmarks\n");
    println!(
        "{:<30} {:<12} {:>7} {:>9} {:>12}  (paper synapses)",
        "Application", "NN Model", "Layers", "Neurons", "Synapses"
    );
    for b in Benchmark::ALL {
        let net = b.build_network(0);
        println!(
            "{:<30} {:<12} {:>7} {:>9} {:>12}  ({})",
            b.name(),
            b.model(),
            b.paper_layers(),
            net.neuron_count(),
            net.param_count(),
            b.paper_synapses()
        );
    }
}
