//! Fig. 8: neuron power consumption, conventional vs ASM, 8- and 12-bit,
//! at iso-speed clocks (3 / 2.5 GHz), normalized to conventional.
#![forbid(unsafe_code)]

use man::engine::CostModel;
use man::zoo::Benchmark;
use man_bench::{cost_experiment, parallelism_from_args, print_cost_table, save_json, RunMode};

fn main() {
    let mode = RunMode::from_args();
    let par = parallelism_from_args();
    println!("Fig. 8 — neuron power at iso-speed ({mode:?})");
    let mut model = CostModel::default();
    // Power is measured on the representative 2-layer MLP workload
    // (digit recognition), like the paper's per-neuron comparison.
    let mut results = Vec::new();
    for bits in [8u32, 12] {
        let exp = cost_experiment(Benchmark::DigitsMlp, bits, mode, &mut model, par);
        print_cost_table(&exp, "power");
        results.push(exp);
    }
    save_json("fig8", &results);
}
