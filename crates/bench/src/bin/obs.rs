//! Observability-overhead benchmark: the cost of the `man-obs` plane on
//! the paper's Digit-8bit MLP, served through the full registry +
//! micro-batching scheduler stack.
//!
//! Three closed-loop windows through an identical serving setup, one
//! per [`ObsLevel`]:
//!
//! * `obs_off` — the plane compiled in but switched off: every
//!   instrumentation site is one relaxed load and a branch.
//! * `obs_counters` — per-stage octave histograms accumulate, no span
//!   events.
//! * `obs_spans` — full tracing: histograms plus per-thread span event
//!   buffers flushing into the flight-recorder ring.
//!
//! A 2% bound cannot be measured with a best-of statistic on a shared
//! runner: single 1-2s windows swing ±8% under multi-second noise
//! epochs (frequency scaling, co-tenants), far above the effect size.
//! The bench therefore runs many short rounds, each pairing an
//! `obs_off` window with an adjacent `obs_spans` window — adjacent
//! windows share their noise epoch, so the *ratio* within a round is
//! far tighter than any absolute throughput — alternating which of the
//! two runs first each round (cancelling any slow within-round drift
//! that would otherwise bias the second window), and takes the
//! **median of the per-round paired ratios**, which additionally
//! rejects rounds where an epoch flipped mid-pair. The emitted
//! `BENCH_obs.json` carries an **overhead contract** —
//! `{off_ips, spans_ips, max_overhead: 0.02}` where `off_ips` is the
//! median off window and `spans_ips = off_ips * median_paired_ratio`,
//! so the gate's recomputed `1 - spans_ips/off_ips` is exactly the
//! paired-median overhead — that `regression_gate` checks
//! intrinsically on every CI run: full tracing may cost at most 2% of
//! the tracing-off throughput (DESIGN.md §12).
//!
//! Run with: `cargo run --release -p man-bench --bin obs [-- --full]`
#![forbid(unsafe_code)]

use std::sync::Arc;
use std::time::Duration;

use man::alphabet::AlphabetSet;
use man::zoo::Benchmark;
use man_bench::closed_loop;
use man_datasets::GenOptions;
use man_obs::ObsLevel;
use man_repro::Pipeline;
use man_serve::{BatchConfig, Client, ModelRegistry};
use serde::Serialize;

const MODEL: &str = "digits";
const CLIENTS: usize = 8;

/// The per-request tracing budget full span collection must stay
/// within, as a fraction of tracing-off throughput.
const MAX_OVERHEAD: f64 = 0.02;

/// Median of a non-empty sample set (mean of the middle pair for even
/// sizes) — robust against the one-sided slow tail of a shared runner.
fn median(samples: &[f64]) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

#[derive(Serialize)]
struct ModeRow {
    mode: String,
    level: String,
    /// The resolved MAC kernel (scopes this row in the regression gate;
    /// kernel-mismatched baseline pairs are incomparable).
    kernel: String,
    clients: usize,
    /// Median completed-inferences-per-second across the level's
    /// measurement windows — the gated throughput metric.
    batched_ips: f64,
    /// Slowest/fastest window (diagnostic: how noisy was this run).
    window_low: f64,
    window_high: f64,
    windows: usize,
}

/// The <2% tracing-overhead contract `regression_gate` enforces
/// intrinsically (no baseline needed): `spans_ips` must stay within
/// `max_overhead` of `off_ips`.
#[derive(Serialize)]
struct OverheadContract {
    /// Median `obs_off` window throughput.
    off_ips: f64,
    /// `off_ips` scaled by the median per-round spans/off paired
    /// ratio — the noise-robust spans throughput the gate divides by.
    spans_ips: f64,
    /// Measured `1 - spans_ips / off_ips` (negative = noise in spans'
    /// favor).
    overhead: f64,
    max_overhead: f64,
}

#[derive(Serialize)]
struct ObsBench {
    benchmark: String,
    bits: u32,
    alphabet: String,
    clients: usize,
    quick: bool,
    modes: Vec<ModeRow>,
    overhead_contract: OverheadContract,
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let (warmup, window, rounds) = if full {
        (Duration::from_secs(2), Duration::from_millis(1500), 20)
    } else {
        (Duration::from_secs(1), Duration::from_millis(500), 14)
    };
    let benchmark = Benchmark::DigitsMlp;
    let bits = benchmark.default_bits();
    let set = AlphabetSet::a1();
    let ds = benchmark.dataset(&GenOptions {
        train: 1,
        test: 64,
        seed: 0x5E12,
    });
    let compiled = Pipeline::for_benchmark(benchmark)
        .with_bits(bits)
        .with_alphabets(vec![set.clone()])
        .constrain()
        .expect("projection")
        .compile()
        .expect("projected weights compile");

    println!(
        "[man-kernel] cpu: {}; default kernel: {}",
        man::kernel::cpu_features(),
        man::kernel::default_kernel().label()
    );
    println!(
        "man-obs overhead benchmark — {} ({bits}-bit, {}) with {CLIENTS} closed-loop clients\n",
        benchmark.name(),
        set.label()
    );

    // One registry serves all three levels: the level switch is global
    // process state, so the scheduler, sessions and caches stay
    // identical across windows — the *only* varying factor is the
    // observability plane.
    let registry = ModelRegistry::new(BatchConfig::default());
    registry.install(MODEL, compiled);
    let client = Client::new(Arc::clone(&registry));
    let predict = |c: usize, i: u64| {
        let image = &ds.test_images[(c * 7 + i as usize) % ds.test_images.len()];
        client.predict(MODEL, image.clone()).is_ok()
    };

    // Off and spans run back-to-back inside each round so the
    // contract's paired ratio compares adjacent windows; counters rides
    // along last for its mode row.
    let levels = [
        (ObsLevel::Off, "obs_off"),
        (ObsLevel::Spans, "obs_spans"),
        (ObsLevel::Counters, "obs_counters"),
    ];

    // Warm at the most expensive level so thread-local span buffers,
    // the flight ring and the product planes all exist before any
    // measured window.
    man_obs::set_level(ObsLevel::Spans);
    let _ = closed_loop(CLIENTS, warmup, predict);

    let mut samples: Vec<Vec<f64>> = vec![Vec::with_capacity(rounds); levels.len()];
    for round in 0..rounds {
        // Alternate which of the (off, spans) pair runs first so any
        // slow within-round drift biases each side equally often.
        let order: [usize; 3] = if round % 2 == 0 { [0, 1, 2] } else { [1, 0, 2] };
        for idx in order {
            let (level, name) = levels[idx];
            man_obs::set_level(level);
            let load = closed_loop(CLIENTS, window, predict);
            println!(
                "  round {round:>2} {name:<14} {:>9.1} req/s",
                load.throughput_rps
            );
            samples[idx].push(load.throughput_rps);
        }
    }
    // Leave the process at the default level for any teardown paths.
    man_obs::set_level(ObsLevel::Counters);

    // (off, spans) windows of the same round, in round order.
    let paired: Vec<(f64, f64)> = samples[0]
        .iter()
        .copied()
        .zip(samples[1].iter().copied())
        .collect();

    let stats = registry
        .stats(Some(MODEL))
        .expect("model is loaded")
        .remove(0);
    let modes: Vec<ModeRow> = levels
        .iter()
        .zip(samples)
        .map(|((level, name), windows)| {
            let med = median(&windows);
            let low = windows.iter().copied().fold(f64::INFINITY, f64::min);
            let high = windows.iter().copied().fold(0.0_f64, f64::max);
            println!(
                "  {name:<14} median {:>9.1} req/s over {} windows ({:.1}..{:.1})",
                med,
                windows.len(),
                low,
                high
            );
            ModeRow {
                mode: (*name).to_owned(),
                level: level.label().to_owned(),
                kernel: stats.kernel.clone(),
                clients: CLIENTS,
                batched_ips: med,
                window_low: low,
                window_high: high,
                windows: windows.len(),
            }
        })
        .collect();

    // Paired per-round ratios: each round's spans window against the
    // off window that ran right before it. The median ratio is immune
    // to both the shared slow tail (cancels within a pair) and rounds
    // where a noise epoch flipped between the two windows (rejected by
    // the median).
    let ratios: Vec<f64> = paired
        .iter()
        .filter(|(off, _)| *off > 0.0)
        .map(|(off, spans)| spans / off)
        .collect();
    let off_ips = modes[0].batched_ips;
    let (spans_ips, overhead) = if ratios.is_empty() || off_ips <= 0.0 {
        (modes[1].batched_ips, 0.0)
    } else {
        let ratio = median(&ratios);
        (off_ips * ratio, 1.0 - ratio)
    };
    println!(
        "\nfull tracing overhead: {:+.2}% (budget {:.1}%) — {}",
        overhead * 100.0,
        MAX_OVERHEAD * 100.0,
        if overhead <= MAX_OVERHEAD {
            "within contract"
        } else {
            "CONTRACT VIOLATED (regression_gate will fail)"
        }
    );

    let bench = ObsBench {
        benchmark: benchmark.name().to_owned(),
        bits,
        alphabet: set.label(),
        clients: CLIENTS,
        quick: !full,
        modes,
        overhead_contract: OverheadContract {
            off_ips,
            spans_ips,
            overhead,
            max_overhead: MAX_OVERHEAD,
        },
    };
    match serde_json::to_string_pretty(&bench) {
        Ok(json) => match std::fs::write("BENCH_obs.json", json) {
            Ok(()) => println!("\n[saved BENCH_obs.json]"),
            Err(e) => eprintln!("warning: could not write BENCH_obs.json: {e}"),
        },
        Err(e) => eprintln!("warning: could not serialize obs bench: {e}"),
    }
}
