//! Criterion micro-benchmarks: the functional ASM vs native multiply, the
//! Algorithm-1 projections, the gate-level toggle simulator and the
//! fixed-point inference engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use man::alphabet::AlphabetSet;
use man::asm::AsmMultiplier;
use man::constrain::{project_greedy, WeightLattice};
use man::fixed::{FixedNet, LayerAlphabets, QuantSpec};
use man::train::ConstraintProjector;
use man::zoo::Benchmark;
use man_datasets::GenOptions;
use man_hw::cell::CellLibrary;
use man_hw::components::adder::{adder, AdderKind};
use man_hw::eval::Evaluator;

fn bench_asm_multiply(c: &mut Criterion) {
    let mut group = c.benchmark_group("asm_multiply");
    for set in [AlphabetSet::a1(), AlphabetSet::a2(), AlphabetSet::a4()] {
        let asm = AsmMultiplier::new(8, set.clone());
        let lattice = WeightLattice::new(8, &set);
        let weights: Vec<u32> = lattice.values().to_vec();
        let bank = asm.precompute(97);
        group.bench_with_input(BenchmarkId::from_parameter(set.label()), &set, |b, _| {
            b.iter(|| {
                let mut acc = 0u64;
                for &w in &weights {
                    acc = acc.wrapping_add(asm.multiply(w, &bank).unwrap());
                }
                acc
            })
        });
    }
    group.finish();
}

fn bench_projection(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm1");
    let set = AlphabetSet::a2();
    let lattice = WeightLattice::new(12, &set);
    group.bench_function("exact_12bit_sweep", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for mag in 0..2048u32 {
                acc = acc.wrapping_add(lattice.project_exact(mag));
            }
            acc
        })
    });
    group.bench_function("greedy_12bit_sweep", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for mag in 0..2048u32 {
                acc = acc.wrapping_add(project_greedy(12, &set, mag));
            }
            acc
        })
    });
    group.finish();
}

fn bench_gate_sim(c: &mut Criterion) {
    let lib = CellLibrary::nominal_45nm();
    let circ = adder(16, AdderKind::KoggeStone);
    c.bench_function("gate_sim_ks16_1k_vectors", |b| {
        b.iter(|| {
            let mut sim = Evaluator::new(circ.netlist());
            for i in 0..1000u64 {
                sim.step(&[("a", i * 37 % 65536), ("b", i * 91 % 65536)]);
            }
            sim.dynamic_energy_fj(&lib)
        })
    });
}

fn bench_fixed_inference(c: &mut Criterion) {
    let ds = Benchmark::DigitsMlp.dataset(&GenOptions {
        train: 8,
        test: 8,
        seed: 1,
    });
    let net = Benchmark::DigitsMlp.build_network(0);
    let spec = QuantSpec::fit(&net, 8);
    let alphabets = LayerAlphabets::uniform(AlphabetSet::a1(), 2);
    let mut constrained = net.clone();
    ConstraintProjector::new(&spec, &alphabets).project(&mut constrained);
    let fixed = FixedNet::compile(&constrained, &spec, &alphabets).unwrap();
    c.bench_function("man_mlp_inference_1024_100_10", |b| {
        b.iter(|| fixed.predict(&ds.test_images[0]))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_asm_multiply, bench_projection, bench_gate_sim, bench_fixed_inference
}
criterion_main!(benches);
