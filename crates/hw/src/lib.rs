//! Gate-level hardware modeling substrate for the MAN reproduction.
//!
//! The paper evaluates its neurons by synthesizing an RTL processing engine
//! to IBM 45 nm with Synopsys DC Ultra and reporting energy, power and area
//! under iso-speed conditions. This crate rebuilds that flow from scratch:
//!
//! * [`cell`] — a 45 nm-class standard-cell library;
//! * [`netlist`] — structural netlists with a hashing/folding builder;
//! * [`eval`] — vector-pair logic simulation counting per-gate toggles;
//! * [`timing`] — static timing analysis;
//! * [`power`] — switching-activity energy estimation over real operand
//!   streams;
//! * [`components`] — module generators for every datapath block of the
//!   conventional, ASM and MAN neurons;
//! * [`synth`] — iso-speed architecture selection and pipelining;
//! * [`neuron`] — assembled neuron datapaths.
//!
//! # Example
//!
//! ```
//! use man_hw::cell::CellLibrary;
//! use man_hw::neuron::{NeuronDatapath, NeuronKind, NeuronSpec};
//!
//! let lib = CellLibrary::nominal_45nm();
//! let conv = NeuronDatapath::build(NeuronSpec::paper(8, NeuronKind::Conventional), &lib)?;
//! let man = NeuronDatapath::build(NeuronSpec::paper(8, NeuronKind::Asm(vec![1])), &lib)?;
//! assert!(man.neuron_area_um2(&lib) < conv.neuron_area_um2(&lib));
//! # Ok::<(), man_hw::synth::TimingClosureError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod circuit;
pub mod components;
pub mod eval;
pub mod netlist;
pub mod neuron;
pub mod power;
pub mod synth;
pub mod timing;
