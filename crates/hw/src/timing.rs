//! Static timing analysis: longest combinational path through a netlist.
//!
//! Arrival times propagate forward in topological order (the node table is
//! already topologically sorted by construction). The critical path of a
//! [`crate::circuit::Circuit`] additionally accounts for flip-flop
//! clock-to-Q and setup time when the circuit is registered.

use crate::cell::CellLibrary;
use crate::netlist::{Netlist, NodeOp};

/// Per-node arrival times and the overall critical path.
#[derive(Clone, Debug)]
pub struct TimingReport {
    arrivals: Vec<f64>,
    critical_ps: f64,
}

impl TimingReport {
    /// The worst arrival time at any node, in ps.
    pub fn critical_ps(&self) -> f64 {
        self.critical_ps
    }

    /// Arrival time of a specific node.
    pub fn arrival_ps(&self, node: usize) -> f64 {
        self.arrivals[node]
    }
}

/// Computes arrival times for every node and the critical (longest) path.
pub fn analyze(netlist: &Netlist, lib: &CellLibrary) -> TimingReport {
    let nodes = netlist.nodes();
    let mut arrivals = vec![0.0f64; nodes.len()];
    let mut critical = 0.0f64;
    for (i, op) in nodes.iter().enumerate() {
        let arr = match *op {
            NodeOp::Input | NodeOp::Const(_) => 0.0,
            NodeOp::Unary(kind, a) => arrivals[a.index()] + lib.params(kind).delay_ps,
            NodeOp::Binary(kind, a, b) => {
                arrivals[a.index()].max(arrivals[b.index()]) + lib.params(kind).delay_ps
            }
            NodeOp::Mux { sel, a, b } => {
                arrivals[sel.index()]
                    .max(arrivals[a.index()])
                    .max(arrivals[b.index()])
                    + lib.params(crate::cell::CellKind::Mux2).delay_ps
            }
        };
        arrivals[i] = arr;
        if arr > critical {
            critical = arr;
        }
    }
    TimingReport {
        arrivals,
        critical_ps: critical,
    }
}

/// Longest combinational path in ps (convenience wrapper over [`analyze`]).
pub fn critical_path_ps(netlist: &Netlist, lib: &CellLibrary) -> f64 {
    analyze(netlist, lib).critical_ps()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellLibrary;
    use crate::netlist::{Builder, Bus};

    #[test]
    fn chain_delay_accumulates() {
        let lib = CellLibrary::nominal_45nm();
        let mut b = Builder::new("chain");
        let x = b.input_bus("x", 1);
        let mut n = x.net(0);
        for _ in 0..4 {
            let k = b.constant(true);
            // xor with constant folds; use a fresh input-dependent gate chain
            let _ = k;
            n = {
                let other = x.net(0);
                b.nand(n, other)
            };
        }
        b.output_bus("y", &Bus::from_nets(vec![n]));
        let nl = b.finish();
        let d = critical_path_ps(&nl, &lib);
        let nand = lib.params(crate::cell::CellKind::Nand2).delay_ps;
        // First nand(x, x) folds to not(x); remaining chain alternates but
        // every stage adds at least an inverter delay.
        assert!(d > nand, "chain delay {d} too small");
    }

    #[test]
    fn empty_cone_has_zero_delay() {
        let lib = CellLibrary::nominal_45nm();
        let mut b = Builder::new("wire");
        let x = b.input_bus("x", 4);
        b.output_bus("y", &x);
        let nl = b.finish();
        assert_eq!(critical_path_ps(&nl, &lib), 0.0);
    }
}
