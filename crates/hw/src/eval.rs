//! Vector-pair logic simulation with per-gate toggle counting.
//!
//! This is the activity engine behind the power model: a netlist is driven
//! with a stream of input vectors (sampled from *real* operand traces of the
//! neural network), and every output transition of every gate is counted.
//! Dynamic energy is then `Σ toggles(g) · E_switch(cell(g))`. The simulation
//! is zero-delay, so glitching inside deep combinational logic is not
//! captured directly; circuit generators annotate a glitch factor instead
//! (see [`crate::circuit::Circuit::glitch_factor`]).

use crate::cell::CellLibrary;
use crate::netlist::{Netlist, NodeOp};

/// Simulates a netlist over a stream of input vectors, accumulating per-gate
/// toggle counts.
///
/// # Example
///
/// ```
/// use man_hw::components::adder::{adder, AdderKind};
/// use man_hw::eval::Evaluator;
///
/// let circuit = adder(8, AdderKind::Ripple);
/// let mut sim = Evaluator::new(circuit.netlist());
/// sim.step(&[("a", 100), ("b", 55)]);
/// assert_eq!(sim.output("sum"), 155);
/// ```
#[derive(Debug)]
pub struct Evaluator<'a> {
    netlist: &'a Netlist,
    values: Vec<bool>,
    toggles: Vec<u64>,
    vectors: u64,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator for `netlist` with all signals initially 0.
    pub fn new(netlist: &'a Netlist) -> Self {
        let n = netlist.nodes().len();
        let mut values = vec![false; n];
        for (i, op) in netlist.nodes().iter().enumerate() {
            if let NodeOp::Const(v) = op {
                values[i] = *v;
            }
        }
        Self {
            netlist,
            values,
            toggles: vec![0; n],
            vectors: 0,
        }
    }

    /// Applies one input vector and propagates it through the netlist.
    ///
    /// Toggle counting starts from the second vector (the first establishes
    /// the baseline state). Unassigned input buses keep their previous
    /// values.
    ///
    /// # Panics
    ///
    /// Panics if an input bus name is unknown.
    pub fn step(&mut self, inputs: &[(&str, u64)]) {
        for (name, value) in inputs {
            let nets = self
                .netlist
                .input(name)
                .unwrap_or_else(|| panic!("unknown input bus {name:?}"));
            for (bit, net) in nets.iter().enumerate() {
                let v = (value >> bit) & 1 == 1;
                let idx = net.index();
                if self.values[idx] != v {
                    self.values[idx] = v;
                    if self.vectors > 0 {
                        self.toggles[idx] += 1;
                    }
                }
            }
        }
        for i in 0..self.netlist.nodes().len() {
            let new = match self.netlist.nodes()[i] {
                NodeOp::Input | NodeOp::Const(_) => continue,
                NodeOp::Unary(kind, a) => {
                    let va = self.values[a.index()];
                    match kind {
                        crate::cell::CellKind::Inv => !va,
                        _ => va,
                    }
                }
                NodeOp::Binary(kind, a, b) => {
                    use crate::cell::CellKind::*;
                    let (va, vb) = (self.values[a.index()], self.values[b.index()]);
                    match kind {
                        And2 => va & vb,
                        Or2 => va | vb,
                        Nand2 => !(va & vb),
                        Nor2 => !(va | vb),
                        Xor2 => va ^ vb,
                        Xnor2 => !(va ^ vb),
                        _ => unreachable!("non-binary cell in binary node"),
                    }
                }
                NodeOp::Mux { sel, a, b } => {
                    if self.values[sel.index()] {
                        self.values[b.index()]
                    } else {
                        self.values[a.index()]
                    }
                }
            };
            if self.values[i] != new {
                self.values[i] = new;
                if self.vectors > 0 {
                    self.toggles[i] += 1;
                }
            }
        }
        self.vectors += 1;
    }

    /// Reads an output bus as an LSB-first integer.
    ///
    /// # Panics
    ///
    /// Panics if the output bus name is unknown.
    pub fn output(&self, name: &str) -> u64 {
        let nets = self
            .netlist
            .output(name)
            .unwrap_or_else(|| panic!("unknown output bus {name:?}"));
        nets.iter().enumerate().fold(0u64, |acc, (bit, net)| {
            acc | ((self.values[net.index()] as u64) << bit)
        })
    }

    /// Number of vectors applied so far.
    pub fn vectors(&self) -> u64 {
        self.vectors
    }

    /// Number of *transitions* observed so far (vectors beyond the first).
    pub fn transitions(&self) -> u64 {
        self.vectors.saturating_sub(1)
    }

    /// Total toggle count across all gates.
    pub fn total_toggles(&self) -> u64 {
        self.netlist
            .nodes()
            .iter()
            .enumerate()
            .filter(|(_, op)| op.cell().is_some())
            .map(|(i, _)| self.toggles[i])
            .sum()
    }

    /// Dynamic energy in fJ accumulated over all observed transitions:
    /// `Σ toggles(gate) · switch_fj(cell)`.
    pub fn dynamic_energy_fj(&self, lib: &CellLibrary) -> f64 {
        self.netlist
            .nodes()
            .iter()
            .enumerate()
            .filter_map(|(i, op)| op.cell().map(|k| (i, k)))
            .map(|(i, kind)| self.toggles[i] as f64 * lib.params(kind).switch_fj)
            .sum()
    }

    /// Resets toggle statistics (signal state is kept).
    pub fn reset_stats(&mut self) {
        self.toggles.fill(0);
        self.vectors = if self.vectors > 0 { 1 } else { 0 };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{Builder, Bus};

    fn xor_netlist() -> Netlist {
        let mut b = Builder::new("xor");
        let x = b.input_bus("x", 2);
        let y = b.xor(x.net(0), x.net(1));
        b.output_bus("y", &Bus::from_nets(vec![y]));
        b.finish()
    }

    #[test]
    fn evaluates_truth_table() {
        let nl = xor_netlist();
        let mut sim = Evaluator::new(&nl);
        for (x, want) in [(0b00u64, 0), (0b01, 1), (0b10, 1), (0b11, 0)] {
            sim.step(&[("x", x)]);
            assert_eq!(sim.output("y"), want, "x={x:02b}");
        }
    }

    #[test]
    fn first_vector_establishes_baseline() {
        let nl = xor_netlist();
        let mut sim = Evaluator::new(&nl);
        sim.step(&[("x", 0b01)]); // baseline, no toggles counted
        assert_eq!(sim.total_toggles(), 0);
        sim.step(&[("x", 0b10)]); // output stays 1: no gate toggle
        assert_eq!(sim.total_toggles(), 0);
        sim.step(&[("x", 0b11)]); // output 1 -> 0
        assert_eq!(sim.total_toggles(), 1);
    }

    #[test]
    fn constant_inputs_cause_no_activity() {
        let nl = xor_netlist();
        let mut sim = Evaluator::new(&nl);
        for _ in 0..10 {
            sim.step(&[("x", 0b11)]);
        }
        assert_eq!(sim.total_toggles(), 0);
        assert_eq!(sim.dynamic_energy_fj(&CellLibrary::nominal_45nm()), 0.0);
    }

    #[test]
    fn random_data_consumes_energy() {
        let nl = xor_netlist();
        let mut sim = Evaluator::new(&nl);
        for i in 0..16u64 {
            sim.step(&[("x", i % 4)]);
        }
        assert!(sim.dynamic_energy_fj(&CellLibrary::nominal_45nm()) > 0.0);
    }

    #[test]
    #[should_panic(expected = "unknown input bus")]
    fn unknown_bus_panics() {
        let nl = xor_netlist();
        let mut sim = Evaluator::new(&nl);
        sim.step(&[("nope", 0)]);
    }
}
