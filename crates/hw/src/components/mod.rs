//! Datapath module generators ("a library of RTL blocks"): adders,
//! multipliers, shifters, muxes, random logic, sign handling, the ASM
//! select/shift/combine stage, the alphabet pre-computer bank, MAC stages
//! and the PLAN activation unit.

pub mod activation;
pub mod adder;
pub mod asm;
pub mod logic;
pub mod mac;
pub mod multiplier;
pub mod mux;
pub mod negate;
pub mod precompute;
pub mod shifter;
