//! Wide multiplexer trees — the ASM "select" unit that routes one of the
//! pre-computed alphabet products into the shift stage.

use crate::netlist::{Builder, Bus};

/// Selects one of `options` (all equal width) by the binary index on `sel`
/// (LSB-first). Missing options (when `options.len() < 2^sel.width()`)
/// default to the last provided option, which synthesis would treat as a
/// don't-care.
///
/// # Panics
///
/// Panics if `options` is empty, the widths differ, or `sel` is too narrow
/// to address every option.
pub fn mux_tree(b: &mut Builder, sel: &Bus, options: &[Bus]) -> Bus {
    assert!(!options.is_empty(), "mux tree needs at least one option");
    let width = options[0].width();
    assert!(
        options.iter().all(|o| o.width() == width),
        "mux tree options must share a width"
    );
    assert!(
        1usize << sel.width() >= options.len(),
        "select bus too narrow for {} options",
        options.len()
    );
    let mut level: Vec<Bus> = options.to_vec();
    for stage in 0..sel.width() {
        if level.len() == 1 {
            break;
        }
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut i = 0;
        while i < level.len() {
            if i + 1 < level.len() {
                next.push(b.mux_bus(sel.net(stage), &level[i], &level[i + 1]));
            } else {
                next.push(level[i].clone());
            }
            i += 2;
        }
        level = next;
    }
    level.into_iter().next().expect("nonempty level")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Evaluator;
    use crate::netlist::Builder;

    #[test]
    fn four_way_selects_correctly() {
        let mut b = Builder::new("mux4");
        let sel = b.input_bus("sel", 2);
        let opts: Vec<Bus> = (0..4).map(|i| b.input_bus(format!("o{i}"), 8)).collect();
        let out = mux_tree(&mut b, &sel, &opts);
        b.output_bus("out", &out);
        let nl = b.finish();
        let mut sim = Evaluator::new(&nl);
        let values = [11u64, 22, 33, 44];
        for s in 0..4u64 {
            sim.step(&[
                ("sel", s),
                ("o0", values[0]),
                ("o1", values[1]),
                ("o2", values[2]),
                ("o3", values[3]),
            ]);
            assert_eq!(sim.output("out"), values[s as usize], "sel={s}");
        }
    }

    #[test]
    fn two_way_uses_single_mux_level() {
        let mut b = Builder::new("mux2");
        let sel = b.input_bus("sel", 1);
        let o0 = b.input_bus("o0", 4);
        let o1 = b.input_bus("o1", 4);
        let out = mux_tree(&mut b, &sel, &[o0, o1]);
        b.output_bus("out", &out);
        let nl = b.finish();
        assert_eq!(nl.gate_count(), 4); // one Mux2 per bit
    }

    #[test]
    fn single_option_is_wiring() {
        let mut b = Builder::new("mux1");
        let sel = b.input_bus("sel", 1);
        let o0 = b.input_bus("o0", 4);
        let out = mux_tree(&mut b, &sel, std::slice::from_ref(&o0));
        b.output_bus("out", &out);
        assert_eq!(out.nets(), o0.nets());
    }

    #[test]
    #[should_panic(expected = "too narrow")]
    fn narrow_select_rejected() {
        let mut b = Builder::new("bad");
        let sel = b.input_bus("sel", 1);
        let opts: Vec<Bus> = (0..3).map(|i| b.input_bus(format!("o{i}"), 2)).collect();
        let _ = mux_tree(&mut b, &sel, &opts);
    }
}
