//! Sign handling shared by conventional and ASM datapaths: both multiply
//! magnitudes and re-apply the sign with a conditional two's-complement
//! negation (XOR row plus increment).

use crate::components::adder::{add_bus_cin, AdderKind};
use crate::netlist::{Builder, Bus, Net};

/// Converts an unsigned magnitude into a two's-complement word that is
/// negated when `negate` is 1. The result is `mag.width() + 1` bits wide so
/// the largest magnitude still has a sign bit.
pub fn conditional_negate(b: &mut Builder, mag: &Bus, negate: Net) -> Bus {
    let w = mag.width() + 1;
    let ext = b.resize_bus(mag, w);
    let flipped = Bus::from_nets((0..w).map(|i| b.xor(ext.net(i), negate)).collect());
    let zero = b.const_bus(0, w);
    let sum = add_bus_cin(b, &flipped, &zero, negate, AdderKind::Ripple);
    sum.slice(0..w)
}

/// Sign-extends a two's-complement bus to `width` bits (pure wiring).
pub fn sign_extend(bus: &Bus, width: usize) -> Bus {
    assert!(width >= bus.width(), "cannot sign-extend to a narrower bus");
    let msb = bus.net(bus.width() - 1);
    let mut nets = bus.nets().to_vec();
    nets.resize(width, msb);
    Bus::from_nets(nets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Evaluator;
    use crate::netlist::Builder;

    fn signed_of(value: u64, bits: u32) -> i64 {
        let m = 1u64 << (bits - 1);
        (value as i64 & (m as i64 - 1)) - (value as i64 & m as i64)
    }

    #[test]
    fn negates_exhaustively() {
        let mut b = Builder::new("neg");
        let mag = b.input_bus("mag", 5);
        let s = b.input_bus("s", 1);
        let out = conditional_negate(&mut b, &mag, s.net(0));
        b.output_bus("out", &out);
        let nl = b.finish();
        let mut sim = Evaluator::new(&nl);
        for m in 0..32u64 {
            for s in 0..2u64 {
                sim.step(&[("mag", m), ("s", s)]);
                let got = signed_of(sim.output("out"), 6);
                let want = if s == 1 { -(m as i64) } else { m as i64 };
                assert_eq!(got, want, "mag={m} s={s}");
            }
        }
    }

    #[test]
    fn sign_extension_replicates_msb() {
        let mut b = Builder::new("sx");
        let x = b.input_bus("x", 4);
        let y = sign_extend(&x, 8);
        b.output_bus("y", &y);
        let nl = b.finish();
        let mut sim = Evaluator::new(&nl);
        sim.step(&[("x", 0b1010)]); // -6 in 4 bits
        assert_eq!(signed_of(sim.output("y"), 8), -6);
        sim.step(&[("x", 0b0101)]); // +5
        assert_eq!(signed_of(sim.output("y"), 8), 5);
    }
}
