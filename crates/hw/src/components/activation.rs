//! PLAN piecewise-linear sigmoid (Amin, Curtis & Hayes-Gill, 1997) — the
//! activation unit of the hardware neuron.
//!
//! The approximation uses only shifts and adds, which is why it is the
//! standard choice for digital neurons:
//!
//! | region            | y               |
//! |-------------------|-----------------|
//! | 0 ≤ x < 1         | x/4 + 0.5       |
//! | 1 ≤ x < 2.375     | x/8 + 0.625     |
//! | 2.375 ≤ x < 5     | x/32 + 0.84375  |
//! | x ≥ 5             | ~1 (saturated)  |
//!
//! with `y(-x) = 1 - y(x)`. [`plan_sigmoid_fixed`] is the bit-exact
//! reference implementation shared by the functional inference engine, and
//! [`plan_sigmoid`] is the gate-level twin (they are property-tested against
//! each other).

use crate::circuit::Circuit;
use crate::components::adder::{add_bus_wrap, sub_bus, AdderKind};
use crate::components::logic::ge_const;
use crate::components::mux::mux_tree;
use crate::netlist::{Builder, Bus};

/// Fixed-point interface of the activation unit.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PlanParams {
    /// Input (accumulator) word length, two's complement.
    pub in_bits: u32,
    /// Input fractional bits.
    pub in_frac: u32,
    /// Output word length, unsigned. The output format is `Q0.out_bits`
    /// (all bits fractional): sigmoid outputs live in `[0, 1)` and feed the
    /// next layer's input magnitude directly, with an implicit positive
    /// sign.
    pub out_bits: u32,
}

impl PlanParams {
    /// Output fractional bits (`Q0.out_bits`: the whole word is fraction).
    pub fn out_frac(&self) -> u32 {
        self.out_bits
    }

    /// Validates the parameter combination.
    ///
    /// # Panics
    ///
    /// Panics if the segment thresholds or constants are not representable:
    /// requires `5 <= out_bits <= in_frac` and `in_bits > in_frac + 3`.
    pub fn validate(&self) {
        assert!(self.out_bits >= 5, "PLAN needs at least 5 output bits");
        assert!(
            self.in_frac >= self.out_frac(),
            "accumulator fraction must cover the output fraction"
        );
        assert!(
            self.in_bits > self.in_frac + 3,
            "input must represent the saturation threshold 5.0"
        );
        assert!(self.in_bits <= 63 && self.out_bits <= 63, "word too wide");
    }

    fn thresholds(&self) -> (u64, u64, u64) {
        let t1 = 1u64 << self.in_frac;
        let t2 = 19u64 << (self.in_frac - 3); // 2.375
        let t3 = 5u64 << self.in_frac;
        (t1, t2, t3)
    }
}

/// Bit-exact reference of the PLAN unit: maps a raw accumulator word to the
/// raw activation word. Shifts truncate, exactly as the hardware does.
///
/// # Panics
///
/// Panics if `params` is invalid (see [`PlanParams::validate`]).
pub fn plan_sigmoid_fixed(x_raw: i64, params: &PlanParams) -> u64 {
    params.validate();
    let neg = x_raw < 0;
    let mag = x_raw.unsigned_abs();
    let (t1, t2, t3) = params.thresholds();
    let of = params.out_frac();
    let down = params.in_frac - of;
    let shr = |v: u64, k: u32| if k >= 64 { 0 } else { v >> k };
    let out_max = (1u64 << params.out_bits) - 1; // saturation: 1 - 2^-out_bits
    let y_pos = if mag < t1 {
        shr(mag, 2 + down) + (1u64 << (of - 1))
    } else if mag < t2 {
        shr(mag, 3 + down) + (5u64 << (of - 3))
    } else if mag < t3 {
        shr(mag, 5 + down) + (27u64 << (of - 5))
    } else {
        out_max
    };
    let y_pos = y_pos.min(out_max);
    if neg {
        // 1.0 - y_pos; y_pos >= 0.5 so the result fits in out_bits.
        (1u64 << of) - y_pos
    } else {
        y_pos
    }
}

/// The gate-level PLAN unit: input bus `x` (`in_bits`, two's complement),
/// output bus `y` (`out_bits`, unsigned). `kind` selects the adder
/// architecture of the carry chains (absolute value, comparators and the
/// negative-side subtractor) so synthesis can trade area for speed.
///
/// # Panics
///
/// Panics if `params` is invalid.
pub fn plan_sigmoid(params: &PlanParams, kind: AdderKind) -> Circuit {
    params.validate();
    let mut b = Builder::new(format!(
        "plan_sigmoid_{}q{}_to_q{}_{kind:?}",
        params.in_bits, params.in_frac, params.out_bits
    ));
    let x = b.input_bus("x", params.in_bits as usize);
    let y = plan_sigmoid_body(&mut b, &x, params, kind);
    b.output_bus("y", &y);
    Circuit::combinational(b.finish()).with_glitch_factor(1.1)
}

/// Emits the PLAN logic for an already-available input bus and returns the
/// output bus (used by both [`plan_sigmoid`] and [`activation_unit`]).
fn plan_sigmoid_body(b: &mut Builder, x: &Bus, params: &PlanParams, kind: AdderKind) -> Bus {
    let sign = x.net(params.in_bits as usize - 1);
    // |x| = (x XOR sign) + sign over the full width; for the most negative
    // word the magnitude 2^(in_bits-1) still fits in in_bits unsigned.
    let full = Bus::from_nets(
        (0..params.in_bits as usize)
            .map(|i| b.xor(x.net(i), sign))
            .collect(),
    );
    let zero = b.const_bus(0, params.in_bits as usize);
    let mag = {
        let s = crate::components::adder::add_bus_cin(b, &full, &zero, sign, kind);
        s.slice(0..params.in_bits as usize)
    };

    let (t1, t2, t3) = params.thresholds();
    let ge1 = ge_const(b, &mag, t1, kind);
    let ge2 = ge_const(b, &mag, t2, kind);
    let ge3 = ge_const(b, &mag, t3, kind);
    // Segment index: 0,1,2,3 -> binary select.
    let not_ge2 = b.not(ge2);
    let seg1 = b.and(ge1, not_ge2);
    let sel0 = b.or(seg1, ge3);
    let sel = Bus::from_nets(vec![sel0, ge2]);

    let ow = params.out_bits as usize;
    let of = params.out_frac();
    let down = params.in_frac - of;
    let shr = |b: &mut Builder, bus: &Bus, k: u32, w: usize| -> Bus {
        let zero = b.constant(false);
        Bus::from_nets(
            (0..w)
                .map(|i| {
                    let src = i + k as usize;
                    if src < bus.width() {
                        bus.net(src)
                    } else {
                        zero
                    }
                })
                .collect(),
        )
    };
    let mut options = Vec::with_capacity(4);
    for (k, c) in [
        (2 + down, 1u64 << (of - 1)),
        (3 + down, 5u64 << (of - 3)),
        (5 + down, 27u64 << (of - 5)),
    ] {
        let t = shr(b, &mag, k, ow);
        let cb = b.const_bus(c, ow);
        options.push(add_bus_wrap(b, &t, &cb, AdderKind::Ripple));
    }
    let out_max = (1u64 << params.out_bits) - 1;
    options.push(b.const_bus(out_max, ow));
    let y_pos = mux_tree(b, &sel, &options);
    // Negative side: y = 1.0 - y_pos, computed one bit wider then truncated
    // (the result is <= 0.5 so it always fits).
    let one = b.const_bus(1u64 << of, ow + 1);
    let y_pos_w = b.resize_bus(&y_pos, ow + 1);
    let y_neg = sub_bus(b, &one, &y_pos_w, kind).slice(0..ow);
    b.mux_bus(sign, &y_pos, &y_neg)
}

/// Bit-exact reference of the saturating range compressor in front of the
/// PLAN unit: re-expresses a raw accumulator word (`acc_bits` wide at
/// `acc_frac`) in the PLAN input format, clamping on overflow. The sigmoid
/// saturates at |x| ≥ 5, so the compressor loses nothing.
///
/// # Panics
///
/// Panics if `acc_frac < params.in_frac` (the compressor only drops
/// precision, never manufactures it).
pub fn range_compress_fixed(acc_raw: i64, acc_frac: u32, params: &PlanParams) -> i64 {
    assert!(
        acc_frac >= params.in_frac,
        "compressor cannot add precision"
    );
    let shift = acc_frac - params.in_frac;
    let shifted = acc_raw >> shift; // truncating arithmetic shift
    let max = (1i64 << (params.in_bits - 1)) - 1;
    let min = -(1i64 << (params.in_bits - 1));
    shifted.clamp(min, max)
}

/// The full activation unit: saturating range compressor + PLAN sigmoid in
/// one netlist. Input `acc` (`acc_bits`, two's complement at `acc_frac`),
/// output `y` (`params.out_bits`, unsigned `Q0.out_bits`).
///
/// # Panics
///
/// Panics if the parameters are inconsistent (see [`PlanParams::validate`]
/// and [`range_compress_fixed`]).
pub fn activation_unit(
    acc_bits: u32,
    acc_frac: u32,
    params: &PlanParams,
    kind: AdderKind,
) -> Circuit {
    params.validate();
    assert!(
        acc_frac >= params.in_frac,
        "compressor cannot add precision"
    );
    let shift = (acc_frac - params.in_frac) as usize;
    assert!(
        acc_bits as usize > shift,
        "accumulator too narrow for the requested shift"
    );
    let mut b = Builder::new(format!(
        "activation{}q{}_to_plan{}q{}_{kind:?}",
        acc_bits, acc_frac, params.in_bits, params.in_frac
    ));
    let acc = b.input_bus("acc", acc_bits as usize);
    let sign = acc.net(acc_bits as usize - 1);
    let iw = params.in_bits as usize;
    // Truncating shift (wiring), sign-extended if the accumulator is
    // narrower than the window.
    let window = Bus::from_nets(
        (0..iw)
            .map(|i| {
                let src = i + shift;
                if src < acc_bits as usize {
                    acc.net(src)
                } else {
                    sign
                }
            })
            .collect(),
    );
    // Overflow iff any dropped high bit disagrees with the sign.
    let high: Vec<_> = ((shift + iw - 1)..acc_bits as usize)
        .map(|i| b.xor(acc.net(i), sign))
        .collect();
    let overflow = crate::components::logic::or_tree(&mut b, &high);
    let max = b.const_bus((1u64 << (params.in_bits - 1)) - 1, iw);
    let min = b.const_bus(1u64 << (params.in_bits - 1), iw);
    let clamp = b.mux_bus(sign, &max, &min);
    let x = b.mux_bus(overflow, &window, &clamp);
    // Feed the compressed word into an inlined PLAN unit by re-binding it
    // as the "x" the PLAN logic reads. The PLAN builder expects its own
    // input bus, so replicate its body here via a helper.
    let y = plan_sigmoid_body(&mut b, &x, params, kind);
    b.output_bus("y", &y);
    Circuit::combinational(b.finish()).with_glitch_factor(1.1)
}

/// Bit-exact reference of the whole activation unit.
pub fn activation_unit_fixed(
    acc_raw: i64,
    acc_bits: u32,
    acc_frac: u32,
    params: &PlanParams,
) -> u64 {
    let _ = acc_bits;
    plan_sigmoid_fixed(range_compress_fixed(acc_raw, acc_frac, params), params)
}

/// Convenience: the real-valued PLAN sigmoid (for training-side use and
/// tests).
pub fn plan_sigmoid_f64(x: f64) -> f64 {
    let mag = x.abs();
    let y = if mag < 1.0 {
        0.25 * mag + 0.5
    } else if mag < 2.375 {
        0.125 * mag + 0.625
    } else if mag < 5.0 {
        0.03125 * mag + 0.84375
    } else {
        1.0
    };
    if x < 0.0 {
        1.0 - y
    } else {
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Evaluator;

    fn params() -> PlanParams {
        PlanParams {
            in_bits: 16,
            in_frac: 10,
            out_bits: 8,
        }
    }

    #[test]
    fn reference_tracks_true_sigmoid() {
        let p = params();
        for raw in (-(1i64 << 15)..(1i64 << 15)).step_by(97) {
            let x = raw as f64 / (1u64 << p.in_frac) as f64;
            let y = plan_sigmoid_fixed(raw, &p) as f64 / (1u64 << p.out_frac()) as f64;
            let s = 1.0 / (1.0 + (-x).exp());
            assert!((y - s).abs() < 0.04, "x={x} plan={y} sigmoid={s}");
        }
    }

    #[test]
    fn netlist_matches_reference_exhaustively() {
        let p = PlanParams {
            in_bits: 12,
            in_frac: 8,
            out_bits: 8,
        };
        for kind in AdderKind::CHEAPEST_FIRST {
            let c = plan_sigmoid(&p, kind);
            let mut sim = Evaluator::new(c.netlist());
            for raw in -(1i64 << 11)..(1i64 << 11) {
                let encoded = (raw as u64) & 0xfff;
                sim.step(&[("x", encoded)]);
                assert_eq!(
                    sim.output("y"),
                    plan_sigmoid_fixed(raw, &p),
                    "raw={raw} {kind:?}"
                );
            }
        }
    }

    #[test]
    fn symmetry_point_at_zero() {
        let p = params();
        assert_eq!(
            plan_sigmoid_fixed(0, &p),
            1u64 << (p.out_frac() - 1),
            "sigmoid(0) = 0.5"
        );
    }

    #[test]
    fn saturates_beyond_five() {
        let p = params();
        let big = 6i64 << p.in_frac;
        assert_eq!(plan_sigmoid_fixed(big, &p), (1 << p.out_bits) - 1);
        // Negative saturation: 1.0 - (1 - 2^-out) = one LSB above zero.
        assert_eq!(plan_sigmoid_fixed(-big, &p), 1);
    }

    #[test]
    fn f64_plan_is_monotone() {
        let mut prev = -1.0;
        for i in -100..=100 {
            let y = plan_sigmoid_f64(i as f64 * 0.07);
            assert!(y >= prev);
            prev = y;
        }
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn invalid_params_rejected() {
        let p = PlanParams {
            in_bits: 16,
            in_frac: 6,
            out_bits: 8,
        };
        p.validate();
    }
}
