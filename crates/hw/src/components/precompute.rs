//! The ASM pre-computer bank: generates the "alphabet" products `a·x` for
//! every alphabet `a` in the set.
//!
//! Odd multiples are built from shift-add identities (`3x = x + 2x`,
//! `7x = 8x − x`, `13x = 5x + 8x`, …); structural hashing in the builder
//! shares sub-products exactly like a datapath generator would. In the CSHM
//! arrangement one bank feeds several multiplication units, so its cost is
//! amortized across lanes (the paper shares it across 4 neurons).

use crate::circuit::Circuit;
use crate::components::adder::{add_bus, sub_bus, AdderKind};
use crate::netlist::{Builder, Bus};

/// Checks an alphabet list: odd, strictly increasing, in `1..=15`,
/// starting with 1.
///
/// # Panics
///
/// Panics (with a descriptive message) if the list is not a valid alphabet
/// set.
pub fn validate_alphabets(alphabets: &[u8]) {
    assert!(!alphabets.is_empty(), "alphabet set must not be empty");
    assert!(
        alphabets.windows(2).all(|w| w[0] < w[1]),
        "alphabets must be strictly increasing"
    );
    assert!(
        alphabets.iter().all(|&a| a % 2 == 1 && a <= 15),
        "alphabets must be odd values in 1..=15"
    );
    assert_eq!(alphabets[0], 1, "alphabet set must contain 1");
}

/// Builds `a · x` for one odd alphabet `a` (width `x.width() + 4`).
fn alphabet_product(b: &mut Builder, x: &Bus, a: u8, kind: AdderKind) -> Bus {
    let w = x.width() + 4;
    match a {
        1 => b.resize_bus(x, w),
        3 => {
            let x2 = b.shift_left_const(x, 1, w);
            let x1 = b.resize_bus(x, w);
            let s = add_bus(b, &x1, &x2, kind);
            s.slice(0..w)
        }
        5 => {
            let x4 = b.shift_left_const(x, 2, w);
            let x1 = b.resize_bus(x, w);
            let s = add_bus(b, &x1, &x4, kind);
            s.slice(0..w)
        }
        7 => {
            let x8 = b.shift_left_const(x, 3, w);
            let x1 = b.resize_bus(x, w);
            sub_bus(b, &x8, &x1, kind)
        }
        9 => {
            let x8 = b.shift_left_const(x, 3, w);
            let x1 = b.resize_bus(x, w);
            let s = add_bus(b, &x1, &x8, kind);
            s.slice(0..w)
        }
        11 => {
            // 11x = 3x + 8x; the 3x sub-product is shared via hashing.
            let x3 = alphabet_product(b, x, 3, kind);
            let x8 = b.shift_left_const(x, 3, w);
            let s = add_bus(b, &x3, &x8, kind);
            s.slice(0..w)
        }
        13 => {
            let x5 = alphabet_product(b, x, 5, kind);
            let x8 = b.shift_left_const(x, 3, w);
            let s = add_bus(b, &x5, &x8, kind);
            s.slice(0..w)
        }
        15 => {
            let x16 = b.shift_left_const(x, 4, w);
            let x1 = b.resize_bus(x, w);
            sub_bus(b, &x16, &x1, kind)
        }
        _ => panic!("unsupported alphabet {a}"),
    }
}

/// The pre-computer bank for a `bits`-wide neuron: input `x_mag`
/// (`bits - 1` bits), one output bus `alpha{a}` (`bits + 3` bits) per
/// alphabet.
///
/// For the 1-alphabet set `{1}` the bank contains **no gates** — this is
/// exactly why the MAN neuron can delete it.
///
/// # Panics
///
/// Panics if `bits < 3` or the alphabet set is invalid (see
/// [`validate_alphabets`]).
pub fn precompute_bank(bits: u32, alphabets: &[u8], kind: AdderKind) -> Circuit {
    assert!((3..=16).contains(&bits), "neuron width must be in 3..=16");
    validate_alphabets(alphabets);
    let mut b = Builder::new(format!("precompute{bits}_{}a", alphabets.len()));
    let x = b.input_bus("x_mag", bits as usize - 1);
    for &a in alphabets {
        let p = alphabet_product(&mut b, &x, a, kind);
        b.output_bus(format!("alpha{a}"), &p);
    }
    Circuit::combinational(b.finish()).with_glitch_factor(1.2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellLibrary;
    use crate::eval::Evaluator;

    #[test]
    fn bank_computes_all_alphabet_products() {
        let alphabets = [1u8, 3, 5, 7, 9, 11, 13, 15];
        let c = precompute_bank(8, &alphabets, AdderKind::Ripple);
        let mut sim = Evaluator::new(c.netlist());
        for x in [0u64, 1, 17, 99, 127] {
            sim.step(&[("x_mag", x)]);
            for &a in &alphabets {
                assert_eq!(
                    sim.output(&format!("alpha{a}")),
                    a as u64 * x,
                    "alpha{a} of {x}"
                );
            }
        }
    }

    #[test]
    fn twelve_bit_bank_works() {
        let c = precompute_bank(12, &[1, 3], AdderKind::CarrySelect);
        let mut sim = Evaluator::new(c.netlist());
        sim.step(&[("x_mag", 2047)]);
        assert_eq!(sim.output("alpha1"), 2047);
        assert_eq!(sim.output("alpha3"), 3 * 2047);
    }

    #[test]
    fn one_alphabet_bank_has_no_gates() {
        let c = precompute_bank(8, &[1], AdderKind::Ripple);
        assert_eq!(c.gate_count(), 0, "MAN needs no pre-computer");
    }

    #[test]
    fn bank_cost_grows_with_alphabet_count() {
        let lib = CellLibrary::nominal_45nm();
        let a1 = precompute_bank(8, &[1], AdderKind::Ripple).area_um2(&lib);
        let a2 = precompute_bank(8, &[1, 3], AdderKind::Ripple).area_um2(&lib);
        let a4 = precompute_bank(8, &[1, 3, 5, 7], AdderKind::Ripple).area_um2(&lib);
        let a8 = precompute_bank(8, &[1, 3, 5, 7, 9, 11, 13, 15], AdderKind::Ripple).area_um2(&lib);
        assert!(a1 < a2 && a2 < a4 && a4 < a8);
    }

    #[test]
    #[should_panic(expected = "must contain 1")]
    fn alphabet_without_one_rejected() {
        let _ = precompute_bank(8, &[3, 5], AdderKind::Ripple);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_alphabet_rejected() {
        let _ = precompute_bank(8, &[1, 4], AdderKind::Ripple);
    }
}
