//! Adder module generators: ripple-carry, carry-select and Kogge-Stone.
//!
//! The three architectures span the area/delay trade-off a synthesis tool
//! navigates under a clock constraint: ripple-carry is smallest with an
//! `O(w)` carry chain, carry-select buys roughly half the delay for ~1.6×
//! the area, and the Kogge-Stone parallel-prefix adder reaches `O(log w)`
//! delay at the largest area. [`crate::synth`] picks the cheapest one that
//! meets timing — the iso-speed methodology of the paper.

use crate::circuit::Circuit;
use crate::netlist::{Builder, Bus, Net};

/// Adder architecture.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AdderKind {
    /// Ripple-carry: minimal area, linear carry chain.
    Ripple,
    /// Carry-select with 4-bit blocks: ~half the delay, more area.
    CarrySelect,
    /// Kogge-Stone parallel prefix: logarithmic delay, most area.
    KoggeStone,
}

impl AdderKind {
    /// All kinds from cheapest to fastest (the synthesis search order).
    pub const CHEAPEST_FIRST: [AdderKind; 3] = [
        AdderKind::Ripple,
        AdderKind::CarrySelect,
        AdderKind::KoggeStone,
    ];
}

/// One full adder: returns `(sum, carry)`.
pub fn full_adder(b: &mut Builder, x: Net, y: Net, cin: Net) -> (Net, Net) {
    let t = b.xor(x, y);
    let sum = b.xor(t, cin);
    let g1 = b.and(x, y);
    let g2 = b.and(t, cin);
    let carry = b.or(g1, g2);
    (sum, carry)
}

fn ripple_with_cin(b: &mut Builder, a: &Bus, bb: &Bus, cin: Net) -> (Vec<Net>, Net) {
    debug_assert_eq!(a.width(), bb.width());
    let mut carry = cin;
    let mut sums = Vec::with_capacity(a.width());
    for i in 0..a.width() {
        let (s, c) = full_adder(b, a.net(i), bb.net(i), carry);
        sums.push(s);
        carry = c;
    }
    (sums, carry)
}

fn carry_select_with_cin(b: &mut Builder, a: &Bus, bb: &Bus, cin: Net) -> (Vec<Net>, Net) {
    const BLOCK: usize = 4;
    let w = a.width();
    let mut sums = Vec::with_capacity(w);
    let mut carry = cin;
    let mut lo = 0;
    while lo < w {
        let hi = (lo + BLOCK).min(w);
        let ab = a.slice(lo..hi);
        let bbb = bb.slice(lo..hi);
        if lo == 0 {
            let (s, c) = ripple_with_cin(b, &ab, &bbb, carry);
            sums.extend(s);
            carry = c;
        } else {
            let zero = b.constant(false);
            let one = b.constant(true);
            let (s0, c0) = ripple_with_cin(b, &ab, &bbb, zero);
            let (s1, c1) = ripple_with_cin(b, &ab, &bbb, one);
            for i in 0..s0.len() {
                sums.push(b.mux(carry, s0[i], s1[i]));
            }
            carry = b.mux(carry, c0, c1);
        }
        lo = hi;
    }
    (sums, carry)
}

fn kogge_stone_with_cin(b: &mut Builder, a: &Bus, bb: &Bus, cin: Net) -> (Vec<Net>, Net) {
    let w = a.width();
    let p0: Vec<Net> = (0..w).map(|i| b.xor(a.net(i), bb.net(i))).collect();
    let g0: Vec<Net> = (0..w).map(|i| b.and(a.net(i), bb.net(i))).collect();
    // Parallel-prefix combine: (G, P) spans grow by powers of two.
    let mut g = g0.clone();
    let mut p = p0.clone();
    let mut d = 1;
    while d < w {
        let mut g2 = g.clone();
        let mut p2 = p.clone();
        for i in d..w {
            let t = b.and(p[i], g[i - d]);
            g2[i] = b.or(g[i], t);
            p2[i] = b.and(p[i], p[i - d]);
        }
        g = g2;
        p = p2;
        d *= 2;
    }
    // Carry into bit i: span generate of [0, i-1] plus propagated cin.
    let mut carries = Vec::with_capacity(w + 1);
    carries.push(cin);
    for i in 0..w {
        let t = b.and(p[i], cin);
        carries.push(b.or(g[i], t));
    }
    let sums: Vec<Net> = (0..w).map(|i| b.xor(p0[i], carries[i])).collect();
    (sums, carries[w])
}

fn equalize(b: &mut Builder, a: &Bus, bb: &Bus) -> (Bus, Bus) {
    let w = a.width().max(bb.width());
    (b.resize_bus(a, w), b.resize_bus(bb, w))
}

/// Adds two buses (zero-extended to equal width) with an explicit carry-in;
/// the result is one bit wider than the widest operand.
pub fn add_bus_cin(b: &mut Builder, a: &Bus, bb: &Bus, cin: Net, kind: AdderKind) -> Bus {
    let (a, bb) = equalize(b, a, bb);
    let (mut sums, carry) = match kind {
        AdderKind::Ripple => ripple_with_cin(b, &a, &bb, cin),
        AdderKind::CarrySelect => carry_select_with_cin(b, &a, &bb, cin),
        AdderKind::KoggeStone => kogge_stone_with_cin(b, &a, &bb, cin),
    };
    sums.push(carry);
    Bus::from_nets(sums)
}

/// Adds two buses; result is one bit wider than the widest operand.
pub fn add_bus(b: &mut Builder, a: &Bus, bb: &Bus, kind: AdderKind) -> Bus {
    let zero = b.constant(false);
    add_bus_cin(b, a, bb, zero, kind)
}

/// Two's-complement wrapping add of equal-width views (carry-out dropped).
/// Operands are zero-extended to the widest width first, so for signed
/// arithmetic the caller must sign-extend explicitly.
pub fn add_bus_wrap(b: &mut Builder, a: &Bus, bb: &Bus, kind: AdderKind) -> Bus {
    let w = a.width().max(bb.width());
    let sum = add_bus(b, a, bb, kind);
    sum.slice(0..w)
}

/// Computes `a - b` (wrapping, same width as the widest operand) via
/// `a + !b + 1`. Callers must guarantee the true difference is
/// representable (the ASM pre-computer uses it only for `8I - I` style
/// identities where it always is).
pub fn sub_bus(b: &mut Builder, a: &Bus, bb: &Bus, kind: AdderKind) -> Bus {
    let (a, bb) = equalize(b, a, bb);
    let inv = Bus::from_nets((0..bb.width()).map(|i| b.not(bb.net(i))).collect());
    let one = b.constant(true);
    let sum = add_bus_cin(b, &a, &inv, one, kind);
    sum.slice(0..a.width())
}

/// A standalone `width`-bit adder circuit with input buses `a`, `b` and
/// output bus `sum` (`width + 1` bits).
///
/// # Panics
///
/// Panics if `width` is 0 or greater than 63.
pub fn adder(width: usize, kind: AdderKind) -> Circuit {
    assert!((1..=63).contains(&width), "adder width must be in 1..=63");
    let mut b = Builder::new(format!("adder{width}_{kind:?}"));
    let a = b.input_bus("a", width);
    let bb = b.input_bus("b", width);
    let sum = add_bus(&mut b, &a, &bb, kind);
    b.output_bus("sum", &sum);
    Circuit::combinational(b.finish()).with_glitch_factor(match kind {
        AdderKind::Ripple => 1.25,
        AdderKind::CarrySelect => 1.2,
        AdderKind::KoggeStone => 1.15,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellLibrary;
    use crate::eval::Evaluator;

    fn check_exhaustive(width: usize, kind: AdderKind) {
        let c = adder(width, kind);
        let mut sim = Evaluator::new(c.netlist());
        for a in 0..(1u64 << width) {
            for b in 0..(1u64 << width) {
                sim.step(&[("a", a), ("b", b)]);
                assert_eq!(sim.output("sum"), a + b, "{kind:?} {a}+{b}");
            }
        }
    }

    #[test]
    fn ripple_matches_integer_addition() {
        check_exhaustive(4, AdderKind::Ripple);
    }

    #[test]
    fn carry_select_matches_integer_addition() {
        check_exhaustive(5, AdderKind::CarrySelect);
    }

    #[test]
    fn kogge_stone_matches_integer_addition() {
        check_exhaustive(5, AdderKind::KoggeStone);
    }

    #[test]
    fn wide_adders_agree_on_samples() {
        for kind in AdderKind::CHEAPEST_FIRST {
            let c = adder(24, kind);
            let mut sim = Evaluator::new(c.netlist());
            let mut x = 0x1234_5678u64;
            for _ in 0..200 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(144);
                let a = x & 0xff_ffff;
                let b = (x >> 24) & 0xff_ffff;
                sim.step(&[("a", a), ("b", b)]);
                assert_eq!(sim.output("sum"), a + b, "{kind:?}");
            }
        }
    }

    #[test]
    fn sub_bus_subtracts() {
        let mut b = Builder::new("sub");
        let x = b.input_bus("x", 8);
        let y = b.input_bus("y", 8);
        let d = sub_bus(&mut b, &x, &y, AdderKind::Ripple);
        b.output_bus("d", &d);
        let nl = b.finish();
        let mut sim = Evaluator::new(&nl);
        for (a, c) in [(200u64, 60u64), (255, 0), (8, 1), (7, 7)] {
            sim.step(&[("x", a), ("y", c)]);
            assert_eq!(sim.output("d"), a - c);
        }
    }

    #[test]
    fn architecture_tradeoffs_hold() {
        let lib = CellLibrary::nominal_45nm();
        let rca = adder(16, AdderKind::Ripple);
        let csl = adder(16, AdderKind::CarrySelect);
        let ks = adder(16, AdderKind::KoggeStone);
        assert!(rca.area_um2(&lib) < csl.area_um2(&lib));
        assert!(csl.area_um2(&lib) < ks.area_um2(&lib));
        assert!(ks.comb_delay_ps(&lib) < csl.comb_delay_ps(&lib));
        assert!(csl.comb_delay_ps(&lib) < rca.comb_delay_ps(&lib));
    }

    #[test]
    fn kogge_stone_delay_is_logarithmic() {
        let lib = CellLibrary::nominal_45nm();
        let d8 = adder(8, AdderKind::KoggeStone).comb_delay_ps(&lib);
        let d32 = adder(32, AdderKind::KoggeStone).comb_delay_ps(&lib);
        // 4x the width should cost far less than 4x the delay.
        assert!(d32 < 2.5 * d8, "d8={d8} d32={d32}");
    }

    #[test]
    fn mixed_width_operands_zero_extend() {
        let mut b = Builder::new("mixed");
        let x = b.input_bus("x", 8);
        let y = b.input_bus("y", 3);
        let s = add_bus(&mut b, &x, &y, AdderKind::Ripple);
        b.output_bus("s", &s);
        let nl = b.finish();
        let mut sim = Evaluator::new(&nl);
        sim.step(&[("x", 250), ("y", 7)]);
        assert_eq!(sim.output("s"), 257);
    }
}
