//! Random-logic helpers: OR/AND trees, zero detection, constant
//! comparators, and two-level sum-of-products decoders.
//!
//! The ASM "control logic" is a small decoder per quartet: the quartet value
//! maps to (alphabet select, shift amount, non-zero flag). We generate it as
//! two-level logic from a truth table; builder-level structural hashing
//! shares minterm prefixes, approximating what logic optimization would
//! produce.

use crate::netlist::{Builder, Bus, Net};

/// Balanced OR tree over arbitrarily many nets. Returns constant 0 for an
/// empty list.
pub fn or_tree(b: &mut Builder, nets: &[Net]) -> Net {
    match nets {
        [] => b.constant(false),
        [single] => *single,
        _ => {
            let mid = nets.len() / 2;
            let l = or_tree(b, &nets[..mid]);
            let r = or_tree(b, &nets[mid..]);
            b.or(l, r)
        }
    }
}

/// Balanced AND tree over arbitrarily many nets. Returns constant 1 for an
/// empty list.
pub fn and_tree(b: &mut Builder, nets: &[Net]) -> Net {
    match nets {
        [] => b.constant(true),
        [single] => *single,
        _ => {
            let mid = nets.len() / 2;
            let l = and_tree(b, &nets[..mid]);
            let r = and_tree(b, &nets[mid..]);
            b.and(l, r)
        }
    }
}

/// `1` when every bit of `bus` is zero.
pub fn is_zero(b: &mut Builder, bus: &Bus) -> Net {
    let any = or_tree(b, bus.nets());
    b.not(any)
}

/// The minterm `bus == value` (an AND of true/complemented literals).
pub fn equals_const(b: &mut Builder, bus: &Bus, value: u64) -> Net {
    let literals: Vec<Net> = (0..bus.width())
        .map(|i| {
            if (value >> i) & 1 == 1 {
                bus.net(i)
            } else {
                b.not(bus.net(i))
            }
        })
        .collect();
    and_tree(b, &literals)
}

/// `1` when the unsigned value on `bus` is ≥ `k` (borrow-chain comparator
/// whose carry chain uses the given adder architecture).
pub fn ge_const(
    b: &mut Builder,
    bus: &Bus,
    k: u64,
    kind: crate::components::adder::AdderKind,
) -> Net {
    // bus >= k  <=>  bus + ~k + 1 produces a carry out.
    let w = bus.width();
    assert!(w <= 63 && (k >> w) == 0, "constant does not fit comparator");
    let not_k = (!k) & ((1u64 << w) - 1);
    let kb = b.const_bus(not_k, w);
    let one = b.constant(true);
    let sum = crate::components::adder::add_bus_cin(b, bus, &kb, one, kind);
    sum.net(w)
}

/// Two-level sum-of-products decoder: for an input value `v`, the output bus
/// carries `table[v]`.
///
/// # Panics
///
/// Panics if `table.len() != 2^input.width()` or any entry overflows
/// `out_width` bits.
pub fn sop_decoder(b: &mut Builder, input: &Bus, table: &[u64], out_width: usize) -> Bus {
    assert_eq!(
        table.len(),
        1usize << input.width(),
        "truth table must cover every input value"
    );
    assert!(
        table
            .iter()
            .all(|&t| out_width == 64 || t < (1u64 << out_width)),
        "table entry overflows output width"
    );
    let minterms: Vec<Net> = (0..table.len())
        .map(|v| equals_const(b, input, v as u64))
        .collect();
    let out = (0..out_width)
        .map(|bit| {
            let active: Vec<Net> = table
                .iter()
                .enumerate()
                .filter(|(_, &t)| (t >> bit) & 1 == 1)
                .map(|(v, _)| minterms[v])
                .collect();
            or_tree(b, &active)
        })
        .collect();
    Bus::from_nets(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Evaluator;

    #[test]
    fn zero_detect() {
        let mut b = Builder::new("zd");
        let x = b.input_bus("x", 4);
        let z = is_zero(&mut b, &x);
        b.output_bus("z", &Bus::from_nets(vec![z]));
        let nl = b.finish();
        let mut sim = Evaluator::new(&nl);
        for v in 0..16u64 {
            sim.step(&[("x", v)]);
            assert_eq!(sim.output("z"), (v == 0) as u64);
        }
    }

    #[test]
    fn ge_const_compares() {
        let mut b = Builder::new("ge");
        let x = b.input_bus("x", 6);
        let g = ge_const(&mut b, &x, 19, crate::components::adder::AdderKind::Ripple);
        b.output_bus("g", &Bus::from_nets(vec![g]));
        let nl = b.finish();
        let mut sim = Evaluator::new(&nl);
        for v in 0..64u64 {
            sim.step(&[("x", v)]);
            assert_eq!(sim.output("g"), (v >= 19) as u64, "v={v}");
        }
    }

    #[test]
    fn decoder_reproduces_table() {
        // A 3-bit popcount decoder.
        let table: Vec<u64> = (0..8u64).map(|v| v.count_ones() as u64).collect();
        let mut b = Builder::new("pop");
        let x = b.input_bus("x", 3);
        let y = sop_decoder(&mut b, &x, &table, 2);
        b.output_bus("y", &y);
        let nl = b.finish();
        let mut sim = Evaluator::new(&nl);
        for v in 0..8u64 {
            sim.step(&[("x", v)]);
            assert_eq!(sim.output("y"), v.count_ones() as u64);
        }
    }

    #[test]
    #[should_panic(expected = "truth table")]
    fn decoder_rejects_short_table() {
        let mut b = Builder::new("bad");
        let x = b.input_bus("x", 3);
        let _ = sop_decoder(&mut b, &x, &[0, 1], 1);
    }

    #[test]
    fn trees_handle_degenerate_inputs() {
        let mut b = Builder::new("deg");
        let x = b.input_bus("x", 1);
        assert_eq!(or_tree(&mut b, &[]), b.constant(false));
        assert_eq!(and_tree(&mut b, &[]), b.constant(true));
        assert_eq!(or_tree(&mut b, &[x.net(0)]), x.net(0));
    }
}
