//! Multiply-accumulate stages of the digital neuron.
//!
//! The datapath is split at the natural pipeline boundary: the
//! *multiplication stage* (conventional multiplier or ASM select/shift/add)
//! is feed-forward and may be pipelined to meet the clock, while the
//! *accumulate stage* closes a single-cycle loop through the accumulator
//! register and must fit in one period as-is.
//!
//! Products travel in sign-magnitude form: the multiplication stage emits
//! `(p_mag, p_sign)` and the accumulate stage absorbs the sign with an XOR
//! row plus a carry injection (`acc − p = acc + ~p + 1`). This avoids a
//! carry-propagate negater in the product path; conventional and ASM lanes
//! use the identical arrangement, so comparisons between them stay fair.

use crate::circuit::Circuit;
use crate::components::adder::{add_bus_cin, AdderKind};
use crate::components::multiplier::{mul_bus, MultiplierKind};
use crate::netlist::{Builder, Bus, Net};

/// Product magnitude width of a `bits`-wide neuron: magnitudes are
/// `bits - 1` wide, so the product magnitude needs `2·(bits-1)` bits.
pub fn product_bits(bits: u32) -> u32 {
    2 * (bits - 1)
}

/// Accumulator width for a `bits`-wide neuron summing up to `max_fan_in`
/// products without overflow (one sign bit plus fan-in growth).
pub fn accumulator_bits(bits: u32, max_fan_in: u32) -> u32 {
    let growth = 32 - (max_fan_in - 1).leading_zeros();
    product_bits(bits) + 1 + growth
}

/// The conventional multiplication stage.
///
/// Inputs: `w_mag`, `x_mag` (`bits-1` each), `w_sign`, `x_sign` (1 each).
/// Outputs: `p_mag` (`2·(bits-1)`), `p_sign` (1).
pub fn conventional_mult_stage(bits: u32, kind: MultiplierKind) -> Circuit {
    assert!((3..=16).contains(&bits), "neuron width must be in 3..=16");
    let w = bits as usize - 1;
    let mut b = Builder::new(format!("mult_stage{bits}_{kind:?}"));
    let w_mag = b.input_bus("w_mag", w);
    let x_mag = b.input_bus("x_mag", w);
    let w_sign = b.input_bus("w_sign", 1);
    let x_sign = b.input_bus("x_sign", 1);
    let mag = mul_bus(&mut b, &w_mag, &x_mag, kind);
    let sign = b.xor(w_sign.net(0), x_sign.net(0));
    b.output_bus("p_mag", &mag);
    b.output_bus("p_sign", &Bus::from_nets(vec![sign]));
    Circuit::combinational(b.finish())
        .with_glitch_factor(crate::components::multiplier::multiplier_glitch(kind, w))
}

/// XOR-conditioned product: zero-extend `p_mag` to `acc_bits` and flip every
/// bit when `p_sign` is set; adding 1 (via a carry injection) completes the
/// two's-complement negation inside the accumulator.
fn sign_conditioned(b: &mut Builder, p_mag: &Bus, p_sign: Net, acc_bits: u32) -> Bus {
    let ext = b.resize_bus(p_mag, acc_bits as usize);
    Bus::from_nets(
        (0..acc_bits as usize)
            .map(|i| b.xor(ext.net(i), p_sign))
            .collect(),
    )
}

/// The carry-propagate accumulate stage:
/// `acc_next = acc ± p_mag` (wrapping), sign absorbed via XOR + carry-in.
///
/// Inputs: `p_mag` ([`product_bits`]), `p_sign` (1), `acc` (`acc_bits`).
/// Output: `acc_next` (`acc_bits`). Carries `acc_bits` register bits.
pub fn acc_stage(bits: u32, acc_bits: u32, kind: AdderKind) -> Circuit {
    let pw = product_bits(bits) as usize;
    assert!(acc_bits as usize > pw, "accumulator narrower than product");
    let mut b = Builder::new(format!("acc_stage{bits}_{acc_bits}_{kind:?}"));
    let p_mag = b.input_bus("p_mag", pw);
    let p_sign = b.input_bus("p_sign", 1);
    let acc = b.input_bus("acc", acc_bits as usize);
    let p_x = sign_conditioned(&mut b, &p_mag, p_sign.net(0), acc_bits);
    let next = add_bus_cin(&mut b, &acc, &p_x, p_sign.net(0), kind);
    b.output_bus("acc_next", &next.slice(0..acc_bits as usize));
    Circuit::combinational(b.finish())
        .with_regs(acc_bits)
        .with_glitch_factor(1.2)
}

/// The carry-save accumulate stage used when no carry-propagate adder can
/// close the accumulate loop in one cycle (e.g. a 25-bit accumulator at
/// 3 GHz). The running sum is held redundantly as `(sum, carry)` register
/// pairs; each cycle is a single 3:2 compressor row — one full-adder deep
/// regardless of width. The product sign's `+1` rides in the free LSB of
/// the shifted carry word. A carry-propagate [`resolve_adder`] converts the
/// redundant pair to a plain word once per neuron, before the activation.
///
/// Inputs: `p_mag`, `p_sign`, `acc_s`, `acc_c`.
/// Outputs: `acc_s_next`, `acc_c_next`. Carries `2 × acc_bits` register
/// bits.
///
/// Invariant: `acc_s_next + acc_c_next ≡ acc_s + acc_c ± p (mod 2^acc_bits)`.
pub fn acc_stage_carry_save(bits: u32, acc_bits: u32) -> Circuit {
    let pw = product_bits(bits) as usize;
    assert!(acc_bits as usize > pw, "accumulator narrower than product");
    let mut b = Builder::new(format!("acc_stage{bits}_{acc_bits}_CarrySave"));
    let p_mag = b.input_bus("p_mag", pw);
    let p_sign = b.input_bus("p_sign", 1);
    let acc_s = b.input_bus("acc_s", acc_bits as usize);
    let acc_c = b.input_bus("acc_c", acc_bits as usize);
    let p_x = sign_conditioned(&mut b, &p_mag, p_sign.net(0), acc_bits);
    let mut s_next = Vec::with_capacity(acc_bits as usize);
    let mut c_next = Vec::with_capacity(acc_bits as usize);
    c_next.push(p_sign.net(0)); // the +1 of the two's-complement negation
    for i in 0..acc_bits as usize {
        let (s, c) =
            crate::components::adder::full_adder(&mut b, p_x.net(i), acc_s.net(i), acc_c.net(i));
        s_next.push(s);
        if i + 1 < acc_bits as usize {
            c_next.push(c);
        }
    }
    b.output_bus("acc_s_next", &Bus::from_nets(s_next));
    b.output_bus("acc_c_next", &Bus::from_nets(c_next));
    Circuit::combinational(b.finish())
        .with_regs(2 * acc_bits)
        .with_glitch_factor(1.05)
}

/// Resolves a carry-save pair into a plain accumulator word:
/// `acc = s + c` (wrapping). Feed-forward, so it may be pipelined.
pub fn resolve_adder(acc_bits: u32, kind: AdderKind) -> Circuit {
    let mut b = Builder::new(format!("resolve{acc_bits}_{kind:?}"));
    let s = b.input_bus("s", acc_bits as usize);
    let c = b.input_bus("c", acc_bits as usize);
    let acc = crate::components::adder::add_bus(&mut b, &s, &c, kind);
    b.output_bus("acc", &acc.slice(0..acc_bits as usize));
    Circuit::combinational(b.finish()).with_glitch_factor(1.2)
}

/// Software twin of one carry-save accumulation step (for the functional
/// engine's operand-stream generation): returns `(s_next, c_next)` over
/// `acc_bits`-wide words, for a product in sign-magnitude form.
pub fn carry_save_step(p_mag: u64, p_sign: bool, s: u64, c: u64, acc_bits: u32) -> (u64, u64) {
    let mask = if acc_bits == 64 {
        u64::MAX
    } else {
        (1u64 << acc_bits) - 1
    };
    let p = if p_sign { !p_mag & mask } else { p_mag & mask };
    let sum = p ^ s ^ c;
    let carry = (((p & s) | (c & (p ^ s))) << 1) | p_sign as u64;
    (sum & mask, carry & mask)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Evaluator;

    fn signed_of(value: u64, bits: u32) -> i64 {
        let m = 1u64 << (bits - 1);
        (value as i64 & (m as i64 - 1)) - (value as i64 & m as i64)
    }

    #[test]
    fn conventional_stage_multiplies_signed_samples() {
        let c = conventional_mult_stage(8, MultiplierKind::Wallace(AdderKind::Ripple));
        let mut sim = Evaluator::new(c.netlist());
        let cases = [(0i64, 5i64), (127, 127), (-127, 127), (99, -3), (-1, -1)];
        for (wv, xv) in cases {
            sim.step(&[
                ("w_mag", wv.unsigned_abs()),
                ("x_mag", xv.unsigned_abs()),
                ("w_sign", (wv < 0) as u64),
                ("x_sign", (xv < 0) as u64),
            ]);
            assert_eq!(sim.output("p_mag"), (wv * xv).unsigned_abs(), "{wv}*{xv}");
            assert_eq!(sim.output("p_sign"), ((wv < 0) ^ (xv < 0)) as u64);
        }
    }

    #[test]
    fn accumulator_integrates_signed_products() {
        let acc_bits = accumulator_bits(8, 1024);
        let c = acc_stage(8, acc_bits, AdderKind::KoggeStone);
        assert_eq!(c.regs(), acc_bits);
        let mut sim = Evaluator::new(c.netlist());
        let mask = (1u64 << acc_bits) - 1;
        let mut acc = 0i64;
        for p in [100i64, -50, 16129, -16129, 7, -1] {
            sim.step(&[
                ("p_mag", p.unsigned_abs()),
                ("p_sign", (p < 0) as u64),
                ("acc", (acc as u64) & mask),
            ]);
            acc += p;
            assert_eq!(signed_of(sim.output("acc_next"), acc_bits), acc);
        }
    }

    #[test]
    fn accumulator_width_covers_worst_case() {
        // 1024 inputs of ±127·127 each must not overflow.
        let acc_bits = accumulator_bits(8, 1024);
        let worst = 1024i64 * 127 * 127;
        assert!(worst < 1i64 << (acc_bits - 1), "acc_bits={acc_bits}");
    }

    #[test]
    fn carry_save_loop_matches_plain_accumulation() {
        let acc_bits = accumulator_bits(8, 1024);
        let cs = acc_stage_carry_save(8, acc_bits);
        let resolve = resolve_adder(acc_bits, AdderKind::Ripple);
        let mut sim = Evaluator::new(cs.netlist());
        let mut rsim = Evaluator::new(resolve.netlist());
        let (mut s, mut c) = (0u64, 0u64);
        let mut expect = 0i64;
        for p in [16129i64, -16129, 1, -1, 777, -9999, 16129, 16129] {
            sim.step(&[
                ("p_mag", p.unsigned_abs()),
                ("p_sign", (p < 0) as u64),
                ("acc_s", s),
                ("acc_c", c),
            ]);
            let (s2, c2) = (sim.output("acc_s_next"), sim.output("acc_c_next"));
            // Netlist agrees with the software twin.
            assert_eq!(
                (s2, c2),
                carry_save_step(p.unsigned_abs(), p < 0, s, c, acc_bits)
            );
            s = s2;
            c = c2;
            expect += p;
            rsim.step(&[("s", s), ("c", c)]);
            assert_eq!(
                signed_of(rsim.output("acc"), acc_bits),
                expect,
                "resolved accumulator"
            );
        }
    }

    #[test]
    fn carry_save_stage_is_one_full_adder_deep() {
        let lib = crate::cell::CellLibrary::nominal_45nm();
        let acc_bits = accumulator_bits(12, 1024);
        let cs = acc_stage_carry_save(12, acc_bits);
        // Depth must not grow with width: the sign-conditioning XOR row
        // followed by one full adder (whose carry path is XOR -> AND -> OR).
        let xor = lib.params(crate::cell::CellKind::Xor2).delay_ps;
        let and = lib.params(crate::cell::CellKind::And2).delay_ps;
        let or = lib.params(crate::cell::CellKind::Or2).delay_ps;
        let fa_depth = (2.0 * xor).max(xor + and + or);
        assert!(cs.comb_delay_ps(&lib) <= xor + fa_depth + 1e-9);
    }
}
