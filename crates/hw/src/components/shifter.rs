//! Barrel shifter: variable left shift built from log₂(max_shift) mux
//! stages.
//!
//! The ASM "shift unit": every quartet term is an alphabet shifted by 0–3
//! positions, so a 2-stage barrel shifter suffices regardless of alphabet
//! count.

use crate::circuit::Circuit;
use crate::netlist::{Builder, Bus};

/// Shifts `data` left by the binary amount on `shift` (LSB-first), producing
/// an `out_width`-wide bus. Vacated low bits fill with zero; bits shifted
/// beyond `out_width` are dropped.
pub fn barrel_shift_left(b: &mut Builder, data: &Bus, shift: &Bus, out_width: usize) -> Bus {
    let mut current = b.resize_bus(data, out_width);
    for stage in 0..shift.width() {
        let amount = 1usize << stage;
        let shifted = b.shift_left_const(&current, amount, out_width);
        current = b.mux_bus(shift.net(stage), &current, &shifted);
    }
    current
}

/// A standalone barrel shifter circuit with inputs `data` (`width` bits),
/// `shift` (`shift_bits` bits) and output `out`
/// (`width + 2^shift_bits - 1` bits, so no data is ever lost).
///
/// # Panics
///
/// Panics if widths are zero or the output exceeds 64 bits.
pub fn shifter(width: usize, shift_bits: usize) -> Circuit {
    assert!(width >= 1 && shift_bits >= 1, "degenerate shifter");
    let out_width = width + (1 << shift_bits) - 1;
    assert!(out_width <= 64, "shifter output too wide");
    let mut b = Builder::new(format!("shl{width}_by{shift_bits}"));
    let data = b.input_bus("data", width);
    let shift = b.input_bus("shift", shift_bits);
    let out = barrel_shift_left(&mut b, &data, &shift, out_width);
    b.output_bus("out", &out);
    Circuit::combinational(b.finish()).with_glitch_factor(1.05)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellLibrary;
    use crate::eval::Evaluator;

    #[test]
    fn shifts_exhaustively() {
        let c = shifter(4, 2);
        let mut sim = Evaluator::new(c.netlist());
        for data in 0..16u64 {
            for s in 0..4u64 {
                sim.step(&[("data", data), ("shift", s)]);
                assert_eq!(sim.output("out"), data << s, "{data} << {s}");
            }
        }
    }

    #[test]
    fn wide_shift_keeps_all_bits() {
        let c = shifter(11, 2);
        let mut sim = Evaluator::new(c.netlist());
        sim.step(&[("data", 0b111_1111_1111), ("shift", 3)]);
        assert_eq!(sim.output("out"), 0b111_1111_1111 << 3);
    }

    #[test]
    fn shifter_is_much_smaller_than_multiplier() {
        let lib = CellLibrary::nominal_45nm();
        let s = shifter(11, 2);
        let m = crate::components::multiplier::multiplier(
            7,
            7,
            crate::components::multiplier::MultiplierKind::Wallace(
                crate::components::adder::AdderKind::Ripple,
            ),
        );
        assert!(s.area_um2(&lib) < m.area_um2(&lib) / 3.0);
    }
}
