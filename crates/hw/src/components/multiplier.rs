//! Unsigned multiplier module generators: shift-add array and Wallace tree.
//!
//! These implement the *conventional* neuron's multiplier that the ASM
//! replaces. Both operate on magnitudes; the sign path (XOR of operand signs
//! plus conditional negate) is shared with the ASM datapath and lives in
//! [`crate::components::negate`].

use crate::circuit::Circuit;
use crate::components::adder::{add_bus, full_adder, AdderKind};
use crate::netlist::{Builder, Bus, Net};

/// Multiplier architecture.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum MultiplierKind {
    /// Row-by-row shift-add array: compact, `O(w)` depth, heavy glitching.
    Array,
    /// Wallace-tree carry-save reduction with a selectable final adder:
    /// `O(log w)` depth.
    Wallace(AdderKind),
}

impl MultiplierKind {
    /// Search order for synthesis, cheapest first.
    pub const CHEAPEST_FIRST: [MultiplierKind; 3] = [
        MultiplierKind::Array,
        MultiplierKind::Wallace(AdderKind::Ripple),
        MultiplierKind::Wallace(AdderKind::KoggeStone),
    ];
}

/// Builds the partial-product columns of `a × b`:
/// column `k` collects `a_i · b_j` for all `i + j = k`.
fn partial_product_columns(b: &mut Builder, a: &Bus, bb: &Bus) -> Vec<Vec<Net>> {
    let mut cols = vec![Vec::new(); a.width() + bb.width()];
    for i in 0..a.width() {
        for j in 0..bb.width() {
            let pp = b.and(a.net(i), bb.net(j));
            cols[i + j].push(pp);
        }
    }
    cols
}

/// Carry-save reduction: compresses columns with full/half adders until
/// every column holds at most two nets, then returns the two addends.
/// Shared with the ASM quartet-combine stage.
pub(crate) fn reduce_columns(b: &mut Builder, mut cols: Vec<Vec<Net>>) -> (Bus, Bus) {
    loop {
        let max_height = cols.iter().map(Vec::len).max().unwrap_or(0);
        if max_height <= 2 {
            break;
        }
        let mut next = vec![Vec::new(); cols.len() + 1];
        for (k, col) in cols.iter().enumerate() {
            let mut chunk = col.chunks(3);
            for group in &mut chunk {
                match *group {
                    [x, y, z] => {
                        let (s, c) = full_adder(b, x, y, z);
                        next[k].push(s);
                        next[k + 1].push(c);
                    }
                    [x, y] => {
                        // Half adder.
                        let s = b.xor(x, y);
                        let c = b.and(x, y);
                        next[k].push(s);
                        next[k + 1].push(c);
                    }
                    [x] => next[k].push(x),
                    _ => unreachable!(),
                }
            }
        }
        while next.last().is_some_and(Vec::is_empty) {
            next.pop();
        }
        cols = next;
    }
    let zero = b.constant(false);
    let width = cols.len();
    let mut x = Vec::with_capacity(width);
    let mut y = Vec::with_capacity(width);
    for col in cols {
        let mut it = col.into_iter();
        x.push(it.next().unwrap_or(zero));
        y.push(it.next().unwrap_or(zero));
    }
    (Bus::from_nets(x), Bus::from_nets(y))
}

/// Multiplies two buses, returning a `a.width() + b.width()` wide product.
pub fn mul_bus(b: &mut Builder, a: &Bus, bb: &Bus, kind: MultiplierKind) -> Bus {
    let out_w = a.width() + bb.width();
    match kind {
        MultiplierKind::Array => {
            // Accumulate shifted partial-product rows with ripple adders —
            // the classic carry-propagate array structure.
            let mut acc = b.mask_bus(a, bb.net(0));
            for j in 1..bb.width() {
                let row = b.mask_bus(a, bb.net(j));
                let shifted = b.shift_left_const(&row, j, j + a.width());
                acc = add_bus(b, &acc, &shifted, AdderKind::Ripple);
            }
            b.resize_bus(&acc, out_w)
        }
        MultiplierKind::Wallace(final_adder) => {
            let cols = partial_product_columns(b, a, bb);
            let (x, y) = reduce_columns(b, cols);
            let sum = add_bus(b, &x, &y, final_adder);
            b.resize_bus(&sum, out_w)
        }
    }
}

/// A standalone unsigned multiplier circuit with inputs `a` (`w_a` bits),
/// `b` (`w_b` bits) and output `p` (`w_a + w_b` bits).
///
/// # Panics
///
/// Panics if either width is 0 or the product exceeds 63 bits.
pub fn multiplier(w_a: usize, w_b: usize, kind: MultiplierKind) -> Circuit {
    assert!(
        w_a >= 1 && w_b >= 1 && w_a + w_b <= 63,
        "unsupported widths"
    );
    let mut b = Builder::new(format!("mult{w_a}x{w_b}_{kind:?}"));
    let a = b.input_bus("a", w_a);
    let bb = b.input_bus("b", w_b);
    let p = mul_bus(&mut b, &a, &bb, kind);
    b.output_bus("p", &p);
    Circuit::combinational(b.finish()).with_glitch_factor(multiplier_glitch(kind, (w_a + w_b) / 2))
}

/// Glitch factor of a multiplier: spurious transitions grow with logic
/// depth, so the factor is width-dependent (array structures glitch
/// substantially more than balanced trees; see DESIGN.md §5).
pub(crate) fn multiplier_glitch(kind: MultiplierKind, avg_width: usize) -> f64 {
    match kind {
        MultiplierKind::Array => 1.2 + 0.07 * avg_width as f64,
        MultiplierKind::Wallace(_) => 1.1 + 0.03 * avg_width as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellLibrary;
    use crate::eval::Evaluator;

    fn check_exhaustive(w_a: usize, w_b: usize, kind: MultiplierKind) {
        let c = multiplier(w_a, w_b, kind);
        let mut sim = Evaluator::new(c.netlist());
        for a in 0..(1u64 << w_a) {
            for b in 0..(1u64 << w_b) {
                sim.step(&[("a", a), ("b", b)]);
                assert_eq!(sim.output("p"), a * b, "{kind:?} {a}*{b}");
            }
        }
    }

    #[test]
    fn array_multiplies_exhaustively_4x4() {
        check_exhaustive(4, 4, MultiplierKind::Array);
    }

    #[test]
    fn wallace_multiplies_exhaustively_4x4() {
        check_exhaustive(4, 4, MultiplierKind::Wallace(AdderKind::Ripple));
        check_exhaustive(4, 4, MultiplierKind::Wallace(AdderKind::KoggeStone));
    }

    #[test]
    fn asymmetric_widths_work() {
        check_exhaustive(6, 3, MultiplierKind::Array);
        check_exhaustive(3, 6, MultiplierKind::Wallace(AdderKind::CarrySelect));
    }

    #[test]
    fn seven_bit_samples_match() {
        // 7x7 is the conventional 8-bit neuron's magnitude multiplier.
        for kind in MultiplierKind::CHEAPEST_FIRST {
            let c = multiplier(7, 7, kind);
            let mut sim = Evaluator::new(c.netlist());
            let mut x = 99u64;
            for _ in 0..300 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let a = x & 0x7f;
                let b = (x >> 7) & 0x7f;
                sim.step(&[("a", a), ("b", b)]);
                assert_eq!(sim.output("p"), a * b, "{kind:?}");
            }
        }
    }

    #[test]
    fn wallace_is_faster_than_array() {
        let lib = CellLibrary::nominal_45nm();
        let arr = multiplier(11, 11, MultiplierKind::Array);
        let wal = multiplier(11, 11, MultiplierKind::Wallace(AdderKind::KoggeStone));
        assert!(wal.comb_delay_ps(&lib) < arr.comb_delay_ps(&lib));
    }

    #[test]
    fn multiplier_dwarfs_adder_in_area() {
        // The paper's core premise: the multiplier dominates the neuron.
        let lib = CellLibrary::nominal_45nm();
        let mult = multiplier(7, 7, MultiplierKind::Wallace(AdderKind::Ripple));
        let add = crate::components::adder::adder(14, AdderKind::Ripple);
        assert!(mult.area_um2(&lib) > 3.0 * add.area_um2(&lib));
    }
}
