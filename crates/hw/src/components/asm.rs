//! The ASM multiplication stage: control decode, alphabet select, shift and
//! combine — the structure of Fig. 2 in the paper.
//!
//! The weight magnitude is split into 4-bit quartets (the MSB group is
//! 3 bits because the sign is handled separately). Each quartet value `v`
//! must equal `a << s` for an alphabet `a` and a shift `s ≤ 3`; a small
//! decoder derives `(select, shift, nonzero)` per quartet, a mux tree picks
//! the pre-computed `a·x`, a 2-stage barrel shifter applies `s`, and an
//! adder combines the quartet terms at their 4-bit offsets. The sign is
//! re-applied with a conditional negate, exactly as in the conventional
//! datapath.

use crate::circuit::Circuit;
use crate::components::adder::{add_bus_wrap, AdderKind};
use crate::components::logic::sop_decoder;
use crate::components::mux::mux_tree;
use crate::components::precompute::validate_alphabets;
use crate::components::shifter::barrel_shift_left;
use crate::netlist::{Builder, Bus};

/// Widths of the quartet groups for a weight magnitude of `bits - 1` bits,
/// LSB group first (e.g. 8-bit weights → `[4, 3]`, 12-bit → `[4, 4, 3]`).
pub fn quartet_widths(bits: u32) -> Vec<u32> {
    assert!(bits >= 3, "need at least a sign and a 2-bit magnitude");
    let mut rem = bits - 1;
    let mut widths = Vec::new();
    while rem > 0 {
        let w = rem.min(4);
        widths.push(w);
        rem -= w;
    }
    widths
}

/// For a quartet value `v`, the `(alphabet index, shift)` pair that produces
/// it with the given alphabet set, or `None` if the value is unsupported.
/// `v = 0` is supported by every set (the term is masked to zero).
pub fn quartet_controls(alphabets: &[u8], v: u32) -> Option<(usize, u32)> {
    if v == 0 {
        return Some((0, 0));
    }
    for (idx, &a) in alphabets.iter().enumerate() {
        for s in 0..4u32 {
            if (a as u32) << s == v {
                return Some((idx, s));
            }
        }
    }
    None
}

/// Encodes the decoder truth table for one quartet: output word layout is
/// `nonzero | shift(2) | select(sel_bits)` from LSB up. Unsupported quartet
/// values are don't-cares (constrained weights never produce them); they are
/// filled with all-zero outputs, which minimizes the two-level logic.
fn decode_table(alphabets: &[u8], qwidth: u32, sel_bits: u32) -> Vec<u64> {
    let n = 1usize << qwidth;
    (0..n as u32)
        .map(|v| match quartet_controls(alphabets, v) {
            Some((sel, shift)) if v != 0 => 1u64 | ((shift as u64) << 1) | ((sel as u64) << 3),
            _ => 0,
        })
        .map(move |entry| entry & ((1u64 << (3 + sel_bits)) - 1))
        .collect()
}

/// Builds the ASM multiplication stage for a `bits`-wide neuron.
///
/// Inputs: `w_mag` (`bits-1`), one `alpha{a}` bus (`bits+3` wide) per
/// alphabet (wired from the shared pre-computer bank), `w_sign`, `x_sign`.
/// Outputs: `p_mag` (the product magnitude, `2·(bits-1)` bits) and `p_sign`
/// (1 bit). The sign is absorbed by the accumulate stage (XOR row plus a
/// carry injection) rather than by a per-product negater — the standard
/// sign-magnitude MAC arrangement, used identically by the conventional
/// stage so the comparison stays fair.
///
/// # Panics
///
/// Panics if the alphabet set is invalid or `bits` is out of `3..=16`.
pub fn asm_mult_stage(bits: u32, alphabets: &[u8], combine: AdderKind) -> Circuit {
    assert!((3..=16).contains(&bits), "neuron width must be in 3..=16");
    validate_alphabets(alphabets);
    let sel_bits = usize::BITS - (alphabets.len() - 1).leading_zeros(); // ceil(log2(len))
    let alpha_w = bits as usize + 3;
    let mut b = Builder::new(format!("asm{bits}_{}a_{combine:?}", alphabets.len()));
    let w_mag = b.input_bus("w_mag", bits as usize - 1);
    let alphas: Vec<Bus> = alphabets
        .iter()
        .map(|a| b.input_bus(format!("alpha{a}"), alpha_w))
        .collect();
    let w_sign = b.input_bus("w_sign", 1);
    let x_sign = b.input_bus("x_sign", 1);

    let prod_w = 2 * (bits as usize - 1);
    let widths = quartet_widths(bits);
    let mut terms: Vec<Bus> = Vec::with_capacity(widths.len());
    let mut offset = 0usize;
    for qw in &widths {
        let quartet = w_mag.slice(offset..offset + *qw as usize);
        let table = decode_table(alphabets, *qw, sel_bits);
        let ctrl = sop_decoder(&mut b, &quartet, &table, 3 + sel_bits as usize);
        let nonzero = ctrl.net(0);
        let shift = ctrl.slice(1..3);
        let term = if sel_bits > 0 {
            let sel = ctrl.slice(3..3 + sel_bits as usize);
            mux_tree(&mut b, &sel, &alphas)
        } else {
            alphas[0].clone()
        };
        let term = barrel_shift_left(&mut b, &term, &shift, alpha_w);
        let term = b.mask_bus(&term, nonzero);
        terms.push(b.shift_left_const(&term, offset, prod_w));
        offset += *qw as usize;
    }
    // Combine the quartet terms: two terms add directly; three or more are
    // first compressed carry-save (one full-adder row) so a single
    // carry-propagate adder suffices — mirroring the Wallace structure of
    // the conventional multiplier it replaces.
    let mag = if terms.len() == 1 {
        terms.pop().expect("one term")
    } else if terms.len() == 2 {
        add_bus_wrap(&mut b, &terms[0], &terms[1], combine)
    } else {
        let mut cols: Vec<Vec<crate::netlist::Net>> = vec![Vec::new(); prod_w];
        for t in &terms {
            for (i, col) in cols.iter_mut().enumerate() {
                col.push(t.net(i));
            }
        }
        let (x, y) = crate::components::multiplier::reduce_columns(&mut b, cols);
        let x = x.slice(0..prod_w.min(x.width()));
        let y = y.slice(0..prod_w.min(y.width()));
        add_bus_wrap(&mut b, &x, &y, combine)
    };
    let sign = b.xor(w_sign.net(0), x_sign.net(0));
    b.output_bus("p_mag", &mag);
    b.output_bus("p_sign", &Bus::from_nets(vec![sign]));
    Circuit::combinational(b.finish()).with_glitch_factor(1.15)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::precompute::precompute_bank;
    use crate::eval::Evaluator;

    /// Weight magnitudes whose quartets are all supported by `alphabets`.
    fn supported_magnitudes(alphabets: &[u8], bits: u32) -> Vec<u32> {
        let widths = quartet_widths(bits);
        let mut out = vec![];
        'outer: for mag in 0..(1u32 << (bits - 1)) {
            let mut rem = mag;
            for w in &widths {
                let v = rem & ((1 << w) - 1);
                if quartet_controls(alphabets, v).is_none() {
                    continue 'outer;
                }
                rem >>= w;
            }
            out.push(mag);
        }
        out
    }

    /// Drives the precompute bank functionally and checks the ASM stage
    /// against exact multiplication for every supported weight.
    fn check_asm(bits: u32, alphabets: &[u8]) {
        let stage = asm_mult_stage(bits, alphabets, AdderKind::Ripple);
        let bank = precompute_bank(bits, alphabets, AdderKind::Ripple);
        let mut bank_sim = Evaluator::new(bank.netlist());
        let mut sim = Evaluator::new(stage.netlist());
        let xs: Vec<u64> = vec![0, 1, 3, (1 << (bits - 1)) - 1, 77 % (1 << (bits - 1))];
        for &x in &xs {
            bank_sim.step(&[("x_mag", x)]);
            for w_mag in supported_magnitudes(alphabets, bits) {
                for (ws, xs_sign) in [(0u64, 0u64), (1, 0), (0, 1), (1, 1)] {
                    let mut inputs: Vec<(String, u64)> = alphabets
                        .iter()
                        .map(|a| (format!("alpha{a}"), bank_sim.output(&format!("alpha{a}"))))
                        .collect();
                    inputs.push(("w_mag".into(), w_mag as u64));
                    inputs.push(("w_sign".into(), ws));
                    inputs.push(("x_sign".into(), xs_sign));
                    let refs: Vec<(&str, u64)> =
                        inputs.iter().map(|(n, v)| (n.as_str(), *v)).collect();
                    sim.step(&refs);
                    let got_mag = sim.output("p_mag");
                    let got_sign = sim.output("p_sign");
                    assert_eq!(
                        got_mag,
                        w_mag as u64 * x,
                        "bits={bits} A={alphabets:?} w={w_mag} x={x}"
                    );
                    assert_eq!(got_sign, ws ^ xs_sign, "sign w={w_mag} x={x}");
                }
            }
        }
    }

    #[test]
    fn man_8bit_matches_exact_multiply_on_supported_weights() {
        check_asm(8, &[1]);
    }

    #[test]
    fn asm2_8bit_matches_exact_multiply() {
        check_asm(8, &[1, 3]);
    }

    #[test]
    fn asm4_8bit_matches_exact_multiply() {
        check_asm(8, &[1, 3, 5, 7]);
    }

    #[test]
    fn full_alphabet_8bit_supports_every_weight() {
        let alphabets = [1u8, 3, 5, 7, 9, 11, 13, 15];
        let all = supported_magnitudes(&alphabets, 8);
        assert_eq!(all.len(), 128, "8 alphabets cover every 7-bit magnitude");
        check_asm(8, &alphabets);
    }

    #[test]
    fn man_12bit_matches_exact_multiply() {
        check_asm(12, &[1]);
    }

    #[test]
    fn quartet_widths_match_paper() {
        assert_eq!(quartet_widths(8), vec![4, 3]);
        assert_eq!(quartet_widths(12), vec![4, 4, 3]);
    }

    #[test]
    fn paper_example_control_decode() {
        // Paper Fig. 2: W = 0b0100_1010 -> LSB quartet 10 = 5<<1,
        // MSB quartet 4 = 1<<2.
        assert_eq!(quartet_controls(&[1, 3, 5, 7], 10), Some((2, 1)));
        assert_eq!(quartet_controls(&[1, 3, 5, 7], 4), Some((0, 2)));
        // 9 is unsupported with {1,3,5,7} (Section IV-A).
        assert_eq!(quartet_controls(&[1, 3, 5, 7], 9), None);
    }

    #[test]
    fn supported_counts_match_paper_section_iv() {
        // "if we use 4 alphabets {1,3,5,7}, we can generate 12 (including 0)
        // out of 16 possible combinations"
        let n4 = (0..16)
            .filter(|&v| quartet_controls(&[1, 3, 5, 7], v).is_some())
            .count();
        assert_eq!(n4, 12);
        // {1,3}: supported {0,1,2,3,4,6,8,12} = 8 of 16.
        let n2 = (0..16)
            .filter(|&v| quartet_controls(&[1, 3], v).is_some())
            .count();
        assert_eq!(n2, 8);
        // {1}: powers of two plus zero = 5.
        let n1 = (0..16)
            .filter(|&v| quartet_controls(&[1], v).is_some())
            .count();
        assert_eq!(n1, 5);
    }
}
