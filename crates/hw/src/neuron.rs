//! Assembled neuron datapaths: the complete hardware cost model for one
//! processing-unit lane (multiplier stage + accumulator + activation) plus
//! the shared pre-computer bank of the CSHM arrangement.

use serde::{Deserialize, Serialize};

use crate::cell::CellLibrary;
use crate::circuit::Circuit;
use crate::components::activation::PlanParams;
use crate::components::mac::accumulator_bits;
use crate::synth::{
    synthesize_acc, synthesize_activation, synthesize_asm_mult, synthesize_conventional_mult,
    synthesize_precompute, synthesize_resolver, AccStyle, TimingClosureError,
};

/// Which multiplier the neuron uses.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NeuronKind {
    /// Conventional exact multiplier.
    Conventional,
    /// Alphabet-set multiplier with the given alphabet list.
    /// `Asm(vec![1])` is the Multiplier-less Artificial Neuron (MAN).
    Asm(Vec<u8>),
}

impl NeuronKind {
    /// A short label matching the paper's terminology.
    pub fn label(&self) -> String {
        match self {
            NeuronKind::Conventional => "conventional".to_owned(),
            NeuronKind::Asm(a) if a == &[1] => "MAN {1}".to_owned(),
            NeuronKind::Asm(a) => format!(
                "ASM {{{}}}",
                a.iter().map(u8::to_string).collect::<Vec<_>>().join(",")
            ),
        }
    }

    /// `true` for the 1-alphabet `{1}` multiplier-less neuron.
    pub fn is_man(&self) -> bool {
        matches!(self, NeuronKind::Asm(a) if a.as_slice() == [1])
    }
}

/// Parameters of a neuron datapath build.
#[derive(Clone, Debug, PartialEq)]
pub struct NeuronSpec {
    /// Word length of inputs and weights (8 or 12 in the paper).
    pub bits: u32,
    /// Multiplier choice.
    pub kind: NeuronKind,
    /// Lanes sharing one pre-computer bank (the paper uses 4).
    pub lanes: u32,
    /// Largest layer fan-in the accumulator must absorb without overflow.
    pub max_fan_in: u32,
    /// Clock period in ps (333 for 3 GHz @ 8-bit, 400 for 2.5 GHz @ 12-bit).
    pub clock_ps: f64,
    /// Fractional bits of the accumulator word (drives the activation
    /// unit's range compressor).
    pub acc_frac: u32,
    /// Fixed-point interface of the PLAN core inside the activation unit.
    pub activation: PlanParams,
}

impl NeuronSpec {
    /// The paper's configuration for a given word length and multiplier
    /// kind: 4 lanes, 1024-input layers, 3 GHz (8-bit) / 2.5 GHz (12-bit),
    /// and an activation reading the top accumulator bits.
    pub fn paper(bits: u32, kind: NeuronKind) -> Self {
        let clock_ps = if bits <= 8 { 333.0 } else { 400.0 };
        // Representative fixed-point interface: activations are Q0.(bits-1)
        // magnitudes, weights keep (bits-2) fractional bits, so the
        // accumulator carries (bits-1) + (bits-2) fractional bits. A
        // saturating range compressor narrows the accumulator word to a
        // (bits+3)-bit window before the PLAN core (sigmoid saturates at
        // |x| ≥ 5, so ±16 of headroom is plenty). The functional engine
        // picks per-layer formats; hardware cost only needs consistent
        // widths.
        let activation = PlanParams {
            in_bits: bits + 3,
            in_frac: bits - 1,
            out_bits: bits - 1,
        };
        Self {
            bits,
            kind,
            lanes: 4,
            max_fan_in: 1024,
            clock_ps,
            acc_frac: (bits - 1) + (bits - 2),
            activation,
        }
    }

    /// Accumulator width implied by `bits` and `max_fan_in`.
    pub fn acc_bits(&self) -> u32 {
        accumulator_bits(self.bits, self.max_fan_in)
    }
}

/// A fully synthesized neuron datapath (per-lane blocks plus the shared
/// pre-computer).
#[derive(Clone, Debug)]
pub struct NeuronDatapath {
    spec: NeuronSpec,
    /// Shared alphabet bank (`None` for conventional neurons and for MAN,
    /// whose bank is empty).
    pub precompute: Option<Circuit>,
    /// Per-lane multiplication stage.
    pub mult_stage: Circuit,
    /// Per-lane accumulate stage (with accumulator register).
    pub acc_stage: Circuit,
    /// How the accumulator holds its running sum.
    pub acc_style: AccStyle,
    /// Carry-save resolve adder (present only with
    /// [`AccStyle::CarrySave`]). Like the activation it runs once per
    /// neuron output — thousands of MAC cycles apart — so one instance is
    /// shared by all lanes of the processing unit.
    pub resolver: Option<Circuit>,
    /// Activation unit, shared across the unit's lanes (neuron outputs
    /// complete once per layer pass, so a single PLAN block keeps up).
    pub activation: Circuit,
}

impl NeuronDatapath {
    /// Synthesizes every block of the datapath under the spec's clock.
    ///
    /// # Errors
    ///
    /// Returns [`TimingClosureError`] if any block cannot meet the clock.
    pub fn build(spec: NeuronSpec, lib: &CellLibrary) -> Result<Self, TimingClosureError> {
        let acc_bits = spec.acc_bits();
        let (precompute, mult_stage) = match &spec.kind {
            NeuronKind::Conventional => (
                None,
                synthesize_conventional_mult(spec.bits, lib, spec.clock_ps)?,
            ),
            NeuronKind::Asm(alphabets) => {
                let bank = synthesize_precompute(spec.bits, alphabets, lib, spec.clock_ps)?;
                let stage = synthesize_asm_mult(spec.bits, alphabets, lib, spec.clock_ps)?;
                // The MAN bank has no gates; drop it so reports show the
                // pre-computer genuinely disappearing.
                let bank = if bank.gate_count() == 0 {
                    None
                } else {
                    Some(bank)
                };
                (bank, stage)
            }
        };
        let (acc, acc_style) = synthesize_acc(spec.bits, acc_bits, lib, spec.clock_ps)?;
        let resolver = match acc_style {
            AccStyle::CarryPropagate => None,
            AccStyle::CarrySave => Some(synthesize_resolver(acc_bits, lib, spec.clock_ps)?),
        };
        let activation = synthesize_activation(
            acc_bits,
            spec.acc_frac,
            &spec.activation,
            lib,
            spec.clock_ps,
        )?;
        Ok(Self {
            spec,
            precompute,
            mult_stage,
            acc_stage: acc,
            acc_style,
            resolver,
            activation,
        })
    }

    /// The spec this datapath was built from.
    pub fn spec(&self) -> &NeuronSpec {
        &self.spec
    }

    /// Area of one processing unit: shared blocks (pre-computer bank,
    /// resolve adder, activation) plus `lanes` × (multiplier stage +
    /// accumulator), in µm².
    pub fn unit_area_um2(&self, lib: &CellLibrary) -> f64 {
        let shared = self.precompute.as_ref().map_or(0.0, |c| c.area_um2(lib))
            + self.resolver.as_ref().map_or(0.0, |c| c.area_um2(lib))
            + self.activation.area_um2(lib);
        let lane = self.mult_stage.area_um2(lib) + self.acc_stage.area_um2(lib);
        shared + self.spec.lanes as f64 * lane
    }

    /// Effective area of a single neuron: the unit area divided by the
    /// number of lanes (the pre-computer is amortized, as in CSHM).
    pub fn neuron_area_um2(&self, lib: &CellLibrary) -> f64 {
        self.unit_area_um2(lib) / self.spec.lanes as f64
    }

    /// Worst per-cycle delay across the blocks (must be ≤ the clock).
    pub fn cycle_delay_ps(&self, lib: &CellLibrary) -> f64 {
        let mut d: f64 = self.mult_stage.cycle_delay_ps(lib);
        d = d.max(self.acc_stage.cycle_delay_ps(lib));
        d = d.max(self.activation.cycle_delay_ps(lib));
        if let Some(p) = &self.precompute {
            d = d.max(p.cycle_delay_ps(lib));
        }
        if let Some(r) = &self.resolver {
            d = d.max(r.cycle_delay_ps(lib));
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_specs_close_timing() {
        let lib = CellLibrary::nominal_45nm();
        for bits in [8u32, 12] {
            for kind in [
                NeuronKind::Conventional,
                NeuronKind::Asm(vec![1, 3, 5, 7]),
                NeuronKind::Asm(vec![1, 3]),
                NeuronKind::Asm(vec![1]),
            ] {
                let spec = NeuronSpec::paper(bits, kind.clone());
                let clock = spec.clock_ps;
                let dp = NeuronDatapath::build(spec, &lib)
                    .unwrap_or_else(|e| panic!("bits={bits} {kind:?}: {e}"));
                assert!(
                    dp.cycle_delay_ps(&lib) <= clock,
                    "bits={bits} {kind:?} misses clock"
                );
            }
        }
    }

    #[test]
    fn area_ordering_matches_paper_fig10() {
        let lib = CellLibrary::nominal_45nm();
        for bits in [8u32, 12] {
            let area = |kind: NeuronKind| {
                NeuronDatapath::build(NeuronSpec::paper(bits, kind), &lib)
                    .unwrap()
                    .neuron_area_um2(&lib)
            };
            let conv = area(NeuronKind::Conventional);
            let asm4 = area(NeuronKind::Asm(vec![1, 3, 5, 7]));
            let asm2 = area(NeuronKind::Asm(vec![1, 3]));
            let man = area(NeuronKind::Asm(vec![1]));
            assert!(man < asm2, "bits={bits}: MAN {man:.0} !< ASM2 {asm2:.0}");
            assert!(asm2 < asm4, "bits={bits}: ASM2 {asm2:.0} !< ASM4 {asm4:.0}");
            // The paper itself notes the 4-alphabet ASM "may not achieve
            // significant improvement"; allow it to sit at parity with the
            // conventional neuron.
            assert!(
                asm4 < conv * 1.03,
                "bits={bits}: ASM4 {asm4:.0} !~< conv {conv:.0}"
            );
        }
    }

    #[test]
    fn man_has_no_precompute_bank() {
        let lib = CellLibrary::nominal_45nm();
        let dp =
            NeuronDatapath::build(NeuronSpec::paper(8, NeuronKind::Asm(vec![1])), &lib).unwrap();
        assert!(dp.precompute.is_none());
        let dp2 =
            NeuronDatapath::build(NeuronSpec::paper(8, NeuronKind::Asm(vec![1, 3])), &lib).unwrap();
        assert!(dp2.precompute.is_some());
    }

    #[test]
    fn kind_labels_match_paper_terms() {
        assert_eq!(NeuronKind::Conventional.label(), "conventional");
        assert_eq!(NeuronKind::Asm(vec![1]).label(), "MAN {1}");
        assert_eq!(NeuronKind::Asm(vec![1, 3]).label(), "ASM {1,3}");
        assert!(NeuronKind::Asm(vec![1]).is_man());
        assert!(!NeuronKind::Asm(vec![1, 3]).is_man());
    }
}
