//! Standard-cell library: the technology the netlists are "mapped" to.
//!
//! The paper synthesizes its RTL processing engine to the IBM 45 nm library
//! with Synopsys DC Ultra. That PDK is proprietary, so this module provides a
//! *45 nm-class* library: per-cell area, propagation delay, switching energy
//! and leakage with magnitudes representative of published 45 nm data
//! (gate areas of a few µm², delays of tens of ps, switching energies around
//! a femtojoule). Absolute joules will differ from the IBM library; the
//! conventional-vs-ASM *ratios* reported by the experiments come from circuit
//! structure, not from these constants (see the ablation bench that scales
//! the library).

use serde::{Deserialize, Serialize};

/// The primitive cell kinds the netlist builder can instantiate.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CellKind {
    /// Inverter.
    Inv,
    /// Buffer.
    Buf,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 2:1 multiplexer (`sel == 0` selects the first data input).
    Mux2,
    /// D flip-flop (used for register-bank accounting, not in the
    /// combinational graph).
    Dff,
}

impl CellKind {
    /// All library cells, in a stable order.
    pub const ALL: [CellKind; 10] = [
        CellKind::Inv,
        CellKind::Buf,
        CellKind::And2,
        CellKind::Or2,
        CellKind::Nand2,
        CellKind::Nor2,
        CellKind::Xor2,
        CellKind::Xnor2,
        CellKind::Mux2,
        CellKind::Dff,
    ];
}

/// Electrical/physical characteristics of one cell.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CellParams {
    /// Cell area in µm².
    pub area_um2: f64,
    /// Worst-case propagation delay in ps (input to output).
    pub delay_ps: f64,
    /// Energy per output transition in fJ (internal + average output load).
    pub switch_fj: f64,
    /// Leakage power in nW.
    pub leakage_nw: f64,
}

/// A complete cell library.
///
/// # Example
///
/// ```
/// use man_hw::cell::{CellKind, CellLibrary};
///
/// let lib = CellLibrary::nominal_45nm();
/// assert!(lib.params(CellKind::Xor2).area_um2 > lib.params(CellKind::Inv).area_um2);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CellLibrary {
    name: String,
    cells: [CellParams; 10],
    /// Extra energy a flip-flop consumes every clock cycle from the clock
    /// pin toggling, independent of data activity (fJ/cycle).
    pub dff_clock_fj: f64,
    /// DFF setup time in ps (subtracted from the usable clock period).
    pub dff_setup_ps: f64,
    /// DFF clock-to-Q delay in ps.
    pub dff_clk_q_ps: f64,
}

impl CellLibrary {
    /// A 45 nm-class library with representative magnitudes.
    pub fn nominal_45nm() -> Self {
        use CellKind::*;
        let mut cells = [CellParams {
            area_um2: 0.0,
            delay_ps: 0.0,
            switch_fj: 0.0,
            leakage_nw: 0.0,
        }; 10];
        let set = |cells: &mut [CellParams; 10], k: CellKind, area, delay, sw, leak| {
            cells[k as usize] = CellParams {
                area_um2: area,
                delay_ps: delay,
                switch_fj: sw,
                leakage_nw: leak,
            };
        };
        set(&mut cells, Inv, 0.8, 12.0, 0.35, 6.0);
        set(&mut cells, Buf, 1.1, 22.0, 0.50, 8.0);
        set(&mut cells, And2, 1.4, 26.0, 0.75, 11.0);
        set(&mut cells, Or2, 1.4, 27.0, 0.75, 11.0);
        set(&mut cells, Nand2, 1.1, 17.0, 0.60, 9.0);
        set(&mut cells, Nor2, 1.1, 21.0, 0.60, 9.0);
        set(&mut cells, Xor2, 2.2, 36.0, 1.30, 16.0);
        set(&mut cells, Xnor2, 2.2, 36.0, 1.30, 16.0);
        set(&mut cells, Mux2, 2.3, 31.0, 1.10, 14.0);
        set(&mut cells, Dff, 4.6, 0.0, 1.60, 28.0);
        Self {
            name: "nominal-45nm".to_owned(),
            cells,
            dff_clock_fj: 0.9,
            dff_setup_ps: 28.0,
            dff_clk_q_ps: 55.0,
        }
    }

    /// Library name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Characteristics of `kind`.
    pub fn params(&self, kind: CellKind) -> CellParams {
        self.cells[kind as usize]
    }

    /// Returns a copy of the library with every delay/energy/area scaled —
    /// used by the sensitivity ablation to show result ratios are stable
    /// under library perturbation.
    pub fn scaled(&self, area: f64, delay: f64, energy: f64) -> Self {
        let mut out = self.clone();
        out.name = format!("{}-scaled", self.name);
        for c in &mut out.cells {
            c.area_um2 *= area;
            c.delay_ps *= delay;
            c.switch_fj *= energy;
            c.leakage_nw *= energy;
        }
        out.dff_clock_fj *= energy;
        out.dff_setup_ps *= delay;
        out.dff_clk_q_ps *= delay;
        out
    }
}

impl Default for CellLibrary {
    fn default() -> Self {
        Self::nominal_45nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_library_is_populated() {
        let lib = CellLibrary::nominal_45nm();
        for kind in CellKind::ALL {
            let p = lib.params(kind);
            assert!(p.area_um2 > 0.0, "{kind:?} has no area");
            assert!(p.switch_fj > 0.0, "{kind:?} has no switching energy");
            assert!(p.leakage_nw > 0.0, "{kind:?} has no leakage");
        }
    }

    #[test]
    fn xor_is_costlier_than_nand() {
        let lib = CellLibrary::nominal_45nm();
        assert!(lib.params(CellKind::Xor2).switch_fj > lib.params(CellKind::Nand2).switch_fj);
        assert!(lib.params(CellKind::Xor2).delay_ps > lib.params(CellKind::Nand2).delay_ps);
    }

    #[test]
    fn scaling_applies_uniformly() {
        let lib = CellLibrary::nominal_45nm();
        let scaled = lib.scaled(2.0, 1.0, 0.5);
        let a = lib.params(CellKind::And2);
        let b = scaled.params(CellKind::And2);
        assert_eq!(b.area_um2, a.area_um2 * 2.0);
        assert_eq!(b.delay_ps, a.delay_ps);
        assert_eq!(b.switch_fj, a.switch_fj * 0.5);
    }
}
