//! Gate-level netlist representation and a structurally-hashing builder.
//!
//! Circuits are built through [`Builder`], which performs the light
//! optimizations a synthesis tool would do for free — constant folding,
//! double-inversion removal and common-subexpression (structural) hashing —
//! so that generated datapaths are not padded with dead logic that would
//! inflate area and power dishonestly. [`Builder::finish`] additionally
//! prunes every gate outside the cone of the declared outputs.
//!
//! Netlists are combinational and acyclic by construction: a gate can only
//! reference nets that already exist. Registers are accounted for at the
//! [`crate::circuit::Circuit`] level.

use std::collections::HashMap;

use crate::cell::CellKind;

/// A single-bit signal in a netlist (an index into the node table).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Net(u32);

impl Net {
    /// The node index this net is driven by.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A multi-bit signal, least-significant bit first.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bus(Vec<Net>);

impl Bus {
    /// Builds a bus from LSB-first nets.
    pub fn from_nets(nets: Vec<Net>) -> Self {
        Self(nets)
    }

    /// Width in bits.
    pub fn width(&self) -> usize {
        self.0.len()
    }

    /// The net at bit position `i` (0 = LSB).
    ///
    /// # Panics
    ///
    /// Panics if `i >= width()`.
    pub fn net(&self, i: usize) -> Net {
        self.0[i]
    }

    /// All nets, LSB first.
    pub fn nets(&self) -> &[Net] {
        &self.0
    }

    /// A sub-range of the bus as a new bus.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bus {
        Bus(self.0[range].to_vec())
    }
}

/// The operation computed by one node.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum NodeOp {
    /// External input bit (value supplied per simulation vector).
    Input,
    /// Constant driver.
    Const(bool),
    /// Inverter or buffer.
    Unary(CellKind, Net),
    /// Two-input gate.
    Binary(CellKind, Net, Net),
    /// 2:1 mux: `sel == 0` selects `a`, `sel == 1` selects `b`.
    Mux {
        /// Select input.
        sel: Net,
        /// Data input chosen when `sel == 0`.
        a: Net,
        /// Data input chosen when `sel == 1`.
        b: Net,
    },
}

impl NodeOp {
    /// The library cell implementing this node, if it is a gate.
    pub fn cell(&self) -> Option<CellKind> {
        match self {
            NodeOp::Input | NodeOp::Const(_) => None,
            NodeOp::Unary(k, _) | NodeOp::Binary(k, _, _) => Some(*k),
            NodeOp::Mux { .. } => Some(CellKind::Mux2),
        }
    }
}

/// A finished combinational netlist with named input and output buses.
#[derive(Clone, Debug)]
pub struct Netlist {
    name: String,
    nodes: Vec<NodeOp>,
    inputs: Vec<(String, Vec<Net>)>,
    outputs: Vec<(String, Vec<Net>)>,
}

impl Netlist {
    /// Netlist name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Node table in topological order (operands always precede users).
    pub fn nodes(&self) -> &[NodeOp] {
        &self.nodes
    }

    /// Number of instantiated gates (inputs and constants excluded).
    pub fn gate_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.cell().is_some()).count()
    }

    /// Per-cell-kind gate histogram.
    pub fn cell_counts(&self) -> std::collections::BTreeMap<CellKind, usize> {
        let mut map = std::collections::BTreeMap::new();
        for n in &self.nodes {
            if let Some(k) = n.cell() {
                *map.entry(k).or_insert(0) += 1;
            }
        }
        map
    }

    /// Named input buses.
    pub fn inputs(&self) -> &[(String, Vec<Net>)] {
        &self.inputs
    }

    /// Named output buses.
    pub fn outputs(&self) -> &[(String, Vec<Net>)] {
        &self.outputs
    }

    /// Finds an input bus by name.
    pub fn input(&self, name: &str) -> Option<&[Net]> {
        self.inputs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, nets)| nets.as_slice())
    }

    /// Finds an output bus by name.
    pub fn output(&self, name: &str) -> Option<&[Net]> {
        self.outputs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, nets)| nets.as_slice())
    }
}

#[derive(Debug, PartialEq, Eq, Hash)]
enum CseKey {
    Unary(CellKind, Net),
    Binary(CellKind, Net, Net),
    Mux(Net, Net, Net),
}

/// Incrementally constructs a [`Netlist`].
///
/// # Example
///
/// ```
/// use man_hw::netlist::Builder;
///
/// let mut b = Builder::new("and3");
/// let x = b.input_bus("x", 3);
/// let y = b.and(b2(&x, 0), b2(&x, 1));
/// let y = b.and(y, b2(&x, 2));
/// b.output_bus("y", &man_hw::netlist::Bus::from_nets(vec![y]));
/// let nl = b.finish();
/// assert_eq!(nl.gate_count(), 2);
///
/// fn b2(bus: &man_hw::netlist::Bus, i: usize) -> man_hw::netlist::Net {
///     bus.net(i)
/// }
/// ```
#[derive(Debug)]
pub struct Builder {
    name: String,
    nodes: Vec<NodeOp>,
    inputs: Vec<(String, Vec<Net>)>,
    outputs: Vec<(String, Vec<Net>)>,
    cse: HashMap<CseKey, Net>,
    const0: Option<Net>,
    const1: Option<Net>,
}

impl Builder {
    /// Starts a new netlist with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            nodes: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            cse: HashMap::new(),
            const0: None,
            const1: None,
        }
    }

    fn push(&mut self, op: NodeOp) -> Net {
        let net = Net(self.nodes.len() as u32);
        self.nodes.push(op);
        net
    }

    fn intern(&mut self, key: CseKey, op: NodeOp) -> Net {
        if let Some(&net) = self.cse.get(&key) {
            return net;
        }
        let net = self.push(op);
        self.cse.insert(key, net);
        net
    }

    fn const_of(&self, net: Net) -> Option<bool> {
        match self.nodes[net.index()] {
            NodeOp::Const(v) => Some(v),
            _ => None,
        }
    }

    /// A constant-0 or constant-1 net (cached).
    pub fn constant(&mut self, value: bool) -> Net {
        let slot = if value {
            &mut self.const1
        } else {
            &mut self.const0
        };
        if let Some(net) = *slot {
            return net;
        }
        let net = Net(self.nodes.len() as u32);
        self.nodes.push(NodeOp::Const(value));
        if value {
            self.const1 = Some(net);
        } else {
            self.const0 = Some(net);
        }
        net
    }

    /// Declares a `width`-bit external input bus.
    ///
    /// # Panics
    ///
    /// Panics if the name is already used or `width` is 0 or > 64.
    pub fn input_bus(&mut self, name: impl Into<String>, width: usize) -> Bus {
        let name = name.into();
        assert!(
            self.inputs.iter().all(|(n, _)| *n != name),
            "duplicate input bus {name:?}"
        );
        assert!((1..=64).contains(&width), "bus width must be in 1..=64");
        let nets: Vec<Net> = (0..width).map(|_| self.push(NodeOp::Input)).collect();
        self.inputs.push((name, nets.clone()));
        Bus(nets)
    }

    /// A bus wired to the constant `value` (LSB first).
    pub fn const_bus(&mut self, value: u64, width: usize) -> Bus {
        Bus((0..width)
            .map(|i| self.constant((value >> i) & 1 == 1))
            .collect())
    }

    /// Inverter (folds constants and double inversion).
    pub fn not(&mut self, a: Net) -> Net {
        if let Some(v) = self.const_of(a) {
            return self.constant(!v);
        }
        if let NodeOp::Unary(CellKind::Inv, inner) = self.nodes[a.index()] {
            return inner;
        }
        self.intern(
            CseKey::Unary(CellKind::Inv, a),
            NodeOp::Unary(CellKind::Inv, a),
        )
    }

    fn binary(&mut self, kind: CellKind, a: Net, b: Net) -> Net {
        // Canonical operand order keeps commutative gates hashable.
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.intern(CseKey::Binary(kind, a, b), NodeOp::Binary(kind, a, b))
    }

    /// 2-input AND with folding.
    pub fn and(&mut self, a: Net, b: Net) -> Net {
        match (self.const_of(a), self.const_of(b)) {
            (Some(false), _) | (_, Some(false)) => self.constant(false),
            (Some(true), _) => b,
            (_, Some(true)) => a,
            _ if a == b => a,
            _ => self.binary(CellKind::And2, a, b),
        }
    }

    /// 2-input OR with folding.
    pub fn or(&mut self, a: Net, b: Net) -> Net {
        match (self.const_of(a), self.const_of(b)) {
            (Some(true), _) | (_, Some(true)) => self.constant(true),
            (Some(false), _) => b,
            (_, Some(false)) => a,
            _ if a == b => a,
            _ => self.binary(CellKind::Or2, a, b),
        }
    }

    /// 2-input XOR with folding.
    pub fn xor(&mut self, a: Net, b: Net) -> Net {
        match (self.const_of(a), self.const_of(b)) {
            (Some(false), _) => b,
            (_, Some(false)) => a,
            (Some(true), _) => self.not(b),
            (_, Some(true)) => self.not(a),
            _ if a == b => self.constant(false),
            _ => self.binary(CellKind::Xor2, a, b),
        }
    }

    /// 2-input NAND with folding.
    pub fn nand(&mut self, a: Net, b: Net) -> Net {
        match (self.const_of(a), self.const_of(b)) {
            (Some(false), _) | (_, Some(false)) => self.constant(true),
            (Some(true), _) => self.not(b),
            (_, Some(true)) => self.not(a),
            _ if a == b => self.not(a),
            _ => self.binary(CellKind::Nand2, a, b),
        }
    }

    /// 2-input NOR with folding.
    pub fn nor(&mut self, a: Net, b: Net) -> Net {
        match (self.const_of(a), self.const_of(b)) {
            (Some(true), _) | (_, Some(true)) => self.constant(false),
            (Some(false), _) => self.not(b),
            (_, Some(false)) => self.not(a),
            _ if a == b => self.not(a),
            _ => self.binary(CellKind::Nor2, a, b),
        }
    }

    /// 2-input XNOR with folding.
    pub fn xnor(&mut self, a: Net, b: Net) -> Net {
        match (self.const_of(a), self.const_of(b)) {
            (Some(true), _) => b,
            (_, Some(true)) => a,
            (Some(false), _) => self.not(b),
            (_, Some(false)) => self.not(a),
            _ if a == b => self.constant(true),
            _ => self.binary(CellKind::Xnor2, a, b),
        }
    }

    /// 2:1 mux — `sel == 0` selects `a`, `sel == 1` selects `b` — with
    /// folding of constant selects and constant data inputs.
    pub fn mux(&mut self, sel: Net, a: Net, b: Net) -> Net {
        if let Some(s) = self.const_of(sel) {
            return if s { b } else { a };
        }
        if a == b {
            return a;
        }
        match (self.const_of(a), self.const_of(b)) {
            (Some(false), _) => return self.and(sel, b),
            (Some(true), _) => {
                let ns = self.not(sel);
                return self.or(ns, b);
            }
            (_, Some(false)) => {
                let ns = self.not(sel);
                return self.and(ns, a);
            }
            (_, Some(true)) => return self.or(sel, a),
            _ => {}
        }
        self.intern(CseKey::Mux(sel, a, b), NodeOp::Mux { sel, a, b })
    }

    /// Bitwise mux over two equal-width buses.
    ///
    /// # Panics
    ///
    /// Panics if the bus widths differ.
    pub fn mux_bus(&mut self, sel: Net, a: &Bus, b: &Bus) -> Bus {
        assert_eq!(a.width(), b.width(), "mux_bus width mismatch");
        Bus((0..a.width())
            .map(|i| self.mux(sel, a.net(i), b.net(i)))
            .collect())
    }

    /// Zero-extends (or truncates) a bus to `width`.
    pub fn resize_bus(&mut self, bus: &Bus, width: usize) -> Bus {
        let zero = self.constant(false);
        Bus((0..width)
            .map(|i| if i < bus.width() { bus.net(i) } else { zero })
            .collect())
    }

    /// Shifts a bus left by a constant `k`, growing it to `width` bits
    /// (pure wiring: zero bits shift in, high bits beyond `width` drop).
    pub fn shift_left_const(&mut self, bus: &Bus, k: usize, width: usize) -> Bus {
        let zero = self.constant(false);
        Bus((0..width)
            .map(|i| {
                if i >= k && i - k < bus.width() {
                    bus.net(i - k)
                } else {
                    zero
                }
            })
            .collect())
    }

    /// Bitwise AND of a whole bus with one enable net.
    pub fn mask_bus(&mut self, bus: &Bus, enable: Net) -> Bus {
        Bus((0..bus.width())
            .map(|i| self.and(bus.net(i), enable))
            .collect())
    }

    /// Declares a named output bus.
    ///
    /// # Panics
    ///
    /// Panics if the name is already used.
    pub fn output_bus(&mut self, name: impl Into<String>, bus: &Bus) {
        let name = name.into();
        assert!(
            self.outputs.iter().all(|(n, _)| *n != name),
            "duplicate output bus {name:?}"
        );
        self.outputs.push((name, bus.0.clone()));
    }

    /// Finishes the netlist: prunes every node outside the output cone
    /// (inputs are always retained) and compacts indices.
    pub fn finish(self) -> Netlist {
        let mut live = vec![false; self.nodes.len()];
        // Inputs stay live so simulation vectors can always be applied.
        for (_, nets) in &self.inputs {
            for n in nets {
                live[n.index()] = true;
            }
        }
        let mut stack: Vec<usize> = self
            .outputs
            .iter()
            .flat_map(|(_, nets)| nets.iter().map(|n| n.index()))
            .collect();
        while let Some(i) = stack.pop() {
            if live[i] {
                continue;
            }
            live[i] = true;
            match self.nodes[i] {
                NodeOp::Input | NodeOp::Const(_) => {}
                NodeOp::Unary(_, a) => stack.push(a.index()),
                NodeOp::Binary(_, a, b) => {
                    stack.push(a.index());
                    stack.push(b.index());
                }
                NodeOp::Mux { sel, a, b } => {
                    stack.push(sel.index());
                    stack.push(a.index());
                    stack.push(b.index());
                }
            }
        }
        let mut remap = vec![u32::MAX; self.nodes.len()];
        let mut nodes = Vec::with_capacity(self.nodes.len());
        for (i, op) in self.nodes.iter().enumerate() {
            if !live[i] {
                continue;
            }
            let m = |n: Net| Net(remap[n.index()]);
            let new_op = match *op {
                NodeOp::Input => NodeOp::Input,
                NodeOp::Const(v) => NodeOp::Const(v),
                NodeOp::Unary(k, a) => NodeOp::Unary(k, m(a)),
                NodeOp::Binary(k, a, b) => NodeOp::Binary(k, m(a), m(b)),
                NodeOp::Mux { sel, a, b } => NodeOp::Mux {
                    sel: m(sel),
                    a: m(a),
                    b: m(b),
                },
            };
            remap[i] = nodes.len() as u32;
            nodes.push(new_op);
        }
        let remap_nets = |nets: &[Net]| nets.iter().map(|n| Net(remap[n.index()])).collect();
        Netlist {
            name: self.name,
            nodes,
            inputs: self
                .inputs
                .iter()
                .map(|(n, nets)| (n.clone(), remap_nets(nets)))
                .collect(),
            outputs: self
                .outputs
                .iter()
                .map(|(n, nets)| (n.clone(), remap_nets(nets)))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folding_removes_gates() {
        let mut b = Builder::new("fold");
        let x = b.input_bus("x", 1);
        let zero = b.constant(false);
        let one = b.constant(true);
        assert_eq!(b.and(x.net(0), zero), zero);
        assert_eq!(b.and(x.net(0), one), x.net(0));
        assert_eq!(b.or(x.net(0), one), one);
        assert_eq!(b.xor(x.net(0), zero), x.net(0));
        let nx = b.not(x.net(0));
        assert_eq!(b.not(nx), x.net(0), "double inversion folds");
    }

    #[test]
    fn structural_hashing_shares_gates() {
        let mut b = Builder::new("cse");
        let x = b.input_bus("x", 2);
        let g1 = b.and(x.net(0), x.net(1));
        let g2 = b.and(x.net(1), x.net(0)); // commuted
        assert_eq!(g1, g2);
        let out = Bus::from_nets(vec![g1]);
        b.output_bus("y", &out);
        assert_eq!(b.finish().gate_count(), 1);
    }

    #[test]
    fn finish_prunes_dead_logic() {
        let mut b = Builder::new("prune");
        let x = b.input_bus("x", 2);
        let used = b.and(x.net(0), x.net(1));
        let _dead = b.xor(x.net(0), x.net(1));
        b.output_bus("y", &Bus::from_nets(vec![used]));
        let nl = b.finish();
        assert_eq!(nl.gate_count(), 1);
        assert_eq!(nl.input("x").unwrap().len(), 2);
    }

    #[test]
    fn mux_folds_constant_data() {
        let mut b = Builder::new("muxfold");
        let x = b.input_bus("x", 2);
        let zero = b.constant(false);
        // mux(s, a, 0) = !s & a -> INV + AND, no Mux2 cell.
        let m = b.mux(x.net(0), x.net(1), zero);
        b.output_bus("y", &Bus::from_nets(vec![m]));
        let nl = b.finish();
        assert!(!nl.cell_counts().contains_key(&CellKind::Mux2));
    }

    #[test]
    #[should_panic(expected = "duplicate input")]
    fn duplicate_input_names_rejected() {
        let mut b = Builder::new("dup");
        let _ = b.input_bus("x", 1);
        let _ = b.input_bus("x", 1);
    }

    #[test]
    fn shift_left_const_is_wiring_only() {
        let mut b = Builder::new("shift");
        let x = b.input_bus("x", 4);
        let before = b.finish_probe_gate_count();
        let y = b.shift_left_const(&x, 2, 8);
        assert_eq!(b.finish_probe_gate_count(), before);
        assert_eq!(y.width(), 8);
    }

    impl Builder {
        fn finish_probe_gate_count(&self) -> usize {
            self.nodes.iter().filter(|n| n.cell().is_some()).count()
        }
    }
}
