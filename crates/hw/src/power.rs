//! Switching-activity power estimation.
//!
//! Per-operation energy is measured by streaming *real operand traces*
//! through the gate-level simulator ([`crate::eval::Evaluator`]) and pricing
//! each gate toggle with its library switching energy. Registers contribute
//! clock energy every cycle plus data-dependent switching; leakage
//! contributes `P_leak · T_clk` per cycle. This mirrors the methodology of a
//! gate-level power tool fed with VCD activity, which is what the paper's
//! Design Compiler flow would report.

use crate::cell::{CellKind, CellLibrary};
use crate::circuit::Circuit;
use crate::eval::Evaluator;

/// Energy of one operation (one clock cycle of useful work), split by
/// source.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Combinational switching energy, glitch-adjusted (fJ/op).
    pub comb_fj: f64,
    /// Register energy: clock tree + data switching (fJ/op).
    pub reg_fj: f64,
    /// Leakage energy over one cycle (fJ/op).
    pub leakage_fj: f64,
}

impl EnergyBreakdown {
    /// Total energy per operation in fJ.
    pub fn total_fj(&self) -> f64 {
        self.comb_fj + self.reg_fj + self.leakage_fj
    }

    /// Adds another breakdown (e.g. to combine datapath components).
    pub fn combined(self, other: EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            comb_fj: self.comb_fj + other.comb_fj,
            reg_fj: self.reg_fj + other.reg_fj,
            leakage_fj: self.leakage_fj + other.leakage_fj,
        }
    }

    /// Scales the energy (e.g. to amortize a shared block over N lanes).
    pub fn scaled(self, factor: f64) -> EnergyBreakdown {
        EnergyBreakdown {
            comb_fj: self.comb_fj * factor,
            reg_fj: self.reg_fj * factor,
            leakage_fj: self.leakage_fj * factor,
        }
    }

    /// Average power in mW at a clock period of `clock_ps`, assuming one
    /// operation per cycle (fJ / ps = mW).
    pub fn power_mw(&self, clock_ps: f64) -> f64 {
        self.total_fj() / clock_ps
    }
}

/// Power-model knobs.
#[derive(Copy, Clone, Debug)]
pub struct PowerModel {
    /// Fraction of register bits whose data input toggles per cycle
    /// (used for the data-dependent part of register energy).
    pub reg_data_activity: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        Self {
            reg_data_activity: 0.25,
        }
    }
}

/// Measures the average per-operation energy of `circuit` over an operand
/// stream.
///
/// Each element of `stream` is one clock cycle's input assignment. The first
/// vector establishes the electrical baseline and is not billed.
///
/// # Panics
///
/// Panics if the stream has fewer than 2 vectors or names an unknown bus.
pub fn measure_stream_energy(
    circuit: &Circuit,
    lib: &CellLibrary,
    model: &PowerModel,
    stream: &[Vec<(&str, u64)>],
    clock_ps: f64,
) -> EnergyBreakdown {
    assert!(
        stream.len() >= 2,
        "need at least 2 vectors to measure energy"
    );
    let mut sim = Evaluator::new(circuit.netlist());
    for vector in stream {
        sim.step(vector);
    }
    let ops = sim.transitions() as f64;
    let comb_fj = sim.dynamic_energy_fj(lib) * circuit.glitch_factor() / ops;
    let reg_fj = register_energy_fj(circuit, lib, model);
    let leakage_fj = circuit.leakage_nw(lib) * clock_ps * 1e-6;
    EnergyBreakdown {
        comb_fj,
        reg_fj,
        leakage_fj,
    }
}

/// Per-cycle register energy: every flop's clock pin toggles each cycle;
/// a `reg_data_activity` fraction of flops also switch their output.
pub fn register_energy_fj(circuit: &Circuit, lib: &CellLibrary, model: &PowerModel) -> f64 {
    let dff = lib.params(CellKind::Dff);
    circuit.regs() as f64 * (lib.dff_clock_fj + model.reg_data_activity * dff.switch_fj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::adder::{adder, AdderKind};

    #[test]
    fn random_stream_costs_more_than_constant_stream() {
        let lib = CellLibrary::nominal_45nm();
        let model = PowerModel::default();
        let c = adder(8, AdderKind::Ripple);
        let constant: Vec<_> = (0..50).map(|_| vec![("a", 37u64), ("b", 91u64)]).collect();
        let noisy: Vec<_> = (0..50)
            .map(|i| vec![("a", (i * 37) % 256), ("b", (i * 91 + 13) % 256)])
            .collect();
        let e_const = measure_stream_energy(&c, &lib, &model, &constant, 333.0);
        let e_noisy = measure_stream_energy(&c, &lib, &model, &noisy, 333.0);
        assert_eq!(e_const.comb_fj, 0.0);
        assert!(e_noisy.comb_fj > 0.0);
        assert!(e_noisy.total_fj() > e_const.total_fj());
    }

    #[test]
    fn leakage_scales_with_clock_period() {
        let lib = CellLibrary::nominal_45nm();
        let model = PowerModel::default();
        let c = adder(8, AdderKind::Ripple);
        let stream: Vec<_> = (0..10).map(|i| vec![("a", i), ("b", i * 3)]).collect();
        let fast = measure_stream_energy(&c, &lib, &model, &stream, 333.0);
        let slow = measure_stream_energy(&c, &lib, &model, &stream, 666.0);
        assert!((slow.leakage_fj - 2.0 * fast.leakage_fj).abs() < 1e-9);
    }

    #[test]
    fn breakdown_combines_and_scales() {
        let a = EnergyBreakdown {
            comb_fj: 1.0,
            reg_fj: 2.0,
            leakage_fj: 3.0,
        };
        let b = a.combined(a);
        assert_eq!(b.total_fj(), 12.0);
        assert_eq!(a.scaled(0.5).total_fj(), 3.0);
        assert!((a.power_mw(6.0) - 1.0).abs() < 1e-12);
    }
}
