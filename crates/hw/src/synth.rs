//! Iso-speed synthesis: pick the cheapest implementation of each datapath
//! block that meets the clock, pipelining feed-forward blocks when no
//! single-cycle architecture fits.
//!
//! This plays the role of Design Compiler in the paper's flow: the same RTL
//! intent (an adder, a multiplier, an ASM stage) maps to different gate
//! structures depending on the timing constraint, which is what makes
//! "iso-speed" comparisons meaningful — at 3 GHz a conventional multiplier
//! needs a fast (area- and power-hungry) architecture or extra pipeline
//! registers, while the MAN datapath closes timing in its compact form.

use std::fmt;

use crate::cell::CellLibrary;
use crate::circuit::Circuit;
use crate::components::activation::{activation_unit, PlanParams};
use crate::components::adder::{adder, AdderKind};
use crate::components::asm::asm_mult_stage;
use crate::components::mac::{
    acc_stage, acc_stage_carry_save, conventional_mult_stage, resolve_adder,
};
use crate::components::multiplier::MultiplierKind;
use crate::components::precompute::precompute_bank;

/// How the synthesized accumulator holds its running sum.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AccStyle {
    /// Plain binary accumulator (carry-propagate adder in the loop).
    CarryPropagate,
    /// Redundant `(sum, carry)` pair (3:2 compressor in the loop); needs a
    /// resolve adder before the activation.
    CarrySave,
}

/// Maximum pipeline depth the synthesizer will insert into a feed-forward
/// block.
pub const MAX_PIPELINE_STAGES: u32 = 4;

/// Error returned when no architecture meets the clock.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingClosureError {
    /// The block that failed.
    pub block: String,
    /// The requested clock period (ps).
    pub clock_ps: f64,
    /// The best per-cycle delay any candidate achieved (ps).
    pub best_ps: f64,
}

impl fmt::Display for TimingClosureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "timing closure failed for {}: best {:.0} ps exceeds clock {:.0} ps",
            self.block, self.best_ps, self.clock_ps
        )
    }
}

impl std::error::Error for TimingClosureError {}

/// Registers a feed-forward circuit into the fewest pipeline stages meeting
/// `clock_ps`, or returns the required per-cycle delay if even
/// [`MAX_PIPELINE_STAGES`] does not suffice.
fn close_timing(
    circuit: Circuit,
    lib: &CellLibrary,
    clock_ps: f64,
    allow_pipelining: bool,
) -> Result<Circuit, f64> {
    if circuit.meets_clock(lib, clock_ps) {
        return Ok(circuit);
    }
    if !allow_pipelining {
        return Err(circuit.cycle_delay_ps(lib));
    }
    let comb = circuit.comb_delay_ps(lib);
    let overhead = lib.dff_clk_q_ps + lib.dff_setup_ps;
    let budget = clock_ps - overhead;
    if budget <= 0.0 {
        return Err(comb + overhead);
    }
    let stages = (comb / budget).ceil() as u32;
    if stages > MAX_PIPELINE_STAGES {
        return Err(comb / MAX_PIPELINE_STAGES as f64 + overhead);
    }
    let cut_width = circuit
        .netlist()
        .outputs()
        .iter()
        .map(|(_, nets)| nets.len() as u32)
        .sum::<u32>()
        .max(1);
    let piped = circuit.pipelined(stages, cut_width);
    if piped.meets_clock(lib, clock_ps) {
        Ok(piped)
    } else {
        Err(piped.cycle_delay_ps(lib))
    }
}

fn pick_cheapest(
    block: &str,
    candidates: Vec<Circuit>,
    lib: &CellLibrary,
    clock_ps: f64,
    allow_pipelining: bool,
) -> Result<Circuit, TimingClosureError> {
    let mut best: Option<Circuit> = None;
    let mut best_ps = f64::INFINITY;
    for candidate in candidates {
        match close_timing(candidate, lib, clock_ps, allow_pipelining) {
            Ok(closed) => {
                let better = match &best {
                    None => true,
                    Some(b) => closed.area_um2(lib) < b.area_um2(lib),
                };
                if better {
                    best = Some(closed);
                }
            }
            Err(ps) => best_ps = best_ps.min(ps),
        }
    }
    best.ok_or_else(|| TimingClosureError {
        block: block.to_owned(),
        clock_ps,
        best_ps,
    })
}

/// Synthesizes a standalone `width`-bit adder.
///
/// # Errors
///
/// Returns [`TimingClosureError`] if no architecture meets the clock.
pub fn synthesize_adder(
    width: usize,
    lib: &CellLibrary,
    clock_ps: f64,
) -> Result<Circuit, TimingClosureError> {
    pick_cheapest(
        &format!("adder{width}"),
        AdderKind::CHEAPEST_FIRST
            .iter()
            .map(|&k| adder(width, k))
            .collect(),
        lib,
        clock_ps,
        false,
    )
}

/// Synthesizes the conventional multiplication stage (pipelining allowed).
///
/// # Errors
///
/// Returns [`TimingClosureError`] if no architecture meets the clock.
pub fn synthesize_conventional_mult(
    bits: u32,
    lib: &CellLibrary,
    clock_ps: f64,
) -> Result<Circuit, TimingClosureError> {
    pick_cheapest(
        &format!("conventional_mult{bits}"),
        MultiplierKind::CHEAPEST_FIRST
            .iter()
            .map(|&k| conventional_mult_stage(bits, k))
            .collect(),
        lib,
        clock_ps,
        true,
    )
}

/// Synthesizes the ASM multiplication stage (pipelining allowed).
///
/// # Errors
///
/// Returns [`TimingClosureError`] if no combine-adder choice meets the
/// clock.
pub fn synthesize_asm_mult(
    bits: u32,
    alphabets: &[u8],
    lib: &CellLibrary,
    clock_ps: f64,
) -> Result<Circuit, TimingClosureError> {
    pick_cheapest(
        &format!("asm_mult{bits}_{}a", alphabets.len()),
        AdderKind::CHEAPEST_FIRST
            .iter()
            .map(|&k| asm_mult_stage(bits, alphabets, k))
            .collect(),
        lib,
        clock_ps,
        true,
    )
}

/// Synthesizes the accumulate stage. The accumulator loop cannot be
/// pipelined; if no carry-propagate adder closes the loop in one cycle the
/// synthesizer falls back to a carry-save accumulator (one 3:2 compressor
/// deep, doubled registers) — the standard structure for multi-GHz MACs.
///
/// # Errors
///
/// Returns [`TimingClosureError`] if even the carry-save loop misses timing.
pub fn synthesize_acc(
    bits: u32,
    acc_bits: u32,
    lib: &CellLibrary,
    clock_ps: f64,
) -> Result<(Circuit, AccStyle), TimingClosureError> {
    if let Ok(c) = pick_cheapest(
        &format!("acc{acc_bits}"),
        AdderKind::CHEAPEST_FIRST
            .iter()
            .map(|&k| acc_stage(bits, acc_bits, k))
            .collect(),
        lib,
        clock_ps,
        false,
    ) {
        return Ok((c, AccStyle::CarryPropagate));
    }
    pick_cheapest(
        &format!("acc{acc_bits}_carry_save"),
        vec![acc_stage_carry_save(bits, acc_bits)],
        lib,
        clock_ps,
        false,
    )
    .map(|c| (c, AccStyle::CarrySave))
}

/// Synthesizes the carry-save resolve adder (feed-forward, pipelining
/// allowed).
///
/// # Errors
///
/// Returns [`TimingClosureError`] if no architecture meets the clock.
pub fn synthesize_resolver(
    acc_bits: u32,
    lib: &CellLibrary,
    clock_ps: f64,
) -> Result<Circuit, TimingClosureError> {
    pick_cheapest(
        &format!("resolve{acc_bits}"),
        AdderKind::CHEAPEST_FIRST
            .iter()
            .map(|&k| resolve_adder(acc_bits, k))
            .collect(),
        lib,
        clock_ps,
        true,
    )
}

/// Synthesizes the pre-computer bank (pipelining allowed; for `{1}` the
/// bank is empty wiring).
///
/// # Errors
///
/// Returns [`TimingClosureError`] if no adder choice meets the clock.
pub fn synthesize_precompute(
    bits: u32,
    alphabets: &[u8],
    lib: &CellLibrary,
    clock_ps: f64,
) -> Result<Circuit, TimingClosureError> {
    pick_cheapest(
        &format!("precompute{bits}_{}a", alphabets.len()),
        AdderKind::CHEAPEST_FIRST
            .iter()
            .map(|&k| precompute_bank(bits, alphabets, k))
            .collect(),
        lib,
        clock_ps,
        true,
    )
}

/// Synthesizes the activation unit (range compressor + PLAN sigmoid;
/// pipelining allowed, carry-chain architecture explored).
///
/// # Errors
///
/// Returns [`TimingClosureError`] if the unit cannot be pipelined into the
/// clock.
pub fn synthesize_activation(
    acc_bits: u32,
    acc_frac: u32,
    params: &PlanParams,
    lib: &CellLibrary,
    clock_ps: f64,
) -> Result<Circuit, TimingClosureError> {
    pick_cheapest(
        "activation_unit",
        AdderKind::CHEAPEST_FIRST
            .iter()
            .map(|&k| activation_unit(acc_bits, acc_frac, params, k))
            .collect(),
        lib,
        clock_ps,
        true,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_clock_selects_ripple() {
        let lib = CellLibrary::nominal_45nm();
        let c = synthesize_adder(16, &lib, 5000.0).unwrap();
        assert!(c.name().contains("Ripple"), "got {}", c.name());
    }

    #[test]
    fn fast_clock_selects_parallel_prefix() {
        let lib = CellLibrary::nominal_45nm();
        let c = synthesize_adder(24, &lib, 400.0).unwrap();
        assert!(
            c.name().contains("KoggeStone") || c.name().contains("CarrySelect"),
            "got {}",
            c.name()
        );
    }

    #[test]
    fn impossible_clock_reports_error() {
        let lib = CellLibrary::nominal_45nm();
        let err = synthesize_adder(32, &lib, 30.0).unwrap_err();
        assert!(err.best_ps > err.clock_ps);
        assert!(err.to_string().contains("timing closure failed"));
    }

    #[test]
    fn conventional_mult_pipelines_at_3ghz() {
        let lib = CellLibrary::nominal_45nm();
        let c = synthesize_conventional_mult(8, &lib, 333.0).unwrap();
        assert!(c.meets_clock(&lib, 333.0));
        assert!(
            c.pipeline_stages() >= 2 || c.comb_delay_ps(&lib) <= 333.0,
            "multiplier must either fit or be pipelined"
        );
    }

    #[test]
    fn man_mult_is_cheaper_than_conventional_at_iso_speed() {
        let lib = CellLibrary::nominal_45nm();
        let conv = synthesize_conventional_mult(8, &lib, 333.0).unwrap();
        let man = synthesize_asm_mult(8, &[1], &lib, 333.0).unwrap();
        assert!(
            man.area_um2(&lib) < conv.area_um2(&lib),
            "MAN {:.1} vs conventional {:.1}",
            man.area_um2(&lib),
            conv.area_um2(&lib)
        );
    }

    #[test]
    fn accumulator_closes_at_paper_clocks() {
        let lib = CellLibrary::nominal_45nm();
        for (bits, clock) in [(8u32, 333.0), (12, 400.0)] {
            let acc_bits = crate::components::mac::accumulator_bits(bits, 1024);
            let (c, style) = synthesize_acc(bits, acc_bits, &lib, clock).unwrap();
            assert!(c.meets_clock(&lib, clock), "bits={bits}");
            // Wide accumulators at multi-GHz clocks need the carry-save form.
            assert_eq!(style, AccStyle::CarrySave, "bits={bits}");
        }
        // At a relaxed clock the plain accumulator suffices.
        let acc_bits = crate::components::mac::accumulator_bits(8, 1024);
        let (_, style) = synthesize_acc(8, acc_bits, &lib, 3000.0).unwrap();
        assert_eq!(style, AccStyle::CarryPropagate);
    }

    #[test]
    fn carry_save_resolver_synthesizes() {
        let lib = CellLibrary::nominal_45nm();
        let acc_bits = crate::components::mac::accumulator_bits(12, 1024);
        let r = synthesize_resolver(acc_bits, &lib, 400.0).unwrap();
        assert!(r.meets_clock(&lib, 400.0));
    }
}
