//! A synthesized hardware block: a combinational netlist plus register and
//! pipelining metadata, with area/timing accessors.

use crate::cell::{CellKind, CellLibrary};
use crate::netlist::Netlist;
use crate::timing;

/// A hardware block as the cost model sees it: combinational gates, a number
/// of register bits (architectural + pipeline), a pipeline depth and a glitch
/// factor for the power model.
///
/// # Example
///
/// ```
/// use man_hw::cell::CellLibrary;
/// use man_hw::components::adder::{adder, AdderKind};
///
/// let lib = CellLibrary::nominal_45nm();
/// let rca = adder(8, AdderKind::Ripple);
/// let ks = adder(8, AdderKind::KoggeStone);
/// assert!(ks.area_um2(&lib) > rca.area_um2(&lib)); // fast adders pay area
/// assert!(ks.comb_delay_ps(&lib) < rca.comb_delay_ps(&lib));
/// ```
#[derive(Clone, Debug)]
pub struct Circuit {
    netlist: Netlist,
    regs: u32,
    pipeline_stages: u32,
    glitch_factor: f64,
}

impl Circuit {
    /// Wraps a combinational netlist with no registers and unit glitch
    /// factor.
    pub fn combinational(netlist: Netlist) -> Self {
        Self {
            netlist,
            regs: 0,
            pipeline_stages: 1,
            glitch_factor: 1.0,
        }
    }

    /// Adds architectural register bits (e.g. an accumulator register).
    pub fn with_regs(mut self, regs: u32) -> Self {
        self.regs += regs;
        self
    }

    /// Sets the glitch factor applied to combinational dynamic energy.
    ///
    /// Zero-delay simulation misses glitches; deep array structures glitch
    /// substantially (literature reports 1.3–2× dynamic power in array
    /// multipliers), shallow mux/shift networks barely at all. Generators
    /// annotate the value; see DESIGN.md §5.
    ///
    /// # Panics
    ///
    /// Panics if `f < 1.0`.
    pub fn with_glitch_factor(mut self, f: f64) -> Self {
        assert!(f >= 1.0, "glitch factor must be >= 1.0");
        self.glitch_factor = f;
        self
    }

    /// Splits the block into `stages` pipeline stages, inserting register
    /// bits at the (approximately balanced) cut boundaries.
    ///
    /// `cut_width` is the bus width registered at each boundary.
    pub fn pipelined(mut self, stages: u32, cut_width: u32) -> Self {
        assert!(stages >= 1, "pipeline stages must be >= 1");
        self.pipeline_stages = stages;
        self.regs += (stages - 1) * cut_width;
        self
    }

    /// The underlying combinational netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Block name (from the netlist).
    pub fn name(&self) -> &str {
        self.netlist.name()
    }

    /// Register bit count (architectural + pipeline).
    pub fn regs(&self) -> u32 {
        self.regs
    }

    /// Pipeline depth (1 = single-cycle combinational).
    pub fn pipeline_stages(&self) -> u32 {
        self.pipeline_stages
    }

    /// Glitch factor used by the power model.
    pub fn glitch_factor(&self) -> f64 {
        self.glitch_factor
    }

    /// Total cell area in µm², including registers.
    pub fn area_um2(&self, lib: &CellLibrary) -> f64 {
        let comb: f64 = self
            .netlist
            .cell_counts()
            .iter()
            .map(|(kind, count)| lib.params(*kind).area_um2 * *count as f64)
            .sum();
        comb + self.regs as f64 * lib.params(CellKind::Dff).area_um2
    }

    /// Total leakage power in nW, including registers.
    pub fn leakage_nw(&self, lib: &CellLibrary) -> f64 {
        let comb: f64 = self
            .netlist
            .cell_counts()
            .iter()
            .map(|(kind, count)| lib.params(*kind).leakage_nw * *count as f64)
            .sum();
        comb + self.regs as f64 * lib.params(CellKind::Dff).leakage_nw
    }

    /// Combinational gate count.
    pub fn gate_count(&self) -> usize {
        self.netlist.gate_count()
    }

    /// End-to-end combinational delay (ignores pipelining).
    pub fn comb_delay_ps(&self, lib: &CellLibrary) -> f64 {
        timing::critical_path_ps(&self.netlist, lib)
    }

    /// Worst per-cycle path: combinational delay divided across pipeline
    /// stages (balanced-cut approximation), plus flop clock-to-Q and setup
    /// when the block is registered.
    pub fn cycle_delay_ps(&self, lib: &CellLibrary) -> f64 {
        let comb = self.comb_delay_ps(lib) / self.pipeline_stages as f64;
        if self.regs > 0 || self.pipeline_stages > 1 {
            comb + lib.dff_clk_q_ps + lib.dff_setup_ps
        } else {
            comb
        }
    }

    /// Whether the block meets a clock period (in ps).
    pub fn meets_clock(&self, lib: &CellLibrary, clock_ps: f64) -> bool {
        self.cycle_delay_ps(lib) <= clock_ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{Builder, Bus};

    fn tiny() -> Netlist {
        let mut b = Builder::new("tiny");
        let x = b.input_bus("x", 2);
        let y = b.and(x.net(0), x.net(1));
        b.output_bus("y", &Bus::from_nets(vec![y]));
        b.finish()
    }

    #[test]
    fn area_includes_registers() {
        let lib = CellLibrary::nominal_45nm();
        let c = Circuit::combinational(tiny());
        let with_regs = c.clone().with_regs(8);
        assert!(with_regs.area_um2(&lib) > c.area_um2(&lib));
        let dff = lib.params(CellKind::Dff).area_um2;
        assert!((with_regs.area_um2(&lib) - c.area_um2(&lib) - 8.0 * dff).abs() < 1e-9);
    }

    #[test]
    fn pipelining_shortens_cycle_but_adds_regs() {
        let lib = CellLibrary::nominal_45nm();
        let c = Circuit::combinational(tiny());
        let p = c.clone().pipelined(2, 4);
        assert_eq!(p.regs(), 4);
        assert!(p.cycle_delay_ps(&lib) >= c.comb_delay_ps(&lib) / 2.0);
    }

    #[test]
    #[should_panic(expected = "glitch factor")]
    fn glitch_factor_below_one_rejected() {
        let _ = Circuit::combinational(tiny()).with_glitch_factor(0.5);
    }
}
