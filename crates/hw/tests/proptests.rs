//! Property-based tests for the gate-level substrate: arithmetic blocks
//! must agree with integer arithmetic for arbitrary operands and widths,
//! and the cost model must behave monotonically.

use man_hw::cell::CellLibrary;
use man_hw::components::activation::{plan_sigmoid_fixed, PlanParams};
use man_hw::components::adder::{adder, AdderKind};
use man_hw::components::mac::{acc_stage, carry_save_step, product_bits};
use man_hw::components::multiplier::{multiplier, MultiplierKind};
use man_hw::components::shifter::shifter;
use man_hw::eval::Evaluator;
use proptest::prelude::*;

fn adder_kind() -> impl Strategy<Value = AdderKind> {
    prop_oneof![
        Just(AdderKind::Ripple),
        Just(AdderKind::CarrySelect),
        Just(AdderKind::KoggeStone),
    ]
}

fn mult_kind() -> impl Strategy<Value = MultiplierKind> {
    prop_oneof![
        Just(MultiplierKind::Array),
        Just(MultiplierKind::Wallace(AdderKind::Ripple)),
        Just(MultiplierKind::Wallace(AdderKind::KoggeStone)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every adder architecture computes integer addition at any width.
    #[test]
    fn adders_add(kind in adder_kind(), width in 2usize..20, seed in any::<u64>()) {
        let c = adder(width, kind);
        let mut sim = Evaluator::new(c.netlist());
        let mask = (1u64 << width) - 1;
        let mut x = seed | 1;
        for _ in 0..16 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let a = x & mask;
            let b = (x >> 20) & mask;
            sim.step(&[("a", a), ("b", b)]);
            prop_assert_eq!(sim.output("sum"), a + b);
        }
    }

    /// Every multiplier architecture computes integer products.
    #[test]
    fn multipliers_multiply(kind in mult_kind(), w_a in 2usize..9, w_b in 2usize..9, seed in any::<u64>()) {
        let c = multiplier(w_a, w_b, kind);
        let mut sim = Evaluator::new(c.netlist());
        let mut x = seed | 1;
        for _ in 0..12 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(99);
            let a = x & ((1 << w_a) - 1);
            let b = (x >> 24) & ((1 << w_b) - 1);
            sim.step(&[("a", a), ("b", b)]);
            prop_assert_eq!(sim.output("p"), a * b);
        }
    }

    /// The barrel shifter is a left shift for every amount.
    #[test]
    fn shifter_shifts(width in 2usize..12, data in any::<u64>(), s in 0u64..4) {
        let c = shifter(width, 2);
        let mut sim = Evaluator::new(c.netlist());
        let data = data & ((1 << width) - 1);
        sim.step(&[("data", data), ("shift", s)]);
        prop_assert_eq!(sim.output("out"), data << s);
    }

    /// The carry-propagate accumulate stage integrates signed
    /// sign-magnitude products exactly (modulo the accumulator width).
    #[test]
    fn acc_stage_accumulates(products in prop::collection::vec(-16129i64..=16129, 1..12)) {
        let acc_bits = 20u32;
        let c = acc_stage(8, acc_bits, AdderKind::KoggeStone);
        let mut sim = Evaluator::new(c.netlist());
        let mask = (1u64 << acc_bits) - 1;
        let mut acc = 0i64;
        for p in products {
            sim.step(&[
                ("p_mag", p.unsigned_abs()),
                ("p_sign", (p < 0) as u64),
                ("acc", (acc as u64) & mask),
            ]);
            acc += p;
            let got = sim.output("acc_next");
            prop_assert_eq!(got, (acc as u64) & mask);
        }
    }

    /// The carry-save software twin preserves the sum invariant:
    /// s' + c' == s + c ± p (mod 2^bits).
    #[test]
    fn carry_save_invariant(p in 0u64..=16129, sign in any::<bool>(), s in any::<u64>(), c in any::<u64>()) {
        let acc_bits = 25u32;
        let mask = (1u64 << acc_bits) - 1;
        let (s, c) = (s & mask, c & mask);
        let (s2, c2) = carry_save_step(p, sign, s, c, acc_bits);
        let before = s.wrapping_add(c);
        let delta = if sign { before.wrapping_sub(p) } else { before.wrapping_add(p) };
        prop_assert_eq!((s2.wrapping_add(c2)) & mask, delta & mask);
    }

    /// PLAN is monotone non-decreasing and bounded to [0, 1).
    #[test]
    fn plan_is_monotone_and_bounded(a in -30000i64..30000, b in -30000i64..30000) {
        let p = PlanParams { in_bits: 16, in_frac: 10, out_bits: 8 };
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let ylo = plan_sigmoid_fixed(lo, &p);
        let yhi = plan_sigmoid_fixed(hi, &p);
        prop_assert!(ylo <= yhi, "PLAN must be monotone: f({lo})={ylo} > f({hi})={yhi}");
        prop_assert!(yhi < (1 << p.out_bits));
    }

    /// Area and leakage scale exactly linearly with a library area/energy
    /// scale, and delays with the delay scale (sanity of the cost model).
    #[test]
    fn library_scaling_is_linear(width in 3usize..12, area_k in 1.0f64..3.0, delay_k in 1.0f64..3.0) {
        let base = CellLibrary::nominal_45nm();
        let scaled = base.scaled(area_k, delay_k, 1.0);
        let c = adder(width, AdderKind::Ripple);
        prop_assert!((c.area_um2(&scaled) - area_k * c.area_um2(&base)).abs() < 1e-6);
        prop_assert!((c.comb_delay_ps(&scaled) - delay_k * c.comb_delay_ps(&base)).abs() < 1e-6);
    }

    /// Product width bookkeeping: a magnitude product always fits the
    /// declared product width.
    #[test]
    fn product_width_covers_magnitudes(bits in 3u32..13) {
        let max = (1u64 << (bits - 1)) - 1;
        prop_assert!(max * max < (1u64 << product_bits(bits)));
    }
}
