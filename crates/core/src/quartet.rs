//! Quartet decomposition of weight magnitudes (Fig. 4 of the paper).
//!
//! A `bits`-wide two's-complement weight has a `bits - 1`-bit magnitude
//! that splits into 4-bit groups, LSB first; the MSB group absorbs the
//! remainder (3 bits for the paper's 8- and 12-bit words, because the sign
//! is handled separately).

use man_fixed::bits::{join_groups, split_groups};
use serde::{Deserialize, Serialize};

/// The quartet layout for a given weight word length.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QuartetScheme {
    bits: u32,
    widths: Vec<u32>,
}

impl QuartetScheme {
    /// The scheme for `bits`-wide weights.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `3..=16`.
    pub fn for_bits(bits: u32) -> Self {
        assert!((3..=16).contains(&bits), "weight width must be in 3..=16");
        let mut rem = bits - 1;
        let mut widths = Vec::new();
        while rem > 0 {
            let w = rem.min(4);
            widths.push(w);
            rem -= w;
        }
        Self { bits, widths }
    }

    /// Weight word length (including sign).
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Magnitude width (`bits - 1`).
    pub fn magnitude_bits(&self) -> u32 {
        self.bits - 1
    }

    /// Group widths, LSB first (e.g. `[4, 3]` for 8-bit weights).
    pub fn widths(&self) -> &[u32] {
        &self.widths
    }

    /// Number of quartets.
    pub fn count(&self) -> usize {
        self.widths.len()
    }

    /// Splits a magnitude into quartet values, LSB first.
    ///
    /// # Panics
    ///
    /// Panics if `mag` does not fit in `bits - 1` bits.
    pub fn decompose(&self, mag: u32) -> Vec<u32> {
        split_groups(mag, &self.widths)
    }

    /// Reassembles quartet values into a magnitude.
    ///
    /// # Panics
    ///
    /// Panics if any quartet overflows its width.
    pub fn reconstruct(&self, quartets: &[u32]) -> u32 {
        join_groups(quartets, &self.widths)
    }

    /// Largest representable magnitude.
    pub fn max_magnitude(&self) -> u32 {
        (1u32 << (self.bits - 1)) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_layouts() {
        assert_eq!(QuartetScheme::for_bits(8).widths(), &[4, 3]);
        assert_eq!(QuartetScheme::for_bits(12).widths(), &[4, 4, 3]);
        assert_eq!(QuartetScheme::for_bits(8).max_magnitude(), 127);
        assert_eq!(QuartetScheme::for_bits(12).max_magnitude(), 2047);
    }

    #[test]
    fn table1_decompositions() {
        // Table I: W1 = 105 = 0b110_1001 -> quartets [9, 6];
        //          W2 = 66 = 0b100_0010 -> quartets [2, 4].
        let s = QuartetScheme::for_bits(8);
        assert_eq!(s.decompose(105), vec![9, 6]);
        assert_eq!(s.decompose(66), vec![2, 4]);
        assert_eq!(s.reconstruct(&[9, 6]), 105);
    }

    #[test]
    fn decompose_reconstruct_roundtrip() {
        for bits in [8u32, 12] {
            let s = QuartetScheme::for_bits(bits);
            for mag in (0..=s.max_magnitude()).step_by(7) {
                assert_eq!(s.reconstruct(&s.decompose(mag)), mag);
            }
        }
    }
}
