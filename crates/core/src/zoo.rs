//! The five benchmark applications of Table IV: network builders, dataset
//! bindings and the paper's metadata.

use man_datasets::{generators, Dataset, GenOptions};
use man_nn::layers::{Activation, ActivationLayer, Conv2d, Dense, Layer, ScaledAvgPool};
use man_nn::network::Network;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One row of Table IV.
///
/// # Example
///
/// ```
/// use man::zoo::Benchmark;
///
/// let b = Benchmark::DigitsMlp;
/// let net = b.build_network(0);
/// assert_eq!(net.param_count(), b.paper_synapses()); // 103,510
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Digit recognition, 8-bit, 2-layer MLP on the MNIST-like set.
    DigitsMlp,
    /// Digit recognition, 12-bit, 6-layer LeNet-style CNN.
    DigitsCnn,
    /// Face detection, 12-bit (Table II also reports 8-bit), 2-layer MLP.
    Faces,
    /// House-number recognition, 6-layer MLP on the SVHN-like set.
    Svhn,
    /// Tilburg-character recognition, 5-layer MLP on the TICH-like set.
    Tich,
}

impl Benchmark {
    /// All five benchmarks in Table IV order.
    pub const ALL: [Benchmark; 5] = [
        Benchmark::DigitsMlp,
        Benchmark::DigitsCnn,
        Benchmark::Faces,
        Benchmark::Svhn,
        Benchmark::Tich,
    ];

    /// Application name as in Table IV.
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::DigitsMlp => "Digit Recognition (8bit)",
            Benchmark::DigitsCnn => "Digit Recognition (12bit)",
            Benchmark::Faces => "Face Detection (12bit)",
            Benchmark::Svhn => "House Number Recognition",
            Benchmark::Tich => "Tilburg Character Set Recog.",
        }
    }

    /// Model family as in Table IV.
    pub fn model(&self) -> &'static str {
        match self {
            Benchmark::DigitsCnn => "CNN (LeNet)",
            _ => "MLP",
        }
    }

    /// Default word length in the paper's evaluation.
    pub fn default_bits(&self) -> u32 {
        match self {
            Benchmark::DigitsMlp | Benchmark::Svhn | Benchmark::Tich => 8,
            Benchmark::DigitsCnn | Benchmark::Faces => 12,
        }
    }

    /// Layer count as Table IV counts it (parameterized layers).
    pub fn paper_layers(&self) -> usize {
        match self {
            Benchmark::DigitsMlp | Benchmark::Faces => 2,
            Benchmark::DigitsCnn | Benchmark::Svhn => 6,
            Benchmark::Tich => 5,
        }
    }

    /// Table IV's neuron count.
    pub fn paper_neurons(&self) -> usize {
        match self {
            Benchmark::DigitsMlp => 110,
            Benchmark::DigitsCnn => 8010,
            Benchmark::Faces => 102,
            Benchmark::Svhn => 1560,
            Benchmark::Tich => 786,
        }
    }

    /// Table IV's trainable synapse count.
    pub fn paper_synapses(&self) -> usize {
        match self {
            Benchmark::DigitsMlp => 103_510,
            Benchmark::DigitsCnn => 51_946,
            Benchmark::Faces => 102_702,
            Benchmark::Svhn => 1_054_260,
            Benchmark::Tich => 421_186,
        }
    }

    /// Generates the benchmark's synthetic dataset.
    pub fn dataset(&self, opts: &GenOptions) -> Dataset {
        match self {
            Benchmark::DigitsMlp | Benchmark::DigitsCnn => generators::digits(opts),
            Benchmark::Faces => generators::faces(opts),
            Benchmark::Svhn => generators::svhn_like(opts),
            Benchmark::Tich => generators::tich_like(opts),
        }
    }

    /// Adjusts methodology hyper-parameters for this benchmark: the CNN's
    /// weight-sharing layers need a lower learning rate and per-tensor
    /// gradient clipping to keep the sigmoid stack out of saturation.
    pub fn tune(&self, cfg: &mut crate::train::MethodologyConfig) {
        match self {
            Benchmark::DigitsCnn => {
                // Momentum amplifies the weight-shared conv gradients ~10x
                // and drives the sigmoid stack into saturation; plain SGD
                // with a small step and a per-tensor clip trains reliably.
                cfg.lr = 0.05;
                cfg.momentum = 0.0;
                cfg.batch_size = 4;
                cfg.clip_rms = Some(0.15);
                cfg.initial_epochs = cfg.initial_epochs.max(12);
            }
            Benchmark::Svhn | Benchmark::Tich => {
                // Deep sigmoid stacks train with gain-4 initialization
                // (see build_network) and moderate momentum.
                cfg.momentum = 0.5;
            }
            _ => {}
        }
    }

    /// Builds the float network (sigmoid MLPs; the CNN interleaves
    /// convolution / trainable pooling with sigmoids so every
    /// parameterized layer is a hardware-neuron layer).
    pub fn build_network(&self, seed: u64) -> Network {
        let mut rng = SmallRng::seed_from_u64(seed);
        let sig = || Layer::Activation(ActivationLayer::new(Activation::Sigmoid));
        // The 5-6 layer sigmoid MLPs need gain-4 Xavier initialization
        // (compensating sigmoid's maximum slope of 1/4) or the early
        // layers never receive usable gradients — the standard recipe in
        // the pre-ReLU toolboxes the paper built on.
        let deep_gain = |mut net: Network| {
            net.visit_params_mut(|_, kind, values, _| {
                if kind == man_nn::layers::ParamKind::Weights {
                    for v in values.iter_mut() {
                        *v *= 4.0;
                    }
                }
            });
            net
        };
        match self {
            Benchmark::DigitsMlp => Network::new(vec![
                Layer::Dense(Dense::new(1024, 100, &mut rng)),
                sig(),
                Layer::Dense(Dense::new(100, 10, &mut rng)),
            ]),
            Benchmark::Faces => Network::new(vec![
                Layer::Dense(Dense::new(1024, 100, &mut rng)),
                sig(),
                Layer::Dense(Dense::new(100, 2, &mut rng)),
            ]),
            // The LeNet structure squashes only after the pooling layers
            // (C1 -> S2 -> sigmoid -> C3 -> S4 -> sigmoid -> F5 -> F6);
            // squashing between convolution and pooling compresses the
            // dynamic range twice and makes the sigmoid stack untrainable.
            Benchmark::DigitsCnn => Network::new(vec![
                Layer::Conv2d(Conv2d::new(1, 6, 5, 32, 32, &mut rng)),
                Layer::ScaledAvgPool(ScaledAvgPool::new(6, 28, 28)),
                sig(),
                Layer::Conv2d(Conv2d::new(6, 16, 5, 14, 14, &mut rng)),
                Layer::ScaledAvgPool(ScaledAvgPool::new(16, 10, 10)),
                sig(),
                Layer::Dense(Dense::new(400, 120, &mut rng)),
                sig(),
                Layer::Dense(Dense::new(120, 10, &mut rng)),
            ]),
            Benchmark::Svhn => deep_gain(Network::new(vec![
                Layer::Dense(Dense::new(1024, 590, &mut rng)),
                sig(),
                Layer::Dense(Dense::new(590, 440, &mut rng)),
                sig(),
                Layer::Dense(Dense::new(440, 300, &mut rng)),
                sig(),
                Layer::Dense(Dense::new(300, 160, &mut rng)),
                sig(),
                Layer::Dense(Dense::new(160, 60, &mut rng)),
                sig(),
                Layer::Dense(Dense::new(60, 10, &mut rng)),
            ])),
            Benchmark::Tich => deep_gain(Network::new(vec![
                Layer::Dense(Dense::new(1024, 300, &mut rng)),
                sig(),
                Layer::Dense(Dense::new(300, 240, &mut rng)),
                sig(),
                Layer::Dense(Dense::new(240, 120, &mut rng)),
                sig(),
                Layer::Dense(Dense::new(120, 90, &mut rng)),
                sig(),
                Layer::Dense(Dense::new(90, 36, &mut rng)),
            ])),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_table4_counts_where_derivable() {
        // These three architectures are uniquely determined by Table IV.
        for b in [Benchmark::DigitsMlp, Benchmark::DigitsCnn, Benchmark::Faces] {
            let net = b.build_network(0);
            assert_eq!(net.param_count(), b.paper_synapses(), "{}", b.name());
            assert_eq!(net.neuron_count(), b.paper_neurons(), "{}", b.name());
        }
    }

    #[test]
    fn svhn_and_tich_counts_within_half_percent() {
        // The paper does not publish the hidden-layer sizes; DESIGN.md §4
        // documents the inferred shapes. Totals must stay within 0.5%.
        for b in [Benchmark::Svhn, Benchmark::Tich] {
            let net = b.build_network(0);
            assert_eq!(net.neuron_count(), b.paper_neurons(), "{}", b.name());
            let rel = (net.param_count() as f64 - b.paper_synapses() as f64).abs()
                / b.paper_synapses() as f64;
            assert!(
                rel < 0.005,
                "{}: {} vs {}",
                b.name(),
                net.param_count(),
                b.paper_synapses()
            );
        }
    }

    #[test]
    fn layer_counts_match_table4() {
        for b in Benchmark::ALL {
            let net = b.build_network(1);
            let params = net.layers().iter().filter(|l| l.param_count() > 0).count();
            assert_eq!(params, b.paper_layers(), "{}", b.name());
        }
    }

    #[test]
    fn datasets_have_matching_output_arity() {
        let opts = GenOptions {
            train: 10,
            test: 10,
            seed: 0,
        };
        for b in Benchmark::ALL {
            let ds = b.dataset(&opts);
            let net = b.build_network(0);
            let out = net.infer(&ds.train_images[0]);
            assert_eq!(out.len(), ds.classes, "{}", b.name());
        }
    }
}
