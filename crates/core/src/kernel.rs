//! The MAC kernel layer: runtime-dispatched implementations of the
//! fixed-point engine's inner select/shift/add loop.
//!
//! The paper's datapath multiplies by selecting a pre-computed alphabet
//! product, shifting it into quartet position and adding — per weight,
//! per quartet. The engine's original inner loop executed that one
//! weight at a time through an [`crate::asm::AsmPlan`] walk (a
//! `Vec<Option<(usize, u32)>>` with a branch per quartet) and a
//! per-magnitude `Box<[u64]>` bank lookup. This module repacks both
//! sides into contiguous structure-of-arrays buffers and evaluates the
//! exact same arithmetic four weights per step:
//!
//! * `MacSoa` — every weight's decoded plan, re-encoded as one byte
//!   per (weight, quartet-slot): `padded bank index << 4 | total
//!   shift`. Index 0 is a zero sentinel, so a masked (zero) quartet
//!   adds nothing without a branch. Bytes are laid out plane-major
//!   (slot-0 bytes of all weights, then slot-1, …) so a 4-weight step
//!   reads four adjacent bytes per slot.
//! * `BankArena` — the session cache's bank store, one *padded*
//!   contiguous row per input magnitude (`[0, a₁·x, a₂·x, …]`), filled
//!   lazily and addressed by row offset instead of a per-magnitude heap
//!   box.
//!
//! Three `MacKernel` implementations evaluate a fan-in run over those
//! buffers: the **scalar** reference (the same per-term walk as
//! `AsmMultiplier::apply`, kept as the bit-exact anchor), a portable
//! **SWAR**-style kernel (branch-free, four weights per unrolled step,
//! plain `u64` arithmetic — no `std::arch`), and an **AVX2**
//! specialization (`vpgatherqq` bank selects + `vpsllvq` per-lane
//! shifts), selected at runtime behind `is_x86_feature_detected!`.
//!
//! A second, **batch-major** family (`MacBatchKernel`, same three
//! variants) flips the vectorization axis: instead of packing four
//! weights of one batch row, it evaluates one weight term against four
//! batch rows at once over a batch-transposed view of the same arena
//! rows (`transpose_bank_block`). The term byte of a weight is
//! identical across rows, so the transpose turns every bank select into
//! a contiguous load under one shared shift — no gathers and no
//! per-row term reload, which is where wide batches win. Which family
//! runs is the **layout** axis ([`LayoutKind`], resolved by
//! [`resolve_layout`] from the `man_par::Layout` request vocabulary,
//! the `MAN_LAYOUT` environment override and the tuner heuristic).
//!
//! # Bit-exactness by construction
//!
//! Every kernel computes, per weight, `Σ_q bank[idx_q] << (shift_q +
//! offset_q)` — the identical terms the scalar `apply` sums, and the
//! identical value (`u64` addition is associative and the terms cannot
//! overflow: magnitudes are below `2^15`, so a product is below
//! `2^30`). The signed product is applied through the very same
//! [`man_fixed::bits::apply_sign`], and the **accumulation across the
//! fan-in runs in exactly the sequential order** — vectorization packs
//! the product computation, never the `i64` accumulator chain (the only
//! order-sensitive loop; DESIGN.md §8). Equivalence is additionally
//! pinned exhaustively in this module's tests and by the
//! `tests/par_equivalence.rs` proptest matrix.

use std::sync::OnceLock;

use man_par::{AutoTuning, Kernel, Layout};

use crate::asm::{AsmMultiplier, AsmPlan};

/// The kernel that actually runs after dispatch — what bench rows,
/// session stats and the serve scheduler report.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum KernelKind {
    /// The per-weight reference loop.
    Scalar,
    /// The portable structure-of-arrays SWAR kernel.
    Swar,
    /// The `std::arch` AVX2 specialization (x86-64 with AVX2 only).
    Avx2,
}

impl KernelKind {
    /// A short label (`"scalar"`, `"swar"`, `"avx2"`) for logs, stats
    /// and bench reports.
    pub fn label(self) -> &'static str {
        match self {
            KernelKind::Scalar => "scalar",
            KernelKind::Swar => "swar",
            KernelKind::Avx2 => "avx2",
        }
    }

    /// `true` for the vectorized kernels (everything but the scalar
    /// reference).
    pub fn is_vectorized(self) -> bool {
        !matches!(self, KernelKind::Scalar)
    }
}

/// `true` when the host supports the AVX2 specialization.
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The best vectorized kernel this host supports: AVX2 when detected,
/// the portable SWAR kernel otherwise.
pub fn detect() -> KernelKind {
    if avx2_available() {
        KernelKind::Avx2
    } else {
        KernelKind::Swar
    }
}

/// A one-line description of the detected CPU features relevant to
/// kernel dispatch (for example `x86_64: avx2 detected`), printed by
/// the examples for CI log forensics.
pub fn cpu_features() -> String {
    let avx2 = if avx2_available() {
        "avx2 detected"
    } else {
        "no avx2 (portable SWAR fallback)"
    };
    format!("{}: {avx2}", std::env::consts::ARCH)
}

/// Resolves a kernel *request* to the kernel that will run:
///
/// | request  | resolves to |
/// |----------|-------------|
/// | `Scalar` | `Scalar` |
/// | `Swar`   | `Swar` (AVX2 explicitly off) |
/// | `Vector` | [`detect`]: `Avx2` when available, else `Swar` |
/// | `Auto`   | the `MAN_KERNEL` env override when set, else `Vector` |
///
/// The environment is consulted once per process (the answer is
/// cached); explicit non-`Auto` requests always win over `MAN_KERNEL`,
/// so an equivalence test that pins both kernels stays meaningful under
/// the CI jobs that set the variable.
pub fn resolve(request: Kernel) -> KernelKind {
    match request {
        Kernel::Scalar => KernelKind::Scalar,
        Kernel::Swar => KernelKind::Swar,
        Kernel::Vector => detect(),
        Kernel::Auto => default_kernel(),
    }
}

/// What [`Kernel::Auto`] resolves to on this host (env override
/// included) — the kernel every engine entry point without an explicit
/// request runs.
pub fn default_kernel() -> KernelKind {
    static AUTO: OnceLock<KernelKind> = OnceLock::new();
    *AUTO.get_or_init(|| match Kernel::from_env() {
        Some(Kernel::Scalar) => KernelKind::Scalar,
        Some(Kernel::Swar) => KernelKind::Swar,
        Some(Kernel::Vector) | Some(Kernel::Auto) | None => detect(),
    })
}

/// The MAC layout that actually runs after dispatch — what bench rows,
/// session stats and the serve scheduler report as the third label in
/// the `plan×kernel×layout` triple.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LayoutKind {
    /// Vectorize across one neuron's fan-in (the PR 5 kernel family).
    RowMajor,
    /// Vectorize across batch rows over a batch-transposed bank view.
    BatchMajor,
}

impl LayoutKind {
    /// A short label (`"row"`, `"batch"`) for logs, stats and bench
    /// reports.
    pub fn label(self) -> &'static str {
        match self {
            LayoutKind::RowMajor => "row",
            LayoutKind::BatchMajor => "batch",
        }
    }

    /// `true` for the batch-major layout.
    pub fn is_batch_major(self) -> bool {
        matches!(self, LayoutKind::BatchMajor)
    }
}

/// The `MAN_LAYOUT` override, consulted once per process (cached, like
/// `MAN_KERNEL` in [`default_kernel`]).
fn env_layout() -> Option<Layout> {
    static ENV: OnceLock<Option<Layout>> = OnceLock::new();
    *ENV.get_or_init(Layout::from_env)
}

/// Resolves a layout *request* for a batch of `batch` rows of a model
/// costing `macs_per_row` MACs per inference:
///
/// | request      | resolves to |
/// |--------------|-------------|
/// | `RowMajor`   | `RowMajor` |
/// | `BatchMajor` | `BatchMajor` — `RowMajor` when `batch < 2` |
/// | `Auto`       | the `MAN_LAYOUT` env override when set, else [`man_par::plan_layout`] |
///
/// Like the kernel axis, explicit non-`Auto` requests always win over
/// `MAN_LAYOUT` (so equivalence tests that pin both layouts stay
/// meaningful under the CI env matrix), and the environment is read
/// once per process. A batch with fewer than two rows *always* resolves
/// to `RowMajor` — there is no batch axis to vectorize, and the
/// row-major path is the bit-identical fast path — so the reported
/// label stays honest even under a forced `BatchMajor` request.
pub fn resolve_layout(
    request: Layout,
    batch: usize,
    macs_per_row: u64,
    tuning: &AutoTuning,
) -> LayoutKind {
    let requested = match request {
        Layout::Auto => match env_layout() {
            Some(Layout::RowMajor) => Layout::RowMajor,
            Some(Layout::BatchMajor) => Layout::BatchMajor,
            Some(Layout::Auto) | None => man_par::plan_layout(batch, macs_per_row, tuning),
        },
        explicit => explicit,
    };
    match requested {
        Layout::BatchMajor if batch >= 2 => LayoutKind::BatchMajor,
        _ => LayoutKind::RowMajor,
    }
}

// ---------------------------------------------------------------------------
// Structure-of-arrays buffers
// ---------------------------------------------------------------------------

/// A layer's decoded select/shift plans, repacked for vector kernels:
/// one byte per (weight, quartet slot), plane-major.
///
/// Term byte layout: `(padded bank index) << 4 | total shift`, where
/// the padded index is `alphabet index + 1` (0 selects the arena row's
/// zero sentinel — a masked quartet) and the total shift folds the
/// quartet's bit offset into the control shift (`offset + shift ≤ 15`
/// for every supported word length, so it always fits the low nibble).
#[derive(Clone, Debug)]
pub(crate) struct MacSoa {
    /// Quartet slots per weight.
    q: usize,
    /// Weights in the layer.
    weights: usize,
    /// `q * weights` term bytes; slot `s` of weight `w` is at
    /// `s * weights + w`.
    terms: Vec<u8>,
}

impl MacSoa {
    /// Repacks a layer's decoded plans. Pure metadata — the arena rows
    /// supply the actual bank values at run time.
    pub(crate) fn build(asm: &AsmMultiplier, plans: &[AsmPlan]) -> Self {
        let widths = asm.scheme().widths();
        let q = widths.len();
        let weights = plans.len();
        let mut terms = vec![0u8; q * weights];
        for (wi, plan) in plans.iter().enumerate() {
            let mut offset = 0u32;
            for (s, (control, &width)) in plan.controls.iter().zip(widths).enumerate() {
                if let Some((idx, shift)) = control {
                    let total = shift + offset;
                    debug_assert!(*idx < 15, "padded bank index must fit a nibble");
                    debug_assert!(total < 16, "total shift must fit a nibble");
                    terms[s * weights + wi] = (((idx + 1) as u8) << 4) | total as u8;
                }
                offset += width;
            }
        }
        Self { q, weights, terms }
    }

    /// Heap bytes of the repacked plan buffer.
    pub(crate) fn bytes(&self) -> usize {
        self.terms.len()
    }
}

/// The session cache's bank store: one contiguous *padded* row per
/// input magnitude, filled lazily.
///
/// Row layout: `[0, a₁·x, a₂·x, …]` — slot 0 is the zero sentinel
/// vector kernels select for masked quartets; slots `1..` are the
/// classic pre-computer bank. Rows live back-to-back in one `Vec<u64>`
/// and are addressed by row offset, so the vector kernels index one
/// flat slab instead of chasing per-magnitude heap boxes — and the
/// scalar path reads the unpadded tail of the same row, so both paths
/// share one store.
#[derive(Clone, Debug)]
pub(crate) struct BankArena {
    /// Padded row length: alphabet members + 1.
    stride: usize,
    /// Magnitude → row offset into `data`; [`BankArena::EMPTY`] marks a
    /// row not yet computed.
    index: Vec<u32>,
    /// The contiguous padded rows.
    data: Vec<u64>,
}

impl BankArena {
    const EMPTY: u32 = u32::MAX;

    /// An empty arena for magnitudes `0..slots` under an alphabet of
    /// `alphabet_len` members.
    pub(crate) fn new(slots: usize, alphabet_len: usize) -> Self {
        Self {
            stride: alphabet_len + 1,
            index: vec![Self::EMPTY; slots],
            data: Vec::new(),
        }
    }

    /// The row offset for `mag`, computing (and memoizing) the padded
    /// bank on first sight — the write phase.
    #[inline]
    pub(crate) fn row_or_fill(&mut self, asm: &AsmMultiplier, mag: u32) -> u32 {
        let cached = self.index[mag as usize];
        if cached != Self::EMPTY {
            return cached;
        }
        let off = self.data.len() as u32;
        self.data.push(0);
        self.data.extend(
            asm.alphabet()
                .members()
                .iter()
                .map(|&a| a as u64 * mag as u64),
        );
        self.index[mag as usize] = off;
        off
    }

    /// Fills rows for every magnitude in `mags` that is still missing,
    /// growing the slab by *exactly* the missing rows (a counting pass
    /// plus `reserve_exact`) — so batch prefills never introduce
    /// doubling slack, and peak bank memory tracks the rows actually
    /// held instead of the allocator's growth curve (no grow-then-trim
    /// reallocation churn as magnitudes trickle in across batches).
    pub(crate) fn prefill(&mut self, asm: &AsmMultiplier, mags: impl Iterator<Item = u32>) {
        let missing = mags
            .filter(|&m| self.index[m as usize] == Self::EMPTY)
            .collect::<std::collections::BTreeSet<u32>>();
        self.data.reserve_exact(missing.len() * self.stride);
        for mag in missing {
            self.row_or_fill(asm, mag);
        }
    }

    /// The row offset for an already-filled magnitude — the read-only
    /// twin of [`BankArena::row_or_fill`] the sharded loops use.
    #[inline]
    pub(crate) fn row(&self, mag: u32) -> Option<u32> {
        let off = self.index[mag as usize];
        (off != Self::EMPTY).then_some(off)
    }

    /// The classic (unpadded) pre-computer bank slice of a row — what
    /// the scalar `AsmPlan` walk consumes.
    #[inline]
    pub(crate) fn bank(&self, off: u32) -> &[u64] {
        &self.data[off as usize + 1..off as usize + self.stride]
    }

    /// The whole padded slab (vector kernels index it by row offset).
    #[inline]
    pub(crate) fn slab(&self) -> &[u64] {
        &self.data
    }

    /// Heap bytes currently held (rows plus the magnitude index).
    pub(crate) fn bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<u64>()
            + self.index.capacity() * std::mem::size_of::<u32>()
    }

    /// Releases the growth slack of the row slab. A no-op when capacity
    /// already equals length, so calling it after every prefill is
    /// cheap — it only pays (one realloc) when new magnitudes actually
    /// appeared.
    pub(crate) fn shrink_to_fit(&mut self) {
        self.data.shrink_to_fit();
    }
}

// ---------------------------------------------------------------------------
// The kernels
// ---------------------------------------------------------------------------

/// One output neuron's fan-in run over the SoA buffers: weights
/// `w0..w0 + rows.len()` of the layer, against the activations whose
/// arena row offsets (and signs) are `rows` / `x_neg`, starting from
/// accumulator `acc` (the bias).
pub(crate) struct MacRun<'a> {
    /// The layer's repacked plans.
    pub soa: &'a MacSoa,
    /// The arena's padded row slab.
    pub slab: &'a [u64],
    /// The layer's weight signs (all weights, not just this run).
    pub w_neg: &'a [bool],
    /// First weight of the run.
    pub w0: usize,
    /// Arena row offset per fan-in position.
    pub rows: &'a [u32],
    /// Activation sign per fan-in position.
    pub x_neg: &'a [bool],
    /// Initial accumulator value.
    pub acc: i64,
}

/// A MAC kernel: evaluates one fan-in run, bit-identically to the
/// scalar reference (same per-weight terms, same [`apply_sign`], same
/// accumulation order).
///
/// [`apply_sign`]: man_fixed::bits::apply_sign
pub(crate) trait MacKernel: Sync {
    /// Runs one fan-in accumulation.
    fn accumulate(&self, run: MacRun<'_>) -> i64;
}

/// Static dispatch table: the kernel instance for a resolved kind.
/// [`detect`]/[`resolve`] never produce [`KernelKind::Avx2`] on a host
/// without the feature, but `KernelKind` is public — a caller *can*
/// force it into the safe engine entry points — so the AVX2 arm
/// re-checks [`avx2_available`] (a cached `cpuid` lookup) and falls
/// back to the bit-identical portable SWAR kernel rather than letting
/// a forced kind reach `target_feature` code the CPU lacks (which
/// would be undefined behavior). Non-x86-64 hosts always take the
/// SWAR fallback.
pub(crate) fn kernel_for(kind: KernelKind) -> &'static dyn MacKernel {
    match kind {
        KernelKind::Scalar => &ScalarKernel,
        KernelKind::Swar => &SwarKernel,
        #[cfg(target_arch = "x86_64")]
        KernelKind::Avx2 => {
            if avx2_available() {
                &Avx2Kernel
            } else {
                &SwarKernel
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        KernelKind::Avx2 => &SwarKernel,
    }
}

/// The scalar reference over the SoA buffers: the same term walk as
/// `AsmMultiplier::apply`, one weight at a time.
struct ScalarKernel;

impl MacKernel for ScalarKernel {
    fn accumulate(&self, run: MacRun<'_>) -> i64 {
        let MacRun {
            soa,
            slab,
            w_neg,
            w0,
            rows,
            x_neg,
            mut acc,
        } = run;
        for (j, (&row, &xn)) in rows.iter().zip(x_neg).enumerate() {
            let mut p = 0u64;
            for s in 0..soa.q {
                let term = soa.terms[s * soa.weights + w0 + j] as usize;
                p += slab[row as usize + (term >> 4)] << (term & 15);
            }
            acc += man_fixed::bits::apply_sign(p, w_neg[w0 + j] ^ xn);
        }
        acc
    }
}

/// The portable vector kernel: branch-free, four weights per unrolled
/// step, monomorphized per quartet count. "SWAR" in spirit — the four
/// product lanes live in independent `u64`s the compiler can schedule
/// in parallel — with no `std::arch` anywhere.
struct SwarKernel;

impl MacKernel for SwarKernel {
    fn accumulate(&self, run: MacRun<'_>) -> i64 {
        match run.soa.q {
            1 => swar_q::<1>(run),
            2 => swar_q::<2>(run),
            3 => swar_q::<3>(run),
            4 => swar_q::<4>(run),
            q => unreachable!("{q} quartet slots; 3..=16-bit words have 1..=4"),
        }
    }
}

#[inline]
fn swar_q<const Q: usize>(run: MacRun<'_>) -> i64 {
    let MacRun {
        soa,
        slab,
        w_neg,
        w0,
        rows,
        x_neg,
        mut acc,
    } = run;
    debug_assert_eq!(soa.q, Q);
    let n = rows.len();
    let w = soa.weights;
    let t = &soa.terms;
    let mut j = 0;
    while j + 4 <= n {
        let mut p = [0u64; 4];
        for s in 0..Q {
            let base = s * w + w0 + j;
            for (l, lane) in p.iter_mut().enumerate() {
                let term = t[base + l] as usize;
                *lane += slab[rows[j + l] as usize + (term >> 4)] << (term & 15);
            }
        }
        // The accumulator chain stays strictly in fan-in order — only
        // the product computation above is packed.
        for (l, &lane) in p.iter().enumerate() {
            acc += man_fixed::bits::apply_sign(lane, w_neg[w0 + j + l] ^ x_neg[j + l]);
        }
        j += 4;
    }
    while j < n {
        let mut p = 0u64;
        for s in 0..Q {
            let term = t[s * w + w0 + j] as usize;
            p += slab[rows[j] as usize + (term >> 4)] << (term & 15);
        }
        acc += man_fixed::bits::apply_sign(p, w_neg[w0 + j] ^ x_neg[j]);
        j += 1;
    }
    acc
}

/// The AVX2 specialization: four weights per step with `vpgatherqq`
/// bank selects and `vpsllvq` per-lane shifts. Reachable only through
/// [`kernel_for`] after [`detect`]/[`resolve`] confirmed AVX2 (or a
/// test forced it on a detected host), so the `target_feature` contract
/// holds at every call site.
#[cfg(target_arch = "x86_64")]
struct Avx2Kernel;

#[cfg(target_arch = "x86_64")]
impl MacKernel for Avx2Kernel {
    fn accumulate(&self, run: MacRun<'_>) -> i64 {
        debug_assert!(avx2_available(), "AVX2 kernel dispatched without AVX2");
        // SAFETY: this kernel is only reachable through `kernel_for`,
        // whose AVX2 arm re-checks `avx2_available()` even for forced
        // kinds, so the `target_feature` contract holds; and the gather
        // indices are in bounds: every row offset addresses a full
        // padded row inside the slab and every term index is below the
        // row stride (both enforced by `BankArena`/`MacSoa`
        // construction).
        #[allow(unsafe_code)]
        unsafe {
            match run.soa.q {
                1 => avx2_q::<1>(run),
                2 => avx2_q::<2>(run),
                3 => avx2_q::<3>(run),
                4 => avx2_q::<4>(run),
                q => unreachable!("{q} quartet slots; 3..=16-bit words have 1..=4"),
            }
        }
    }
}

/// # Safety
///
/// Callers must ensure the host supports AVX2 and that `run`'s row
/// offsets and term indices address the slab in bounds (guaranteed by
/// [`BankArena`] / [`MacSoa`] construction).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(unsafe_code)]
unsafe fn avx2_q<const Q: usize>(run: MacRun<'_>) -> i64 {
    use std::arch::x86_64::*;

    let MacRun {
        soa,
        slab,
        w_neg,
        w0,
        rows,
        x_neg,
        mut acc,
    } = run;
    debug_assert_eq!(soa.q, Q);
    let n = rows.len();
    let w = soa.weights;
    let t = &soa.terms;
    let base_ptr = slab.as_ptr() as *const i64;
    let mut j = 0;
    while j + 4 <= n {
        let rowv = _mm256_set_epi64x(
            rows[j + 3] as i64,
            rows[j + 2] as i64,
            rows[j + 1] as i64,
            rows[j] as i64,
        );
        let mut prod = _mm256_setzero_si256();
        for s in 0..Q {
            let base = s * w + w0 + j;
            let (t0, t1, t2, t3) = (
                t[base] as i64,
                t[base + 1] as i64,
                t[base + 2] as i64,
                t[base + 3] as i64,
            );
            let idx = _mm256_set_epi64x(t3 >> 4, t2 >> 4, t1 >> 4, t0 >> 4);
            let sh = _mm256_set_epi64x(t3 & 15, t2 & 15, t1 & 15, t0 & 15);
            let gathered = _mm256_i64gather_epi64::<8>(base_ptr, _mm256_add_epi64(rowv, idx));
            prod = _mm256_add_epi64(prod, _mm256_sllv_epi64(gathered, sh));
        }
        let mut p = [0u64; 4];
        _mm256_storeu_si256(p.as_mut_ptr() as *mut __m256i, prod);
        // Sign application and accumulation stay scalar, in fan-in
        // order — the order-sensitive chain is never vectorized.
        for (l, &lane) in p.iter().enumerate() {
            acc += man_fixed::bits::apply_sign(lane, w_neg[w0 + j + l] ^ x_neg[j + l]);
        }
        j += 4;
    }
    while j < n {
        let mut p = 0u64;
        for s in 0..Q {
            let term = t[s * w + w0 + j] as usize;
            p += slab[rows[j] as usize + (term >> 4)] << (term & 15);
        }
        acc += man_fixed::bits::apply_sign(p, w_neg[w0 + j] ^ x_neg[j]);
        j += 1;
    }
    acc
}

// ---------------------------------------------------------------------------
// The batch-major kernel family
// ---------------------------------------------------------------------------

/// Repacks per-lane arena rows into the batch-transposed block the
/// [`MacBatchKernel`]s consume.
///
/// The term byte of a `(weight, quartet-slot)` pair is identical across
/// batch rows — only the bank *values* differ per lane. Transposing the
/// bank rows by lane therefore turns every hot-loop bank select into a
/// contiguous load: slot `k` of input `i` for lane `b` lands at
/// `bank_t[(i*stride + k)*width + b]`, so one term byte drives `width`
/// adjacent `u64`s under one shared shift count — no gathers, no
/// per-lane term reload. Activation signs transpose alongside as
/// `0`/`-1` masks (`sign_t[i*width + b]`), which is the form both the
/// branch-free SWAR sign application and the AVX2 `xor`/`sub` identity
/// consume directly.
///
/// `lane_rows[b]` / `lane_negs[b]` are lane `b`'s arena row offsets and
/// activation signs over the layer's raw inputs (every lane the same
/// length). The output buffers are reused across layers and blocks —
/// the caller keeps them in its session cache scratch.
pub(crate) fn transpose_bank_block(
    slab: &[u64],
    stride: usize,
    lane_rows: &[&[u32]],
    lane_negs: &[&[bool]],
    bank_t: &mut Vec<u64>,
    sign_t: &mut Vec<i64>,
) {
    let width = lane_rows.len();
    let inputs = lane_rows.first().map_or(0, |rows| rows.len());
    bank_t.clear();
    bank_t.resize(inputs * stride * width, 0);
    sign_t.clear();
    sign_t.resize(inputs * width, 0);
    for (b, (rows, negs)) in lane_rows.iter().zip(lane_negs).enumerate() {
        debug_assert_eq!(rows.len(), inputs, "every lane covers every input");
        for (i, (&row, &neg)) in rows.iter().zip(*negs).enumerate() {
            let src = &slab[row as usize..row as usize + stride];
            let base = i * stride * width + b;
            for (k, &v) in src.iter().enumerate() {
                bank_t[base + k * width] = v;
            }
            sign_t[i * width + b] = -(neg as i64);
        }
    }
}

/// One output neuron's fan-in run across a *block of batch rows*:
/// weights `w0..w0 + fan.len()` of the layer, against every lane of the
/// batch-transposed bank block at once, accumulating each lane's `i64`
/// chain strictly in fan-in order (lanes are independent batch rows, so
/// vectorizing *across* them never reorders any accumulator — the §8
/// argument holds per lane by construction).
pub(crate) struct MacBatchRun<'a> {
    /// The layer's repacked plans.
    pub soa: &'a MacSoa,
    /// The batch-transposed bank block (see [`transpose_bank_block`]).
    pub bank_t: &'a [u64],
    /// Padded row stride (alphabet members + 1), as in the arena.
    pub stride: usize,
    /// Lanes (batch rows) in the block; `accs.len()`.
    pub width: usize,
    /// The layer's weight signs (all weights, not just this run).
    pub w_neg: &'a [bool],
    /// First weight of the run.
    pub w0: usize,
    /// Input index per fan-in position — the identity for dense layers,
    /// the position's gather slice for conv layers.
    pub fan: &'a [u32],
    /// Transposed activation sign masks (`0`/`-1`), lane `b` of input
    /// `i` at `i*width + b`.
    pub sign_t: &'a [i64],
    /// Per-lane accumulators, bias-initialized; updated in place.
    pub accs: &'a mut [i64],
}

/// A batch-major MAC kernel: evaluates one fan-in run over every lane
/// of a block, bit-identically per lane to the row-major scalar
/// reference (same terms, same sign application, same per-lane
/// accumulation order).
pub(crate) trait MacBatchKernel: Sync {
    /// Runs one fan-in accumulation across the block.
    fn accumulate(&self, run: MacBatchRun<'_>);
}

/// Static dispatch table for the batch-major family — the same
/// forced-kind guard as [`kernel_for`]: the AVX2 arm re-checks
/// [`avx2_available`] and falls back to the bit-identical portable SWAR
/// variant, and non-x86-64 hosts always take that fallback.
pub(crate) fn batch_kernel_for(kind: KernelKind) -> &'static dyn MacBatchKernel {
    match kind {
        KernelKind::Scalar => &ScalarBatchKernel,
        KernelKind::Swar => &SwarBatchKernel,
        #[cfg(target_arch = "x86_64")]
        KernelKind::Avx2 => {
            if avx2_available() {
                &Avx2BatchKernel
            } else {
                &SwarBatchKernel
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        KernelKind::Avx2 => &SwarBatchKernel,
    }
}

/// One lane's reference fan-in walk over the transposed block — the
/// scalar batch-major anchor, and the tail path of both vectorized
/// batch kernels.
#[inline]
fn batch_lane_scalar(run: &MacBatchRun<'_>, b: usize) -> i64 {
    let soa = run.soa;
    let width = run.width;
    let mut acc = run.accs[b];
    for (j, &gi) in run.fan.iter().enumerate() {
        let gi = gi as usize;
        let mut p = 0u64;
        for s in 0..soa.q {
            let term = soa.terms[s * soa.weights + run.w0 + j] as usize;
            p += run.bank_t[(gi * run.stride + (term >> 4)) * width + b] << (term & 15);
        }
        let neg = run.w_neg[run.w0 + j] ^ (run.sign_t[gi * width + b] != 0);
        acc += man_fixed::bits::apply_sign(p, neg);
    }
    acc
}

/// The scalar batch-major reference: every lane through the per-term
/// walk, one lane at a time.
struct ScalarBatchKernel;

impl MacBatchKernel for ScalarBatchKernel {
    fn accumulate(&self, run: MacBatchRun<'_>) {
        for b in 0..run.width {
            run.accs[b] = batch_lane_scalar(&run, b);
        }
    }
}

/// The portable batch-major vector kernel: four batch-row lanes per
/// unrolled step, one term byte (and one shift count) shared across all
/// four, contiguous bank loads — no `std::arch` anywhere.
struct SwarBatchKernel;

impl MacBatchKernel for SwarBatchKernel {
    fn accumulate(&self, run: MacBatchRun<'_>) {
        match run.soa.q {
            1 => swar_batch_q::<1>(run),
            2 => swar_batch_q::<2>(run),
            3 => swar_batch_q::<3>(run),
            4 => swar_batch_q::<4>(run),
            q => unreachable!("{q} quartet slots; 3..=16-bit words have 1..=4"),
        }
    }
}

#[inline]
fn swar_batch_q<const Q: usize>(run: MacBatchRun<'_>) {
    debug_assert_eq!(run.soa.q, Q);
    let width = run.width;
    let w = run.soa.weights;
    let t = &run.soa.terms;
    let mut b = 0;
    while b + 4 <= width {
        let mut acc = [
            run.accs[b],
            run.accs[b + 1],
            run.accs[b + 2],
            run.accs[b + 3],
        ];
        for (j, &gi) in run.fan.iter().enumerate() {
            let gi = gi as usize;
            let row = gi * run.stride;
            let mut p = [0u64; 4];
            for s in 0..Q {
                let term = t[s * w + run.w0 + j] as usize;
                let off = (row + (term >> 4)) * width + b;
                let sh = term & 15;
                for (l, lane) in p.iter_mut().enumerate() {
                    *lane += run.bank_t[off + l] << sh;
                }
            }
            // Sign application via the two's-complement identity
            // `(p ^ m) - m` (`m` = 0 keeps `p`, `m` = -1 negates) —
            // exactly `apply_sign`, lane-independent and branch-free.
            // Each lane's accumulator still advances in fan-in order.
            let wm = -(run.w_neg[run.w0 + j] as i64);
            let sb = gi * width + b;
            for (l, &lane) in p.iter().enumerate() {
                let m = run.sign_t[sb + l] ^ wm;
                acc[l] += (lane as i64 ^ m) - m;
            }
        }
        run.accs[b..b + 4].copy_from_slice(&acc);
        b += 4;
    }
    while b < width {
        run.accs[b] = batch_lane_scalar(&run, b);
        b += 1;
    }
}

/// The AVX2 batch-major specialization: four batch-row lanes per
/// 256-bit step — one *contiguous* `vmovdqu` bank load per term (the
/// transpose already put the four lanes' bank entries side by side; no
/// gathers), one shared `vpsllq` shift count per term, and the sign
/// application folded into a `vpxor`/`vpsubq` pair against the
/// transposed sign masks. Reachable only through [`batch_kernel_for`]
/// after the availability re-check, so the `target_feature` contract
/// holds at every call site.
#[cfg(target_arch = "x86_64")]
struct Avx2BatchKernel;

#[cfg(target_arch = "x86_64")]
impl MacBatchKernel for Avx2BatchKernel {
    fn accumulate(&self, run: MacBatchRun<'_>) {
        debug_assert!(avx2_available(), "AVX2 kernel dispatched without AVX2");
        // SAFETY: reachable only via `batch_kernel_for`, whose AVX2 arm
        // re-checks `avx2_available()` even for forced kinds; every
        // load stays in bounds — `(input*stride + idx)*width + b + 4 <=
        // inputs*stride*width` whenever `b + 4 <= width` and the term
        // index is below the row stride (enforced by
        // `transpose_bank_block`/`MacSoa` construction).
        #[allow(unsafe_code)]
        unsafe {
            match run.soa.q {
                1 => avx2_batch_q::<1>(run),
                2 => avx2_batch_q::<2>(run),
                3 => avx2_batch_q::<3>(run),
                4 => avx2_batch_q::<4>(run),
                q => unreachable!("{q} quartet slots; 3..=16-bit words have 1..=4"),
            }
        }
    }
}

/// # Safety
///
/// Callers must ensure the host supports AVX2 and that `run`'s block
/// buffers were built by [`transpose_bank_block`] over in-bounds rows
/// (see the safety comment at the call site).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(unsafe_code)]
unsafe fn avx2_batch_q<const Q: usize>(run: MacBatchRun<'_>) {
    use std::arch::x86_64::*;

    debug_assert_eq!(run.soa.q, Q);
    let width = run.width;
    let w = run.soa.weights;
    let t = &run.soa.terms;
    let bank_ptr = run.bank_t.as_ptr();
    let sign_ptr = run.sign_t.as_ptr();
    let mut b = 0;
    while b + 4 <= width {
        let mut acc = _mm256_loadu_si256(run.accs.as_ptr().add(b) as *const __m256i);
        for (j, &gi) in run.fan.iter().enumerate() {
            let gi = gi as usize;
            let row = gi * run.stride;
            let mut prod = _mm256_setzero_si256();
            for s in 0..Q {
                let term = t[s * w + run.w0 + j] as usize;
                let v = _mm256_loadu_si256(
                    bank_ptr.add((row + (term >> 4)) * width + b) as *const __m256i
                );
                prod = _mm256_add_epi64(
                    prod,
                    _mm256_sll_epi64(v, _mm_cvtsi32_si128((term & 15) as i32)),
                );
            }
            // `(p ^ m) - m` — the same sign identity as the SWAR batch
            // kernel, with the per-lane masks loaded contiguously from
            // the transposed sign block and the weight sign broadcast.
            let wm = _mm256_set1_epi64x(-(run.w_neg[run.w0 + j] as i64));
            let m = _mm256_xor_si256(
                _mm256_loadu_si256(sign_ptr.add(gi * width + b) as *const __m256i),
                wm,
            );
            acc = _mm256_add_epi64(acc, _mm256_sub_epi64(_mm256_xor_si256(prod, m), m));
        }
        _mm256_storeu_si256(run.accs.as_mut_ptr().add(b) as *mut __m256i, acc);
        b += 4;
    }
    while b < width {
        run.accs[b] = batch_lane_scalar(&run, b);
        b += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::AlphabetSet;

    fn supported_mags(asm: &AsmMultiplier) -> Vec<u32> {
        (0..=asm.scheme().max_magnitude())
            .filter(|&m| asm.decode(m).is_ok())
            .collect()
    }

    /// Every kernel × every supported weight × a spread of inputs ×
    /// every paper alphabet × several word lengths: the kernels must
    /// reproduce exact multiplication (the ASM's defining property)
    /// bit for bit, including the sign lane and the fan-in
    /// accumulation.
    #[test]
    fn kernels_match_scalar_reference_exhaustively() {
        let mut kinds = vec![KernelKind::Scalar, KernelKind::Swar];
        if avx2_available() {
            kinds.push(KernelKind::Avx2);
        }
        for bits in [3u32, 6, 8, 12, 16] {
            for set in [
                AlphabetSet::a1(),
                AlphabetSet::a2(),
                AlphabetSet::a4(),
                AlphabetSet::a8(),
            ] {
                let asm = AsmMultiplier::new(bits, set);
                let mags = supported_mags(&asm);
                let plans: Vec<AsmPlan> = mags
                    .iter()
                    .map(|&m| asm.decode(m).expect("supported"))
                    .collect();
                let soa = MacSoa::build(&asm, &plans);
                let w_neg: Vec<bool> = (0..mags.len()).map(|i| i % 3 == 1).collect();

                // A fan-in over every supported weight against a
                // rotating set of input magnitudes and signs.
                let max_x = (1u32 << (bits - 1)) - 1;
                let xs: Vec<(u32, bool)> = (0..mags.len())
                    .map(|i| {
                        let mag = [0, 1, max_x / 3 + 1, max_x][i % 4].min(max_x);
                        (mag, i % 5 == 2)
                    })
                    .collect();
                let mut arena = BankArena::new(1usize << (bits - 1), asm.alphabet().len());
                let rows: Vec<u32> = xs
                    .iter()
                    .map(|&(mag, _)| arena.row_or_fill(&asm, mag))
                    .collect();
                let x_neg: Vec<bool> = xs.iter().map(|&(_, neg)| neg).collect();

                // The ground truth: exact multiplication accumulated in
                // fan-in order, exactly as the engine's scalar loop does.
                let mut want = 7i64;
                for (i, (&(x_mag, xn), &m)) in xs.iter().zip(&mags).enumerate() {
                    want += man_fixed::bits::apply_sign(m as u64 * x_mag as u64, w_neg[i] ^ xn);
                }

                for &kind in &kinds {
                    let got = kernel_for(kind).accumulate(MacRun {
                        soa: &soa,
                        slab: arena.slab(),
                        w_neg: &w_neg,
                        w0: 0,
                        rows: &rows,
                        x_neg: &x_neg,
                        acc: 7,
                    });
                    assert_eq!(
                        got,
                        want,
                        "bits={bits} alphabet={} kernel={}",
                        asm.alphabet(),
                        kind.label()
                    );
                }
            }
        }
    }

    /// Partial runs (`w0 > 0`, short tails) hit the same bits — the
    /// shape the dense per-output loop actually uses.
    #[test]
    fn kernels_agree_on_offset_runs_and_tails() {
        let asm = AsmMultiplier::new(8, AlphabetSet::a2());
        let mags = supported_mags(&asm);
        let plans: Vec<AsmPlan> = mags
            .iter()
            .map(|&m| asm.decode(m).expect("supported"))
            .collect();
        let soa = MacSoa::build(&asm, &plans);
        let w_neg: Vec<bool> = (0..mags.len()).map(|i| i % 2 == 0).collect();
        let mut arena = BankArena::new(128, asm.alphabet().len());
        let all_rows: Vec<u32> = (0..mags.len())
            .map(|i| arena.row_or_fill(&asm, (i as u32 * 13) % 128))
            .collect();
        let x_neg: Vec<bool> = (0..mags.len()).map(|i| i % 7 == 3).collect();
        let mut kinds = vec![KernelKind::Swar];
        if avx2_available() {
            kinds.push(KernelKind::Avx2);
        }
        for w0 in [0usize, 1, 5] {
            for len in [0usize, 1, 3, 4, 7, 11] {
                if w0 + len > mags.len() {
                    continue;
                }
                let run = |kind| {
                    kernel_for(kind).accumulate(MacRun {
                        soa: &soa,
                        slab: arena.slab(),
                        w_neg: &w_neg,
                        w0,
                        rows: &all_rows[w0..w0 + len],
                        x_neg: &x_neg[w0..w0 + len],
                        acc: -3,
                    })
                };
                let want = run(KernelKind::Scalar);
                for &kind in &kinds {
                    assert_eq!(run(kind), want, "w0={w0} len={len} {}", kind.label());
                }
            }
        }
    }

    #[test]
    fn resolution_table_holds() {
        assert_eq!(resolve(Kernel::Scalar), KernelKind::Scalar);
        assert_eq!(resolve(Kernel::Swar), KernelKind::Swar);
        let vector = resolve(Kernel::Vector);
        assert!(vector.is_vectorized());
        assert_eq!(vector, detect());
        // Auto is env-dependent but always one of the three.
        let auto = resolve(Kernel::Auto);
        assert!(matches!(
            auto,
            KernelKind::Scalar | KernelKind::Swar | KernelKind::Avx2
        ));
        assert!(!KernelKind::Scalar.is_vectorized());
        assert_eq!(KernelKind::Swar.label(), "swar");
        assert!(!cpu_features().is_empty());
    }

    /// Every batch-major kernel × every paper alphabet × several word
    /// lengths × lane widths with and without a vector tail: each lane
    /// must reproduce the row-major scalar reference bit for bit (the
    /// layouts share terms, signs and per-lane accumulation order by
    /// construction; this pins the transpose and the lane indexing).
    #[test]
    fn batch_kernels_match_row_major_scalar_per_lane() {
        let mut kinds = vec![KernelKind::Scalar, KernelKind::Swar];
        if avx2_available() {
            kinds.push(KernelKind::Avx2);
        }
        for bits in [3u32, 6, 8, 12, 16] {
            for set in [AlphabetSet::a1(), AlphabetSet::a4(), AlphabetSet::a8()] {
                let asm = AsmMultiplier::new(bits, set);
                let mags = supported_mags(&asm);
                let plans: Vec<AsmPlan> = mags
                    .iter()
                    .map(|&m| asm.decode(m).expect("supported"))
                    .collect();
                let soa = MacSoa::build(&asm, &plans);
                let w_neg: Vec<bool> = (0..mags.len()).map(|i| i % 3 == 1).collect();
                let max_x = (1u32 << (bits - 1)) - 1;
                let fan: Vec<u32> = (0..mags.len() as u32).collect();

                for width in [1usize, 2, 4, 5, 8, 11] {
                    // Per-lane activations: distinct magnitude/sign
                    // patterns so a lane swap or off-by-one in the
                    // transpose cannot cancel out.
                    let mut arena = BankArena::new(1usize << (bits - 1), asm.alphabet().len());
                    let lanes: Vec<(Vec<u32>, Vec<bool>)> = (0..width)
                        .map(|b| {
                            let rows: Vec<u32> = (0..mags.len())
                                .map(|i| {
                                    let mag = [0, 1, max_x / 3 + 1, max_x, max_x / 2][(i + b) % 5]
                                        .min(max_x);
                                    arena.row_or_fill(&asm, mag)
                                })
                                .collect();
                            let negs: Vec<bool> =
                                (0..mags.len()).map(|i| (i + 2 * b) % 4 == 1).collect();
                            (rows, negs)
                        })
                        .collect();
                    let lane_rows: Vec<&[u32]> = lanes.iter().map(|(r, _)| r.as_slice()).collect();
                    let lane_negs: Vec<&[bool]> = lanes.iter().map(|(_, n)| n.as_slice()).collect();
                    let mut bank_t = Vec::new();
                    let mut sign_t = Vec::new();
                    transpose_bank_block(
                        arena.slab(),
                        asm.alphabet().len() + 1,
                        &lane_rows,
                        &lane_negs,
                        &mut bank_t,
                        &mut sign_t,
                    );

                    // Row-major scalar reference, lane by lane.
                    let want: Vec<i64> = (0..width)
                        .map(|b| {
                            kernel_for(KernelKind::Scalar).accumulate(MacRun {
                                soa: &soa,
                                slab: arena.slab(),
                                w_neg: &w_neg,
                                w0: 0,
                                rows: &lanes[b].0,
                                x_neg: &lanes[b].1,
                                acc: 7 + b as i64,
                            })
                        })
                        .collect();

                    for &kind in &kinds {
                        let mut accs: Vec<i64> = (0..width).map(|b| 7 + b as i64).collect();
                        batch_kernel_for(kind).accumulate(MacBatchRun {
                            soa: &soa,
                            bank_t: &bank_t,
                            stride: asm.alphabet().len() + 1,
                            width,
                            w_neg: &w_neg,
                            w0: 0,
                            fan: &fan,
                            sign_t: &sign_t,
                            accs: &mut accs,
                        });
                        assert_eq!(
                            accs,
                            want,
                            "bits={bits} alphabet={} width={width} kernel={}",
                            asm.alphabet(),
                            kind.label()
                        );
                    }
                }
            }
        }
    }

    /// Offset runs (`w0 > 0`) with a gather-style (non-identity,
    /// repeating) fan — the shape the conv per-position loop uses — hit
    /// the same bits across batch kernels.
    #[test]
    fn batch_kernels_agree_on_offset_runs_and_gathered_fans() {
        let asm = AsmMultiplier::new(8, AlphabetSet::a2());
        let mags = supported_mags(&asm);
        let plans: Vec<AsmPlan> = mags
            .iter()
            .map(|&m| asm.decode(m).expect("supported"))
            .collect();
        let soa = MacSoa::build(&asm, &plans);
        let w_neg: Vec<bool> = (0..mags.len()).map(|i| i % 2 == 0).collect();
        let inputs = 9usize;
        let mut arena = BankArena::new(128, asm.alphabet().len());
        let width = 6usize;
        let lanes: Vec<(Vec<u32>, Vec<bool>)> = (0..width)
            .map(|b| {
                let rows: Vec<u32> = (0..inputs)
                    .map(|i| arena.row_or_fill(&asm, ((i + 3 * b) as u32 * 13) % 128))
                    .collect();
                let negs: Vec<bool> = (0..inputs).map(|i| (i * (b + 1)) % 3 == 1).collect();
                (rows, negs)
            })
            .collect();
        let lane_rows: Vec<&[u32]> = lanes.iter().map(|(r, _)| r.as_slice()).collect();
        let lane_negs: Vec<&[bool]> = lanes.iter().map(|(_, n)| n.as_slice()).collect();
        let mut bank_t = Vec::new();
        let mut sign_t = Vec::new();
        transpose_bank_block(
            arena.slab(),
            asm.alphabet().len() + 1,
            &lane_rows,
            &lane_negs,
            &mut bank_t,
            &mut sign_t,
        );
        // A conv-style fan: repeats and skips over the raw inputs.
        let fan: Vec<u32> = vec![0, 4, 4, 7, 2, 8, 1, 1];
        for w0 in [0usize, 1, 5] {
            let len = fan.len().min(mags.len() - w0);
            let want: Vec<i64> = (0..width)
                .map(|b| {
                    let rows: Vec<u32> =
                        fan[..len].iter().map(|&g| lanes[b].0[g as usize]).collect();
                    let x_neg: Vec<bool> =
                        fan[..len].iter().map(|&g| lanes[b].1[g as usize]).collect();
                    kernel_for(KernelKind::Scalar).accumulate(MacRun {
                        soa: &soa,
                        slab: arena.slab(),
                        w_neg: &w_neg,
                        w0,
                        rows: &rows,
                        x_neg: &x_neg,
                        acc: -3,
                    })
                })
                .collect();
            let mut kinds = vec![KernelKind::Scalar, KernelKind::Swar];
            if avx2_available() {
                kinds.push(KernelKind::Avx2);
            }
            for &kind in &kinds {
                let mut accs = vec![-3i64; width];
                batch_kernel_for(kind).accumulate(MacBatchRun {
                    soa: &soa,
                    bank_t: &bank_t,
                    stride: asm.alphabet().len() + 1,
                    width,
                    w_neg: &w_neg,
                    w0,
                    fan: &fan[..len],
                    sign_t: &sign_t,
                    accs: &mut accs,
                });
                assert_eq!(accs, want, "w0={w0} kernel={}", kind.label());
            }
        }
    }

    #[test]
    fn layout_resolution_table_holds() {
        let t = AutoTuning::default();
        // Explicit requests are literal (modulo the batch<2 degrade).
        assert_eq!(
            resolve_layout(Layout::RowMajor, 64, 1_000_000, &t),
            LayoutKind::RowMajor
        );
        assert_eq!(
            resolve_layout(Layout::BatchMajor, 64, 0, &t),
            LayoutKind::BatchMajor
        );
        // A lone row (or an empty batch) has no batch axis: always
        // row-major, even under a forced BatchMajor request.
        assert_eq!(
            resolve_layout(Layout::BatchMajor, 1, u64::MAX, &t),
            LayoutKind::RowMajor
        );
        assert_eq!(
            resolve_layout(Layout::BatchMajor, 0, u64::MAX, &t),
            LayoutKind::RowMajor
        );
        // Auto defers to the tuner heuristic (or MAN_LAYOUT; under the
        // CI env matrix the explicit expectations above still hold, and
        // here we only pin that Auto resolves to *a* concrete layout).
        let auto = resolve_layout(Layout::Auto, 64, 1_000_000, &t);
        assert!(matches!(
            auto,
            LayoutKind::RowMajor | LayoutKind::BatchMajor
        ));
        assert_eq!(
            resolve_layout(Layout::Auto, 1, u64::MAX, &t),
            LayoutKind::RowMajor
        );
        assert_eq!(LayoutKind::RowMajor.label(), "row");
        assert_eq!(LayoutKind::BatchMajor.label(), "batch");
        assert!(LayoutKind::BatchMajor.is_batch_major());
        assert!(!LayoutKind::RowMajor.is_batch_major());
    }

    #[test]
    fn arena_rows_are_padded_and_stable() {
        let asm = AsmMultiplier::new(8, AlphabetSet::a4());
        let mut arena = BankArena::new(128, 4);
        let off = arena.row_or_fill(&asm, 77);
        assert_eq!(arena.row_or_fill(&asm, 77), off, "memoized");
        assert_eq!(arena.row(77), Some(off));
        assert_eq!(arena.row(78), None);
        assert_eq!(arena.slab()[off as usize], 0, "zero sentinel");
        assert_eq!(arena.bank(off), &[77, 3 * 77, 5 * 77, 7 * 77]);
        let before = arena.bytes();
        arena.shrink_to_fit();
        assert!(arena.bytes() <= before);
        // The classic bank equals `precompute` exactly.
        assert_eq!(arena.bank(off), asm.precompute(77).as_slice());
    }
}
