//! Alphabet sets: the small collections of odd input multiples from which
//! the ASM reconstructs every product.

use std::fmt;

use serde::{Deserialize, Serialize};

/// An alphabet set `{a₁, …}`: odd values in `1..=15`, always containing 1.
///
/// The paper's working sets are [`AlphabetSet::a1`] (`{1}`, the MAN),
/// [`AlphabetSet::a2`] (`{1,3}`), [`AlphabetSet::a4`] (`{1,3,5,7}`) and the
/// complete [`AlphabetSet::a8`] which supports every 4-bit quartet.
///
/// # Example
///
/// ```
/// use man::alphabet::AlphabetSet;
///
/// let a4 = AlphabetSet::a4();
/// // Section IV-A: {1,3,5,7} covers 12 of the 16 quartet values.
/// assert_eq!(a4.supported_quartets(4).len(), 12);
/// assert!(!a4.supports(9, 4));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AlphabetSet {
    members: Vec<u8>,
}

impl AlphabetSet {
    /// Builds a set from its members.
    ///
    /// # Errors
    ///
    /// Returns an error string if the members are not strictly increasing
    /// odd values in `1..=15` starting with 1.
    pub fn new(members: Vec<u8>) -> Result<Self, InvalidAlphabetError> {
        if members.is_empty() {
            return Err(InvalidAlphabetError("alphabet set must not be empty"));
        }
        if members[0] != 1 {
            return Err(InvalidAlphabetError("alphabet set must contain 1"));
        }
        if !members.windows(2).all(|w| w[0] < w[1]) {
            return Err(InvalidAlphabetError(
                "alphabets must be strictly increasing",
            ));
        }
        if !members.iter().all(|&a| a % 2 == 1 && a <= 15) {
            return Err(InvalidAlphabetError("alphabets must be odd and <= 15"));
        }
        Ok(Self { members })
    }

    /// The 1-alphabet set `{1}` — the Multiplier-less Artificial Neuron.
    pub fn a1() -> Self {
        Self { members: vec![1] }
    }

    /// The 2-alphabet set `{1,3}`.
    pub fn a2() -> Self {
        Self {
            members: vec![1, 3],
        }
    }

    /// The 4-alphabet set `{1,3,5,7}`.
    pub fn a4() -> Self {
        Self {
            members: vec![1, 3, 5, 7],
        }
    }

    /// The complete 8-alphabet set — exact multiplication.
    pub fn a8() -> Self {
        Self {
            members: vec![1, 3, 5, 7, 9, 11, 13, 15],
        }
    }

    /// The members, ascending.
    pub fn members(&self) -> &[u8] {
        &self.members
    }

    /// Number of alphabets.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Never true (construction requires 1).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// `true` if this is the MAN set `{1}`.
    pub fn is_man(&self) -> bool {
        self.members == [1]
    }

    /// The `(alphabet index, shift)` pair generating quartet value `v`
    /// within a `width`-bit quartet, or `None` if unsupported.
    /// `v = 0` is always supported (zero term).
    pub fn controls(&self, v: u32, width: u32) -> Option<(usize, u32)> {
        debug_assert!(width <= 4 && v < (1 << width));
        if v == 0 {
            return Some((0, 0));
        }
        for (idx, &a) in self.members.iter().enumerate() {
            for s in 0..width {
                if (a as u32) << s == v {
                    return Some((idx, s));
                }
            }
        }
        None
    }

    /// `true` if quartet value `v` (within a `width`-bit quartet) is
    /// producible.
    pub fn supports(&self, v: u32, width: u32) -> bool {
        self.controls(v, width).is_some()
    }

    /// All supported quartet values for a `width`-bit quartet, ascending.
    pub fn supported_quartets(&self, width: u32) -> Vec<u32> {
        (0..(1u32 << width))
            .filter(|&v| self.supports(v, width))
            .collect()
    }

    /// Hardware label, e.g. `"2 {1,3}"` as the paper's tables write it.
    pub fn label(&self) -> String {
        format!(
            "{} {{{}}}",
            self.members.len(),
            self.members
                .iter()
                .map(u8::to_string)
                .collect::<Vec<_>>()
                .join(",")
        )
    }
}

impl fmt::Display for AlphabetSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Error for malformed alphabet sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidAlphabetError(&'static str);

impl fmt::Display for InvalidAlphabetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for InvalidAlphabetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_supported_counts() {
        // Section IV-A of the paper.
        assert_eq!(AlphabetSet::a8().supported_quartets(4).len(), 16);
        assert_eq!(AlphabetSet::a4().supported_quartets(4).len(), 12);
        assert_eq!(AlphabetSet::a2().supported_quartets(4).len(), 8);
        assert_eq!(AlphabetSet::a1().supported_quartets(4).len(), 5);
        // {1,3}: unsupported 4-bit values are {5,7,9,10,11,13,14,15}.
        let unsupported: Vec<u32> = (0..16)
            .filter(|&v| !AlphabetSet::a2().supports(v, 4))
            .collect();
        assert_eq!(unsupported, vec![5, 7, 9, 10, 11, 13, 14, 15]);
        // {1,3}: unsupported 3-bit values are {5,7} (the P quartet).
        let p_unsupported: Vec<u32> = (0..8)
            .filter(|&v| !AlphabetSet::a2().supports(v, 3))
            .collect();
        assert_eq!(p_unsupported, vec![5, 7]);
    }

    #[test]
    fn controls_match_fig2_example() {
        // W = 0b0100_1010: LSB quartet 10 = 5<<1, MSB quartet 4 = 1<<2.
        assert_eq!(AlphabetSet::a4().controls(10, 4), Some((2, 1)));
        assert_eq!(AlphabetSet::a4().controls(4, 4), Some((0, 2)));
    }

    #[test]
    fn validation_rejects_bad_sets() {
        assert!(AlphabetSet::new(vec![]).is_err());
        assert!(AlphabetSet::new(vec![3]).is_err());
        assert!(AlphabetSet::new(vec![1, 1]).is_err());
        assert!(AlphabetSet::new(vec![1, 2]).is_err());
        assert!(AlphabetSet::new(vec![1, 17]).is_err());
        assert!(AlphabetSet::new(vec![1, 5, 9]).is_ok());
    }

    #[test]
    fn labels_match_paper_tables() {
        assert_eq!(AlphabetSet::a2().label(), "2 {1,3}");
        assert_eq!(AlphabetSet::a1().label(), "1 {1}");
        assert!(AlphabetSet::a1().is_man());
        assert!(!AlphabetSet::a2().is_man());
    }
}
