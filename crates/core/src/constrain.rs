//! Weight constraining (Algorithm 1): rounding weights onto the lattice of
//! magnitudes whose quartets the alphabet set can produce.
//!
//! Two projections are provided:
//!
//! * [`WeightLattice::project_exact`] — globally nearest representable
//!   magnitude via a precomputed sorted table (ties round up, matching the
//!   paper's threshold rule);
//! * [`project_greedy`] — the paper's Algorithm 1: quartets
//!   are rounded LSB-to-MSB to the nearest supported value with carry
//!   propagation into the next quartet.
//!
//! Both always return representable magnitudes; the exact projector is
//! never farther from the input, and the two are compared in the ablation
//! bench.

use man_fixed::QFormat;
use serde::{Deserialize, Serialize};

use crate::alphabet::AlphabetSet;
use crate::quartet::QuartetScheme;

/// The set of representable weight magnitudes for one `(bits, alphabet)`
/// pair.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WeightLattice {
    bits: u32,
    values: Vec<u32>,
}

impl WeightLattice {
    /// Enumerates the lattice for `bits`-wide weights under `alphabet`.
    pub fn new(bits: u32, alphabet: &AlphabetSet) -> Self {
        let scheme = QuartetScheme::for_bits(bits);
        let values = (0..=scheme.max_magnitude())
            .filter(|&m| {
                scheme
                    .decompose(m)
                    .iter()
                    .zip(scheme.widths())
                    .all(|(&v, &w)| alphabet.supports(v, w))
            })
            .collect();
        Self { bits, values }
    }

    /// The representable magnitudes, ascending (always contains 0).
    pub fn values(&self) -> &[u32] {
        &self.values
    }

    /// Number of representable magnitudes.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Never true: 0 is always representable.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// `true` if `mag` is on the lattice.
    pub fn contains(&self, mag: u32) -> bool {
        self.values.binary_search(&mag).is_ok()
    }

    /// Largest gap between consecutive lattice points (worst-case rounding
    /// error bound).
    pub fn max_gap(&self) -> u32 {
        self.values
            .windows(2)
            .map(|w| w[1] - w[0])
            .max()
            .unwrap_or(0)
    }

    /// Globally nearest representable magnitude. Midpoints round up,
    /// matching the paper's rounding-logic example ("if 10 or 11 comes up,
    /// we will convert it to 12" for neighbors 8 and 12).
    pub fn project_exact(&self, mag: u32) -> u32 {
        match self.values.binary_search(&mag) {
            Ok(_) => mag,
            Err(pos) => {
                if pos == 0 {
                    self.values[0]
                } else if pos == self.values.len() {
                    *self.values.last().expect("lattice nonempty")
                } else {
                    let lo = self.values[pos - 1];
                    let hi = self.values[pos];
                    // Threshold at the average; >= threshold rounds up.
                    if (mag - lo) < (hi - mag) {
                        lo
                    } else {
                        hi
                    }
                }
            }
        }
    }
}

/// The paper's Algorithm 1: quartet-wise rounding with carry propagation.
///
/// Each quartet (LSB first) is rounded to the nearest supported value,
/// where "one past the top" (a carry into the next quartet) counts as a
/// supported neighbor. Midpoints round up. A carry out of the MSB quartet
/// saturates to the largest representable magnitude.
pub fn project_greedy(bits: u32, alphabet: &AlphabetSet, mag: u32) -> u32 {
    let scheme = QuartetScheme::for_bits(bits);
    let mut quartets = scheme.decompose(mag);
    let widths = scheme.widths().to_vec();
    let mut carry = 0u32;
    for i in 0..quartets.len() {
        let width = widths[i];
        let limit = 1u32 << width;
        let v = quartets[i] + carry;
        carry = 0;
        if v >= limit {
            // The carry overflowed this quartet: v == limit (carry 1 onto
            // a supported-or-rounded value). Wrap to 0 and carry on.
            quartets[i] = 0;
            carry = 1;
            continue;
        }
        if alphabet.supports(v, width) {
            quartets[i] = v;
            continue;
        }
        // Nearest supported below; nearest supported above may be the
        // carry value `limit` (i.e. +1 in the next quartet).
        let below = (0..v)
            .rev()
            .find(|&c| alphabet.supports(c, width))
            .expect("0 is always supported");
        let above = ((v + 1)..limit)
            .find(|&c| alphabet.supports(c, width))
            .unwrap_or(limit);
        // Midpoint threshold, ties round up (paper's rounding logic).
        if (v - below) < (above - v) {
            quartets[i] = below;
        } else if above == limit {
            quartets[i] = 0;
            carry = 1;
        } else {
            quartets[i] = above;
        }
    }
    if carry > 0 {
        // Overflow out of the MSB quartet: saturate to the largest
        // representable magnitude (every quartet at its largest supported
        // value — no need to enumerate the lattice).
        let maxed: Vec<u32> = widths
            .iter()
            .map(|&w| {
                *alphabet
                    .supported_quartets(w)
                    .last()
                    .expect("0 is always supported")
            })
            .collect();
        return scheme.reconstruct(&maxed);
    }
    scheme.reconstruct(&quartets)
}

/// Projects a trained float weight tensor onto the constrained fixed-point
/// lattice: quantize into `format`, split sign/magnitude, project the
/// magnitude, and write back the dequantized value.
///
/// This is the transform applied after every optimizer step during
/// constrained retraining, and to the final weights before compiling the
/// fixed-point network.
pub fn constrain_slice(format: QFormat, lattice: &WeightLattice, values: &mut [f32]) {
    debug_assert_eq!(format.bits(), lattice.bits);
    for v in values.iter_mut() {
        let q = format.quantize(*v as f64);
        let (neg, mag) = man_fixed::bits::sign_magnitude(q.raw(), format.bits());
        let projected = lattice.project_exact(mag);
        let raw = man_fixed::bits::apply_sign(projected as u64, neg);
        *v = (raw as f64 / format.scale()) as f32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_sizes() {
        // 8-bit {1}: 5 values per 4-bit quartet × 4 per 3-bit = 20.
        assert_eq!(WeightLattice::new(8, &AlphabetSet::a1()).len(), 20);
        // 8-bit full alphabet: everything.
        assert_eq!(WeightLattice::new(8, &AlphabetSet::a8()).len(), 128);
        // 12-bit {1,3}: 8 × 8 × 6.
        assert_eq!(WeightLattice::new(12, &AlphabetSet::a2()).len(), 8 * 8 * 6);
    }

    #[test]
    fn paper_rounding_example() {
        // Section IV-A rounding logic: neighbors 8 and 12 under {1,3};
        // 9 -> 8, 10 -> 12, 11 -> 12.
        let lattice = WeightLattice::new(8, &AlphabetSet::a2());
        assert_eq!(lattice.project_exact(9), 8);
        assert_eq!(lattice.project_exact(10), 12);
        assert_eq!(lattice.project_exact(11), 12);
        assert_eq!(project_greedy(8, &AlphabetSet::a2(), 9), 8);
        assert_eq!(project_greedy(8, &AlphabetSet::a2(), 10), 12);
        assert_eq!(project_greedy(8, &AlphabetSet::a2(), 11), 12);
    }

    #[test]
    fn projections_are_idempotent_and_representable() {
        for alphabet in [AlphabetSet::a1(), AlphabetSet::a2(), AlphabetSet::a4()] {
            let lattice = WeightLattice::new(8, &alphabet);
            for mag in 0..=127u32 {
                let e = lattice.project_exact(mag);
                let g = project_greedy(8, &alphabet, mag);
                assert!(lattice.contains(e), "{alphabet} exact({mag}) = {e}");
                assert!(lattice.contains(g), "{alphabet} greedy({mag}) = {g}");
                assert_eq!(lattice.project_exact(e), e);
                assert_eq!(project_greedy(8, &alphabet, g), g);
                // Exact is never farther than greedy.
                let de = (e as i64 - mag as i64).unsigned_abs();
                let dg = (g as i64 - mag as i64).unsigned_abs();
                assert!(de <= dg, "{alphabet} mag={mag} exact {e} greedy {g}");
            }
        }
    }

    #[test]
    fn greedy_carry_propagates() {
        // {1}: 15 (0b1111) is nearest to 16 = carry into the next quartet.
        let g = project_greedy(8, &AlphabetSet::a1(), 15);
        assert_eq!(g, 16);
        // MSB saturation: 127 = [15, 7]; both quartets round up, carrying
        // out of the top -> largest representable magnitude.
        let g = project_greedy(8, &AlphabetSet::a1(), 127);
        let lattice = WeightLattice::new(8, &AlphabetSet::a1());
        assert_eq!(g, *lattice.values().last().unwrap());
    }

    #[test]
    fn constrain_slice_lands_on_lattice() {
        let format = QFormat::new(8, 6);
        let alphabet = AlphabetSet::a2();
        let lattice = WeightLattice::new(8, &alphabet);
        let mut values = vec![0.3f32, -0.77, 1.5, -1.99, 0.0, 0.015625];
        constrain_slice(format, &lattice, &mut values);
        for &v in &values {
            let q = format.quantize(v as f64);
            assert_eq!(q.to_f64() as f32, v, "projection must be exact in Q");
            let (_, mag) = man_fixed::bits::sign_magnitude(q.raw(), 8);
            assert!(lattice.contains(mag), "value {v} -> magnitude {mag}");
        }
    }

    #[test]
    fn max_gap_shrinks_with_more_alphabets() {
        let g1 = WeightLattice::new(8, &AlphabetSet::a1()).max_gap();
        let g2 = WeightLattice::new(8, &AlphabetSet::a2()).max_gap();
        let g4 = WeightLattice::new(8, &AlphabetSet::a4()).max_gap();
        let g8 = WeightLattice::new(8, &AlphabetSet::a8()).max_gap();
        assert!(g1 >= g2 && g2 >= g4 && g4 >= g8);
        assert_eq!(g8, 1);
    }
}
