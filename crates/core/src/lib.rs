//! **MAN** — Multiplier-less Artificial Neurons: a full reproduction of
//! Sarwar, Venkataramani, Raghunathan & Roy, *"Multiplier-less Artificial
//! Neurons Exploiting Error Resiliency for Energy-Efficient Neural
//! Computing"*, DATE 2016.
//!
//! The paper replaces the multiplier in a digital neuron with an
//! approximate **Alphabet Set Multiplier** (ASM): a pre-computer bank forms
//! a few odd multiples (*alphabets*) of the input, and each 4-bit quartet
//! of the weight selects, shifts and adds one of them. With fewer alphabets
//! some quartet values become unrepresentable, so training is modified to
//! constrain weights onto the representable lattice (Algorithm 1) and the
//! network is retrained with the constraint in place (Algorithm 2). The
//! 1-alphabet set `{1}` needs no pre-computer at all — the
//! **Multiplier-less Artificial Neuron** (MAN).
//!
//! Crate map:
//!
//! * [`alphabet`], [`quartet`], [`asm`] — the functional ASM (bit-exact
//!   twin of the `man-hw` gate-level datapath);
//! * [`constrain`] — Algorithm 1 (exact and greedy projections);
//! * [`train`] — Algorithm 2 (constrained retraining methodology);
//! * [`fixed`] — the fixed-point inference engine (compiled networks,
//!   PLAN sigmoid, operand tracing);
//! * [`engine`] — the 4-lane CSHM processing-engine cost model (cycles,
//!   switching-activity energy, area at iso-speed);
//! * [`zoo`] — the five Table-IV benchmark applications.
//!
//! # Example
//!
//! ```
//! use man::alphabet::AlphabetSet;
//! use man::asm::AsmMultiplier;
//!
//! // A MAN multiplier: only shift and add, no pre-computer bank.
//! let man = AsmMultiplier::new(8, AlphabetSet::a1());
//! let bank = man.precompute(77);
//! // 66 = 0b100_0010: quartets 2 and 4, both powers of two.
//! assert_eq!(man.multiply(66, &bank).unwrap(), 66 * 77);
//! ```

// `deny` rather than `forbid`: the MAC kernel layer's AVX2
// specialization (`kernel` module) holds the crate's only `unsafe` —
// `std::arch` intrinsic calls behind a runtime
// `is_x86_feature_detected!` gate — under a scoped, documented allow,
// the same discipline as `man-par`'s single lifetime-erasing transmute.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alphabet;
pub mod asm;
pub mod constrain;
pub mod engine;
pub mod fixed;
pub mod kernel;
pub mod quartet;
pub mod train;
pub mod zoo;

/// The deterministic parallel execution layer (re-export of `man-par`):
/// [`par::Parallelism`] and the chunked scoped worker pool behind every
/// parallel code path in this workspace.
pub use man_par as par;

pub use alphabet::AlphabetSet;
pub use asm::AsmMultiplier;
pub use fixed::{FixedNet, LayerAlphabets, QuantSpec, SessionCache};
pub use man_par::Parallelism;
