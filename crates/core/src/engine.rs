//! The processing-engine cost model: cycles, switching-activity energy and
//! area for a network executing on the paper's 4-lane CSHM unit.
//!
//! For every layer, the gate-level datapath of its neuron kind is
//! synthesized at the iso-speed clock (via `man-hw`), then driven with the
//! layer's *real* operand trace (captured by
//! [`crate::fixed::FixedNet::sample_traces`]) to measure per-MAC and
//! per-neuron-output energy. Per-inference energy is
//! `Σ_layers macs·E_mac + neurons·E_neuron`; cycles assume 4 MACs per cycle
//! per unit, as in the paper's engine.

// DETERMINISM: keyed lookup cache only (see `CostModel::cache`);
// nothing ever iterates it, so hash-order randomization is inert.
use std::collections::HashMap;

use man_hw::cell::CellLibrary;
use man_hw::components::mac::carry_save_step;
use man_hw::neuron::{NeuronDatapath, NeuronKind, NeuronSpec};
use man_hw::power::{measure_stream_energy, EnergyBreakdown, PowerModel};
use man_hw::synth::{AccStyle, TimingClosureError};
use serde::{Deserialize, Serialize};

use crate::fixed::{FixedNet, LayerAlphabets, LayerTrace};

/// Per-layer energy figures.
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LayerEnergy {
    /// Energy of one multiply-accumulate, pre-computer amortized (fJ).
    pub per_mac_fj: f64,
    /// Energy of one neuron output: carry-save resolve + activation (fJ).
    pub per_neuron_fj: f64,
}

/// Cost of one inference of a network on the engine.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CostReport {
    /// Configuration label (alphabet assignment).
    pub label: String,
    /// Unit cycles per inference (4 MAC lanes).
    pub cycles: u64,
    /// Energy per inference in pJ.
    pub energy_pj: f64,
    /// Average unit power while streaming, in mW.
    pub power_mw: f64,
    /// Neuron-count-weighted effective neuron area in µm².
    pub neuron_area_um2: f64,
    /// Per-layer energies, for drill-down.
    pub layers: Vec<LayerEnergy>,
}

/// The cost model: a cell library, power-model knobs and a cache of
/// synthesized datapaths.
///
/// # Example
///
/// ```no_run
/// use man::engine::{kinds_from_alphabets, CostModel};
/// use man::fixed::{FixedNet, LayerAlphabets};
/// # fn get_fixed_net() -> (FixedNet, LayerAlphabets) { unimplemented!() }
///
/// let (fixed, alphabets) = get_fixed_net(); // a compiled, constrained net
/// let traces = fixed.sample_traces(&[vec![0.5; 1024]], 600);
/// let mut model = CostModel::default();
/// let report = model
///     .network_cost(&fixed, &kinds_from_alphabets(&alphabets), &traces, "MAN")?;
/// println!("{:.1} pJ / inference over {} cycles", report.energy_pj, report.cycles);
/// # Ok::<(), man_hw::synth::TimingClosureError>(())
/// ```
pub struct CostModel {
    lib: CellLibrary,
    power: PowerModel,
    /// Max MAC vectors streamed per layer when measuring energy.
    pub stream_limit: usize,
    // DETERMINISM: populated and read strictly by key; never iterated,
    // so results cannot depend on hash order.
    cache: HashMap<(u32, NeuronKind), NeuronDatapath>,
}

impl Default for CostModel {
    fn default() -> Self {
        Self::new(CellLibrary::nominal_45nm())
    }
}

impl CostModel {
    /// A cost model over the given library.
    pub fn new(lib: CellLibrary) -> Self {
        Self {
            lib,
            power: PowerModel::default(),
            stream_limit: 1500,
            // DETERMINISM: keyed-only cache, never iterated.
            cache: HashMap::new(),
        }
    }

    /// The library in use.
    pub fn library(&self) -> &CellLibrary {
        &self.lib
    }

    /// Synthesizes (or returns the cached) datapath for a word length and
    /// neuron kind at the paper's iso-speed clock.
    ///
    /// # Errors
    ///
    /// Propagates [`TimingClosureError`] from synthesis.
    pub fn datapath(
        &mut self,
        bits: u32,
        kind: &NeuronKind,
    ) -> Result<&NeuronDatapath, TimingClosureError> {
        let key = (bits, kind.clone());
        if !self.cache.contains_key(&key) {
            let dp = NeuronDatapath::build(NeuronSpec::paper(bits, kind.clone()), &self.lib)?;
            self.cache.insert(key.clone(), dp);
        }
        Ok(&self.cache[&key])
    }

    /// Measures the per-MAC and per-neuron energy of one layer from its
    /// operand trace.
    ///
    /// # Errors
    ///
    /// Propagates synthesis failures.
    ///
    /// # Panics
    ///
    /// Panics if the trace holds fewer than 2 MACs.
    pub fn layer_energy(
        &mut self,
        bits: u32,
        kind: &NeuronKind,
        trace: &LayerTrace,
    ) -> Result<LayerEnergy, TimingClosureError> {
        assert!(trace.len() >= 2, "trace too short to measure energy");
        let dp = self.datapath(bits, kind)?.clone();
        let clock = dp.spec().clock_ps;
        let acc_bits = dp.spec().acc_bits();
        let mask = (1u64 << acc_bits) - 1;
        let n = trace.len();

        // --- multiplication stage ---
        let mult_stream: Vec<Vec<(String, u64)>> = (0..n)
            .map(|i| {
                let mut v: Vec<(String, u64)> = vec![
                    ("w_mag".into(), trace.w_mag[i] as u64),
                    ("w_sign".into(), trace.w_neg[i] as u64),
                    ("x_sign".into(), trace.x_neg[i] as u64),
                ];
                match kind {
                    NeuronKind::Conventional => {
                        v.push(("x_mag".into(), trace.x_mag[i] as u64));
                    }
                    NeuronKind::Asm(alphabets) => {
                        for &a in alphabets {
                            v.push((format!("alpha{a}"), a as u64 * trace.x_mag[i] as u64));
                        }
                    }
                }
                v
            })
            .collect();
        let e_mult = self.measure(&dp.mult_stage, &mult_stream, clock);

        // --- accumulate stage ---
        let p_mag: Vec<u64> = trace.product.iter().map(|p| p.unsigned_abs()).collect();
        let p_sign: Vec<bool> = trace.product.iter().map(|&p| p < 0).collect();
        let mut resolver_samples: Vec<(u64, u64)> = Vec::new();
        let acc_stream: Vec<Vec<(String, u64)>> = match dp.acc_style {
            AccStyle::CarryPropagate => (0..n)
                .map(|i| {
                    vec![
                        ("p_mag".into(), p_mag[i]),
                        ("p_sign".into(), p_sign[i] as u64),
                        ("acc".into(), (trace.acc[i] as u64) & mask),
                    ]
                })
                .collect(),
            AccStyle::CarrySave => {
                let (mut s, mut c) = (0u64, 0u64);
                (0..n)
                    .map(|i| {
                        let v = vec![
                            ("p_mag".into(), p_mag[i]),
                            ("p_sign".into(), p_sign[i] as u64),
                            ("acc_s".into(), s),
                            ("acc_c".into(), c),
                        ];
                        let (s2, c2) = carry_save_step(p_mag[i], p_sign[i], s, c, acc_bits);
                        s = s2;
                        c = c2;
                        if i % 16 == 15 {
                            resolver_samples.push((s, c));
                        }
                        v
                    })
                    .collect()
            }
        };
        let e_acc = self.measure(&dp.acc_stage, &acc_stream, clock);

        // --- shared pre-computer bank, amortized over the lanes ---
        let e_pre = match &dp.precompute {
            Some(bank) => {
                let stream: Vec<Vec<(String, u64)>> = trace
                    .x_mag
                    .iter()
                    .map(|&x| vec![("x_mag".into(), x as u64)])
                    .collect();
                self.measure(bank, &stream, clock)
                    .scaled(1.0 / dp.spec().lanes as f64)
            }
            None => EnergyBreakdown::default(),
        };
        let per_mac_fj = e_mult.total_fj() + e_acc.total_fj() + e_pre.total_fj();

        // --- per-neuron: resolve + activation, shared across lanes ---
        let mut per_neuron_fj = 0.0;
        if let Some(resolver) = &dp.resolver {
            if resolver_samples.len() >= 2 {
                let stream: Vec<Vec<(String, u64)>> = resolver_samples
                    .iter()
                    .map(|&(s, c)| vec![("s".into(), s), ("c".into(), c)])
                    .collect();
                per_neuron_fj += self.measure(resolver, &stream, clock).total_fj();
            }
        }
        let act_stream: Vec<Vec<(String, u64)>> = trace
            .acc
            .iter()
            .step_by(8)
            .map(|&a| vec![("acc".into(), (a as u64) & mask)])
            .collect();
        if act_stream.len() >= 2 {
            per_neuron_fj += self.measure(&dp.activation, &act_stream, clock).total_fj();
        }
        Ok(LayerEnergy {
            per_mac_fj,
            per_neuron_fj,
        })
    }

    fn measure(
        &self,
        circuit: &man_hw::circuit::Circuit,
        stream: &[Vec<(String, u64)>],
        clock_ps: f64,
    ) -> EnergyBreakdown {
        let refs: Vec<Vec<(&str, u64)>> = stream
            .iter()
            .map(|v| v.iter().map(|(n, x)| (n.as_str(), *x)).collect())
            .collect();
        measure_stream_energy(circuit, &self.lib, &self.power, &refs, clock_ps)
    }

    /// Evaluates the full per-inference cost of a compiled network under a
    /// per-layer neuron-kind assignment.
    ///
    /// # Errors
    ///
    /// Propagates synthesis failures.
    ///
    /// # Panics
    ///
    /// Panics if `kinds`/`traces` do not match the network's layer count.
    pub fn network_cost(
        &mut self,
        fixed: &FixedNet,
        kinds: &[NeuronKind],
        traces: &[LayerTrace],
        label: impl Into<String>,
    ) -> Result<CostReport, TimingClosureError> {
        assert_eq!(kinds.len(), fixed.layer_count(), "kind per layer required");
        assert_eq!(
            traces.len(),
            fixed.layer_count(),
            "trace per layer required"
        );
        let bits = fixed.bits();
        let macs = fixed.macs_per_layer();
        let neurons = fixed.neurons_per_layer();
        let mut energy_fj = 0.0;
        let mut cycles = 0u64;
        let mut layers = Vec::with_capacity(kinds.len());
        let mut area_weighted = 0.0;
        let mut neuron_total = 0u64;
        let mut clock_ps = 0.0;
        for i in 0..kinds.len() {
            let le = self.layer_energy(bits, &kinds[i], &traces[i])?;
            // DETERMINISM: reporting-only energy estimate, summed in a
            // fixed layer order; never feeds the bit-exact datapath.
            energy_fj += macs[i] as f64 * le.per_mac_fj + neurons[i] as f64 * le.per_neuron_fj;
            let lib = self.lib.clone();
            let dp = self.datapath(bits, &kinds[i])?;
            clock_ps = dp.spec().clock_ps;
            cycles += macs[i].div_ceil(dp.spec().lanes as u64);
            // DETERMINISM: reporting-only area estimate in fixed layer order.
            area_weighted += dp.neuron_area_um2(&lib) * neurons[i] as f64;
            neuron_total += neurons[i];
            layers.push(le);
        }
        let time_ps = cycles as f64 * clock_ps;
        Ok(CostReport {
            label: label.into(),
            cycles,
            energy_pj: energy_fj / 1000.0,
            power_mw: if time_ps > 0.0 {
                energy_fj / time_ps
            } else {
                0.0
            },
            neuron_area_um2: if neuron_total > 0 {
                area_weighted / neuron_total as f64
            } else {
                0.0
            },
            layers,
        })
    }
}

/// Maps a per-layer alphabet assignment to hardware neuron kinds.
pub fn kinds_from_alphabets(alphabets: &LayerAlphabets) -> Vec<NeuronKind> {
    alphabets
        .sets()
        .iter()
        .map(|s| NeuronKind::Asm(s.members().to_vec()))
        .collect()
}

/// A uniform conventional-multiplier assignment.
pub fn kinds_conventional(layers: usize) -> Vec<NeuronKind> {
    vec![NeuronKind::Conventional; layers]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::AlphabetSet;
    use crate::constrain::{constrain_slice, WeightLattice};
    use crate::fixed::QuantSpec;
    use man_nn::layers::{Activation, ActivationLayer, Dense, Layer};
    use man_nn::network::Network;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn tiny_fixed(set: AlphabetSet) -> (FixedNet, LayerAlphabets) {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut net = Network::new(vec![
            Layer::Dense(Dense::new(12, 6, &mut rng)),
            Layer::Activation(ActivationLayer::new(Activation::Sigmoid)),
            Layer::Dense(Dense::new(6, 2, &mut rng)),
        ]);
        let spec = QuantSpec::fit(&net, 8);
        let alphabets = LayerAlphabets::uniform(set.clone(), 2);
        let formats = spec.layer_formats().to_vec();
        let mut pi = 0;
        net.visit_params_mut(|_, kind, values, _| {
            if kind == man_nn::layers::ParamKind::Weights {
                let lattice = WeightLattice::new(8, &set);
                constrain_slice(formats[pi], &lattice, values);
                pi += 1;
            }
        });
        (
            FixedNet::compile(&net, &spec, &alphabets).unwrap(),
            alphabets,
        )
    }

    fn traces_for(fixed: &FixedNet) -> Vec<LayerTrace> {
        let images: Vec<Vec<f32>> = (0..8)
            .map(|i| (0..12).map(|j| ((i + j) % 9) as f32 / 9.0).collect())
            .collect();
        fixed.sample_traces(&images, 200)
    }

    #[test]
    fn man_network_costs_less_than_conventional() {
        let (fixed, alphabets) = tiny_fixed(AlphabetSet::a1());
        let traces = traces_for(&fixed);
        let mut model = CostModel::default();
        let man = model
            .network_cost(&fixed, &kinds_from_alphabets(&alphabets), &traces, "MAN")
            .unwrap();
        let conv = model
            .network_cost(&fixed, &kinds_conventional(2), &traces, "conv")
            .unwrap();
        assert!(man.energy_pj < conv.energy_pj, "{man:?} vs {conv:?}");
        assert!(man.neuron_area_um2 < conv.neuron_area_um2);
        assert_eq!(man.cycles, conv.cycles, "iso-speed: same cycle count");
    }

    #[test]
    fn cycles_follow_macs_over_lanes() {
        let (fixed, alphabets) = tiny_fixed(AlphabetSet::a2());
        let traces = traces_for(&fixed);
        let mut model = CostModel::default();
        let report = model
            .network_cost(&fixed, &kinds_from_alphabets(&alphabets), &traces, "x")
            .unwrap();
        let expected: u64 = fixed.macs_per_layer().iter().map(|m| m.div_ceil(4)).sum();
        assert_eq!(report.cycles, expected);
    }
}
