//! The functional (bit-exact) Alphabet Set Multiplier.
//!
//! This is the software twin of the `man-hw` datapath: a pre-computer bank
//! produces the alphabet products `a·x` once per input, then each weight
//! multiplies by selecting, shifting and adding per quartet. For any weight
//! whose quartets are all supported the result equals exact multiplication
//! — that property (tested here and against the gate-level netlist) is why
//! the paper can move all approximation error into the weight lattice.

use std::fmt;

use crate::alphabet::AlphabetSet;
use crate::quartet::QuartetScheme;

/// Error returned when a weight contains a quartet value the alphabet set
/// cannot produce (the weight was not constrained).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsupportedQuartetError {
    /// The offending quartet value.
    pub value: u32,
    /// Which quartet (0 = LSB).
    pub index: usize,
    /// The full weight magnitude.
    pub magnitude: u32,
}

impl fmt::Display for UnsupportedQuartetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "quartet {} of weight magnitude {} has value {}, which the alphabet set cannot produce",
            self.index, self.magnitude, self.value
        )
    }
}

impl std::error::Error for UnsupportedQuartetError {}

/// The decoded control word of one weight: per quartet, the alphabet index
/// and shift (the output of the paper's "control logic").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmPlan {
    /// `(alphabet index, shift)` per quartet; `None` encodes a zero
    /// quartet (term masked).
    pub controls: Vec<Option<(usize, u32)>>,
}

/// A functional ASM for one word length and alphabet set.
///
/// # Example
///
/// ```
/// use man::alphabet::AlphabetSet;
/// use man::asm::AsmMultiplier;
///
/// let asm = AsmMultiplier::new(8, AlphabetSet::a4());
/// // Fig. 2's example: W = 0b0100_1010 (74), any input.
/// let bank = asm.precompute(77);
/// assert_eq!(asm.multiply(74, &bank).unwrap(), 74 * 77);
/// // 0b0110_1001 (105) has LSB quartet 9 — unsupported by {1,3,5,7}.
/// assert!(asm.multiply(105, &asm.precompute(77)).is_err());
/// ```
#[derive(Clone, Debug)]
pub struct AsmMultiplier {
    scheme: QuartetScheme,
    alphabet: AlphabetSet,
}

impl AsmMultiplier {
    /// Builds an ASM for `bits`-wide weights.
    pub fn new(bits: u32, alphabet: AlphabetSet) -> Self {
        Self {
            scheme: QuartetScheme::for_bits(bits),
            alphabet,
        }
    }

    /// The quartet layout.
    pub fn scheme(&self) -> &QuartetScheme {
        &self.scheme
    }

    /// The alphabet set.
    pub fn alphabet(&self) -> &AlphabetSet {
        &self.alphabet
    }

    /// The pre-computer bank: alphabet products of one input magnitude.
    /// In the CSHM arrangement this is computed once and shared by every
    /// multiplication against the same input.
    pub fn precompute(&self, x_mag: u32) -> Vec<u64> {
        self.alphabet
            .members()
            .iter()
            .map(|&a| a as u64 * x_mag as u64)
            .collect()
    }

    /// Decodes a weight magnitude into its select/shift plan.
    ///
    /// # Errors
    ///
    /// Returns [`UnsupportedQuartetError`] if any quartet value is not
    /// producible with this alphabet set.
    pub fn decode(&self, w_mag: u32) -> Result<AsmPlan, UnsupportedQuartetError> {
        let quartets = self.scheme.decompose(w_mag);
        let mut controls = Vec::with_capacity(quartets.len());
        for (index, (&v, &width)) in quartets.iter().zip(self.scheme.widths()).enumerate() {
            if v == 0 {
                controls.push(None);
                continue;
            }
            match self.alphabet.controls(v, width) {
                Some(c) => controls.push(Some(c)),
                None => {
                    return Err(UnsupportedQuartetError {
                        value: v,
                        index,
                        magnitude: w_mag,
                    })
                }
            }
        }
        Ok(AsmPlan { controls })
    }

    /// Multiplies a weight magnitude with a pre-computed bank: select,
    /// shift and add per quartet (steps ii–iv of the paper's Section III).
    ///
    /// # Errors
    ///
    /// Returns [`UnsupportedQuartetError`] for unconstrained weights.
    ///
    /// # Panics
    ///
    /// Panics if `bank` was produced by a different alphabet set size.
    pub fn multiply(&self, w_mag: u32, bank: &[u64]) -> Result<u64, UnsupportedQuartetError> {
        assert_eq!(bank.len(), self.alphabet.len(), "bank/alphabet mismatch");
        let plan = self.decode(w_mag)?;
        Ok(self.apply(&plan, bank))
    }

    /// Applies a decoded plan to a bank (the per-cycle datapath work).
    pub fn apply(&self, plan: &AsmPlan, bank: &[u64]) -> u64 {
        let mut acc = 0u64;
        let mut offset = 0u32;
        for (control, &width) in plan.controls.iter().zip(self.scheme.widths()) {
            if let Some((idx, shift)) = control {
                acc += (bank[*idx] << shift) << offset;
            }
            offset += width;
        }
        acc
    }

    /// Signed multiply of two's-complement raws (sign-magnitude datapath,
    /// as in hardware).
    ///
    /// # Errors
    ///
    /// Returns [`UnsupportedQuartetError`] for unconstrained weights.
    pub fn multiply_signed(&self, w_raw: i32, x_raw: i32) -> Result<i64, UnsupportedQuartetError> {
        let bits = self.scheme.bits();
        let (w_neg, w_mag) = man_fixed::bits::sign_magnitude(w_raw, bits);
        let (x_neg, x_mag) = man_fixed::bits::sign_magnitude(x_raw, bits);
        let bank = self.precompute(x_mag);
        let mag = self.multiply(w_mag, &bank)?;
        Ok(man_fixed::bits::apply_sign(mag, w_neg ^ x_neg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn supported_mags(asm: &AsmMultiplier) -> Vec<u32> {
        (0..=asm.scheme().max_magnitude())
            .filter(|&m| asm.decode(m).is_ok())
            .collect()
    }

    #[test]
    fn exact_on_all_supported_weights_8bit() {
        for alphabet in [
            AlphabetSet::a1(),
            AlphabetSet::a2(),
            AlphabetSet::a4(),
            AlphabetSet::a8(),
        ] {
            let asm = AsmMultiplier::new(8, alphabet.clone());
            for x in [0u32, 1, 77, 127] {
                let bank = asm.precompute(x);
                for w in supported_mags(&asm) {
                    assert_eq!(
                        asm.multiply(w, &bank).unwrap(),
                        w as u64 * x as u64,
                        "{alphabet} w={w} x={x}"
                    );
                }
            }
        }
    }

    #[test]
    fn full_alphabet_supports_everything() {
        let asm = AsmMultiplier::new(8, AlphabetSet::a8());
        assert_eq!(supported_mags(&asm).len(), 128);
        let asm12 = AsmMultiplier::new(12, AlphabetSet::a8());
        // P quartet is 3 bits: all 8 values supported; Q and R all 16.
        assert_eq!(supported_mags(&asm12).len(), 2048);
    }

    #[test]
    fn man_supported_weight_counts() {
        // {1}: each 4-bit quartet supports {0,1,2,4,8}; the 3-bit MSB
        // quartet supports {0,1,2,4}.
        let asm8 = AsmMultiplier::new(8, AlphabetSet::a1());
        assert_eq!(supported_mags(&asm8).len(), 5 * 4);
        let asm12 = AsmMultiplier::new(12, AlphabetSet::a1());
        assert_eq!(supported_mags(&asm12).len(), 5 * 5 * 4);
    }

    #[test]
    fn table1_paper_decomposition_works() {
        // W1 = 105 needs quartet 9: unsupported by {1,3,5,7}, supported by
        // the full set (9 = 9<<0).
        let asm4 = AsmMultiplier::new(8, AlphabetSet::a4());
        let err = asm4.decode(105).unwrap_err();
        assert_eq!(err.value, 9);
        assert_eq!(err.index, 0);
        let asm8 = AsmMultiplier::new(8, AlphabetSet::a8());
        let bank = asm8.precompute(33);
        assert_eq!(asm8.multiply(105, &bank).unwrap(), 105 * 33);
        // W2 = 66 works even with {1}: quartets [2, 4] are powers of two.
        let asm1 = AsmMultiplier::new(8, AlphabetSet::a1());
        let bank1 = asm1.precompute(33);
        assert_eq!(asm1.multiply(66, &bank1).unwrap(), 66 * 33);
    }

    #[test]
    fn signed_multiplication_handles_all_sign_combinations() {
        let asm = AsmMultiplier::new(8, AlphabetSet::a2());
        for (w, x) in [(48i32, 65i32), (-48, 65), (48, -65), (-48, -65), (0, -5)] {
            assert_eq!(asm.multiply_signed(w, x).unwrap(), w as i64 * x as i64);
        }
    }

    #[test]
    fn error_message_names_the_quartet() {
        let asm = AsmMultiplier::new(12, AlphabetSet::a2());
        // magnitude with Q quartet = 5 (unsupported by {1,3}).
        let mag = 5 << 4;
        let err = asm.decode(mag).unwrap_err();
        assert_eq!(err.index, 1);
        assert!(err.to_string().contains("quartet 1"));
    }
}
