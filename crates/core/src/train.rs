//! Algorithm 2: the NN training and testing methodology.
//!
//! 1. Train unconstrained to (near) saturation.
//! 2. Quantize and measure the conventional fixed-point accuracy `J`;
//!    create a restore point.
//! 3. Retrain from the restore point with the Algorithm-1 projection
//!    applied after every weight update, at a lower learning rate,
//!    starting from the smallest alphabet set.
//! 4. Accept the first set whose retrained fixed-point accuracy `K`
//!    satisfies `K ≥ J·Q`; otherwise grow the alphabet set and repeat.

use man_nn::layers::ParamKind;
use man_nn::network::Network;
use man_nn::optim::Sgd;
use man_nn::train::{train, TrainConfig};
use man_par::Parallelism;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::alphabet::AlphabetSet;
use crate::constrain::{constrain_slice, WeightLattice};
use crate::fixed::{FixedNet, LayerAlphabets, QuantSpec};

/// Hyper-parameters of the methodology.
#[derive(Clone, Debug)]
pub struct MethodologyConfig {
    /// Weight/input word length (8 or 12).
    pub bits: u32,
    /// Epochs for the initial unconstrained training.
    pub initial_epochs: usize,
    /// Epochs for each constrained retraining attempt.
    pub retrain_epochs: usize,
    /// Initial learning rate.
    pub lr: f32,
    /// Retraining learning-rate factor (the paper retrains "with lower
    /// learning rate").
    pub retrain_lr_factor: f32,
    /// Momentum for both phases.
    pub momentum: f32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Per-tensor RMS gradient clip (needed by weight-sharing layers —
    /// see `man_nn::optim::Sgd::clip_rms`).
    pub clip_rms: Option<f32>,
    /// Quality constraint `Q ≤ 1`: accept when `K ≥ J·Q`.
    pub quality: f64,
    /// Candidate alphabet sets, smallest first (Algorithm 2 "start with
    /// 1").
    pub candidates: Vec<AlphabetSet>,
    /// RNG seed (shuffling and initialization).
    pub seed: u64,
    /// Worker threads for the accuracy evaluations the methodology runs
    /// after every phase (float, `J`, each `K`). Evaluation shards test
    /// rows across workers; the measured accuracies are identical to a
    /// sequential pass for every setting. SGD itself stays sequential —
    /// the update chain is order-dependent by definition.
    pub parallelism: Parallelism,
}

impl MethodologyConfig {
    /// Paper-shaped defaults for a given word length.
    pub fn paper(bits: u32) -> Self {
        Self {
            bits,
            initial_epochs: 14,
            retrain_epochs: 6,
            lr: 0.15,
            retrain_lr_factor: 0.25,
            momentum: 0.9,
            batch_size: 16,
            clip_rms: None,
            quality: 0.99,
            candidates: vec![AlphabetSet::a1(), AlphabetSet::a2(), AlphabetSet::a4()],
            seed: 0x5EED,
            parallelism: Parallelism::Sequential,
        }
    }
}

/// The projector that imposes Algorithm 1 on every weight update.
#[derive(Clone, Debug)]
pub struct ConstraintProjector {
    spec: QuantSpec,
    lattices: Vec<WeightLattice>,
}

impl ConstraintProjector {
    /// Builds per-layer lattices for a quantization spec and alphabet
    /// assignment.
    ///
    /// # Panics
    ///
    /// Panics if the assignment does not cover every parameterized layer.
    pub fn new(spec: &QuantSpec, alphabets: &LayerAlphabets) -> Self {
        assert_eq!(
            spec.layer_formats().len(),
            alphabets.len(),
            "alphabet assignment must cover every parameterized layer"
        );
        let lattices = alphabets
            .sets()
            .iter()
            .map(|set| WeightLattice::new(spec.bits(), set))
            .collect();
        Self {
            spec: spec.clone(),
            lattices,
        }
    }

    /// Projects every weight tensor of `net` onto its constrained lattice.
    pub fn project(&self, net: &mut Network) {
        let mut pi = 0usize;
        net.visit_params_mut(|_, kind, values, _| {
            if kind == ParamKind::Weights {
                constrain_slice(self.spec.layer_formats()[pi], &self.lattices[pi], values);
                pi += 1;
            }
        });
    }
}

/// One constrained-retraining attempt.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Attempt {
    /// Alphabet-set label (e.g. `"2 {1,3}"`).
    pub label: String,
    /// Fixed-point accuracy `K` after retraining.
    pub accuracy: f64,
    /// Accuracy loss vs. the conventional baseline, in percentage points
    /// (the paper's "Accuracy Loss (%)").
    pub loss_pp: f64,
    /// Whether `K ≥ J·Q` held.
    pub accepted: bool,
}

/// Output of the full methodology.
#[derive(Clone, Debug)]
pub struct MethodologyOutcome {
    /// Float accuracy after unconstrained training.
    pub float_accuracy: f64,
    /// Conventional fixed-point accuracy `J` (quantized, exact multiplier).
    pub conventional_accuracy: f64,
    /// The frozen quantization spec.
    pub spec: QuantSpec,
    /// The unconstrained trained network (the restore point).
    pub restore_point: Network,
    /// Every attempted alphabet set, in order.
    pub attempts: Vec<Attempt>,
    /// Retrained networks, parallel to `attempts`.
    pub retrained: Vec<Network>,
    /// Index into `attempts` of the accepted configuration, if any met the
    /// quality constraint.
    pub selected: Option<usize>,
}

/// Trains `net` unconstrained (Algorithm 2 step 1).
pub fn train_unconstrained(
    net: &mut Network,
    images: &[Vec<f32>],
    labels: &[usize],
    cfg: &MethodologyConfig,
) -> f64 {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut sgd = Sgd::new(cfg.lr, cfg.momentum);
    if let Some(clip) = cfg.clip_rms {
        sgd = sgd.with_clip_rms(clip);
    }
    let tc = TrainConfig {
        epochs: cfg.initial_epochs,
        batch_size: cfg.batch_size,
        ..TrainConfig::default()
    };
    train(net, &mut sgd, images, labels, &tc, &mut rng, |_| {});
    net.accuracy_par(images, labels, cfg.parallelism)
}

/// Retrains a copy of `restore` under a constraint projection (Algorithm 2
/// step 3) and returns the constrained network.
pub fn constrained_retrain(
    restore: &Network,
    spec: &QuantSpec,
    alphabets: &LayerAlphabets,
    images: &[Vec<f32>],
    labels: &[usize],
    cfg: &MethodologyConfig,
) -> Network {
    let projector = ConstraintProjector::new(spec, alphabets);
    let mut net = restore.clone();
    // Impose the constraint immediately, then let retraining recover.
    projector.project(&mut net);
    let mut rng = SmallRng::seed_from_u64(cfg.seed.wrapping_add(alphabets.len() as u64));
    let mut sgd = Sgd::new(cfg.lr * cfg.retrain_lr_factor, cfg.momentum);
    if let Some(clip) = cfg.clip_rms {
        sgd = sgd.with_clip_rms(clip);
    }
    let tc = TrainConfig {
        epochs: cfg.retrain_epochs,
        batch_size: cfg.batch_size,
        ..TrainConfig::default()
    };
    train(&mut net, &mut sgd, images, labels, &tc, &mut rng, |n| {
        projector.project(n)
    });
    // The last optimizer step is already projected, but be explicit: the
    // compiled network must sit exactly on the lattice.
    projector.project(&mut net);
    net
}

/// Runs the complete Algorithm 2 on a pre-built float network.
///
/// `train_data` drives both training phases; `test_data` measures `J` and
/// `K` (the paper's TrData / TsData).
///
/// The facade crate's `Pipeline` (`man-repro`) is the canonical staged
/// orchestration of this loop; it differs in one policy: when no
/// candidate meets the quality constraint its `select()` keeps the
/// best-`K` attempt, whereas this function reports `selected: None`
/// without choosing a model.
///
/// # Example
///
/// ```no_run
/// use man::train::{run_methodology, MethodologyConfig};
/// use man::zoo::Benchmark;
/// use man_datasets::GenOptions;
///
/// let ds = Benchmark::Faces.dataset(&GenOptions::default());
/// let cfg = MethodologyConfig::paper(8);
/// let outcome = run_methodology(
///     Benchmark::Faces.build_network(cfg.seed),
///     &ds.train_images, &ds.train_labels,
///     &ds.test_images, &ds.test_labels,
///     &cfg,
/// );
/// if let Some(i) = outcome.selected {
///     println!("smallest acceptable set: {}", outcome.attempts[i].label);
/// }
/// ```
///
/// # Panics
///
/// Panics if `cfg.candidates` is empty or `cfg.quality` is not in
/// `(0, 1]`.
pub fn run_methodology(
    mut net: Network,
    train_images: &[Vec<f32>],
    train_labels: &[usize],
    test_images: &[Vec<f32>],
    test_labels: &[usize],
    cfg: &MethodologyConfig,
) -> MethodologyOutcome {
    assert!(
        !cfg.candidates.is_empty(),
        "need at least one candidate set"
    );
    assert!(
        cfg.quality > 0.0 && cfg.quality <= 1.0,
        "quality constraint must be in (0, 1]"
    );
    // Step 1: unconstrained training to near saturation.
    train_unconstrained(&mut net, train_images, train_labels, cfg);
    let float_accuracy = net.accuracy_par(test_images, test_labels, cfg.parallelism);
    // Step 2: quantized conventional accuracy J + restore point.
    let spec = QuantSpec::fit(&net, cfg.bits);
    let layers = spec.layer_formats().len();
    let conventional = FixedNet::compile(
        &net,
        &spec,
        &LayerAlphabets::uniform(AlphabetSet::a8(), layers),
    )
    .expect("full alphabet always compiles");
    let j = conventional.accuracy_par(test_images, test_labels, cfg.parallelism);
    // Steps 3-4: constrained retraining with growing alphabet sets.
    let mut attempts = Vec::new();
    let mut retrained = Vec::new();
    let mut selected = None;
    for (idx, set) in cfg.candidates.iter().enumerate() {
        let alphabets = LayerAlphabets::uniform(set.clone(), layers);
        let candidate =
            constrained_retrain(&net, &spec, &alphabets, train_images, train_labels, cfg);
        let fixed = FixedNet::compile(&candidate, &spec, &alphabets)
            .expect("projected weights always compile");
        let k = fixed.accuracy_par(test_images, test_labels, cfg.parallelism);
        let accepted = k >= j * cfg.quality;
        attempts.push(Attempt {
            label: set.label(),
            accuracy: k,
            loss_pp: (j - k) * 100.0,
            accepted,
        });
        retrained.push(candidate);
        if accepted && selected.is_none() {
            selected = Some(idx);
            break; // Algorithm 2: "end the training".
        }
    }
    MethodologyOutcome {
        float_accuracy,
        conventional_accuracy: j,
        spec,
        restore_point: net,
        attempts,
        retrained,
        selected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use man_nn::layers::{Activation, ActivationLayer, Dense, Layer};
    use rand::Rng;

    fn toy_problem(n: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let x: Vec<f32> = (0..8).map(|_| rng.gen_range(0.0..1.0)).collect();
            let s: f32 = x[..4].iter().sum::<f32>() - x[4..].iter().sum::<f32>();
            xs.push(x);
            ys.push((s > 0.0) as usize);
        }
        (xs, ys)
    }

    fn toy_net(seed: u64) -> Network {
        let mut rng = SmallRng::seed_from_u64(seed);
        Network::new(vec![
            Layer::Dense(Dense::new(8, 12, &mut rng)),
            Layer::Activation(ActivationLayer::new(Activation::Sigmoid)),
            Layer::Dense(Dense::new(12, 2, &mut rng)),
        ])
    }

    fn quick_cfg() -> MethodologyConfig {
        MethodologyConfig {
            initial_epochs: 20,
            retrain_epochs: 8,
            ..MethodologyConfig::paper(8)
        }
    }

    #[test]
    fn projector_keeps_weights_on_lattice() {
        let net = toy_net(1);
        let spec = QuantSpec::fit(&net, 8);
        let alphabets = LayerAlphabets::uniform(AlphabetSet::a1(), 2);
        let projector = ConstraintProjector::new(&spec, &alphabets);
        let mut constrained = net.clone();
        projector.project(&mut constrained);
        // Compiling under {1} must now succeed.
        assert!(FixedNet::compile(&constrained, &spec, &alphabets).is_ok());
        // Projection is idempotent.
        let mut twice = constrained.clone();
        projector.project(&mut twice);
        let collect = |n: &mut Network| {
            let mut v = Vec::new();
            n.visit_params_mut(|_, _, values, _| v.extend_from_slice(values));
            v
        };
        assert_eq!(collect(&mut constrained), collect(&mut twice));
    }

    #[test]
    fn methodology_runs_end_to_end() {
        let (xs, ys) = toy_problem(300, 5);
        let outcome = run_methodology(toy_net(2), &xs, &ys, &xs, &ys, &quick_cfg());
        assert!(
            outcome.conventional_accuracy > 0.8,
            "baseline too weak: {}",
            outcome.conventional_accuracy
        );
        assert!(!outcome.attempts.is_empty());
        // The toy task is easy: some candidate should meet Q = 0.99.
        let best = outcome
            .attempts
            .iter()
            .map(|a| a.accuracy)
            .fold(0.0f64, f64::max);
        assert!(
            best >= outcome.conventional_accuracy * 0.95,
            "retraining should roughly recover the baseline (J={}, best K={best})",
            outcome.conventional_accuracy
        );
    }

    #[test]
    fn retraining_recovers_projection_loss() {
        let (xs, ys) = toy_problem(300, 7);
        let mut net = toy_net(3);
        let cfg = quick_cfg();
        train_unconstrained(&mut net, &xs, &ys, &cfg);
        let spec = QuantSpec::fit(&net, 8);
        let alphabets = LayerAlphabets::uniform(AlphabetSet::a1(), 2);
        // Projection only (no retraining).
        let projector = ConstraintProjector::new(&spec, &alphabets);
        let mut projected = net.clone();
        projector.project(&mut projected);
        let acc_projected = FixedNet::compile(&projected, &spec, &alphabets)
            .unwrap()
            .accuracy(&xs, &ys);
        // Projection + retraining.
        let retrained = constrained_retrain(&net, &spec, &alphabets, &xs, &ys, &cfg);
        let acc_retrained = FixedNet::compile(&retrained, &spec, &alphabets)
            .unwrap()
            .accuracy(&xs, &ys);
        assert!(
            acc_retrained >= acc_projected - 0.02,
            "retraining must not be (meaningfully) worse: {acc_retrained} vs {acc_projected}"
        );
    }
}
