//! The fixed-point inference engine: a bit-accurate software model of the
//! paper's processing engine.
//!
//! A trained float [`Network`] is *compiled* into a [`FixedNet`]: weights
//! quantized into per-layer `QFormat`s (sign-magnitude), biases widened to
//! the accumulator fraction, every multiply decoded into an ASM
//! select/shift plan, and every activation replaced by the PLAN sigmoid
//! unit (the same bit-exact reference the gate-level model uses).
//!
//! Activations and input pixels travel as unsigned `Q0.(bits-1)` words —
//! sigmoid outputs live in `[0, 1)`, so the sign lane of the datapath is
//! only exercised by weights.

use man_fixed::{quantize::fit_format, QFormat};
use man_hw::components::activation::{activation_unit_fixed, PlanParams};
use man_nn::layers::Layer;
use man_nn::network::Network;
use man_par::{default_chunk_size, run_chunked, Parallelism};
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::alphabet::AlphabetSet;
use crate::asm::AsmMultiplier;
use crate::kernel::{self, BankArena, KernelKind, MacRun, MacSoa};

/// Per-layer alphabet assignment (uniform or mixed, as in the paper's
/// Section VI-E where early layers use `{1}` and late layers `{1,3}` /
/// `{1,3,5,7}`).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerAlphabets {
    sets: Vec<AlphabetSet>,
}

impl LayerAlphabets {
    /// The same alphabet set for every parameterized layer.
    pub fn uniform(set: AlphabetSet, layers: usize) -> Self {
        Self {
            sets: vec![set; layers],
        }
    }

    /// An explicit per-layer assignment.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is empty.
    pub fn mixed(sets: Vec<AlphabetSet>) -> Self {
        assert!(!sets.is_empty(), "need at least one layer");
        Self { sets }
    }

    /// The set for parameterized layer `i`, or `None` past the last
    /// configured layer.
    pub fn get(&self, i: usize) -> Option<&AlphabetSet> {
        self.sets.get(i)
    }

    /// Number of layers configured.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// `true` when no layer is configured. The constructors reject an
    /// empty assignment, but a value deserialized from an artifact can
    /// still be empty — callers validating untrusted input should check.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// The per-layer sets.
    pub fn sets(&self) -> &[AlphabetSet] {
        &self.sets
    }

    /// A compact label, e.g. `"1{1}"` or `"mixed[1,1,2,4]"`.
    pub fn label(&self) -> String {
        if self.sets.windows(2).all(|w| w[0] == w[1]) {
            self.sets[0].label()
        } else {
            format!(
                "mixed[{}]",
                self.sets
                    .iter()
                    .map(|s| s.len().to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            )
        }
    }
}

/// Quantization plan: word length plus one weight format per parameterized
/// layer, fitted once on the *unconstrained* trained network and then
/// frozen for retraining and compilation.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuantSpec {
    bits: u32,
    layer_formats: Vec<QFormat>,
}

impl QuantSpec {
    /// Fits per-layer formats to the weight ranges of `net`.
    pub fn fit(net: &Network, bits: u32) -> Self {
        let layer_formats = net
            .layers()
            .iter()
            .filter_map(|l| weights_of(l).map(|w| fit_format(bits, w)))
            .collect();
        Self {
            bits,
            layer_formats,
        }
    }

    /// Word length.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Per-parameterized-layer weight formats.
    pub fn layer_formats(&self) -> &[QFormat] {
        &self.layer_formats
    }

    /// Activation fraction: activations are unsigned `Q0.(bits-1)`.
    pub fn act_frac(&self) -> u32 {
        self.bits - 1
    }
}

/// The flat input index of every (output position, fan-in slot) of a
/// valid convolution, positions row-major and slots in the scalar
/// fan-in order `(c, ky, kx)` — shared by every output channel.
fn conv_gather(in_ch: usize, k: usize, in_h: usize, in_w: usize) -> Vec<u32> {
    let (oh, ow) = (in_h - k + 1, in_w - k + 1);
    let mut gather = Vec::with_capacity(oh * ow * in_ch * k * k);
    for oy in 0..oh {
        for ox in 0..ow {
            for c in 0..in_ch {
                for ky in 0..k {
                    for kx in 0..k {
                        gather.push((c * in_h * in_w + (oy + ky) * in_w + (ox + kx)) as u32);
                    }
                }
            }
        }
    }
    gather
}

fn weights_of(layer: &Layer) -> Option<&[f32]> {
    match layer {
        Layer::Dense(d) => Some(d.weights()),
        Layer::Conv2d(c) => Some(c.weights()),
        Layer::ScaledAvgPool(p) => Some(p.weights()),
        Layer::Activation(_) => None,
    }
}

/// Why a float network failed to compile.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The architecture is not (parameterized layer → sigmoid)* with an
    /// optional trailing logits layer.
    UnsupportedArchitecture(String),
    /// A weight's quartets are not representable under the assigned
    /// alphabet set (the network was not constrained before compiling).
    UnconstrainedWeight {
        /// Parameterized layer index.
        layer: usize,
        /// The weight magnitude that failed to decode.
        magnitude: u32,
    },
    /// The alphabet assignment does not cover every parameterized layer.
    LayerCountMismatch {
        /// Parameterized layers in the network.
        expected: usize,
        /// Sets provided.
        got: usize,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnsupportedArchitecture(msg) => {
                write!(f, "unsupported architecture: {msg}")
            }
            CompileError::UnconstrainedWeight { layer, magnitude } => write!(
                f,
                "layer {layer} holds magnitude {magnitude} not representable under its alphabet set (constrain the network first)"
            ),
            CompileError::LayerCountMismatch { expected, got } => write!(
                f,
                "alphabet assignment covers {got} layers but the network has {expected}"
            ),
        }
    }
}

impl std::error::Error for CompileError {}

/// What follows a MAC layer.
#[derive(Clone, Debug, PartialEq)]
enum OutputStage {
    /// PLAN sigmoid into the next layer's unsigned activation word.
    Sigmoid,
    /// Saturating requantization to a signed `bits`-wide word — used by
    /// convolution layers feeding a pooling layer directly (the LeNet
    /// structure squashes only after pooling).
    Requant,
    /// Raw accumulator values (the classifier head).
    Logits,
}

/// A signed activation word in sign-magnitude form (as the datapath sees
/// it). Sigmoid outputs and input pixels always have `neg == false`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
struct SignedAct {
    mag: u32,
    neg: bool,
}

#[derive(Clone, Debug)]
struct MacParams {
    asm: AsmMultiplier,
    w_neg: Vec<bool>,
    w_mag: Vec<u32>,
    /// Pre-decoded select/shift plans, one per weight.
    plans: Vec<crate::asm::AsmPlan>,
    /// The same plans repacked as structure-of-arrays term bytes — what
    /// the vectorized MAC kernels consume (see `crate::kernel`).
    soa: MacSoa,
    /// Biases at the accumulator fraction.
    bias: Vec<i64>,
    /// Weight format (fraction defines the accumulator fraction).
    w_format: QFormat,
    output: OutputStage,
}

#[derive(Clone, Debug)]
enum FixedLayer {
    Dense {
        in_dim: usize,
        out_dim: usize,
        mac: MacParams,
    },
    Conv {
        in_ch: usize,
        out_ch: usize,
        k: usize,
        in_h: usize,
        in_w: usize,
        /// Flat input index per (output position, fan-in slot), in the
        /// scalar fan-in order `(c, ky, kx)` — the static half of the
        /// vectorized path's gather lists, depending only on layer
        /// geometry, so it is built once at compile time instead of
        /// per inference.
        gather: Vec<u32>,
        mac: MacParams,
    },
    /// LeNet trainable pooling: 2×2 average, one multiplicative weight and
    /// bias per channel (the weight goes through the ASM like any other).
    Pool {
        channels: usize,
        in_h: usize,
        in_w: usize,
        mac: MacParams,
    },
}

impl FixedLayer {
    fn mac(&self) -> &MacParams {
        match self {
            FixedLayer::Dense { mac, .. }
            | FixedLayer::Conv { mac, .. }
            | FixedLayer::Pool { mac, .. } => mac,
        }
    }
}

/// A compiled fixed-point network.
#[derive(Clone, Debug)]
pub struct FixedNet {
    bits: u32,
    act_frac: u32,
    layers: Vec<FixedLayer>,
}

/// Widest word length for which [`FixedNet::session_cache_warm`] builds a
/// product plane: the plane holds `2^(bits-1) × 2^(bits-1)` `u32` slots,
/// so 12 bits costs 16 MiB and anything wider grows unreasonably.
pub const PRODUCT_PLANE_MAX_BITS: u32 = 12;

/// Lanes per batch-major block (DESIGN.md §10): the batch advances
/// layer-by-layer in blocks of this many images. 16 lanes feed four
/// 4-lane SWAR/AVX2 groups per term byte while keeping the transposed
/// bank block of a wide layer comfortably inside L2.
pub const LANE_BLOCK: usize = 16;

/// A lazily-filled memo of the ASM datapath's products, indexed by
/// `(weight magnitude, input magnitude)`.
///
/// The ASM's defining property — proven against the gate-level netlist in
/// the workspace tests — is that every *supported* weight multiplies
/// exactly: `apply(plan(w), bank(x)) == w·x`. The plane exploits that
/// determinism one step past the pre-computer bank: once any layer has
/// pushed a `(w_mag, x_mag)` pair through its select/shift/add datapath,
/// the product is remembered for every later multiplication of the same
/// pair, across layers, requests and batches. This is the software
/// analogue of the paper's CSHM sharing taken to steady state, and it is
/// what makes a long-lived serving session faster than per-request
/// sessions. Entries are filled *by* the simulated datapath, so results
/// stay bit-identical to the unmemoized path.
///
/// The table is **shared by clone**: cloning a plane (or a
/// [`SessionCache`] carrying one) yields a handle onto the same slots,
/// so a parallel session's per-worker caches amortize one plane — at
/// the 12-bit maximum the plane is 16 MiB, which must not be multiplied
/// by the worker count — and every worker profits from every worker's
/// fills. Slots are relaxed atomics: two threads can only ever race to
/// write the *same* pure value (`w·x`), so the worst case is a redundant
/// computation, never a wrong bit; a relaxed `u32` load costs the same
/// as a plain one on mainstream hardware.
#[derive(Clone, Debug)]
struct ProductPlane {
    /// `2^(bits-1)`: magnitudes are strictly below this.
    side: usize,
    /// `side × side` products; `u32::MAX` marks an unfilled slot (the
    /// largest real product, `(2^15-1)^2`, is below it for every
    /// supported word length).
    table: std::sync::Arc<[std::sync::atomic::AtomicU32]>,
}

impl ProductPlane {
    const EMPTY: u32 = u32::MAX;

    fn new(bits: u32) -> Self {
        let side = 1usize << (bits - 1);
        Self {
            side,
            table: (0..side * side)
                .map(|_| std::sync::atomic::AtomicU32::new(Self::EMPTY))
                .collect(),
        }
    }

    #[inline]
    fn get(&self, w_mag: u32, x_mag: u32) -> Option<u64> {
        let slot = &self.table[w_mag as usize * self.side + x_mag as usize];
        // ORDERING: value-based benign race. Every writer stores the same
        // pure function of the slot's index (see `store`), so a stale or
        // torn-free Relaxed read returns either EMPTY (recompute) or the
        // one correct product — no memory is published through this cell.
        let cached = slot.load(std::sync::atomic::Ordering::Relaxed);
        (cached != Self::EMPTY).then_some(cached as u64)
    }

    #[inline]
    fn store(&self, w_mag: u32, x_mag: u32, product: u64) {
        let slot = &self.table[w_mag as usize * self.side + x_mag as usize];
        // ORDERING: monotonic publish of a pure function value; racing
        // writers store identical bits, and readers tolerate staleness
        // (they just recompute). Relaxed is sufficient — see `get`.
        slot.store(product as u32, std::sync::atomic::Ordering::Relaxed);
    }

    /// Bytes of the (fully allocated, shared-by-clone) product table.
    fn bytes(&self) -> usize {
        self.table.len() * std::mem::size_of::<u32>()
    }
}

/// Reusable per-layer pre-computer bank caches.
///
/// A bank depends only on the input magnitude and the layer's alphabet
/// set, so it can be shared across every inference of a session — the
/// mechanism behind [`FixedNet::infer_raw_with_cache`] and the batched
/// `InferenceSession` in the facade crate. Banks live in one contiguous
/// structure-of-arrays slab per layer (a `BankArena`: one padded row
/// per magnitude, addressed by row offset), so the scalar hot path is
/// an array index — and the vectorized MAC kernels stream rows out of
/// the same slab without pointer chasing.
///
/// A cache built by [`FixedNet::session_cache_warm`] additionally carries
/// a `ProductPlane` that memoizes whole products across inferences —
/// the right choice for long-lived serving sessions, and bit-identical
/// to the plain path. **Cloning** a warm cache shares the plane (its
/// slots are relaxed atomics over pure values) while deep-copying the
/// bank arenas — which is how a parallel session gives every worker
/// slot a private bank cache without multiplying the plane's memory or
/// its steady-state warm-up cost by the worker count.
#[derive(Clone, Debug)]
pub struct SessionCache {
    /// Word length plus each layer's alphabet members: a bank's value
    /// depends on exactly these, so two networks sharing this
    /// fingerprint may share a cache and any other pairing is rejected.
    bits: u32,
    layer_alphabets: Vec<Vec<u8>>,
    layers: Vec<BankArena>,
    plane: Option<ProductPlane>,
    /// Reusable batch-major transpose scratch (DESIGN.md §10): the
    /// lane-transposed bank block and activation sign masks rebuilt per
    /// layer per lane block. Empty until the first batch-major dispatch;
    /// capacity then sticks at the widest layer's block so steady-state
    /// serving never reallocates. Per-clone (each worker slot transposes
    /// its own lanes), counted by [`CacheFootprint::transpose_bytes`].
    bank_t: Vec<u64>,
    sign_t: Vec<i64>,
}

/// A [`SessionCache`]'s memory footprint — what the facade session and
/// serve `stats` report so operators can see where cache bytes went.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheFootprint {
    /// Heap bytes of each layer's bank arena (rows + magnitude index).
    pub layer_bank_bytes: Vec<usize>,
    /// Bytes of the shared product plane (0 without one). The plane is
    /// shared across a session's worker-slot clones, so when summing
    /// slot footprints it must be counted once.
    pub plane_bytes: usize,
    /// Heap bytes of the batch-major transpose scratch (lane-transposed
    /// bank block + sign masks; 0 until the first batch-major dispatch).
    /// Per worker slot, like the bank arenas.
    pub transpose_bytes: usize,
}

impl CacheFootprint {
    /// Total bytes: every layer's banks, the plane, and the batch-major
    /// transpose scratch.
    pub fn total_bytes(&self) -> usize {
        self.layer_bank_bytes.iter().sum::<usize>() + self.plane_bytes + self.transpose_bytes
    }
}

impl SessionCache {
    /// One signed-magnitude product through the cache: the plane when the
    /// cache is warm (a plane miss fills from the per-layer bank arena,
    /// so the bank for an input magnitude is still computed only once),
    /// the bank alone otherwise.
    #[inline]
    fn product(&mut self, layer: usize, mac: &MacParams, wi: usize, x_mag: u32) -> u64 {
        let Self { plane, layers, .. } = self;
        match plane {
            Some(plane) => {
                if let Some(p) = plane.get(mac.w_mag[wi], x_mag) {
                    return p;
                }
                let arena = &mut layers[layer];
                let row = arena.row_or_fill(&mac.asm, x_mag);
                let p = mac.asm.apply(&mac.plans[wi], arena.bank(row));
                plane.store(mac.w_mag[wi], x_mag, p);
                p
            }
            None => {
                let arena = &mut layers[layer];
                let row = arena.row_or_fill(&mac.asm, x_mag);
                mac.asm.apply(&mac.plans[wi], arena.bank(row))
            }
        }
    }

    /// Ensures a pre-computer bank row exists for every activation in
    /// `xs` — the write phase that lets [`SessionCache::product_ro`] and
    /// the vector kernels run the MAC loop itself through a shared
    /// reference from many worker threads. The arena grows by *exactly*
    /// the missing rows (`BankArena::prefill` counts first, then
    /// `reserve_exact`s), so SoA repacking never silently doubles the
    /// peak bank memory — and never thrashes the allocator with
    /// grow-then-trim cycles as new magnitudes trickle in.
    fn prefill_layer(&mut self, layer: usize, mac: &MacParams, xs: &[SignedAct]) {
        self.layers[layer].prefill(&mac.asm, xs.iter().map(|x| x.mag));
    }

    /// Read-only twin of [`SessionCache::product`]: a plane hit when the
    /// cache is warm, otherwise the (prefilled) bank through the ASM
    /// datapath. Banks and plane entries are pure functions of
    /// `(alphabet, w_mag, x_mag)`, so this returns bit-identical products
    /// to the mutable path — it just cannot memoize new plane entries.
    ///
    /// # Panics
    ///
    /// Panics if the bank for `x_mag` was not prefilled (an internal
    /// invariant of the neuron-sharded MAC loop).
    #[inline]
    fn product_ro(&self, layer: usize, mac: &MacParams, wi: usize, x_mag: u32) -> u64 {
        if let Some(plane) = &self.plane {
            if let Some(p) = plane.get(mac.w_mag[wi], x_mag) {
                return p;
            }
        }
        let arena = &self.layers[layer];
        let row = arena
            .row(x_mag)
            .expect("bank prefilled for every input magnitude before sharding");
        mac.asm.apply(&mac.plans[wi], arena.bank(row))
    }

    /// `true` when this cache memoizes whole products.
    pub fn has_product_plane(&self) -> bool {
        self.plane.is_some()
    }

    /// The cache's current memory footprint: per-layer bank-arena bytes
    /// plus the product plane's bytes (when warm).
    pub fn footprint(&self) -> CacheFootprint {
        CacheFootprint {
            layer_bank_bytes: self.layers.iter().map(BankArena::bytes).collect(),
            plane_bytes: self
                .plane
                .as_ref()
                .map(ProductPlane::bytes)
                .unwrap_or_default(),
            transpose_bytes: self.bank_t.capacity() * std::mem::size_of::<u64>()
                + self.sign_t.capacity() * std::mem::size_of::<i64>(),
        }
    }

    /// Releases growth slack in every layer's bank arena — cheap (a
    /// no-op per layer unless that arena actually over-allocated), and
    /// called automatically after every prefill — and frees the
    /// batch-major transpose scratch entirely (the next batch-major
    /// dispatch rebuilds it at exactly the live layer's size).
    pub fn shrink_to_fit(&mut self) {
        for arena in &mut self.layers {
            arena.shrink_to_fit();
        }
        self.bank_t = Vec::new();
        self.sign_t = Vec::new();
    }
}

impl FixedNet {
    /// Compiles a float network under a quantization spec and per-layer
    /// alphabet assignment.
    ///
    /// Weights must already lie on the constrained lattice (apply
    /// [`crate::constrain::constrain_slice`] or use the full alphabet set
    /// for a conventional baseline).
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] on architecture or representability
    /// violations.
    pub fn compile(
        net: &Network,
        spec: &QuantSpec,
        alphabets: &LayerAlphabets,
    ) -> Result<Self, CompileError> {
        let param_layers = net
            .layers()
            .iter()
            .filter(|l| weights_of(l).is_some())
            .count();
        if alphabets.len() != param_layers {
            return Err(CompileError::LayerCountMismatch {
                expected: param_layers,
                got: alphabets.len(),
            });
        }
        let bits = spec.bits();
        let mut layers = Vec::new();
        let mut pi = 0usize; // parameterized-layer index
        let all = net.layers();
        let mut i = 0usize;
        while i < all.len() {
            let layer = &all[i];
            if weights_of(layer).is_none() {
                return Err(CompileError::UnsupportedArchitecture(format!(
                    "layer {i} is a bare activation; activations must follow a parameterized layer"
                )));
            }
            // Determine the output stage: a following sigmoid, or logits if
            // this is the last layer.
            let output = match all.get(i + 1) {
                Some(Layer::Activation(a))
                    if a.activation == man_nn::layers::Activation::Sigmoid =>
                {
                    i += 1;
                    OutputStage::Sigmoid
                }
                Some(Layer::Activation(_)) => {
                    return Err(CompileError::UnsupportedArchitecture(
                        "the fixed engine implements sigmoid activations only".into(),
                    ))
                }
                Some(Layer::ScaledAvgPool(_)) if matches!(layer, Layer::Conv2d(_)) => {
                    // LeNet structure: the convolution's accumulator is
                    // requantized and pooled before the squash.
                    OutputStage::Requant
                }
                Some(_) => OutputStage::Logits,
                None => OutputStage::Logits,
            };
            if output == OutputStage::Logits && i + 1 != all.len() {
                return Err(CompileError::UnsupportedArchitecture(format!(
                    "layer {i} feeds the next layer without an activation"
                )));
            }
            let set = alphabets
                .get(pi)
                .expect("length verified against param_layers above")
                .clone();
            let format = spec.layer_formats()[pi];
            let (weights, bias_f) = match layer {
                Layer::Dense(d) => (d.weights(), d.bias()),
                Layer::Conv2d(c) => (c.weights(), c.bias()),
                Layer::ScaledAvgPool(p) => (p.weights(), p.bias()),
                Layer::Activation(_) => unreachable!(),
            };
            let mac = Self::compile_mac(weights, bias_f, bits, format, set, spec, pi, output)?;
            layers.push(match layer {
                Layer::Dense(d) => FixedLayer::Dense {
                    in_dim: d.in_dim,
                    out_dim: d.out_dim,
                    mac,
                },
                Layer::Conv2d(c) => FixedLayer::Conv {
                    in_ch: c.in_channels,
                    out_ch: c.out_channels,
                    k: c.kernel,
                    in_h: c.in_h,
                    in_w: c.in_w,
                    gather: conv_gather(c.in_channels, c.kernel, c.in_h, c.in_w),
                    mac,
                },
                Layer::ScaledAvgPool(p) => FixedLayer::Pool {
                    channels: p.channels,
                    in_h: p.in_h,
                    in_w: p.in_w,
                    mac,
                },
                Layer::Activation(_) => unreachable!(),
            });
            pi += 1;
            i += 1;
        }
        Ok(Self {
            bits,
            act_frac: spec.act_frac(),
            layers,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn compile_mac(
        weights: &[f32],
        bias_f: &[f32],
        bits: u32,
        format: QFormat,
        set: AlphabetSet,
        spec: &QuantSpec,
        layer_index: usize,
        output: OutputStage,
    ) -> Result<MacParams, CompileError> {
        let asm = AsmMultiplier::new(bits, set);
        let mut w_neg = Vec::with_capacity(weights.len());
        let mut w_mag = Vec::with_capacity(weights.len());
        let mut plans = Vec::with_capacity(weights.len());
        for &w in weights {
            let q = format.quantize(w as f64);
            let (neg, mag) = man_fixed::bits::sign_magnitude(q.raw(), bits);
            let plan = asm
                .decode(mag)
                .map_err(|e| CompileError::UnconstrainedWeight {
                    layer: layer_index,
                    magnitude: e.magnitude,
                })?;
            w_neg.push(neg);
            w_mag.push(mag);
            plans.push(plan);
        }
        let acc_frac = spec.act_frac() + format.frac();
        let bias = bias_f
            .iter()
            .map(|&b| (b as f64 * (1u64 << acc_frac) as f64).round() as i64)
            .collect();
        let soa = MacSoa::build(&asm, &plans);
        Ok(MacParams {
            asm,
            w_neg,
            w_mag,
            plans,
            soa,
            bias,
            w_format: format,
            output,
        })
    }

    /// Word length.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of parameterized layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Flat input length the network expects (pixels per image).
    pub fn input_len(&self) -> usize {
        match &self.layers[0] {
            FixedLayer::Dense { in_dim, .. } => *in_dim,
            FixedLayer::Conv {
                in_ch, in_h, in_w, ..
            } => in_ch * in_h * in_w,
            FixedLayer::Pool {
                channels,
                in_h,
                in_w,
                ..
            } => channels * in_h * in_w,
        }
    }

    /// Multiply-accumulate operations per inference, per layer — the cycle
    /// model's input (4 MACs per cycle on the 4-lane unit).
    pub fn macs_per_layer(&self) -> Vec<u64> {
        self.layers
            .iter()
            .map(|l| match l {
                FixedLayer::Dense {
                    in_dim, out_dim, ..
                } => (in_dim * out_dim) as u64,
                FixedLayer::Conv {
                    in_ch,
                    out_ch,
                    k,
                    in_h,
                    in_w,
                    ..
                } => {
                    let oh = in_h - k + 1;
                    let ow = in_w - k + 1;
                    (in_ch * out_ch * k * k * oh * ow) as u64
                }
                FixedLayer::Pool {
                    channels,
                    in_h,
                    in_w,
                    ..
                } => ((channels * in_h * in_w) / 4) as u64,
            })
            .collect()
    }

    /// Multiply-accumulate operations one whole inference costs (the
    /// per-layer [`FixedNet::macs_per_layer`] summed) — recorded at
    /// compile time and fed to the `man-par` Auto tuner as the work
    /// measure per batch row.
    pub fn macs_per_inference(&self) -> u64 {
        self.macs_per_layer().iter().sum()
    }

    /// Heap bytes of the per-layer structure-of-arrays kernel plans
    /// (the repacked select/shift term buffers the vectorized MAC
    /// kernels consume). Shared by every session over this engine —
    /// part of the memory story `stats` surfaces next to the per-cache
    /// bank footprint.
    pub fn kernel_plan_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.mac().soa.bytes()).sum()
    }

    /// Neuron outputs per inference, per layer (activation-unit uses).
    pub fn neurons_per_layer(&self) -> Vec<u64> {
        self.layers
            .iter()
            .map(|l| match l {
                FixedLayer::Dense { out_dim, .. } => *out_dim as u64,
                FixedLayer::Conv {
                    out_ch,
                    k,
                    in_h,
                    in_w,
                    ..
                } => (out_ch * (in_h - k + 1) * (in_w - k + 1)) as u64,
                FixedLayer::Pool {
                    channels,
                    in_h,
                    in_w,
                    ..
                } => ((channels * in_h * in_w) / 4) as u64,
            })
            .collect()
    }

    fn quantize_input(&self, image: &[f32]) -> Vec<u32> {
        let scale = (1u64 << self.act_frac) as f64;
        let max = (1u64 << self.act_frac) - 1;
        image
            .iter()
            .map(|&p| (((p as f64) * scale).round_ties_even() as i64).clamp(0, max as i64) as u32)
            .collect()
    }

    fn plan_params(&self) -> PlanParams {
        PlanParams {
            in_bits: self.bits + 3,
            in_frac: self.bits - 1,
            out_bits: self.bits - 1,
        }
    }

    /// Runs one MAC layer. `fan_ins(o)` yields output `o`'s
    /// `(weight index, activation)` pairs as an iterator — no per-output
    /// allocation, and the whole MAC loop monomorphizes per layer shape.
    ///
    /// With `workers > 1`, no tracing, and a `prefill` slice of the
    /// layer's input activations, the outputs are sharded across the
    /// worker pool: banks are prefilled once (the only writes), then each
    /// worker computes a contiguous range of output neurons through the
    /// read-only cache. Every neuron's shift-add chain runs in exactly
    /// the fan-in order of the sequential loop and the merge only
    /// reassembles whole neurons, so accumulation within a neuron is
    /// never reordered — the results are bit-identical by construction.
    #[allow(clippy::too_many_arguments)]
    fn run_mac_layer<I: Iterator<Item = (usize, SignedAct)>>(
        &self,
        li: usize,
        mac: &MacParams,
        acc_init: impl Fn(usize) -> i64 + Sync,
        fan_ins: impl Fn(usize) -> I + Sync,
        outputs: usize,
        cache: &mut SessionCache,
        trace: &mut Option<&mut LayerTrace>,
        workers: usize,
        prefill: Option<&[SignedAct]>,
    ) -> Vec<i64> {
        // Sharding pays only when each worker gets a few neurons; tiny
        // layers (and traced runs, whose operand stream is ordered) stay
        // on the sequential reference path. A warm cache also stays
        // sequential: the shard loop is read-only and cannot memoize new
        // product-plane entries, so sharding a plane-backed session would
        // starve the steady-state memo that makes warm serving fast —
        // the mutable path both fills and profits from the plane.
        let shardable =
            workers > 1 && outputs >= workers * 4 && trace.is_none() && !cache.has_product_plane();
        if let (true, Some(xs)) = (shardable, prefill) {
            cache.prefill_layer(li, mac, xs);
            let shared: &SessionCache = cache;
            let mut slots = vec![(); workers];
            return run_chunked(
                &mut slots,
                outputs,
                default_chunk_size(outputs, workers),
                |(), range| {
                    range
                        .map(|o| {
                            let mut acc = acc_init(o);
                            for (wi, x) in fan_ins(o) {
                                let mag = shared.product_ro(li, mac, wi, x.mag);
                                let neg = mac.w_neg[wi] ^ x.neg;
                                acc += man_fixed::bits::apply_sign(mag, neg);
                            }
                            acc
                        })
                        .collect()
                },
            );
        }
        let mut accs = Vec::with_capacity(outputs);
        for o in 0..outputs {
            let mut acc = acc_init(o);
            for (wi, x) in fan_ins(o) {
                let mag = cache.product(li, mac, wi, x.mag);
                let neg = mac.w_neg[wi] ^ x.neg;
                let p = man_fixed::bits::apply_sign(mag, neg);
                if let Some(t) = trace.as_deref_mut() {
                    t.record(mac.w_mag[wi], mac.w_neg[wi], x.mag, x.neg, p, acc);
                }
                acc += p;
            }
            accs.push(acc);
        }
        accs
    }

    /// Runs one MAC layer through a vectorized kernel (see
    /// `crate::kernel`): banks are prefilled into the layer's contiguous
    /// arena (the only writes), per-output fan-in runs are described by
    /// arena row offsets, and the kernel evaluates 4 weights per step —
    /// with the `i64` accumulation still in exact sequential fan-in
    /// order, so the results are bit-identical to [`Self::run_mac_layer`]
    /// by construction. `fan_of(o)` yields output `o`'s
    /// `(first weight, fan-in gather range)`; the gather lists live in
    /// `rows`/`x_neg` (for dense layers one shared list, for
    /// convolutions one list per output position).
    #[allow(clippy::too_many_arguments)]
    fn run_mac_layer_soa(
        &self,
        mac: &MacParams,
        outputs: usize,
        rows: &[u32],
        x_neg: &[bool],
        acc_init: impl Fn(usize) -> i64 + Sync,
        fan_of: impl Fn(usize) -> (usize, std::ops::Range<usize>) + Sync,
        slab: &[u64],
        workers: usize,
        kind: KernelKind,
    ) -> Vec<i64> {
        let k = kernel::kernel_for(kind);
        let run_output = |o: usize| {
            let (w0, gather) = fan_of(o);
            k.accumulate(MacRun {
                soa: &mac.soa,
                slab,
                w_neg: &mac.w_neg,
                w0,
                rows: &rows[gather.clone()],
                x_neg: &x_neg[gather],
                acc: acc_init(o),
            })
        };
        // Same shard threshold as the scalar path; the kernel loop never
        // touches the product plane, so plane-backed caches may shard
        // here too (the prefilled arena is all it reads).
        if workers > 1 && outputs >= workers * 4 {
            let mut slots = vec![(); workers];
            return run_chunked(
                &mut slots,
                outputs,
                default_chunk_size(outputs, workers),
                |(), range| range.map(run_output).collect(),
            );
        }
        (0..outputs).map(run_output).collect()
    }

    fn forward_layers(
        &self,
        image: &[f32],
        traces: Option<&mut Vec<LayerTrace>>,
        cache: &mut SessionCache,
    ) -> Vec<i64> {
        self.forward_layers_sharded(image, traces, cache, 1, kernel::default_kernel())
    }

    /// [`FixedNet::forward_layers`] with the MAC loops of large layers
    /// sharded over `workers` threads (neuron-level parallelism) and the
    /// per-layer kernel dispatched per `kind` (DESIGN.md §10). Pool
    /// layers multiply *derived* 2×2-average activations whose magnitudes
    /// are not in the layer input, so they keep the sequential scalar
    /// path — they are a vanishing fraction of the MACs anyway; traced
    /// runs force the scalar path too (the operand stream is ordered).
    fn forward_layers_sharded(
        &self,
        image: &[f32],
        mut traces: Option<&mut Vec<LayerTrace>>,
        cache: &mut SessionCache,
        workers: usize,
        kind: KernelKind,
    ) -> Vec<i64> {
        assert_eq!(
            image.len(),
            self.input_len(),
            "input has {} values but the network expects {}",
            image.len(),
            self.input_len()
        );
        let plan = self.plan_params();
        let mut x: Vec<SignedAct> = self
            .quantize_input(image)
            .into_iter()
            .map(|mag| SignedAct { mag, neg: false })
            .collect();
        let mut logits = Vec::new();
        for (li, layer) in self.layers.iter().enumerate() {
            let mac = layer.mac();
            let acc_frac = self.act_frac + mac.w_format.frac();
            let mut layer_trace = traces
                .as_deref_mut()
                .map(|ts| &mut ts[li])
                .map(|t| t as &mut LayerTrace);
            // The §10 dispatch rule: vectorized kernels run every
            // untraced dense/conv layer over the prefilled SoA arena;
            // traced runs, pool layers and the scalar kernel keep the
            // per-weight reference loop (which is also the only path
            // that reads — and fills — the warm product plane).
            let vectorize = kind.is_vectorized() && layer_trace.is_none();
            let accs: Vec<i64> = match layer {
                FixedLayer::Dense {
                    in_dim, out_dim, ..
                } if vectorize => {
                    let xs: &[SignedAct] = &x;
                    let (in_dim, out_dim) = (*in_dim, *out_dim);
                    cache.prefill_layer(li, mac, xs);
                    let arena = &cache.layers[li];
                    let rows: Vec<u32> = xs
                        .iter()
                        .map(|x| arena.row(x.mag).expect("prefilled above"))
                        .collect();
                    let x_neg: Vec<bool> = xs.iter().map(|x| x.neg).collect();
                    // Every output shares one gather list; its weights
                    // are the contiguous run starting at `o * in_dim`.
                    self.run_mac_layer_soa(
                        mac,
                        out_dim,
                        &rows,
                        &x_neg,
                        |o| mac.bias[o],
                        |o| (o * in_dim, 0..in_dim),
                        arena.slab(),
                        workers,
                        kind,
                    )
                }
                FixedLayer::Conv {
                    in_ch,
                    out_ch,
                    k,
                    in_h,
                    in_w,
                    gather,
                    ..
                } if vectorize => {
                    let xs: &[SignedAct] = &x;
                    let (in_h, in_w, in_ch, k, out_ch) = (*in_h, *in_w, *in_ch, *k, *out_ch);
                    let (oh, ow) = (in_h - k + 1, in_w - k + 1);
                    let fan = in_ch * k * k;
                    cache.prefill_layer(li, mac, xs);
                    let arena = &cache.layers[li];
                    // One gather list per output *position* (shared by
                    // all output channels), in exactly the scalar
                    // fan-in order (c, ky, kx) — which is also weight
                    // order within an output channel's contiguous run.
                    // The input-index pattern is static per layer
                    // geometry (`gather`, built at compile time); only
                    // the per-activation row offsets and signs are
                    // resolved per inference.
                    let row_of: Vec<u32> = xs
                        .iter()
                        .map(|x| arena.row(x.mag).expect("prefilled above"))
                        .collect();
                    let rows: Vec<u32> = gather.iter().map(|&xi| row_of[xi as usize]).collect();
                    let x_neg: Vec<bool> = gather.iter().map(|&xi| xs[xi as usize].neg).collect();
                    self.run_mac_layer_soa(
                        mac,
                        out_ch * oh * ow,
                        &rows,
                        &x_neg,
                        |o| mac.bias[o / (oh * ow)],
                        |o| {
                            let pos = o % (oh * ow);
                            (o / (oh * ow) * fan, pos * fan..(pos + 1) * fan)
                        },
                        arena.slab(),
                        workers,
                        kind,
                    )
                }
                FixedLayer::Dense {
                    in_dim, out_dim, ..
                } => {
                    let xs: &[SignedAct] = &x;
                    let in_dim = *in_dim;
                    self.run_mac_layer(
                        li,
                        mac,
                        |o| mac.bias[o],
                        move |o| (0..in_dim).map(move |i| (o * in_dim + i, xs[i])),
                        *out_dim,
                        cache,
                        &mut layer_trace,
                        workers,
                        Some(xs),
                    )
                }
                FixedLayer::Conv {
                    in_ch,
                    out_ch,
                    k,
                    in_h,
                    in_w,
                    ..
                } => {
                    let (oh, ow) = (in_h - k + 1, in_w - k + 1);
                    let xs: &[SignedAct] = &x;
                    let (in_h, in_w, in_ch, k) = (*in_h, *in_w, *in_ch, *k);
                    self.run_mac_layer(
                        li,
                        mac,
                        |o| mac.bias[o / (oh * ow)],
                        move |o| {
                            let oc = o / (oh * ow);
                            let oy = (o % (oh * ow)) / ow;
                            let ox = o % ow;
                            (0..in_ch).flat_map(move |c| {
                                (0..k).flat_map(move |ky| {
                                    (0..k).map(move |kx| {
                                        let wi = ((oc * in_ch + c) * k + ky) * k + kx;
                                        let xi = c * in_h * in_w + (oy + ky) * in_w + (ox + kx);
                                        (wi, xs[xi])
                                    })
                                })
                            })
                        },
                        out_ch * oh * ow,
                        cache,
                        &mut layer_trace,
                        workers,
                        Some(xs),
                    )
                }
                FixedLayer::Pool {
                    channels,
                    in_h,
                    in_w,
                    ..
                } => {
                    let (oh, ow) = (in_h / 2, in_w / 2);
                    let xs: &[SignedAct] = &x;
                    let (in_h, in_w) = (*in_h, *in_w);
                    let max_mag = (1i64 << (self.bits - 1)) - 1;
                    self.run_mac_layer(
                        li,
                        mac,
                        |o| mac.bias[o / (oh * ow)],
                        move |o| {
                            let ch = o / (oh * ow);
                            let oy = (o % (oh * ow)) / ow;
                            let ox = o % ow;
                            let base = ch * in_h * in_w + 2 * oy * in_w + 2 * ox;
                            // Signed average of the 2×2 window (truncating
                            // arithmetic shift, as the hardware adder tree
                            // plus wiring would produce).
                            let signed =
                                |a: SignedAct| man_fixed::bits::apply_sign(a.mag as u64, a.neg);
                            let sum = (signed(xs[base])
                                + signed(xs[base + 1])
                                + signed(xs[base + in_w])
                                + signed(xs[base + in_w + 1]))
                                >> 2;
                            let avg = SignedAct {
                                mag: sum.unsigned_abs().min(max_mag as u64) as u32,
                                neg: sum < 0,
                            };
                            std::iter::once((ch, avg))
                        },
                        channels * oh * ow,
                        cache,
                        &mut layer_trace,
                        // Pool magnitudes are derived, not prefillable:
                        // stay sequential (see forward_layers_sharded).
                        1,
                        None,
                    )
                }
            };
            match mac.output {
                OutputStage::Sigmoid => {
                    x = accs
                        .iter()
                        .map(|&a| SignedAct {
                            mag: activation_unit_fixed(a, 64, acc_frac, &plan) as u32,
                            neg: false,
                        })
                        .collect();
                }
                OutputStage::Requant => {
                    // Saturating arithmetic shift back to the activation
                    // fraction: the hardware word between conv and pool.
                    let shift = mac.w_format.frac();
                    let max_mag = (1i64 << (self.bits - 1)) - 1;
                    x = accs
                        .iter()
                        .map(|&a| {
                            let v = (a >> shift).clamp(-max_mag, max_mag);
                            SignedAct {
                                mag: v.unsigned_abs() as u32,
                                neg: v < 0,
                            }
                        })
                        .collect();
                }
                OutputStage::Logits => logits = accs,
            }
        }
        logits
    }

    /// A fresh, empty bank cache shaped for this network. Reuse one cache
    /// across the inferences of a batch or session: every bank computed
    /// for one image is then shared by all later images.
    pub fn session_cache(&self) -> SessionCache {
        let slots = 1usize << (self.bits - 1);
        SessionCache {
            bits: self.bits,
            layer_alphabets: self.layer_alphabet_members(),
            layers: self
                .layers
                .iter()
                .map(|l| BankArena::new(slots, l.mac().asm.alphabet().len()))
                .collect(),
            plane: None,
            bank_t: Vec::new(),
            sign_t: Vec::new(),
        }
    }

    /// A [`FixedNet::session_cache`] that additionally memoizes whole
    /// `(weight, input)` products across inferences — the steady-state
    /// serving configuration. Falls back to a plain cache when the word
    /// length exceeds [`PRODUCT_PLANE_MAX_BITS`] (the plane would be too
    /// large). Results are bit-identical either way.
    pub fn session_cache_warm(&self) -> SessionCache {
        let mut cache = self.session_cache();
        if self.bits <= PRODUCT_PLANE_MAX_BITS {
            cache.plane = Some(ProductPlane::new(self.bits));
        }
        cache
    }

    fn layer_alphabet_members(&self) -> Vec<Vec<u8>> {
        self.layers
            .iter()
            .map(|l| l.mac().asm.alphabet().members().to_vec())
            .collect()
    }

    /// `true` if `cache` was created by a network with this word length
    /// and alphabet assignment (the inputs a bank's value depends on).
    fn cache_matches(&self, cache: &SessionCache) -> bool {
        cache.bits == self.bits
            && cache.layer_alphabets.len() == self.layers.len()
            && cache
                .layer_alphabets
                .iter()
                .zip(&self.layers)
                .all(|(members, l)| members == l.mac().asm.alphabet().members())
    }

    /// Runs one inference, returning the raw output-layer accumulators
    /// ("logits" at the final layer's accumulator fraction).
    ///
    /// # Panics
    ///
    /// Panics if `image` does not hold [`FixedNet::input_len`] values.
    pub fn infer_raw(&self, image: &[f32]) -> Vec<i64> {
        self.forward_layers(image, None, &mut self.session_cache())
    }

    /// [`FixedNet::infer_raw`] reusing a caller-held [`SessionCache`] —
    /// the batched hot path. Results are bit-identical to `infer_raw`.
    ///
    /// # Panics
    ///
    /// Panics if `cache` was created by a network with a different word
    /// length or alphabet assignment — its banks would silently corrupt
    /// this network's products.
    pub fn infer_raw_with_cache(&self, image: &[f32], cache: &mut SessionCache) -> Vec<i64> {
        self.infer_raw_with_cache_kernel(image, cache, kernel::default_kernel())
    }

    /// [`FixedNet::infer_raw_with_cache`] with an explicit MAC kernel
    /// (see `crate::kernel`). Every kernel returns bit-identical logits;
    /// the choice only moves wall-clock time around.
    ///
    /// # Panics
    ///
    /// As [`FixedNet::infer_raw_with_cache`].
    pub fn infer_raw_with_cache_kernel(
        &self,
        image: &[f32],
        cache: &mut SessionCache,
        kind: KernelKind,
    ) -> Vec<i64> {
        assert!(
            self.cache_matches(cache),
            "session cache belongs to a network with a different word \
             length or alphabet assignment"
        );
        self.forward_layers_sharded(image, None, cache, 1, kind)
    }

    /// [`FixedNet::infer_raw_with_cache`] with large layers sharded over
    /// `parallelism` worker threads (each output neuron computed whole,
    /// on one thread, in fan-in order — see `run_mac_layer`). Results are
    /// bit-identical to the sequential path for every `Parallelism`.
    ///
    /// A cache with a product plane ([`FixedNet::session_cache_warm`])
    /// runs sequentially regardless: the sharded loop cannot write the
    /// plane, and in steady state the plane makes the MAC loop a table
    /// lookup that sharding could only slow down.
    ///
    /// # Panics
    ///
    /// As [`FixedNet::infer_raw_with_cache`].
    pub fn infer_raw_with_cache_par(
        &self,
        image: &[f32],
        cache: &mut SessionCache,
        parallelism: Parallelism,
    ) -> Vec<i64> {
        self.infer_raw_with_cache_par_kernel(image, cache, parallelism, kernel::default_kernel())
    }

    /// [`FixedNet::infer_raw_with_cache_par`] with an explicit MAC
    /// kernel. With a vectorized kernel, neuron sharding runs through
    /// the prefilled SoA arena — including on plane-backed (warm)
    /// caches, which the kernel path never reads the plane of.
    ///
    /// # Panics
    ///
    /// As [`FixedNet::infer_raw_with_cache`].
    pub fn infer_raw_with_cache_par_kernel(
        &self,
        image: &[f32],
        cache: &mut SessionCache,
        parallelism: Parallelism,
        kind: KernelKind,
    ) -> Vec<i64> {
        assert!(
            self.cache_matches(cache),
            "session cache belongs to a network with a different word \
             length or alphabet assignment"
        );
        self.forward_layers_sharded(image, None, cache, parallelism.workers(), kind)
    }

    /// Runs a batch with rows sharded across one worker per element of
    /// `caches` — the data-parallel serving hot path. Row `i` of the
    /// result is bit-identical to `infer_raw_with_cache(&images[i], c)`
    /// for any matching cache `c`: each row's whole forward pass runs on
    /// one thread, and worker-local caches only memoize pure functions of
    /// the compiled network, so sharding changes wall-clock time, never
    /// bits.
    ///
    /// # Panics
    ///
    /// Panics if `caches` is empty or any cache does not match this
    /// network (as [`FixedNet::infer_raw_with_cache`]).
    pub fn infer_batch_raw_par(
        &self,
        images: &[Vec<f32>],
        caches: &mut [&mut SessionCache],
    ) -> Vec<Vec<i64>> {
        self.infer_batch_raw_par_kernel(images, caches, kernel::default_kernel())
    }

    /// [`FixedNet::infer_batch_raw_par`] with an explicit MAC kernel for
    /// every row's forward pass.
    ///
    /// # Panics
    ///
    /// As [`FixedNet::infer_batch_raw_par`].
    pub fn infer_batch_raw_par_kernel(
        &self,
        images: &[Vec<f32>],
        caches: &mut [&mut SessionCache],
        kind: KernelKind,
    ) -> Vec<Vec<i64>> {
        assert!(!caches.is_empty(), "need at least one worker cache");
        for cache in caches.iter() {
            assert!(
                self.cache_matches(cache),
                "session cache belongs to a network with a different word \
                 length or alphabet assignment"
            );
        }
        let workers = caches.len();
        run_chunked(
            caches,
            images.len(),
            default_chunk_size(images.len(), workers),
            |cache, range| {
                range
                    .map(|i| self.forward_layers_sharded(&images[i], None, cache, 1, kind))
                    .collect()
            },
        )
    }

    /// Runs a whole batch through the **batch-major** datapath
    /// (DESIGN.md §10): images advance layer-by-layer *together* in lane
    /// blocks of [`LANE_BLOCK`], each dense/conv layer transposing its
    /// prefilled bank rows so one weight's term byte is applied to every
    /// lane under a single shared shift — the per-row term reload the
    /// row-major loop pays per image disappears. Row `i` of the result
    /// is bit-identical to
    /// `infer_raw_with_cache_kernel(&images[i], cache, kind)`: lanes are
    /// independent batch rows and each lane's `i64` accumulator chain
    /// runs strictly in fan-in order, so flipping the layout moves
    /// work, never bits (§8/§10).
    ///
    /// Like the row-major vector kernels, the batch-major MAC loop runs
    /// over the prefilled bank arena alone and never reads (or fills)
    /// the warm product plane — a plane-backed cache is valid and still
    /// bit-identical. Pool layers and the output stages loop lanes
    /// through the existing scalar arithmetic (a vanishing fraction of
    /// the MACs).
    ///
    /// # Panics
    ///
    /// As [`FixedNet::infer_raw_with_cache`], for every image.
    pub fn infer_batch_raw_batch_major_kernel(
        &self,
        images: &[Vec<f32>],
        cache: &mut SessionCache,
        kind: KernelKind,
    ) -> Vec<Vec<i64>> {
        assert!(
            self.cache_matches(cache),
            "session cache belongs to a network with a different word \
             length or alphabet assignment"
        );
        let mut out = Vec::with_capacity(images.len());
        for block in images.chunks(LANE_BLOCK) {
            out.extend(self.forward_lane_block(block, cache, kind));
        }
        out
    }

    /// [`FixedNet::infer_batch_raw_batch_major_kernel`] with the batch
    /// row-sharded across one worker per element of `caches`. Unlike the
    /// row-major [`FixedNet::infer_batch_raw_par_kernel`] (which deals
    /// fine-grained chunks for load balance), each worker gets one
    /// contiguous chunk: batch-major throughput comes from lane width,
    /// so the split should hand every worker the widest blocks it can.
    ///
    /// # Panics
    ///
    /// As [`FixedNet::infer_batch_raw_par`].
    pub fn infer_batch_raw_batch_major_par_kernel(
        &self,
        images: &[Vec<f32>],
        caches: &mut [&mut SessionCache],
        kind: KernelKind,
    ) -> Vec<Vec<i64>> {
        assert!(!caches.is_empty(), "need at least one worker cache");
        for cache in caches.iter() {
            assert!(
                self.cache_matches(cache),
                "session cache belongs to a network with a different word \
                 length or alphabet assignment"
            );
        }
        let workers = caches.len();
        let chunk = images.len().div_ceil(workers).max(1);
        run_chunked(caches, images.len(), chunk, |cache, range| {
            let mut out = Vec::with_capacity(range.len());
            for block in images[range].chunks(LANE_BLOCK) {
                out.extend(self.forward_lane_block(block, cache, kind));
            }
            out
        })
    }

    /// One lane block's forward pass — the batch-major engine loop. All
    /// lanes advance through each layer together: dense and conv layers
    /// prefill every lane's banks, transpose them into the cache's
    /// reusable scratch ([`crate::kernel`]'s `transpose_bank_block`),
    /// and run the batch-major kernel per output neuron; pool layers
    /// and the output stages loop the lanes through the scalar path.
    /// Accumulators are laid out `accs[o * width + b]` (output-major)
    /// so each kernel call writes one contiguous lane group.
    fn forward_lane_block(
        &self,
        images: &[Vec<f32>],
        cache: &mut SessionCache,
        kind: KernelKind,
    ) -> Vec<Vec<i64>> {
        let width = images.len();
        if width == 0 {
            return Vec::new();
        }
        let plan = self.plan_params();
        let bk = kernel::batch_kernel_for(kind);
        let mut xs: Vec<Vec<SignedAct>> = images
            .iter()
            .map(|image| {
                assert_eq!(
                    image.len(),
                    self.input_len(),
                    "input has {} values but the network expects {}",
                    image.len(),
                    self.input_len()
                );
                self.quantize_input(image)
                    .into_iter()
                    .map(|mag| SignedAct { mag, neg: false })
                    .collect()
            })
            .collect();
        let mut logits: Vec<Vec<i64>> = vec![Vec::new(); width];
        for (li, layer) in self.layers.iter().enumerate() {
            let mac = layer.mac();
            let acc_frac = self.act_frac + mac.w_format.frac();
            let stride = mac.asm.alphabet().len() + 1;
            let accs: Vec<i64> = match layer {
                FixedLayer::Dense {
                    in_dim, out_dim, ..
                } => {
                    let (in_dim, out_dim) = (*in_dim, *out_dim);
                    for lane in &xs {
                        cache.prefill_layer(li, mac, lane);
                    }
                    let SessionCache {
                        layers,
                        bank_t,
                        sign_t,
                        ..
                    } = &mut *cache;
                    let arena = &layers[li];
                    let lane_rows: Vec<Vec<u32>> = xs
                        .iter()
                        .map(|lane| {
                            lane.iter()
                                .map(|x| arena.row(x.mag).expect("prefilled above"))
                                .collect()
                        })
                        .collect();
                    let lane_negs: Vec<Vec<bool>> = xs
                        .iter()
                        .map(|lane| lane.iter().map(|x| x.neg).collect())
                        .collect();
                    let row_refs: Vec<&[u32]> = lane_rows.iter().map(Vec::as_slice).collect();
                    let neg_refs: Vec<&[bool]> = lane_negs.iter().map(Vec::as_slice).collect();
                    kernel::transpose_bank_block(
                        arena.slab(),
                        stride,
                        &row_refs,
                        &neg_refs,
                        bank_t,
                        sign_t,
                    );
                    // Dense fan-in is the identity gather; every output
                    // shares it, with weights at the contiguous run
                    // starting at `o * in_dim`.
                    let fan: Vec<u32> = (0..in_dim as u32).collect();
                    let mut accs = vec![0i64; out_dim * width];
                    for o in 0..out_dim {
                        let lane_accs = &mut accs[o * width..(o + 1) * width];
                        lane_accs.fill(mac.bias[o]);
                        bk.accumulate(kernel::MacBatchRun {
                            soa: &mac.soa,
                            bank_t,
                            stride,
                            width,
                            w_neg: &mac.w_neg,
                            w0: o * in_dim,
                            fan: &fan,
                            sign_t,
                            accs: lane_accs,
                        });
                    }
                    accs
                }
                FixedLayer::Conv {
                    in_ch,
                    out_ch,
                    k,
                    in_h,
                    in_w,
                    gather,
                    ..
                } => {
                    let (in_h, in_w, in_ch, k, out_ch) = (*in_h, *in_w, *in_ch, *k, *out_ch);
                    let (oh, ow) = (in_h - k + 1, in_w - k + 1);
                    let fan = in_ch * k * k;
                    for lane in &xs {
                        cache.prefill_layer(li, mac, lane);
                    }
                    let SessionCache {
                        layers,
                        bank_t,
                        sign_t,
                        ..
                    } = &mut *cache;
                    let arena = &layers[li];
                    // Transpose over the *raw* input activations; the
                    // per-position gather (static layer geometry, built
                    // at compile time) is applied through the kernel's
                    // `fan` indirection instead of materializing a
                    // gathered row list per lane.
                    let lane_rows: Vec<Vec<u32>> = xs
                        .iter()
                        .map(|lane| {
                            lane.iter()
                                .map(|x| arena.row(x.mag).expect("prefilled above"))
                                .collect()
                        })
                        .collect();
                    let lane_negs: Vec<Vec<bool>> = xs
                        .iter()
                        .map(|lane| lane.iter().map(|x| x.neg).collect())
                        .collect();
                    let row_refs: Vec<&[u32]> = lane_rows.iter().map(Vec::as_slice).collect();
                    let neg_refs: Vec<&[bool]> = lane_negs.iter().map(Vec::as_slice).collect();
                    kernel::transpose_bank_block(
                        arena.slab(),
                        stride,
                        &row_refs,
                        &neg_refs,
                        bank_t,
                        sign_t,
                    );
                    let outputs = out_ch * oh * ow;
                    let mut accs = vec![0i64; outputs * width];
                    for o in 0..outputs {
                        let pos = o % (oh * ow);
                        let lane_accs = &mut accs[o * width..(o + 1) * width];
                        lane_accs.fill(mac.bias[o / (oh * ow)]);
                        bk.accumulate(kernel::MacBatchRun {
                            soa: &mac.soa,
                            bank_t,
                            stride,
                            width,
                            w_neg: &mac.w_neg,
                            w0: o / (oh * ow) * fan,
                            fan: &gather[pos * fan..(pos + 1) * fan],
                            sign_t,
                            accs: lane_accs,
                        });
                    }
                    accs
                }
                FixedLayer::Pool {
                    channels,
                    in_h,
                    in_w,
                    ..
                } => {
                    // Pool magnitudes are derived, not prefillable; each
                    // lane keeps the sequential scalar reference path
                    // (identical to the row-major pool arm).
                    let (oh, ow) = (in_h / 2, in_w / 2);
                    let (in_h, in_w, channels) = (*in_h, *in_w, *channels);
                    let outputs = channels * oh * ow;
                    let max_mag = (1i64 << (self.bits - 1)) - 1;
                    let mut accs = vec![0i64; outputs * width];
                    for (b, lane) in xs.iter().enumerate() {
                        let lxs: &[SignedAct] = lane;
                        let lane_accs = self.run_mac_layer(
                            li,
                            mac,
                            |o| mac.bias[o / (oh * ow)],
                            move |o| {
                                let ch = o / (oh * ow);
                                let oy = (o % (oh * ow)) / ow;
                                let ox = o % ow;
                                let base = ch * in_h * in_w + 2 * oy * in_w + 2 * ox;
                                let signed =
                                    |a: SignedAct| man_fixed::bits::apply_sign(a.mag as u64, a.neg);
                                let sum = (signed(lxs[base])
                                    + signed(lxs[base + 1])
                                    + signed(lxs[base + in_w])
                                    + signed(lxs[base + in_w + 1]))
                                    >> 2;
                                let avg = SignedAct {
                                    mag: sum.unsigned_abs().min(max_mag as u64) as u32,
                                    neg: sum < 0,
                                };
                                std::iter::once((ch, avg))
                            },
                            outputs,
                            cache,
                            &mut None,
                            1,
                            None,
                        );
                        for (o, a) in lane_accs.into_iter().enumerate() {
                            accs[o * width + b] = a;
                        }
                    }
                    accs
                }
            };
            let outputs = accs.len() / width;
            match mac.output {
                OutputStage::Sigmoid => {
                    for (b, lane) in xs.iter_mut().enumerate() {
                        *lane = (0..outputs)
                            .map(|o| SignedAct {
                                mag: activation_unit_fixed(accs[o * width + b], 64, acc_frac, &plan)
                                    as u32,
                                neg: false,
                            })
                            .collect();
                    }
                }
                OutputStage::Requant => {
                    let shift = mac.w_format.frac();
                    let max_mag = (1i64 << (self.bits - 1)) - 1;
                    for (b, lane) in xs.iter_mut().enumerate() {
                        *lane = (0..outputs)
                            .map(|o| {
                                let v = (accs[o * width + b] >> shift).clamp(-max_mag, max_mag);
                                SignedAct {
                                    mag: v.unsigned_abs() as u32,
                                    neg: v < 0,
                                }
                            })
                            .collect();
                    }
                }
                OutputStage::Logits => {
                    for (b, out) in logits.iter_mut().enumerate() {
                        *out = (0..outputs).map(|o| accs[o * width + b]).collect();
                    }
                }
            }
        }
        logits
    }

    /// Predicted class (exact argmax over the raw integer logits).
    pub fn predict(&self, image: &[f32]) -> usize {
        argmax_raw(&self.infer_raw(image))
    }

    /// Classification accuracy over a test set. Pre-computer banks are
    /// shared across the whole set (results are bit-identical to
    /// per-image [`FixedNet::predict`] calls).
    pub fn accuracy(&self, images: &[Vec<f32>], labels: &[usize]) -> f64 {
        assert_eq!(images.len(), labels.len());
        if images.is_empty() {
            return 0.0;
        }
        let mut cache = self.session_cache();
        let correct = images
            .iter()
            .zip(labels)
            .filter(|(img, &l)| argmax_raw(&self.forward_layers(img, None, &mut cache)) == l)
            .count();
        correct as f64 / images.len() as f64
    }

    /// [`FixedNet::accuracy`] parallelized across `parallelism` workers.
    /// Exactly the same count as the sequential pass — inference is
    /// deterministic per row — just faster on multi-core hosts.
    /// `Threads(n)` row-shards the set across `n` bank caches; under
    /// [`Parallelism::Auto`] the `man-par` decision table (compile-time
    /// MACs per row × set size) resolves the whole plan, so tiny
    /// evaluation sets skip the pool handoff entirely and a *small* set
    /// of *large* rows neuron-shards each row's layers instead of
    /// starving on rows.
    ///
    /// # Panics
    ///
    /// Panics if the image and label counts differ.
    pub fn accuracy_par(
        &self,
        images: &[Vec<f32>],
        labels: &[usize],
        parallelism: Parallelism,
    ) -> f64 {
        use man_par::ShardPlan;
        assert_eq!(images.len(), labels.len());
        if images.is_empty() {
            return 0.0;
        }
        let plan = match parallelism {
            Parallelism::Auto => man_par::plan_shards(
                &man_par::AutoContext {
                    macs_per_row: self.macs_per_inference(),
                    batch: images.len(),
                    streams: 1,
                    cores: man_par::available_cores(),
                },
                &man_par::AutoTuning::default(),
            ),
            // Static request: row sharding, the historical behavior.
            other => match other.workers().min(images.len()) {
                0 | 1 => ShardPlan::Sequential,
                workers => ShardPlan::Rows { workers },
            },
        };
        match plan {
            ShardPlan::Sequential => self.accuracy(images, labels),
            ShardPlan::Neurons { workers } => {
                // Few large rows: walk them in order, sharding each
                // row's big layers across the pool (bit-identical — see
                // `run_mac_layer`).
                let mut cache = self.session_cache();
                let correct = images
                    .iter()
                    .zip(labels)
                    .filter(|(img, &l)| {
                        argmax_raw(&self.forward_layers_sharded(
                            img,
                            None,
                            &mut cache,
                            workers,
                            kernel::default_kernel(),
                        )) == l
                    })
                    .count();
                correct as f64 / images.len() as f64
            }
            ShardPlan::Rows { workers } => {
                let workers = workers.min(images.len()).max(1);
                let mut caches: Vec<SessionCache> =
                    (0..workers).map(|_| self.session_cache()).collect();
                let hits = run_chunked(
                    &mut caches,
                    images.len(),
                    default_chunk_size(images.len(), workers),
                    |cache, range| {
                        range
                            .map(|i| {
                                (argmax_raw(&self.forward_layers(&images[i], None, cache))
                                    == labels[i]) as u64
                            })
                            .collect()
                    },
                );
                hits.iter().sum::<u64>() as f64 / images.len() as f64
            }
        }
    }

    /// Runs inferences over `images` collecting per-layer operand traces
    /// (up to `limit` MACs per layer) for the switching-activity power
    /// model.
    pub fn sample_traces(&self, images: &[Vec<f32>], limit: usize) -> Vec<LayerTrace> {
        let mut traces: Vec<LayerTrace> = (0..self.layers.len())
            .map(|_| LayerTrace::new(limit))
            .collect();
        let mut cache = self.session_cache();
        for image in images {
            let _ = self.forward_layers(image, Some(&mut traces), &mut cache);
            if traces.iter().all(LayerTrace::full) {
                break;
            }
        }
        traces
    }

    /// Runs one traced inference: raw logits plus the full per-layer
    /// operand streams (up to `limit` MACs per layer).
    ///
    /// # Panics
    ///
    /// Panics if `cache` was created by a network with a different word
    /// length or alphabet assignment (as
    /// [`FixedNet::infer_raw_with_cache`]).
    pub fn infer_raw_traced(
        &self,
        image: &[f32],
        limit: usize,
        cache: &mut SessionCache,
    ) -> (Vec<i64>, Vec<LayerTrace>) {
        assert!(
            self.cache_matches(cache),
            "session cache belongs to a network with a different word \
             length or alphabet assignment"
        );
        let mut traces: Vec<LayerTrace> = (0..self.layers.len())
            .map(|_| LayerTrace::new(limit))
            .collect();
        let logits = self.forward_layers(image, Some(&mut traces), cache);
        (logits, traces)
    }
}

/// First-maximum argmax over exact integer logits. Working on the raw
/// `i64` values (instead of casting to `f32`) keeps large accumulators
/// that differ by a few LSBs from collapsing to the same float and
/// misordering; every consumer of a [`FixedNet`]'s scores should use
/// this so served classes match measured accuracy.
pub fn argmax_raw(scores: &[i64]) -> usize {
    let mut best = 0;
    for (i, &s) in scores.iter().enumerate().skip(1) {
        if s > scores[best] {
            best = i;
        }
    }
    best
}

/// Operand trace of one layer: the real `(weight, input, product,
/// accumulator)` stream a lane sees, feeding the gate-level toggle
/// simulation.
#[derive(Clone, Debug)]
pub struct LayerTrace {
    limit: usize,
    /// Weight magnitudes.
    pub w_mag: Vec<u32>,
    /// Weight signs.
    pub w_neg: Vec<bool>,
    /// Input (activation) magnitudes.
    pub x_mag: Vec<u32>,
    /// Input signs (always `false` for sigmoid-fed layers).
    pub x_neg: Vec<bool>,
    /// Signed products.
    pub product: Vec<i64>,
    /// Accumulator value *before* adding the product.
    pub acc: Vec<i64>,
}

impl LayerTrace {
    fn new(limit: usize) -> Self {
        Self {
            limit,
            w_mag: Vec::new(),
            w_neg: Vec::new(),
            x_mag: Vec::new(),
            x_neg: Vec::new(),
            product: Vec::new(),
            acc: Vec::new(),
        }
    }

    fn record(&mut self, w_mag: u32, w_neg: bool, x_mag: u32, x_neg: bool, product: i64, acc: i64) {
        if self.full() {
            return;
        }
        self.w_mag.push(w_mag);
        self.w_neg.push(w_neg);
        self.x_mag.push(x_mag);
        self.x_neg.push(x_neg);
        self.product.push(product);
        self.acc.push(acc);
    }

    /// `true` once the trace holds `limit` MACs.
    pub fn full(&self) -> bool {
        self.w_mag.len() >= self.limit
    }

    /// Number of recorded MACs.
    pub fn len(&self) -> usize {
        self.w_mag.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.w_mag.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constrain::{constrain_slice, WeightLattice};
    use man_nn::layers::{Activation, ActivationLayer, Dense, Layer};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn tiny_net(seed: u64) -> Network {
        let mut rng = SmallRng::seed_from_u64(seed);
        Network::new(vec![
            Layer::Dense(Dense::new(16, 8, &mut rng)),
            Layer::Activation(ActivationLayer::new(Activation::Sigmoid)),
            Layer::Dense(Dense::new(8, 3, &mut rng)),
        ])
    }

    fn constrain_net(net: &mut Network, spec: &QuantSpec, alphabets: &LayerAlphabets) {
        let mut pi = 0;
        let bits = spec.bits();
        let formats = spec.layer_formats().to_vec();
        let sets = alphabets.sets().to_vec();
        net.visit_params_mut(|_, kind, values, _| {
            if kind == man_nn::layers::ParamKind::Weights {
                let lattice = WeightLattice::new(bits, &sets[pi]);
                constrain_slice(formats[pi], &lattice, values);
                pi += 1;
            }
        });
    }

    #[test]
    fn compile_rejects_unconstrained_weights() {
        let net = tiny_net(1);
        let spec = QuantSpec::fit(&net, 8);
        let alphabets = LayerAlphabets::uniform(AlphabetSet::a1(), 2);
        let err = FixedNet::compile(&net, &spec, &alphabets).unwrap_err();
        assert!(matches!(err, CompileError::UnconstrainedWeight { .. }));
    }

    #[test]
    fn compile_accepts_full_alphabet_without_constraining() {
        let net = tiny_net(2);
        let spec = QuantSpec::fit(&net, 8);
        let alphabets = LayerAlphabets::uniform(AlphabetSet::a8(), 2);
        let fixed = FixedNet::compile(&net, &spec, &alphabets).unwrap();
        assert_eq!(fixed.layer_count(), 2);
        assert_eq!(fixed.macs_per_layer(), vec![16 * 8, 8 * 3]);
    }

    #[test]
    fn compile_accepts_constrained_weights() {
        let mut net = tiny_net(3);
        let spec = QuantSpec::fit(&net, 8);
        let alphabets = LayerAlphabets::uniform(AlphabetSet::a1(), 2);
        constrain_net(&mut net, &spec, &alphabets);
        let fixed = FixedNet::compile(&net, &spec, &alphabets).unwrap();
        let x = vec![0.5f32; 16];
        let logits = fixed.infer_raw(&x);
        assert_eq!(logits.len(), 3);
    }

    #[test]
    fn fixed_inference_tracks_float_inference() {
        // With 12-bit words and the full alphabet, the fixed engine should
        // agree with the float network on comfortable-margin predictions.
        let net = tiny_net(4);
        let spec = QuantSpec::fit(&net, 12);
        let alphabets = LayerAlphabets::uniform(AlphabetSet::a8(), 2);
        let fixed = FixedNet::compile(&net, &spec, &alphabets).unwrap();
        let mut agree = 0;
        for i in 0..20 {
            let x: Vec<f32> = (0..16)
                .map(|j| ((i * 7 + j * 3) % 10) as f32 / 10.0)
                .collect();
            if fixed.predict(&x) == net.predict(&x) {
                agree += 1;
            }
        }
        assert!(agree >= 18, "only {agree}/20 predictions agree");
    }

    #[test]
    fn mixed_alphabet_compile_requires_matching_length() {
        let net = tiny_net(5);
        let spec = QuantSpec::fit(&net, 8);
        let alphabets = LayerAlphabets::mixed(vec![AlphabetSet::a8()]);
        let err = FixedNet::compile(&net, &spec, &alphabets).unwrap_err();
        assert!(matches!(err, CompileError::LayerCountMismatch { .. }));
    }

    #[test]
    fn warm_cache_is_bit_identical_to_plain_cache() {
        for (bits, set) in [
            (8, AlphabetSet::a1()),
            (8, AlphabetSet::a4()),
            (12, AlphabetSet::a2()),
        ] {
            let mut net = tiny_net(40 + bits as u64 + set.len() as u64);
            let spec = QuantSpec::fit(&net, bits);
            let alphabets = LayerAlphabets::uniform(set, 2);
            constrain_net(&mut net, &spec, &alphabets);
            let fixed = FixedNet::compile(&net, &spec, &alphabets).unwrap();
            let mut plain = fixed.session_cache();
            let mut warm = fixed.session_cache_warm();
            assert!(warm.has_product_plane(), "bits={bits} should get a plane");
            for i in 0..12 {
                let x: Vec<f32> = (0..16)
                    .map(|j| ((i * 13 + j * 5) % 17) as f32 / 17.0)
                    .collect();
                assert_eq!(
                    fixed.infer_raw_with_cache(&x, &mut plain),
                    fixed.infer_raw_with_cache(&x, &mut warm),
                    "bits={bits}: warm cache must not change a single bit"
                );
            }
        }
    }

    #[test]
    fn warm_cache_skips_plane_for_wide_words() {
        let net = tiny_net(41);
        let spec = QuantSpec::fit(&net, PRODUCT_PLANE_MAX_BITS + 1);
        let alphabets = LayerAlphabets::uniform(AlphabetSet::a8(), 2);
        let fixed = FixedNet::compile(&net, &spec, &alphabets).unwrap();
        assert!(!fixed.session_cache_warm().has_product_plane());
    }

    #[test]
    fn neuron_sharded_inference_is_bit_identical() {
        // A wide hidden layer so the shard threshold (outputs >= 4·workers)
        // actually engages, plain and warm caches, several thread counts.
        let mut rng = SmallRng::seed_from_u64(77);
        let mut net = Network::new(vec![
            Layer::Dense(Dense::new(16, 64, &mut rng)),
            Layer::Activation(ActivationLayer::new(Activation::Sigmoid)),
            Layer::Dense(Dense::new(64, 10, &mut rng)),
        ]);
        let spec = QuantSpec::fit(&net, 8);
        let alphabets = LayerAlphabets::uniform(AlphabetSet::a2(), 2);
        constrain_net(&mut net, &spec, &alphabets);
        let fixed = FixedNet::compile(&net, &spec, &alphabets).unwrap();
        for warm in [false, true] {
            let mk = || {
                if warm {
                    fixed.session_cache_warm()
                } else {
                    fixed.session_cache()
                }
            };
            let mut seq_cache = mk();
            for i in 0..6 {
                let x: Vec<f32> = (0..16)
                    .map(|j| ((i * 11 + j * 3) % 13) as f32 / 13.0)
                    .collect();
                let seq = fixed.infer_raw_with_cache(&x, &mut seq_cache);
                for threads in [1usize, 2, 3, 8] {
                    let mut cache = mk();
                    assert_eq!(
                        fixed.infer_raw_with_cache_par(
                            &x,
                            &mut cache,
                            Parallelism::Threads(threads)
                        ),
                        seq,
                        "warm={warm} threads={threads}: sharding must not change a bit"
                    );
                }
            }
        }
    }

    #[test]
    fn row_sharded_batch_is_bit_identical() {
        let mut net = tiny_net(78);
        let spec = QuantSpec::fit(&net, 8);
        let alphabets = LayerAlphabets::uniform(AlphabetSet::a1(), 2);
        constrain_net(&mut net, &spec, &alphabets);
        let fixed = FixedNet::compile(&net, &spec, &alphabets).unwrap();
        let images: Vec<Vec<f32>> = (0..17)
            .map(|i| (0..16).map(|j| ((i * 5 + j) % 11) as f32 / 11.0).collect())
            .collect();
        let mut seq_cache = fixed.session_cache();
        let seq: Vec<Vec<i64>> = images
            .iter()
            .map(|x| fixed.infer_raw_with_cache(x, &mut seq_cache))
            .collect();
        for workers in [1usize, 2, 4] {
            let mut caches: Vec<SessionCache> =
                (0..workers).map(|_| fixed.session_cache()).collect();
            let mut refs: Vec<&mut SessionCache> = caches.iter_mut().collect();
            assert_eq!(
                fixed.infer_batch_raw_par(&images, &mut refs),
                seq,
                "{workers} worker caches"
            );
        }
        // Degenerate batches.
        let mut caches = vec![fixed.session_cache(); 4];
        let mut refs: Vec<&mut SessionCache> = caches.iter_mut().collect();
        assert!(fixed.infer_batch_raw_par(&[], &mut refs).is_empty());
    }

    #[test]
    fn parallel_accuracy_matches_sequential() {
        let mut net = tiny_net(79);
        let spec = QuantSpec::fit(&net, 8);
        let alphabets = LayerAlphabets::uniform(AlphabetSet::a4(), 2);
        constrain_net(&mut net, &spec, &alphabets);
        let fixed = FixedNet::compile(&net, &spec, &alphabets).unwrap();
        let images: Vec<Vec<f32>> = (0..23)
            .map(|i| {
                (0..16)
                    .map(|j| ((i * 7 + j * 2) % 9) as f32 / 9.0)
                    .collect()
            })
            .collect();
        let labels: Vec<usize> = (0..23).map(|i| i % 3).collect();
        let seq = fixed.accuracy(&images, &labels);
        for p in [
            Parallelism::Sequential,
            Parallelism::Threads(3),
            Parallelism::Auto,
        ] {
            assert_eq!(fixed.accuracy_par(&images, &labels, p), seq);
        }
    }

    /// Every resolved kernel (scalar reference, portable SWAR, AVX2
    /// when the host has it) produces bit-identical logits on dense
    /// *and* convolutional networks, plain and warm caches, sequential
    /// and neuron-sharded — the engine-level half of the §10
    /// bit-exactness contract (the kernel-level half is exhaustive in
    /// `crate::kernel`'s tests).
    #[test]
    fn all_kernels_are_bit_identical_on_dense_and_conv() {
        use man_nn::layers::{Conv2d, ScaledAvgPool};
        let mut kinds = vec![KernelKind::Scalar, KernelKind::Swar];
        if crate::kernel::avx2_available() {
            kinds.push(KernelKind::Avx2);
        }
        let mut rng = SmallRng::seed_from_u64(91);
        let nets: Vec<(Network, usize, u32)> = vec![
            // A wide MLP (dense SoA path, shard threshold engages).
            (
                Network::new(vec![
                    Layer::Dense(Dense::new(18, 48, &mut rng)),
                    Layer::Activation(ActivationLayer::new(Activation::Sigmoid)),
                    Layer::Dense(Dense::new(48, 5, &mut rng)),
                ]),
                18,
                8,
            ),
            // A conv → pool → dense LeNet-style stack (conv SoA path,
            // requant stage, signed activations into the pool layer).
            (
                Network::new(vec![
                    Layer::Conv2d(Conv2d::new(1, 4, 3, 10, 10, &mut rng)),
                    Layer::ScaledAvgPool(ScaledAvgPool::new(4, 8, 8)),
                    Layer::Activation(ActivationLayer::new(Activation::Sigmoid)),
                    Layer::Dense(Dense::new(4 * 4 * 4, 3, &mut rng)),
                    Layer::Activation(ActivationLayer::new(Activation::Sigmoid)),
                    Layer::Dense(Dense::new(3, 2, &mut rng)),
                ]),
                100,
                12,
            ),
        ];
        for (mut net, in_len, bits) in nets {
            let spec = QuantSpec::fit(&net, bits);
            let layers = spec.layer_formats().len();
            let alphabets = LayerAlphabets::uniform(AlphabetSet::a2(), layers);
            constrain_net(&mut net, &spec, &alphabets);
            let fixed = FixedNet::compile(&net, &spec, &alphabets).unwrap();
            let images: Vec<Vec<f32>> = (0..5)
                .map(|i| {
                    (0..in_len)
                        .map(|j| ((i * 17 + j * 7) % 23) as f32 / 23.0)
                        .collect()
                })
                .collect();
            let mut ref_cache = fixed.session_cache();
            let reference: Vec<Vec<i64>> = images
                .iter()
                .map(|x| fixed.infer_raw_with_cache_kernel(x, &mut ref_cache, KernelKind::Scalar))
                .collect();
            for &kind in &kinds {
                for warm in [false, true] {
                    let mut cache = if warm {
                        fixed.session_cache_warm()
                    } else {
                        fixed.session_cache()
                    };
                    for (x, want) in images.iter().zip(&reference) {
                        assert_eq!(
                            &fixed.infer_raw_with_cache_kernel(x, &mut cache, kind),
                            want,
                            "bits={bits} kernel={} warm={warm}",
                            kind.label()
                        );
                        assert_eq!(
                            &fixed.infer_raw_with_cache_par_kernel(
                                x,
                                &mut cache,
                                Parallelism::Threads(3),
                                kind
                            ),
                            want,
                            "bits={bits} kernel={} warm={warm} sharded",
                            kind.label()
                        );
                    }
                }
            }
        }
    }

    /// The batch-major engine path (every kernel kind, plain and warm
    /// caches, sequential and row-sharded) is bit-identical to the
    /// row-major scalar reference on dense *and* conv stacks, across
    /// batch sizes straddling the [`LANE_BLOCK`] boundary — the
    /// engine-level half of the §10 layout contract (the kernel-level
    /// half is exhaustive in `crate::kernel`'s tests).
    #[test]
    fn batch_major_is_bit_identical_on_dense_and_conv() {
        use man_nn::layers::{Conv2d, ScaledAvgPool};
        let mut kinds = vec![KernelKind::Scalar, KernelKind::Swar];
        if crate::kernel::avx2_available() {
            kinds.push(KernelKind::Avx2);
        }
        let mut rng = SmallRng::seed_from_u64(92);
        let nets: Vec<(Network, usize, u32)> = vec![
            (
                Network::new(vec![
                    Layer::Dense(Dense::new(18, 48, &mut rng)),
                    Layer::Activation(ActivationLayer::new(Activation::Sigmoid)),
                    Layer::Dense(Dense::new(48, 5, &mut rng)),
                ]),
                18,
                8,
            ),
            (
                Network::new(vec![
                    Layer::Conv2d(Conv2d::new(1, 4, 3, 10, 10, &mut rng)),
                    Layer::ScaledAvgPool(ScaledAvgPool::new(4, 8, 8)),
                    Layer::Activation(ActivationLayer::new(Activation::Sigmoid)),
                    Layer::Dense(Dense::new(4 * 4 * 4, 3, &mut rng)),
                    Layer::Activation(ActivationLayer::new(Activation::Sigmoid)),
                    Layer::Dense(Dense::new(3, 2, &mut rng)),
                ]),
                100,
                12,
            ),
        ];
        for (mut net, in_len, bits) in nets {
            let spec = QuantSpec::fit(&net, bits);
            let layers = spec.layer_formats().len();
            let alphabets = LayerAlphabets::uniform(AlphabetSet::a2(), layers);
            constrain_net(&mut net, &spec, &alphabets);
            let fixed = FixedNet::compile(&net, &spec, &alphabets).unwrap();
            // Batches straddling the lane-block boundary: empty, one
            // lane, a partial block, exactly one block, block + tail.
            for batch in [0usize, 1, 5, LANE_BLOCK, LANE_BLOCK + 5] {
                let images: Vec<Vec<f32>> = (0..batch)
                    .map(|i| {
                        (0..in_len)
                            .map(|j| ((i * 17 + j * 7) % 23) as f32 / 23.0)
                            .collect()
                    })
                    .collect();
                let mut ref_cache = fixed.session_cache();
                let reference: Vec<Vec<i64>> = images
                    .iter()
                    .map(|x| {
                        fixed.infer_raw_with_cache_kernel(x, &mut ref_cache, KernelKind::Scalar)
                    })
                    .collect();
                for &kind in &kinds {
                    for warm in [false, true] {
                        let mk = || {
                            if warm {
                                fixed.session_cache_warm()
                            } else {
                                fixed.session_cache()
                            }
                        };
                        let mut cache = mk();
                        assert_eq!(
                            fixed.infer_batch_raw_batch_major_kernel(&images, &mut cache, kind),
                            reference,
                            "bits={bits} kernel={} warm={warm} batch={batch}",
                            kind.label()
                        );
                        for workers in [1usize, 3] {
                            let mut caches: Vec<SessionCache> =
                                (0..workers).map(|_| mk()).collect();
                            let mut refs: Vec<&mut SessionCache> = caches.iter_mut().collect();
                            assert_eq!(
                                fixed.infer_batch_raw_batch_major_par_kernel(
                                    &images, &mut refs, kind
                                ),
                                reference,
                                "bits={bits} kernel={} warm={warm} batch={batch} workers={workers}",
                                kind.label()
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn cache_footprint_counts_transpose_scratch() {
        let mut net = tiny_net(93);
        let spec = QuantSpec::fit(&net, 8);
        let alphabets = LayerAlphabets::uniform(AlphabetSet::a4(), 2);
        constrain_net(&mut net, &spec, &alphabets);
        let fixed = FixedNet::compile(&net, &spec, &alphabets).unwrap();
        let mut cache = fixed.session_cache();
        assert_eq!(cache.footprint().transpose_bytes, 0, "empty until used");
        let images: Vec<Vec<f32>> = (0..4)
            .map(|i| (0..16).map(|j| ((i * 5 + j) % 11) as f32 / 11.0).collect())
            .collect();
        let _ = fixed.infer_batch_raw_batch_major_kernel(&images, &mut cache, KernelKind::Swar);
        let used = cache.footprint();
        assert!(
            used.transpose_bytes > 0,
            "batch-major run leaves scratch capacity: {used:?}"
        );
        assert_eq!(
            used.total_bytes(),
            used.layer_bank_bytes.iter().sum::<usize>() + used.plane_bytes + used.transpose_bytes
        );
        cache.shrink_to_fit();
        assert_eq!(
            cache.footprint().transpose_bytes,
            0,
            "shrink_to_fit frees the batch-major scratch"
        );
        // The freed cache still serves batch-major inference (the next
        // dispatch rebuilds the scratch at the live layer's size).
        let again = fixed.infer_batch_raw_batch_major_kernel(&images, &mut cache, KernelKind::Swar);
        assert_eq!(again.len(), images.len());
    }

    #[test]
    fn cache_footprint_reports_banks_and_plane() {
        let mut net = tiny_net(90);
        let spec = QuantSpec::fit(&net, 8);
        let alphabets = LayerAlphabets::uniform(AlphabetSet::a4(), 2);
        constrain_net(&mut net, &spec, &alphabets);
        let fixed = FixedNet::compile(&net, &spec, &alphabets).unwrap();
        let mut cache = fixed.session_cache_warm();
        let empty = cache.footprint();
        assert_eq!(empty.layer_bank_bytes.len(), 2);
        assert_eq!(empty.plane_bytes, 128 * 128 * 4, "8-bit plane is 64 KiB");
        let x: Vec<f32> = (0..16).map(|j| (j % 7) as f32 / 7.0).collect();
        let _ = fixed.infer_raw_with_cache(&x, &mut cache);
        let filled = cache.footprint();
        assert!(
            filled.layer_bank_bytes[0] > empty.layer_bank_bytes[0],
            "inference fills bank rows: {filled:?}"
        );
        assert!(filled.total_bytes() > filled.plane_bytes);
        cache.shrink_to_fit();
        assert!(cache.footprint().total_bytes() <= filled.total_bytes());
        assert!(fixed.kernel_plan_bytes() > 0);
    }

    #[test]
    fn traces_capture_real_operands() {
        let mut net = tiny_net(6);
        let spec = QuantSpec::fit(&net, 8);
        let alphabets = LayerAlphabets::uniform(AlphabetSet::a2(), 2);
        constrain_net(&mut net, &spec, &alphabets);
        let fixed = FixedNet::compile(&net, &spec, &alphabets).unwrap();
        let images: Vec<Vec<f32>> = (0..4).map(|i| vec![0.1 * i as f32; 16]).collect();
        let traces = fixed.sample_traces(&images, 64);
        assert_eq!(traces.len(), 2);
        assert!(!traces[0].is_empty());
        for t in &traces {
            for i in 0..t.len() {
                let sign = if t.w_neg[i] ^ t.x_neg[i] { -1i64 } else { 1 };
                assert_eq!(
                    t.product[i],
                    sign * (t.w_mag[i] as i64) * (t.x_mag[i] as i64),
                    "trace product must be the real product"
                );
            }
        }
    }
}
