//! Property-based tests for the paper's core invariants.

use man::alphabet::AlphabetSet;
use man::asm::AsmMultiplier;
use man::constrain::{constrain_slice, project_greedy, WeightLattice};
use man::quartet::QuartetScheme;
use man_fixed::QFormat;
use proptest::prelude::*;

fn any_alphabet() -> impl Strategy<Value = AlphabetSet> {
    prop_oneof![
        Just(AlphabetSet::a1()),
        Just(AlphabetSet::a2()),
        Just(AlphabetSet::a4()),
        Just(AlphabetSet::a8()),
        Just(AlphabetSet::new(vec![1, 5, 9]).expect("valid")),
        Just(AlphabetSet::new(vec![1, 7, 11, 13]).expect("valid")),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// THE paper invariant: for any weight on the constrained lattice the
    /// ASM select/shift/add reproduces exact multiplication.
    #[test]
    fn constrained_weight_multiplies_exactly(
        alphabet in any_alphabet(),
        bits in prop_oneof![Just(8u32), Just(12u32)],
        w_raw in any::<u32>(),
        x_raw in any::<u32>(),
    ) {
        let lattice = WeightLattice::new(bits, &alphabet);
        let max_mag = (1u32 << (bits - 1)) - 1;
        let w = lattice.project_exact(w_raw % (max_mag + 1));
        let x = x_raw % (max_mag + 1);
        let asm = AsmMultiplier::new(bits, alphabet);
        let bank = asm.precompute(x);
        prop_assert_eq!(asm.multiply(w, &bank).expect("lattice weight"), w as u64 * x as u64);
    }

    /// Unsupported weights are rejected, never silently mis-multiplied.
    #[test]
    fn unsupported_weights_error(bits in prop_oneof![Just(8u32), Just(12u32)], mag in any::<u32>()) {
        let alphabet = AlphabetSet::a1();
        let lattice = WeightLattice::new(bits, &alphabet);
        let max_mag = (1u32 << (bits - 1)) - 1;
        let mag = mag % (max_mag + 1);
        let asm = AsmMultiplier::new(bits, alphabet);
        prop_assert_eq!(asm.decode(mag).is_ok(), lattice.contains(mag));
    }

    /// Both projections land on the lattice; exact is globally nearest;
    /// both are idempotent; both stay within the worst-case lattice gap.
    #[test]
    fn projections_are_sound(
        alphabet in any_alphabet(),
        bits in prop_oneof![Just(8u32), Just(12u32)],
        mag in any::<u32>(),
    ) {
        let lattice = WeightLattice::new(bits, &alphabet);
        let max_mag = (1u32 << (bits - 1)) - 1;
        let mag = mag % (max_mag + 1);
        let e = lattice.project_exact(mag);
        let g = project_greedy(bits, &alphabet, mag);
        prop_assert!(lattice.contains(e));
        prop_assert!(lattice.contains(g));
        prop_assert_eq!(lattice.project_exact(e), e);
        prop_assert_eq!(project_greedy(bits, &alphabet, g), g);
        let de = (e as i64 - mag as i64).unsigned_abs();
        let dg = (g as i64 - mag as i64).unsigned_abs();
        prop_assert!(de <= dg, "exact must be nearest: |{e}-{mag}| vs |{g}-{mag}|");
        // Inside the lattice the error is bounded by the largest gap;
        // above the top lattice point the projection saturates downward.
        let top = *lattice.values().last().expect("nonempty");
        if mag <= top {
            prop_assert!(de <= lattice.max_gap() as u64);
        } else {
            prop_assert_eq!(e, top, "beyond the lattice the projection clamps");
        }
    }

    /// Quartet decomposition round-trips for every representable
    /// magnitude and width.
    #[test]
    fn quartets_roundtrip(bits in 3u32..=16, mag in any::<u32>()) {
        let scheme = QuartetScheme::for_bits(bits);
        let mag = mag % (scheme.max_magnitude() + 1);
        prop_assert_eq!(scheme.reconstruct(&scheme.decompose(mag)), mag);
    }

    /// Constraining a float slice is idempotent and keeps every value
    /// representable in the target format.
    #[test]
    fn constrain_slice_is_idempotent(
        alphabet in any_alphabet(),
        values in prop::collection::vec(-1.9f32..1.9, 1..40),
        frac in 4u32..8,
    ) {
        let format = QFormat::new(8, frac);
        let lattice = WeightLattice::new(8, &alphabet);
        let mut once = values.clone();
        constrain_slice(format, &lattice, &mut once);
        let mut twice = once.clone();
        constrain_slice(format, &lattice, &mut twice);
        prop_assert_eq!(&once, &twice);
        for &v in &once {
            let q = format.quantize(v as f64);
            prop_assert_eq!(q.to_f64() as f32, v, "projected values are exactly representable");
        }
    }

    /// The projection error of any weight is bounded by half the local
    /// lattice gap plus one LSB (rounding) — the approximation the paper
    /// trades for energy.
    #[test]
    fn projection_error_is_bounded(
        alphabet in any_alphabet(),
        value in -1.9f32..1.9,
    ) {
        let format = QFormat::new(8, 6);
        let lattice = WeightLattice::new(8, &alphabet);
        let top = *lattice.values().last().expect("nonempty");
        // Saturating magnitudes clamp to the top lattice point; the gap
        // bound applies to the interior.
        let q = format.quantize(value as f64);
        let (_, mag) = man_fixed::bits::sign_magnitude(q.raw(), 8);
        prop_assume!(mag <= top);
        let mut buf = [value];
        constrain_slice(format, &lattice, &mut buf);
        let bound = (lattice.max_gap() as f64 / 2.0 + 1.0) * format.resolution();
        prop_assert!(
            (buf[0] - value).abs() as f64 <= bound,
            "|{} - {value}| > {bound}",
            buf[0]
        );
    }

    /// The pre-computer bank is linear in its input: bank(a·x) entries are
    /// a·x multiples (the CSHM sharing argument).
    #[test]
    fn bank_entries_are_multiples(alphabet in any_alphabet(), x in 0u32..128) {
        let asm = AsmMultiplier::new(8, alphabet.clone());
        let bank = asm.precompute(x);
        for (i, &a) in alphabet.members().iter().enumerate() {
            prop_assert_eq!(bank[i], a as u64 * x as u64);
        }
    }
}
