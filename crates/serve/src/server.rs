//! The TCP front-end: one port, two wire modes, two engines.
//!
//! [`Server::bind`] serves `PROTOCOL.md` over `std::net` in whichever
//! front-end mode resolves (see [`FrontendMode`]):
//!
//! * **reactor** (the default) — the nonblocking poll reactor of
//!   [`crate::reactor`]: a few event-loop threads own every socket,
//!   dispatch workers feed the blocking scheduler, and both NDJSON and
//!   the length-prefixed binary framing are negotiated per connection.
//! * **legacy** — the original thread-per-connection loop (one blocking
//!   thread per client, NDJSON only), kept as a fallback and as the
//!   behavioral reference the reactor's tests compare against.
//!
//! Both engines serve requests through the same [`handle_request`]
//! seam, so responses are byte-identical across engines and wire modes.
//! [`TcpClient`] (NDJSON) and [`BinaryClient`] (binary framing) are the
//! matching blocking clients used by the bench load generators, CI
//! smoke run, and tests.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use serde::Value;

use man_obs::{flight, Span, Stage};

use man_repro::{ManError, Prediction};

use crate::exporter::prometheus_page;
use crate::framing;
use crate::protocol::{
    dump_trace_response, error_response, health_response, load_response, metrics_response,
    parse_request, predict_response, raw_error_response, stats_response, unload_response, Request,
};
use crate::reactor::{FrontendStats, ReactorConfig, ReactorFrontend};
use crate::registry::ModelRegistry;

/// How often an idle legacy connection (or its accept loop, via a
/// self-connect) re-checks the shutdown flag.
const POLL_TICK: Duration = Duration::from_millis(100);

/// The dispatch seam both front-end engines serve requests through.
///
/// Everything above the socket — wire-mode sniffing, framing,
/// backpressure, the dispatch pool — is identical whether the process
/// is a plain model server or a cluster router; only what happens to a
/// *parsed* request differs. A [`ModelRegistry`] serves requests
/// locally (scheduler + sessions); a [`crate::cluster::Router`] routes
/// them to worker processes over the binary framing. Both engines are
/// generic over this trait, so the router inherits NDJSON + binary
/// serving, the reactor's slab, and every backpressure valve for free.
pub trait RequestHandler: Send + Sync + 'static {
    /// Serves one JSON request line (the NDJSON grammar — also carried
    /// inside binary `TAG_REQ_JSON` frames) and renders the response
    /// line, without a trailing newline.
    fn handle_line(&self, line: &str) -> String;

    /// Serves one compact binary predict (the reactor's JSON-free fast
    /// path).
    ///
    /// # Errors
    ///
    /// Whatever the underlying predict path reports; the front-end maps
    /// it onto the stable wire codes.
    fn handle_predict(&self, model: &str, input: Vec<f32>) -> Result<Prediction, ManError>;
}

impl RequestHandler for ModelRegistry {
    fn handle_line(&self, line: &str) -> String {
        handle_request(self, line)
    }

    fn handle_predict(&self, model: &str, input: Vec<f32>) -> Result<Prediction, ManError> {
        self.predict(model, input)
    }
}

/// Serves one already-parsed request line against a registry and renders
/// the response line. This is the single dispatch point shared by every
/// connection of both engines — and a convenient seam for tests.
///
/// Tracing: the `decode` span covers request parsing, the `encode` span
/// covers dispatch *and* response rendering (request ids are assigned
/// deeper, by `ModelHost::submit`, so both carry request id 0).
pub fn handle_request(registry: &ModelRegistry, line: &str) -> String {
    let parsed = {
        let _decode = Span::enter(Stage::Decode);
        parse_request(line)
    };
    let _encode = Span::enter(Stage::Encode);
    match parsed {
        Err(e) => error_response(&e),
        Ok(Request::Predict { model, input }) => match registry.predict(&model, input) {
            Ok(p) => predict_response(&model, &p),
            Err(e) => error_response(&e),
        },
        Ok(Request::Load { model, path }) => match registry.load_file(&model, &path) {
            Ok(info) => load_response(&info),
            Err(e) => error_response(&e),
        },
        Ok(Request::Unload { model }) => match registry.unload(&model) {
            Ok(()) => unload_response(&model),
            Err(e) => error_response(&e),
        },
        Ok(Request::Stats { model }) => match registry.stats(model.as_deref()) {
            Ok(stats) => stats_response(&stats),
            Err(e) => error_response(&e),
        },
        Ok(Request::Metrics) => metrics_response(&prometheus_page(registry)),
        Ok(Request::DumpTrace) => dump_trace_response(flight::last_dump().as_deref()),
        Ok(Request::Health) => health_response(&registry.names()),
        Ok(Request::Join { .. } | Request::Leave { .. }) => raw_error_response(
            "bad_request",
            "join/leave are cluster-router verbs; this server is a plain node",
        ),
    }
}

/// Which engine drives the TCP front-end.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrontendMode {
    /// Nonblocking poll reactor (default): a few threads, many sockets,
    /// NDJSON + binary framing. See [`crate::reactor`].
    Reactor,
    /// Thread-per-connection fallback: one blocking thread per client,
    /// NDJSON only.
    Legacy,
}

impl FrontendMode {
    /// The mode's stable lowercase name (`"reactor"` / `"legacy"`) —
    /// what the serving example and CI smoke print.
    pub fn label(self) -> &'static str {
        match self {
            FrontendMode::Reactor => "reactor",
            FrontendMode::Legacy => "legacy",
        }
    }
}

/// Front-end selection and tuning for [`Server::bind_with`].
#[derive(Clone, Debug, Default)]
pub struct ServerConfig {
    /// Explicit mode; `None` defers to the `MAN_FRONTEND` environment
    /// variable (`reactor` / `legacy`), then to the reactor default.
    pub mode: Option<FrontendMode>,
    /// Reactor tuning (ignored in legacy mode).
    pub reactor: ReactorConfig,
}

fn resolve_mode(explicit: Option<FrontendMode>) -> FrontendMode {
    if let Some(mode) = explicit {
        return mode;
    }
    match std::env::var("MAN_FRONTEND").ok().as_deref() {
        Some("legacy") => FrontendMode::Legacy,
        Some("reactor") => FrontendMode::Reactor,
        _ => FrontendMode::Reactor,
    }
}

enum Engine {
    Reactor(ReactorFrontend),
    Legacy(LegacyFrontend),
}

/// A running TCP front-end over a shared [`ModelRegistry`].
pub struct Server {
    addr: SocketAddr,
    mode: FrontendMode,
    engine: Engine,
}

impl Server {
    /// Binds and starts accepting in the default front-end mode
    /// (reactor, unless `MAN_FRONTEND=legacy`). Bind to port 0 for an
    /// ephemeral port (see [`Server::local_addr`]).
    ///
    /// # Errors
    ///
    /// Propagates the bind (or reactor spawn) failure.
    pub fn bind(addr: impl ToSocketAddrs, registry: Arc<ModelRegistry>) -> io::Result<Self> {
        Self::bind_with(addr, registry, ServerConfig::default())
    }

    /// Binds with explicit front-end selection and tuning.
    ///
    /// # Errors
    ///
    /// Propagates the bind (or reactor spawn) failure.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        registry: Arc<ModelRegistry>,
        config: ServerConfig,
    ) -> io::Result<Self> {
        Self::bind_handler(addr, registry as Arc<dyn RequestHandler>, config)
    }

    /// Binds a front-end over any [`RequestHandler`] — the seam the
    /// cluster router uses to serve both wire modes on one port with
    /// the exact same engines a plain model server gets.
    ///
    /// # Errors
    ///
    /// Propagates the bind (or reactor spawn) failure.
    pub fn bind_handler(
        addr: impl ToSocketAddrs,
        handler: Arc<dyn RequestHandler>,
        config: ServerConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let mode = resolve_mode(config.mode);
        let engine = match mode {
            FrontendMode::Reactor => {
                Engine::Reactor(ReactorFrontend::spawn(listener, handler, config.reactor)?)
            }
            FrontendMode::Legacy => Engine::Legacy(LegacyFrontend::spawn(listener, addr, handler)?),
        };
        Ok(Self { addr, mode, engine })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine this server resolved to at bind time.
    pub fn mode(&self) -> FrontendMode {
        self.mode
    }

    /// Connection-level counters: accepted/open/rejected connections,
    /// the slab high-water mark, and the per-wire-mode split.
    pub fn frontend_stats(&self) -> FrontendStats {
        match &self.engine {
            Engine::Reactor(reactor) => reactor.stats(),
            Engine::Legacy(legacy) => legacy.stats(),
        }
    }

    /// Stops accepting, answers everything in flight, closes every
    /// connection, and joins the engine's threads. Idempotent.
    pub fn shutdown(&mut self) {
        match &mut self.engine {
            Engine::Reactor(reactor) => reactor.shutdown(),
            Engine::Legacy(legacy) => legacy.shutdown(),
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------
// Legacy engine: thread-per-connection, NDJSON only.
// ---------------------------------------------------------------------

/// Process-shared counters behind [`FrontendStats`], updated by both
/// engines (all advisory: they report, they never synchronize data).
pub(crate) use crate::reactor::FrontendCounters;

struct LegacyFrontend {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    counters: Arc<FrontendCounters>,
}

impl LegacyFrontend {
    fn spawn(
        listener: TcpListener,
        addr: SocketAddr,
        handler: Arc<dyn RequestHandler>,
    ) -> io::Result<Self> {
        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(FrontendCounters::default());
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_counters = Arc::clone(&counters);
        let accept_handle = std::thread::Builder::new()
            .name("man-serve/accept".into())
            .spawn(move || accept_loop(&listener, &handler, &accept_shutdown, &accept_counters))?;
        Ok(Self {
            addr,
            shutdown,
            accept_handle: Some(accept_handle),
            counters,
        })
    }

    fn stats(&self) -> FrontendStats {
        self.counters.stats("legacy", 0, 0)
    }

    fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    handler: &Arc<dyn RequestHandler>,
    shutdown: &Arc<AtomicBool>,
    counters: &Arc<FrontendCounters>,
) {
    let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let handler = Arc::clone(handler);
        let conn_shutdown = Arc::clone(shutdown);
        let conn_counters = Arc::clone(counters);
        let handle = std::thread::Builder::new()
            .name("man-serve/conn".into())
            .spawn(move || {
                conn_counters.connection_opened();
                // The legacy engine speaks NDJSON only; binary clients
                // must use the reactor front-end.
                // ORDERING: advisory statistics counter.
                conn_counters.ndjson.fetch_add(1, Ordering::Relaxed);
                connection_loop(stream, handler.as_ref(), &conn_shutdown);
                conn_counters.connection_closed();
            });
        let mut conns = conns.lock().expect("connection list lock poisoned");
        if let Ok(handle) = handle {
            conns.push(handle);
        }
        conns.retain(|h| !h.is_finished());
    }
    let handles: Vec<_> = {
        let mut conns = conns.lock().expect("connection list lock poisoned");
        conns.drain(..).collect()
    };
    for h in handles {
        let _ = h.join();
    }
}

fn connection_loop(stream: TcpStream, handler: &dyn RequestHandler, shutdown: &Arc<AtomicBool>) {
    if stream.set_read_timeout(Some(POLL_TICK)).is_err() {
        return;
    }
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = io::BufWriter::new(write_half);
    let mut reader = BufReader::new(stream);
    let mut raw = Vec::new();
    loop {
        match reader.read_until(b'\n', &mut raw) {
            // EOF: client closed its half; we are done.
            Ok(0) => return,
            Ok(_) => {
                // Bytes, then a strict UTF-8 check — the same stable
                // `bad_request` + close the reactor engine answers, so
                // responses stay identical across engines.
                let Ok(line) = std::str::from_utf8(&raw) else {
                    let reply =
                        raw_error_response("bad_request", "request line is not valid UTF-8");
                    let _ = writeln!(writer, "{reply}").and_then(|()| writer.flush());
                    return;
                };
                if !line.trim().is_empty() {
                    let response = handler.handle_line(line);
                    if writeln!(writer, "{response}")
                        .and_then(|()| writer.flush())
                        .is_err()
                    {
                        return;
                    }
                }
                raw.clear();
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Idle tick; partially-read bytes stay in `raw`.
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

// ---------------------------------------------------------------------
// Clients.
// ---------------------------------------------------------------------

/// A wire-level failure seen by [`TcpClient`] / [`BinaryClient`]: the
/// stable protocol code plus the server's message (or `"io"` for
/// transport failures).
#[derive(Clone, Debug)]
pub struct WireError {
    /// Stable error code (`overloaded`, `unknown_model`, ... or `io`).
    pub code: String,
    /// Human-readable detail.
    pub message: String,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.code, self.message)
    }
}

impl std::error::Error for WireError {}

impl WireError {
    fn io(e: &io::Error) -> Self {
        Self {
            code: "io".into(),
            message: e.to_string(),
        }
    }

    fn protocol(msg: impl Into<String>) -> Self {
        Self {
            code: "bad_response".into(),
            message: msg.into(),
        }
    }
}

use crate::protocol::entry as field;

/// Unwraps a parsed response envelope: `Ok` for `"ok": true`, the
/// server's error code/message for `"ok": false`.
fn check_ok(value: Value) -> Result<Value, WireError> {
    let obj = value
        .as_object()
        .ok_or_else(|| WireError::protocol("response is not an object"))?;
    match field(obj, "ok") {
        Some(Value::Bool(true)) => Ok(value),
        Some(Value::Bool(false)) => {
            let get_str = |key: &str| match field(obj, key) {
                Some(Value::Str(s)) => s.clone(),
                _ => String::new(),
            };
            Err(WireError {
                code: get_str("error"),
                message: get_str("message"),
            })
        }
        _ => Err(WireError::protocol("response has no `ok` field")),
    }
}

/// A blocking line-protocol (NDJSON) client for the TCP front-end.
///
/// One request in flight at a time; responses arrive in request order.
/// Works against both engines — the reactor sniffs the first byte (a
/// `{`) and speaks NDJSON back.
pub struct TcpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl TcpClient {
    /// Connects to a running [`Server`].
    ///
    /// # Errors
    ///
    /// Propagates connect/clone failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one raw request line and returns the parsed response value.
    ///
    /// # Errors
    ///
    /// [`WireError`] with code `io` on transport failure, `bad_response`
    /// on an unparseable reply.
    pub fn request(&mut self, line: &str) -> Result<Value, WireError> {
        writeln!(self.writer, "{line}").map_err(|e| WireError::io(&e))?;
        self.writer.flush().map_err(|e| WireError::io(&e))?;
        let mut response = String::new();
        self.reader
            .read_line(&mut response)
            .map_err(|e| WireError::io(&e))?;
        if response.is_empty() {
            return Err(WireError::protocol("server closed the connection"));
        }
        serde_json::from_str(response.trim())
            .map_err(|e| WireError::protocol(format!("unparseable response: {e}")))
    }

    /// Sends a request and unwraps the `ok` envelope.
    ///
    /// # Errors
    ///
    /// The server's error code/message when `ok` is `false`, plus the
    /// transport failures of [`TcpClient::request`].
    fn request_ok(&mut self, line: &str) -> Result<Value, WireError> {
        check_ok(self.request(line)?)
    }

    /// `predict` round-trip: returns `(class, scores)`.
    ///
    /// # Errors
    ///
    /// As [`TcpClient::request`], plus any server-reported error.
    pub fn predict(&mut self, model: &str, input: &[f32]) -> Result<(usize, Vec<i64>), WireError> {
        let line = serde_json::to_string(&Value::Object(vec![
            ("op".into(), Value::Str("predict".into())),
            ("model".into(), Value::Str(model.into())),
            ("input".into(), serde::Serialize::to_value(&input)),
        ]))
        .map_err(|e| WireError::protocol(e.to_string()))?;
        let value = self.request_ok(&line)?;
        let obj = value.as_object().expect("request_ok returns objects");
        let class = match field(obj, "class") {
            Some(v) => <usize as serde::Deserialize>::from_value(v)
                .map_err(|e| WireError::protocol(format!("bad `class`: {e}")))?,
            None => return Err(WireError::protocol("predict response lacks `class`")),
        };
        let scores = match field(obj, "scores") {
            Some(v) => <Vec<i64> as serde::Deserialize>::from_value(v)
                .map_err(|e| WireError::protocol(format!("bad `scores`: {e}")))?,
            None => return Err(WireError::protocol("predict response lacks `scores`")),
        };
        Ok((class, scores))
    }

    /// `load` round-trip.
    ///
    /// # Errors
    ///
    /// As [`TcpClient::request`], plus any server-reported error.
    pub fn load(&mut self, model: &str, path: &str) -> Result<Value, WireError> {
        let line = serde_json::to_string(&Value::Object(vec![
            ("op".into(), Value::Str("load".into())),
            ("model".into(), Value::Str(model.into())),
            ("path".into(), Value::Str(path.into())),
        ]))
        .map_err(|e| WireError::protocol(e.to_string()))?;
        self.request_ok(&line)
    }

    /// `unload` round-trip.
    ///
    /// # Errors
    ///
    /// As [`TcpClient::request`], plus any server-reported error.
    pub fn unload(&mut self, model: &str) -> Result<(), WireError> {
        let line = serde_json::to_string(&Value::Object(vec![
            ("op".into(), Value::Str("unload".into())),
            ("model".into(), Value::Str(model.into())),
        ]))
        .map_err(|e| WireError::protocol(e.to_string()))?;
        self.request_ok(&line).map(|_| ())
    }

    /// `stats` round-trip: the raw response value (the `models` array
    /// carries one object per model).
    ///
    /// # Errors
    ///
    /// As [`TcpClient::request`], plus any server-reported error.
    pub fn stats(&mut self, model: Option<&str>) -> Result<Value, WireError> {
        let mut fields = vec![("op".into(), Value::Str("stats".into()))];
        if let Some(model) = model {
            fields.push(("model".into(), Value::Str(model.into())));
        }
        let line = serde_json::to_string(&Value::Object(fields))
            .map_err(|e| WireError::protocol(e.to_string()))?;
        self.request_ok(&line)
    }

    /// `metrics` round-trip: the Prometheus text page.
    ///
    /// # Errors
    ///
    /// As [`TcpClient::request`], plus any server-reported error.
    pub fn metrics_page(&mut self) -> Result<String, WireError> {
        let value = self.request_ok(r#"{"op":"metrics"}"#)?;
        let obj = value.as_object().expect("request_ok returns objects");
        match field(obj, "body") {
            Some(Value::Str(s)) => Ok(s.clone()),
            _ => Err(WireError::protocol("metrics response lacks `body`")),
        }
    }

    /// `dump_trace` round-trip: the most recent flight-recorder dump as
    /// a JSON value, or `None` if nothing has been triggered.
    ///
    /// # Errors
    ///
    /// As [`TcpClient::request`], plus any server-reported error.
    pub fn dump_trace(&mut self) -> Result<Option<Value>, WireError> {
        let value = self.request_ok(r#"{"op":"dump_trace"}"#)?;
        let obj = value.as_object().expect("request_ok returns objects");
        match field(obj, "dump") {
            Some(Value::Null) | None => Ok(None),
            Some(dump) => Ok(Some(dump.clone())),
        }
    }
}

/// A blocking client for the length-prefixed binary framing
/// (`PROTOCOL.md` §binary; reactor front-end only).
///
/// [`BinaryClient::connect`] performs the `MANB` handshake; after it,
/// `predict` travels in the compact fixed-layout encoding (no JSON on
/// the hot path) while every other verb rides JSON-in-a-frame through
/// [`BinaryClient::request`]. Error responses arrive as the same JSON
/// envelopes NDJSON clients see, so error codes are stable across wire
/// modes.
pub struct BinaryClient {
    stream: TcpStream,
    /// The framing version the server agreed to.
    version: u8,
}

impl BinaryClient {
    /// Connects and performs the binary-framing handshake.
    ///
    /// # Errors
    ///
    /// `io` on transport failure; `bad_response` if the server answers
    /// with anything but a valid `MANB` handshake (e.g. a legacy-mode
    /// server, which speaks only NDJSON).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, WireError> {
        let stream = TcpStream::connect(addr).map_err(|e| WireError::io(&e))?;
        Self::handshake_on(stream)
    }

    /// Connects with explicit connect + read/write timeouts — the
    /// constructor the cluster router uses so a dead worker surfaces as
    /// a fast `io` error (and a failover) instead of a hung client.
    ///
    /// # Errors
    ///
    /// As [`BinaryClient::connect`], plus `io` when any deadline
    /// expires.
    pub fn connect_timeout(addr: &SocketAddr, timeout: Duration) -> Result<Self, WireError> {
        let stream = TcpStream::connect_timeout(addr, timeout).map_err(|e| WireError::io(&e))?;
        stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| WireError::io(&e))?;
        stream
            .set_write_timeout(Some(timeout))
            .map_err(|e| WireError::io(&e))?;
        Self::handshake_on(stream)
    }

    fn handshake_on(mut stream: TcpStream) -> Result<Self, WireError> {
        stream.set_nodelay(true).map_err(|e| WireError::io(&e))?;
        stream
            .write_all(&framing::handshake(framing::VERSION))
            .map_err(|e| WireError::io(&e))?;
        let mut hello = [0u8; framing::HANDSHAKE_LEN];
        stream
            .read_exact(&mut hello)
            .map_err(|e| WireError::io(&e))?;
        let version = framing::negotiate(&hello)
            .ok_or_else(|| WireError::protocol("server did not answer the MANB handshake"))?;
        Ok(Self { stream, version })
    }

    /// The framing version negotiated with the server.
    pub fn version(&self) -> u8 {
        self.version
    }

    fn read_frame(&mut self) -> Result<Vec<u8>, WireError> {
        let mut len = [0u8; 4];
        self.stream
            .read_exact(&mut len)
            .map_err(|e| WireError::io(&e))?;
        let len = u32::from_le_bytes(len);
        if len == 0 || len > framing::MAX_FRAME_LEN {
            return Err(WireError::protocol(format!(
                "response frame length {len} out of range"
            )));
        }
        let mut payload = vec![0u8; len as usize];
        self.stream
            .read_exact(&mut payload)
            .map_err(|e| WireError::io(&e))?;
        Ok(payload)
    }

    /// Sends one JSON request (any `PROTOCOL.md` verb) inside a binary
    /// frame and returns the parsed response value.
    ///
    /// # Errors
    ///
    /// `io` on transport failure, `bad_response` on an unparseable or
    /// unexpected reply.
    pub fn request(&mut self, line: &str) -> Result<Value, WireError> {
        let mut payload = Vec::with_capacity(1 + line.len());
        payload.push(framing::TAG_REQ_JSON);
        payload.extend_from_slice(line.as_bytes());
        self.stream
            .write_all(&framing::frame(&payload))
            .map_err(|e| WireError::io(&e))?;
        let response = self.read_frame()?;
        match response.first() {
            Some(&framing::TAG_RESP_JSON) => {
                let text = std::str::from_utf8(&response[1..])
                    .map_err(|e| WireError::protocol(format!("non-UTF-8 response: {e}")))?;
                serde_json::from_str(text)
                    .map_err(|e| WireError::protocol(format!("unparseable response: {e}")))
            }
            tag => Err(WireError::protocol(format!(
                "unexpected response tag {tag:?} for a JSON request"
            ))),
        }
    }

    /// Sends a JSON request and unwraps the `ok` envelope.
    ///
    /// # Errors
    ///
    /// The server's error code/message when `ok` is `false`, plus the
    /// transport failures of [`BinaryClient::request`].
    pub fn request_ok(&mut self, line: &str) -> Result<Value, WireError> {
        check_ok(self.request(line)?)
    }

    /// `predict` in the compact binary encoding: returns
    /// `(class, scores)`, bit-identical to the NDJSON answer.
    ///
    /// # Errors
    ///
    /// As [`BinaryClient::request`], plus any server-reported error
    /// (which arrives as a JSON error frame carrying the same stable
    /// codes).
    pub fn predict(&mut self, model: &str, input: &[f32]) -> Result<(usize, Vec<i64>), WireError> {
        let frame = framing::frame_predict_request(model, input);
        self.stream
            .write_all(&frame)
            .map_err(|e| WireError::io(&e))?;
        let response = self.read_frame()?;
        match response.first() {
            Some(&framing::TAG_RESP_PREDICT) => framing::decode_predict_response(&response[1..])
                .map_err(|e| WireError::protocol(format!("bad predict response: {e}"))),
            Some(&framing::TAG_RESP_JSON) => {
                let text = std::str::from_utf8(&response[1..])
                    .map_err(|e| WireError::protocol(format!("non-UTF-8 response: {e}")))?;
                let value: Value = serde_json::from_str(text)
                    .map_err(|e| WireError::protocol(format!("unparseable response: {e}")))?;
                check_ok(value)
                    .map(|_| Err(WireError::protocol("ok envelope on a predict frame")))?
            }
            tag => Err(WireError::protocol(format!(
                "unexpected response tag {tag:?} for a predict frame"
            ))),
        }
    }
}
