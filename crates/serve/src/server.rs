//! The TCP front-end: newline-delimited JSON over `std::net`.
//!
//! One accept thread plus one thread per connection. Connections poll
//! with a short read timeout so a [`Server::shutdown`] is observed
//! within a tick even on an idle socket; accepted requests always get a
//! response line before the connection closes. [`TcpClient`] is the
//! matching blocking client used by the bench load generator, CI smoke
//! run, and tests.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use serde::Value;

use man_obs::{flight, Span, Stage};

use crate::exporter::prometheus_page;
use crate::protocol::{
    dump_trace_response, error_response, load_response, metrics_response, parse_request,
    predict_response, stats_response, unload_response, Request,
};
use crate::registry::ModelRegistry;

/// How often an idle connection (or the accept loop, via a self-connect)
/// re-checks the shutdown flag.
const POLL_TICK: Duration = Duration::from_millis(100);

/// Serves one already-parsed request line against a registry and renders
/// the response line. This is the single dispatch point shared by every
/// connection — and a convenient seam for tests.
///
/// Tracing: the `decode` span covers request parsing, the `encode` span
/// covers dispatch *and* response rendering (request ids are assigned
/// deeper, by `ModelHost::submit`, so both carry request id 0).
pub fn handle_request(registry: &ModelRegistry, line: &str) -> String {
    let parsed = {
        let _decode = Span::enter(Stage::Decode);
        parse_request(line)
    };
    let _encode = Span::enter(Stage::Encode);
    match parsed {
        Err(e) => error_response(&e),
        Ok(Request::Predict { model, input }) => match registry.predict(&model, input) {
            Ok(p) => predict_response(&model, &p),
            Err(e) => error_response(&e),
        },
        Ok(Request::Load { model, path }) => match registry.load_file(&model, &path) {
            Ok(info) => load_response(&info),
            Err(e) => error_response(&e),
        },
        Ok(Request::Unload { model }) => match registry.unload(&model) {
            Ok(()) => unload_response(&model),
            Err(e) => error_response(&e),
        },
        Ok(Request::Stats { model }) => match registry.stats(model.as_deref()) {
            Ok(stats) => stats_response(&stats),
            Err(e) => error_response(&e),
        },
        Ok(Request::Metrics) => metrics_response(&prometheus_page(registry)),
        Ok(Request::DumpTrace) => dump_trace_response(flight::last_dump().as_deref()),
    }
}

/// A running TCP front-end over a shared [`ModelRegistry`].
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts accepting. Bind to port 0 for an ephemeral port
    /// (see [`Server::local_addr`]).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: impl ToSocketAddrs, registry: Arc<ModelRegistry>) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_handle = std::thread::Builder::new()
            .name("man-serve/accept".into())
            .spawn(move || accept_loop(&listener, &registry, &accept_shutdown))?;
        Ok(Self {
            addr,
            shutdown,
            accept_handle: Some(accept_handle),
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, wakes every connection, and joins the accept
    /// loop (which joins the connection threads). Idempotent.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, registry: &Arc<ModelRegistry>, shutdown: &Arc<AtomicBool>) {
    let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let registry = Arc::clone(registry);
        let conn_shutdown = Arc::clone(shutdown);
        let handle = std::thread::Builder::new()
            .name("man-serve/conn".into())
            .spawn(move || connection_loop(stream, &registry, &conn_shutdown));
        let mut conns = conns.lock().expect("connection list lock poisoned");
        if let Ok(handle) = handle {
            conns.push(handle);
        }
        conns.retain(|h| !h.is_finished());
    }
    let handles: Vec<_> = {
        let mut conns = conns.lock().expect("connection list lock poisoned");
        conns.drain(..).collect()
    };
    for h in handles {
        let _ = h.join();
    }
}

fn connection_loop(stream: TcpStream, registry: &ModelRegistry, shutdown: &Arc<AtomicBool>) {
    if stream.set_read_timeout(Some(POLL_TICK)).is_err() {
        return;
    }
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = io::BufWriter::new(write_half);
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            // EOF: client closed its half; we are done.
            Ok(0) => return,
            Ok(_) => {
                if !line.trim().is_empty() {
                    let response = handle_request(registry, &line);
                    if writeln!(writer, "{response}")
                        .and_then(|()| writer.flush())
                        .is_err()
                    {
                        return;
                    }
                }
                line.clear();
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Idle tick; partially-read bytes stay in `line`.
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// A wire-level failure seen by [`TcpClient`]: the stable protocol code
/// plus the server's message (or `"io"` for transport failures).
#[derive(Clone, Debug)]
pub struct WireError {
    /// Stable error code (`overloaded`, `unknown_model`, ... or `io`).
    pub code: String,
    /// Human-readable detail.
    pub message: String,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.code, self.message)
    }
}

impl std::error::Error for WireError {}

impl WireError {
    fn io(e: &io::Error) -> Self {
        Self {
            code: "io".into(),
            message: e.to_string(),
        }
    }

    fn protocol(msg: impl Into<String>) -> Self {
        Self {
            code: "bad_response".into(),
            message: msg.into(),
        }
    }
}

use crate::protocol::entry as field;

/// A blocking line-protocol client for the TCP front-end.
pub struct TcpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl TcpClient {
    /// Connects to a running [`Server`].
    ///
    /// # Errors
    ///
    /// Propagates connect/clone failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one raw request line and returns the parsed response value.
    ///
    /// # Errors
    ///
    /// [`WireError`] with code `io` on transport failure, `bad_response`
    /// on an unparseable reply.
    pub fn request(&mut self, line: &str) -> Result<Value, WireError> {
        writeln!(self.writer, "{line}").map_err(|e| WireError::io(&e))?;
        self.writer.flush().map_err(|e| WireError::io(&e))?;
        let mut response = String::new();
        self.reader
            .read_line(&mut response)
            .map_err(|e| WireError::io(&e))?;
        if response.is_empty() {
            return Err(WireError::protocol("server closed the connection"));
        }
        serde_json::from_str(response.trim())
            .map_err(|e| WireError::protocol(format!("unparseable response: {e}")))
    }

    /// Sends a request and unwraps the `ok` envelope.
    ///
    /// # Errors
    ///
    /// The server's error code/message when `ok` is `false`, plus the
    /// transport failures of [`TcpClient::request`].
    fn request_ok(&mut self, line: &str) -> Result<Value, WireError> {
        let value = self.request(line)?;
        let obj = value
            .as_object()
            .ok_or_else(|| WireError::protocol("response is not an object"))?;
        match field(obj, "ok") {
            Some(Value::Bool(true)) => Ok(value),
            Some(Value::Bool(false)) => {
                let get_str = |key: &str| match field(obj, key) {
                    Some(Value::Str(s)) => s.clone(),
                    _ => String::new(),
                };
                Err(WireError {
                    code: get_str("error"),
                    message: get_str("message"),
                })
            }
            _ => Err(WireError::protocol("response has no `ok` field")),
        }
    }

    /// `predict` round-trip: returns `(class, scores)`.
    ///
    /// # Errors
    ///
    /// As [`TcpClient::request`], plus any server-reported error.
    pub fn predict(&mut self, model: &str, input: &[f32]) -> Result<(usize, Vec<i64>), WireError> {
        let line = serde_json::to_string(&Value::Object(vec![
            ("op".into(), Value::Str("predict".into())),
            ("model".into(), Value::Str(model.into())),
            ("input".into(), serde::Serialize::to_value(&input)),
        ]))
        .map_err(|e| WireError::protocol(e.to_string()))?;
        let value = self.request_ok(&line)?;
        let obj = value.as_object().expect("request_ok returns objects");
        let class = match field(obj, "class") {
            Some(v) => <usize as serde::Deserialize>::from_value(v)
                .map_err(|e| WireError::protocol(format!("bad `class`: {e}")))?,
            None => return Err(WireError::protocol("predict response lacks `class`")),
        };
        let scores = match field(obj, "scores") {
            Some(v) => <Vec<i64> as serde::Deserialize>::from_value(v)
                .map_err(|e| WireError::protocol(format!("bad `scores`: {e}")))?,
            None => return Err(WireError::protocol("predict response lacks `scores`")),
        };
        Ok((class, scores))
    }

    /// `load` round-trip.
    ///
    /// # Errors
    ///
    /// As [`TcpClient::request`], plus any server-reported error.
    pub fn load(&mut self, model: &str, path: &str) -> Result<Value, WireError> {
        let line = serde_json::to_string(&Value::Object(vec![
            ("op".into(), Value::Str("load".into())),
            ("model".into(), Value::Str(model.into())),
            ("path".into(), Value::Str(path.into())),
        ]))
        .map_err(|e| WireError::protocol(e.to_string()))?;
        self.request_ok(&line)
    }

    /// `unload` round-trip.
    ///
    /// # Errors
    ///
    /// As [`TcpClient::request`], plus any server-reported error.
    pub fn unload(&mut self, model: &str) -> Result<(), WireError> {
        let line = serde_json::to_string(&Value::Object(vec![
            ("op".into(), Value::Str("unload".into())),
            ("model".into(), Value::Str(model.into())),
        ]))
        .map_err(|e| WireError::protocol(e.to_string()))?;
        self.request_ok(&line).map(|_| ())
    }

    /// `stats` round-trip: the raw response value (the `models` array
    /// carries one object per model).
    ///
    /// # Errors
    ///
    /// As [`TcpClient::request`], plus any server-reported error.
    pub fn stats(&mut self, model: Option<&str>) -> Result<Value, WireError> {
        let mut fields = vec![("op".into(), Value::Str("stats".into()))];
        if let Some(model) = model {
            fields.push(("model".into(), Value::Str(model.into())));
        }
        let line = serde_json::to_string(&Value::Object(fields))
            .map_err(|e| WireError::protocol(e.to_string()))?;
        self.request_ok(&line)
    }

    /// `metrics` round-trip: the Prometheus text page.
    ///
    /// # Errors
    ///
    /// As [`TcpClient::request`], plus any server-reported error.
    pub fn metrics_page(&mut self) -> Result<String, WireError> {
        let value = self.request_ok(r#"{"op":"metrics"}"#)?;
        let obj = value.as_object().expect("request_ok returns objects");
        match field(obj, "body") {
            Some(Value::Str(s)) => Ok(s.clone()),
            _ => Err(WireError::protocol("metrics response lacks `body`")),
        }
    }

    /// `dump_trace` round-trip: the most recent flight-recorder dump as
    /// a JSON value, or `None` if nothing has been triggered.
    ///
    /// # Errors
    ///
    /// As [`TcpClient::request`], plus any server-reported error.
    pub fn dump_trace(&mut self) -> Result<Option<Value>, WireError> {
        let value = self.request_ok(r#"{"op":"dump_trace"}"#)?;
        let obj = value.as_object().expect("request_ok returns objects");
        match field(obj, "dump") {
            Some(Value::Null) | None => Ok(None),
            Some(dump) => Ok(Some(dump.clone())),
        }
    }
}
