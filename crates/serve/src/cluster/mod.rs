//! The multi-node sharded serving tier (DESIGN.md §14).
//!
//! One process scales to one machine's cores; the ROADMAP's "millions
//! of users" rung needs the unit of scaling to become a *process*.
//! This module adds exactly one new moving part — the [`Router`] — and
//! reuses everything else the workspace already proves:
//!
//! * **Front-end reuse** — the router implements
//!   [`crate::server::RequestHandler`], so
//!   [`crate::Server::bind_handler`] serves it through the same poll
//!   reactor (or legacy engine) a plain model server uses: both wire
//!   modes on one port, same backpressure, same stable error codes.
//! * **Transport reuse** — router→worker traffic is the existing MANB
//!   binary framing (`PROTOCOL.md` §binary); workers are stock
//!   [`crate::Server`] processes, no worker-side changes needed beyond
//!   the `health` verb every node answers.
//! * **Contract preserved** — every replica of a model answers
//!   bit-identically (the workspace invariant), which is what makes
//!   health-check-driven failover invisible to clients: a retry on a
//!   different replica returns the *same bytes*.
//!
//! Placement is a consistent-hash [`HashRing`] ([`ring`]) with
//! per-model replica sets; [`backend`] holds the per-worker connection
//! pool + health state; [`router`] the routing table, bounded-retry
//! failover and drain-then-join rebalance; [`metrics`] the
//! `man_cluster_*` Prometheus plane.

pub mod backend;
pub mod metrics;
pub mod ring;
pub mod router;

pub use backend::{Backend, BackendStats};
pub use metrics::cluster_prometheus_page;
pub use ring::HashRing;
pub use router::{ModelPlacement, Router, RouterConfig, RouterStats};
