//! Router-side observability: retry/failover counters and the cluster
//! Prometheus page.
//!
//! The page rides the existing export plane (`man_obs::export` — the
//! same `PromText` builder the single-process [`crate::exporter`]
//! uses) and answers the standard `metrics` verb, so a scrape config
//! pointed at a router needs nothing cluster-specific. Metric names
//! are namespaced `man_cluster_*`; per-backend series carry a `node`
//! label.

use std::sync::atomic::{AtomicU64, Ordering};

use man_obs::export::PromText;

use super::router::Router;

/// Lifetime routing counters (all advisory — they report, they never
/// synchronize data).
#[derive(Default)]
pub(crate) struct RouterCounters {
    /// Route attempts beyond the first.
    retries: AtomicU64,
    /// Predicts answered by a non-preferred replica.
    failovers: AtomicU64,
    /// Predicts that burned the whole retry budget.
    no_backend: AtomicU64,
}

impl RouterCounters {
    pub(crate) fn record_retry(&self) {
        // ORDERING: advisory statistics counter.
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_failover(&self) {
        // ORDERING: advisory statistics counter.
        self.failovers.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_no_backend(&self) {
        // ORDERING: advisory statistics counter.
        self.no_backend.fetch_add(1, Ordering::Relaxed);
    }

    /// `(retries, failovers, no_backend)` at this instant.
    // ORDERING: advisory snapshot of statistics counters.
    pub(crate) fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.retries.load(Ordering::Relaxed),
            self.failovers.load(Ordering::Relaxed),
            self.no_backend.load(Ordering::Relaxed),
        )
    }
}

/// Renders the router's Prometheus text page: routing counters,
/// per-backend health/traffic/latency, and placement gauges.
pub fn cluster_prometheus_page(router: &Router) -> String {
    let stats = router.stats();
    let mut page = PromText::new();

    page.header(
        "man_cluster_nodes",
        "gauge",
        "Worker nodes in the routing table.",
    );
    page.sample_u64("man_cluster_nodes", &[], stats.nodes.len() as u64);

    page.header(
        "man_cluster_models",
        "gauge",
        "Models placed on the cluster.",
    );
    page.sample_u64("man_cluster_models", &[], stats.models.len() as u64);

    page.header(
        "man_cluster_retries_total",
        "counter",
        "Route attempts beyond the first.",
    );
    let (retries, failovers, no_backend) = router.counters().snapshot();
    page.sample_u64("man_cluster_retries_total", &[], retries);

    page.header(
        "man_cluster_failovers_total",
        "counter",
        "Predicts answered by a non-preferred replica.",
    );
    page.sample_u64("man_cluster_failovers_total", &[], failovers);

    page.header(
        "man_cluster_no_backend_total",
        "counter",
        "Predicts that exhausted the retry budget.",
    );
    page.sample_u64("man_cluster_no_backend_total", &[], no_backend);

    page.header(
        "man_cluster_backend_up",
        "gauge",
        "Whether the router considers this backend healthy.",
    );
    for node in &stats.nodes {
        page.sample_u64(
            "man_cluster_backend_up",
            &[("node", &node.node)],
            u64::from(node.healthy),
        );
    }

    page.header(
        "man_cluster_backend_requests_total",
        "counter",
        "Requests the router sent this backend.",
    );
    for node in &stats.nodes {
        page.sample_u64(
            "man_cluster_backend_requests_total",
            &[("node", &node.node)],
            node.requests,
        );
    }

    page.header(
        "man_cluster_backend_failures_total",
        "counter",
        "Transport failures observed against this backend.",
    );
    for node in &stats.nodes {
        page.sample_u64(
            "man_cluster_backend_failures_total",
            &[("node", &node.node)],
            node.failures,
        );
    }

    page.header(
        "man_cluster_backend_latency_us",
        "histogram",
        "Router-to-worker round-trip latency (microseconds).",
    );
    for backend in router.backends() {
        page.histogram_us(
            "man_cluster_backend_latency_us",
            &[("node", backend.addr())],
            &backend.latency_snapshot(),
        );
    }

    page.header(
        "man_cluster_model_replicas",
        "gauge",
        "Replica count per placed model.",
    );
    for placement in &stats.models {
        page.sample_u64(
            "man_cluster_model_replicas",
            &[("model", &placement.model)],
            placement.replicas.len() as u64,
        );
    }

    page.finish()
}
