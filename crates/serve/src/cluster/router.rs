//! The cluster router: shards models across worker processes and
//! serves clients through the same front-end engines a plain server
//! uses.
//!
//! A [`Router`] implements [`RequestHandler`], so
//! [`crate::Server::bind_handler`] gives it both wire modes (NDJSON +
//! MANB binary), the reactor slab, and every backpressure valve for
//! free — the router *is* a server whose "registry" happens to live in
//! other processes. Worker-facing traffic always travels MANB
//! ([`super::backend`]).
//!
//! ## Routing
//!
//! Model names shard over a consistent-hash [`HashRing`]; each model
//! is served by its first `replicas` distinct ring successors (hot
//! models can pin a larger replica set via
//! [`RouterConfig::hot_replicas`]). `predict` tries replicas in ring
//! preference order, healthy first, with a bounded retry budget
//! ([`RouterConfig::max_attempts`]); transport failures fail over to
//! the next replica, worker-answered errors pass through verbatim
//! (`ServeError::Upstream` keeps the worker's stable code). When the
//! budget burns out: `no_backend`.
//!
//! ## Health and failover
//!
//! A checker thread probes every backend each
//! [`RouterConfig::health_interval`] with the `stats` verb. Transport
//! failures (from probes *or* real traffic) past
//! [`RouterConfig::unhealthy_after`] mark a backend unhealthy, which
//! demotes it in routing preference; the next successful round trip —
//! usually a probe after the worker returns — restores it. Because
//! every replica answers bit-identically (the workspace invariant),
//! failover is invisible to clients beyond latency.
//!
//! ## Rebalance (drain-then-join)
//!
//! `join`/`leave`/`load`/`unload` serialize on an admin lock and never
//! mutate the routing table until the *next* placement is already
//! serviceable: models are loaded onto newly-responsible nodes first,
//! the table swaps second, and only then are moved models unloaded
//! from nodes that shed them. In-flight requests route on whichever
//! table they read — both sides can answer during the handoff.
//!
//! LOCK-ORDER: `admin` → `table` → (backend) `pool`; the predict path
//! takes `table` alone and drops it before any backend I/O.

use std::sync::{Arc, Condvar, Mutex, RwLock, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

use serde::Value;

use man_obs::{flight, Span, Stage};
use man_repro::{ManError, Prediction, ServeError};

use super::backend::{Backend, BackendStats};
use super::metrics::{cluster_prometheus_page, RouterCounters};
use super::ring::HashRing;
use crate::protocol::{
    dump_trace_response, error_response, parse_request, predict_response, Request,
};
use crate::server::{RequestHandler, WireError};

/// Tuning for a [`Router`].
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Virtual nodes per worker on the hash ring.
    pub vnodes: usize,
    /// Replica set size for models without a hot override.
    pub default_replicas: usize,
    /// Per-model replica overrides for hot models: `(model, replicas)`.
    pub hot_replicas: Vec<(String, usize)>,
    /// Total route attempts per predict before `no_backend`.
    pub max_attempts: usize,
    /// Connect + read + write deadline for one worker round trip.
    pub request_timeout: Duration,
    /// How often the health checker probes every backend.
    pub health_interval: Duration,
    /// Consecutive transport failures before a backend is demoted.
    pub unhealthy_after: u32,
    /// Idle MANB connections pooled per backend.
    pub pool_per_backend: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            vnodes: 64,
            default_replicas: 2,
            hot_replicas: Vec::new(),
            max_attempts: 3,
            request_timeout: Duration::from_secs(2),
            health_interval: Duration::from_millis(250),
            unhealthy_after: 1,
            pool_per_backend: 4,
        }
    }
}

/// One model's placement entry in the routing table.
#[derive(Clone, Debug)]
struct ModelEntry {
    /// The artifact path workers load it from (re-sent on rebalance).
    path: String,
    /// Replica set size (resolved at load time from the config).
    replicas: usize,
}

/// The routing table: swapped atomically (under the write lock) so the
/// predict path sees either the old placement or the new, never a mix.
struct RouteTable {
    ring: HashRing,
    nodes: std::collections::BTreeMap<String, Arc<Backend>>,
    models: std::collections::BTreeMap<String, ModelEntry>,
}

/// Where a model lives: its name and replica addresses in ring order.
#[derive(Clone, Debug)]
pub struct ModelPlacement {
    /// Registry name.
    pub model: String,
    /// Replica node addresses, ring preference order.
    pub replicas: Vec<String>,
}

/// A point-in-time view of the whole router, for `health` responses,
/// the Prometheus page and the bench reports.
#[derive(Clone, Debug)]
pub struct RouterStats {
    /// Every backend's state.
    pub nodes: Vec<BackendStats>,
    /// Every model's placement.
    pub models: Vec<ModelPlacement>,
    /// Route attempts beyond the first, lifetime.
    pub retries: u64,
    /// Predicts answered by a replica other than the ring-preferred
    /// one, lifetime.
    pub failovers: u64,
    /// Predicts that burned the whole retry budget, lifetime.
    pub no_backend: u64,
}

/// Signals the health-checker thread to exit promptly.
struct CheckerGate {
    stop: Mutex<bool>,
    cv: Condvar,
}

/// The cluster router. Construct with [`Router::new`], register
/// workers with [`Router::join_node`], then hand it to
/// [`crate::Server::bind_handler`] to serve clients.
pub struct Router {
    config: RouterConfig,
    table: RwLock<RouteTable>,
    /// Serializes admin operations (load/unload/join/leave) so
    /// rebalances never interleave. LOCK-ORDER: `admin` → `table`.
    admin: Mutex<()>,
    counters: RouterCounters,
    gate: Arc<CheckerGate>,
    checker: Mutex<Option<JoinHandle<()>>>,
}

/// Lifts a worker-side wire error into the unified error type,
/// preserving the worker's stable code for the client.
fn upstream(e: WireError) -> ManError {
    ServeError::Upstream {
        code: e.code,
        message: e.message,
    }
    .into()
}

/// Wire-error codes worth a failover retry: the transport died, the
/// worker is shutting down, or (mid-rebalance) it no longer hosts the
/// model. Everything else is a real answer and passes through.
fn retryable(code: &str) -> bool {
    matches!(
        code,
        "io" | "bad_response" | "unavailable" | "unknown_model"
    )
}

fn render(value: &Value) -> String {
    serde_json::to_string(value).expect("router responses contain no non-finite floats")
}

impl Router {
    /// Builds an empty router and starts its health-checker thread.
    /// The checker holds only a `Weak` reference — dropping the last
    /// `Arc<Router>` lets it exit on its next tick; call
    /// [`Router::shutdown`] for a prompt, joined stop.
    pub fn new(config: RouterConfig) -> Arc<Self> {
        let router = Arc::new(Self {
            table: RwLock::new(RouteTable {
                ring: HashRing::new(config.vnodes),
                nodes: std::collections::BTreeMap::new(),
                models: std::collections::BTreeMap::new(),
            }),
            admin: Mutex::new(()),
            counters: RouterCounters::default(),
            gate: Arc::new(CheckerGate {
                stop: Mutex::new(false),
                cv: Condvar::new(),
            }),
            checker: Mutex::new(None),
            config,
        });
        let weak = Arc::downgrade(&router);
        let gate = Arc::clone(&router.gate);
        let interval = router.config.health_interval;
        let handle = std::thread::Builder::new()
            .name("man-cluster/health".into())
            .spawn(move || health_loop(&weak, &gate, interval))
            .expect("spawning the health-checker thread");
        *router.checker.lock().expect("router checker lock poisoned") = Some(handle);
        router
    }

    /// The resolved replica-set size for a model name.
    fn replicas_for(&self, model: &str) -> usize {
        self.config
            .hot_replicas
            .iter()
            .find(|(m, _)| m == model)
            .map(|&(_, n)| n)
            .unwrap_or(self.config.default_replicas)
            .max(1)
    }

    /// Stops the health checker and joins it. Idempotent; called by
    /// `Drop` too, but an explicit call gives a prompt, deterministic
    /// stop.
    pub fn shutdown(&self) {
        {
            let mut stop = self.gate.stop.lock().expect("checker gate lock poisoned");
            *stop = true;
        }
        self.gate.cv.notify_all();
        let handle = {
            let mut checker = self.checker.lock().expect("router checker lock poisoned");
            checker.take()
        };
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }

    // -- admin plane ---------------------------------------------------

    /// Registers a worker node and rebalances: every model whose new
    /// replica set includes the node is loaded onto it *before* the
    /// routing table swaps, then unloaded (best-effort) from nodes the
    /// move displaced. Returns how many models moved.
    ///
    /// # Errors
    ///
    /// `bad_request` when already joined; the probe/load failure
    /// otherwise (table untouched).
    pub fn join_node(&self, node: &str) -> Result<usize, ManError> {
        let _admin = self.admin.lock().expect("router admin lock poisoned");
        let backend = Arc::new(
            Backend::new(
                node,
                self.config.pool_per_backend,
                self.config.unhealthy_after,
            )
            .map_err(upstream)?,
        );
        if !backend.probe(self.config.request_timeout) {
            return Err(ServeError::Upstream {
                code: "io".into(),
                message: format!("node `{node}` did not answer the stats probe"),
            }
            .into());
        }
        let (next_ring, loads, drops) = {
            let table = self.table.read().expect("router table lock poisoned");
            if table.nodes.contains_key(node) {
                return Err(ServeError::Protocol(format!("node `{node}` already joined")).into());
            }
            let mut next_ring = table.ring.clone();
            next_ring.add(node);
            let mut loads: Vec<(String, String)> = Vec::new();
            let mut drops: Vec<(String, Arc<Backend>)> = Vec::new();
            for (model, entry) in &table.models {
                let old: Vec<String> = table
                    .ring
                    .replicas(model, entry.replicas)
                    .into_iter()
                    .map(str::to_owned)
                    .collect();
                let new: Vec<String> = next_ring
                    .replicas(model, entry.replicas)
                    .into_iter()
                    .map(str::to_owned)
                    .collect();
                if new.iter().any(|a| a == node) {
                    loads.push((model.clone(), entry.path.clone()));
                }
                for shed in old.iter().filter(|a| !new.contains(a)) {
                    if let Some(b) = table.nodes.get(shed) {
                        drops.push((model.clone(), Arc::clone(b)));
                    }
                }
            }
            (next_ring, loads, drops)
        };
        // Drain-then-join: the node must be able to answer for every
        // model it will own before any client request can reach it.
        for (model, path) in &loads {
            backend
                .request_ok(&load_line(model, path), self.config.request_timeout)
                .map_err(upstream)?;
        }
        {
            let mut table = self.table.write().expect("router table lock poisoned");
            table.ring = next_ring;
            table.nodes.insert(node.to_owned(), backend);
        }
        // Only after the swap do displaced nodes shed their copies —
        // requests routed on the old table still find them until here.
        for (model, shed) in &drops {
            let _ = shed.request_ok(&unload_line(model), self.config.request_timeout);
        }
        Ok(loads.len())
    }

    /// Deregisters a worker node with drain semantics: models it
    /// hosted are loaded onto their new replicas first, the table
    /// swaps, then the departing node is (best-effort) unloaded and
    /// its connection pool closed. Returns how many models moved.
    ///
    /// # Errors
    ///
    /// `bad_request` for an unknown node; a load failure on a gaining
    /// replica aborts the rebalance (table untouched).
    pub fn leave_node(&self, node: &str) -> Result<usize, ManError> {
        let _admin = self.admin.lock().expect("router admin lock poisoned");
        let (leaving, next_ring, loads, hosted) = {
            let table = self.table.read().expect("router table lock poisoned");
            let Some(leaving) = table.nodes.get(node).map(Arc::clone) else {
                return Err(ServeError::Protocol(format!("unknown node `{node}`")).into());
            };
            let mut next_ring = table.ring.clone();
            next_ring.remove(node);
            let mut loads: Vec<(String, String, Arc<Backend>)> = Vec::new();
            let mut hosted: Vec<String> = Vec::new();
            for (model, entry) in &table.models {
                let old: Vec<String> = table
                    .ring
                    .replicas(model, entry.replicas)
                    .into_iter()
                    .map(str::to_owned)
                    .collect();
                if old.iter().any(|a| a == node) {
                    hosted.push(model.clone());
                }
                for gained in next_ring
                    .replicas(model, entry.replicas)
                    .iter()
                    .filter(|a| !old.iter().any(|o| o == *a))
                {
                    if let Some(b) = table.nodes.get(*gained) {
                        loads.push((model.clone(), entry.path.clone(), Arc::clone(b)));
                    }
                }
            }
            (leaving, next_ring, loads, hosted)
        };
        // Gaining replicas come up before the leaving node goes away.
        for (model, path, gaining) in &loads {
            gaining
                .request_ok(&load_line(model, path), self.config.request_timeout)
                .map_err(upstream)?;
        }
        {
            let mut table = self.table.write().expect("router table lock poisoned");
            table.ring = next_ring;
            table.nodes.remove(node);
        }
        // Drain the departing worker: evict its models (it may already
        // be gone — that is exactly the failover case) and close the
        // idle connections.
        for model in &hosted {
            let _ = leaving.request_ok(&unload_line(model), self.config.request_timeout);
        }
        leaving.drain_pool();
        Ok(loads.len())
    }

    /// Loads a model onto its replica set (by artifact path visible to
    /// the workers) and installs it in the routing table. On a partial
    /// failure the already-loaded replicas are (best-effort) rolled
    /// back and the table is untouched.
    ///
    /// # Errors
    ///
    /// `no_backend` on an empty cluster; the first worker's load
    /// failure verbatim otherwise.
    pub fn load_model(&self, model: &str, path: &str) -> Result<Value, ManError> {
        let _admin = self.admin.lock().expect("router admin lock poisoned");
        let n = self.replicas_for(model);
        let targets = {
            let table = self.table.read().expect("router table lock poisoned");
            let reps = table.ring.replicas(model, n);
            if reps.is_empty() {
                return Err(ServeError::NoBackend {
                    model: model.to_owned(),
                    attempts: 0,
                }
                .into());
            }
            reps.into_iter()
                .map(|a| Arc::clone(&table.nodes[a]))
                .collect::<Vec<_>>()
        };
        let line = load_line(model, path);
        let mut first: Option<Value> = None;
        for (i, backend) in targets.iter().enumerate() {
            match backend.request_ok(&line, self.config.request_timeout) {
                Ok(v) => {
                    if first.is_none() {
                        first = Some(v);
                    }
                }
                Err(e) => {
                    for done in &targets[..i] {
                        let _ = done.request_ok(&unload_line(model), self.config.request_timeout);
                    }
                    return Err(upstream(e));
                }
            }
        }
        {
            let mut table = self.table.write().expect("router table lock poisoned");
            table.models.insert(
                model.to_owned(),
                ModelEntry {
                    path: path.to_owned(),
                    replicas: n,
                },
            );
        }
        // Relay the first worker's response, with the replica count
        // appended (append-only: existing fields stay verbatim).
        let mut response = first.expect("targets is non-empty");
        if let Value::Object(pairs) = &mut response {
            pairs.push(("replicas".into(), Value::U64(targets.len() as u64)));
        }
        Ok(response)
    }

    /// Unloads a model from every replica (best-effort — a dead
    /// replica has nothing to unload) and removes it from the table.
    ///
    /// # Errors
    ///
    /// `unknown_model` when the router never loaded it.
    pub fn unload_model(&self, model: &str) -> Result<(), ManError> {
        let _admin = self.admin.lock().expect("router admin lock poisoned");
        let targets = {
            let table = self.table.read().expect("router table lock poisoned");
            let Some(entry) = table.models.get(model) else {
                return Err(ServeError::UnknownModel(model.to_owned()).into());
            };
            table
                .ring
                .replicas(model, entry.replicas)
                .into_iter()
                .filter_map(|a| table.nodes.get(a).map(Arc::clone))
                .collect::<Vec<_>>()
        };
        for backend in &targets {
            let _ = backend.request_ok(&unload_line(model), self.config.request_timeout);
        }
        let mut table = self.table.write().expect("router table lock poisoned");
        table.models.remove(model);
        Ok(())
    }

    // -- data plane ----------------------------------------------------

    /// Routes one predict to the model's replica set: ring preference
    /// order, healthy backends first, bounded retries, transport
    /// failures failing over and worker answers passing through.
    ///
    /// # Errors
    ///
    /// `unknown_model` for a model the router never loaded,
    /// `no_backend` when the retry budget burns out, or the worker's
    /// own error verbatim.
    pub fn route_predict(&self, model: &str, input: &[f32]) -> Result<Prediction, ManError> {
        let targets = {
            let table = self.table.read().expect("router table lock poisoned");
            let Some(entry) = table.models.get(model) else {
                return Err(ServeError::UnknownModel(model.to_owned()).into());
            };
            table
                .ring
                .replicas(model, entry.replicas)
                .into_iter()
                .filter_map(|a| table.nodes.get(a).map(Arc::clone))
                .collect::<Vec<_>>()
        };
        if targets.is_empty() {
            self.counters.record_no_backend();
            return Err(ServeError::NoBackend {
                model: model.to_owned(),
                attempts: 0,
            }
            .into());
        }
        // Healthy replicas first, ring order preserved within each
        // class (stable sort); unhealthy ones stay reachable as a last
        // resort — the health flag is advisory, the retry loop decides.
        let mut ordered: Vec<(usize, Arc<Backend>)> = targets.into_iter().enumerate().collect();
        ordered.sort_by_key(|(_, b)| !b.is_healthy());
        let budget = self.config.max_attempts.max(1);
        let mut attempts = 0usize;
        let mut last_retryable: Option<WireError> = None;
        for (preference, backend) in ordered.iter().cycle().take(budget) {
            attempts += 1;
            if attempts > 1 {
                self.counters.record_retry();
            }
            match backend.predict(model, input, self.config.request_timeout) {
                Ok(p) => {
                    if *preference != 0 {
                        self.counters.record_failover();
                    }
                    return Ok(p);
                }
                Err(e) if retryable(&e.code) => last_retryable = Some(e),
                Err(e) => return Err(upstream(e)),
            }
        }
        self.counters.record_no_backend();
        let _ = last_retryable; // detail already counted per backend
        Err(ServeError::NoBackend {
            model: model.to_owned(),
            attempts,
        }
        .into())
    }

    /// A point-in-time snapshot of every backend, placement and
    /// router counter.
    pub fn stats(&self) -> RouterStats {
        let table = self.table.read().expect("router table lock poisoned");
        let nodes = table.nodes.values().map(|b| b.stats()).collect();
        let models = table
            .models
            .iter()
            .map(|(model, entry)| ModelPlacement {
                model: model.clone(),
                replicas: table
                    .ring
                    .replicas(model, entry.replicas)
                    .into_iter()
                    .map(str::to_owned)
                    .collect(),
            })
            .collect();
        let (retries, failovers, no_backend) = self.counters.snapshot();
        RouterStats {
            nodes,
            models,
            retries,
            failovers,
            no_backend,
        }
    }

    /// Every backend (for the health checker and the metrics page).
    pub(crate) fn backends(&self) -> Vec<Arc<Backend>> {
        let table = self.table.read().expect("router table lock poisoned");
        table.nodes.values().map(Arc::clone).collect()
    }

    /// The router's counters (for the metrics page).
    pub(crate) fn counters(&self) -> &RouterCounters {
        &self.counters
    }

    // -- wire rendering ------------------------------------------------

    /// The router's `health` response: `role:"router"` plus per-node
    /// health and per-model placements.
    fn health_line(&self) -> String {
        let stats = self.stats();
        let nodes = stats
            .nodes
            .iter()
            .map(|n| {
                Value::Object(vec![
                    ("node".into(), Value::Str(n.node.clone())),
                    ("healthy".into(), Value::Bool(n.healthy)),
                    ("requests".into(), Value::U64(n.requests)),
                    ("failures".into(), Value::U64(n.failures)),
                ])
            })
            .collect();
        let models = stats
            .models
            .iter()
            .map(|p| {
                Value::Object(vec![
                    ("model".into(), Value::Str(p.model.clone())),
                    (
                        "replicas".into(),
                        Value::Array(p.replicas.iter().map(|a| Value::Str(a.clone())).collect()),
                    ),
                ])
            })
            .collect();
        render(&Value::Object(vec![
            ("ok".into(), Value::Bool(true)),
            ("role".into(), Value::Str("router".into())),
            ("nodes".into(), Value::Array(nodes)),
            ("models".into(), Value::Array(models)),
        ]))
    }

    /// Fans `stats` out to the relevant workers and merges the
    /// `models` arrays, tagging each row with its `node` (append-only:
    /// worker rows keep their fields verbatim). Unreachable workers
    /// are skipped — stats reports what answers.
    fn stats_line(&self, model: Option<&str>) -> String {
        let targets: Vec<Arc<Backend>> = match model {
            None => self.backends(),
            Some(m) => {
                let table = self.table.read().expect("router table lock poisoned");
                match table.models.get(m) {
                    None => {
                        return error_response(&ServeError::UnknownModel(m.to_owned()).into());
                    }
                    Some(entry) => table
                        .ring
                        .replicas(m, entry.replicas)
                        .into_iter()
                        .filter_map(|a| table.nodes.get(a).map(Arc::clone))
                        .collect(),
                }
            }
        };
        let line = match model {
            None => r#"{"op":"stats"}"#.to_owned(),
            Some(m) => render(&Value::Object(vec![
                ("op".into(), Value::Str("stats".into())),
                ("model".into(), Value::Str(m.into())),
            ])),
        };
        let mut merged: Vec<Value> = Vec::new();
        for backend in &targets {
            let Ok(response) = backend.request_ok(&line, self.config.request_timeout) else {
                continue;
            };
            let Value::Object(pairs) = response else {
                continue;
            };
            for (key, value) in pairs {
                if key != "models" {
                    continue;
                }
                let Value::Array(rows) = value else { continue };
                for row in rows {
                    if let Value::Object(mut fields) = row {
                        fields.push(("node".into(), Value::Str(backend.addr().to_owned())));
                        merged.push(Value::Object(fields));
                    }
                }
            }
        }
        render(&Value::Object(vec![
            ("ok".into(), Value::Bool(true)),
            ("models".into(), Value::Array(merged)),
        ]))
    }
}

impl RequestHandler for Router {
    /// The router's dispatch: same decode/encode span placement as a
    /// plain server's [`crate::server::handle_request`], so traces
    /// compare across tiers.
    fn handle_line(&self, line: &str) -> String {
        let parsed = {
            let _decode = Span::enter(Stage::Decode);
            parse_request(line)
        };
        let _encode = Span::enter(Stage::Encode);
        match parsed {
            Err(e) => error_response(&e),
            Ok(Request::Predict { model, input }) => match self.route_predict(&model, &input) {
                Ok(p) => predict_response(&model, &p),
                Err(e) => error_response(&e),
            },
            Ok(Request::Load { model, path }) => match self.load_model(&model, &path) {
                Ok(value) => render(&value),
                Err(e) => error_response(&e),
            },
            Ok(Request::Unload { model }) => match self.unload_model(&model) {
                Ok(()) => crate::protocol::unload_response(&model),
                Err(e) => error_response(&e),
            },
            Ok(Request::Stats { model }) => self.stats_line(model.as_deref()),
            Ok(Request::Metrics) => {
                crate::protocol::metrics_response(&cluster_prometheus_page(self))
            }
            Ok(Request::DumpTrace) => dump_trace_response(flight::last_dump().as_deref()),
            Ok(Request::Health) => self.health_line(),
            Ok(Request::Join { node }) => match self.join_node(&node) {
                Ok(moved) => render(&Value::Object(vec![
                    ("ok".into(), Value::Bool(true)),
                    ("node".into(), Value::Str(node)),
                    ("moved".into(), Value::U64(moved as u64)),
                ])),
                Err(e) => error_response(&e),
            },
            Ok(Request::Leave { node }) => match self.leave_node(&node) {
                Ok(moved) => render(&Value::Object(vec![
                    ("ok".into(), Value::Bool(true)),
                    ("node".into(), Value::Str(node)),
                    ("moved".into(), Value::U64(moved as u64)),
                ])),
                Err(e) => error_response(&e),
            },
        }
    }

    fn handle_predict(&self, model: &str, input: Vec<f32>) -> Result<Prediction, ManError> {
        self.route_predict(model, &input)
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn load_line(model: &str, path: &str) -> String {
    render(&Value::Object(vec![
        ("op".into(), Value::Str("load".into())),
        ("model".into(), Value::Str(model.into())),
        ("path".into(), Value::Str(path.into())),
    ]))
}

fn unload_line(model: &str) -> String {
    render(&Value::Object(vec![
        ("op".into(), Value::Str("unload".into())),
        ("model".into(), Value::Str(model.into())),
    ]))
}

/// The health-checker loop: probe every backend, then wait out the
/// interval on the gate (so shutdown interrupts the wait promptly).
/// Holds only a `Weak<Router>` — the router's lifetime is owned by its
/// users, never by its own checker.
fn health_loop(router: &Weak<Router>, gate: &CheckerGate, interval: Duration) {
    loop {
        {
            let stop = gate.stop.lock().expect("checker gate lock poisoned");
            if *stop {
                return;
            }
        }
        let Some(router) = router.upgrade() else {
            return;
        };
        let timeout = router.config.request_timeout;
        let backends = router.backends();
        drop(router); // do not pin the router's lifetime across probes
        for backend in backends {
            backend.probe(timeout);
        }
        let stop = gate.stop.lock().expect("checker gate lock poisoned");
        let (stop, _) = gate
            .cv
            .wait_timeout(stop, interval)
            .expect("checker gate lock poisoned");
        if *stop {
            return;
        }
    }
}
