//! The consistent-hash ring that shards models across worker nodes.
//!
//! Model names hash onto a 64-bit circle; each node contributes
//! [`HashRing::vnodes`] points (virtual nodes) so load spreads evenly
//! even with three physical nodes. A model's replica set is the first
//! `n` *distinct* nodes met walking clockwise from the model's point.
//!
//! The invariant the cluster proptests pin down: adding or removing a
//! node only remaps models whose replica set *touches* that node —
//! every other model keeps its exact replica list. That is what makes
//! rebalance proportional to the data on the moved node instead of a
//! full reshuffle (the classic consistent-hashing argument).
//!
//! Everything here is pure and deterministic: FNV-1a over the bytes of
//! `node#vnode` / model names, no `std::collections::HashMap`, no
//! randomness — the same node set always yields the same ring, on
//! every replica of the router itself.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte string, pushed through a 64-bit avalanche
/// finalizer (the murmur3 fmix64 constants). Raw FNV-1a has weak
/// low-byte avalanche on short, similar keys — `w1#0` … `w1#63` land
/// in one tiny arc of the circle, which defeats virtual nodes
/// entirely; the finalizer spreads them. Tiny, seedless,
/// deterministic, and good enough dispersion for placement (this is
/// sharding, not security).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xff51_afd7_ed55_8ccd);
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    hash ^ (hash >> 33)
}

/// A consistent-hash ring over named nodes.
///
/// Nodes are identified by their `host:port` strings. The ring itself
/// is a value type: cluster rebalance builds the *next* ring, loads
/// models where the next ring says they belong, and only then swaps it
/// in — so this type never needs interior mutability.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HashRing {
    /// Virtual nodes per physical node.
    vnodes: usize,
    /// Sorted ring points: `(hash, index into nodes)`.
    points: Vec<(u64, usize)>,
    /// The node names, sorted (indices in `points` refer here).
    nodes: Vec<String>,
}

impl HashRing {
    /// An empty ring placing `vnodes` points per node (clamped to at
    /// least 1; 64 is a good default for single-digit node counts).
    pub fn new(vnodes: usize) -> Self {
        Self {
            vnodes: vnodes.max(1),
            points: Vec::new(),
            nodes: Vec::new(),
        }
    }

    /// Virtual nodes per physical node.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// The node names, sorted.
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// Whether `node` is on the ring.
    pub fn contains(&self, node: &str) -> bool {
        self.nodes.iter().any(|n| n == node)
    }

    /// Number of physical nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the ring has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a node (idempotent) and rebuilds the ring points.
    pub fn add(&mut self, node: &str) {
        if self.contains(node) {
            return;
        }
        self.nodes.push(node.to_owned());
        self.nodes.sort();
        self.rebuild();
    }

    /// Removes a node (idempotent) and rebuilds the ring points.
    pub fn remove(&mut self, node: &str) {
        let before = self.nodes.len();
        self.nodes.retain(|n| n != node);
        if self.nodes.len() != before {
            self.rebuild();
        }
    }

    /// Recomputes every point from the node list. O(nodes · vnodes ·
    /// log) — node sets are single-digit, rebalance is rare, and a full
    /// rebuild keeps the points/nodes indices trivially consistent.
    fn rebuild(&mut self) {
        self.points.clear();
        for (i, node) in self.nodes.iter().enumerate() {
            for v in 0..self.vnodes {
                let mut key = Vec::with_capacity(node.len() + 12);
                key.extend_from_slice(node.as_bytes());
                key.push(b'#');
                key.extend_from_slice(v.to_string().as_bytes());
                self.points.push((fnv1a64(&key), i));
            }
        }
        // Ties (astronomically unlikely under FNV-1a, but possible) are
        // broken by node index so the order stays deterministic.
        self.points.sort();
    }

    /// The first `n` *distinct* nodes clockwise from `key`'s point —
    /// the model's replica set in preference order. Returns fewer than
    /// `n` names when the ring has fewer nodes; empty on an empty ring.
    pub fn replicas(&self, key: &str, n: usize) -> Vec<&str> {
        if self.points.is_empty() || n == 0 {
            return Vec::new();
        }
        let want = n.min(self.nodes.len());
        let hash = fnv1a64(key.as_bytes());
        // First point at or after the key's hash (wrapping).
        let start = self.points.partition_point(|&(h, _)| h < hash) % self.points.len();
        let mut out: Vec<&str> = Vec::with_capacity(want);
        for step in 0..self.points.len() {
            let (_, node_idx) = self.points[(start + step) % self.points.len()];
            let name = self.nodes[node_idx].as_str();
            if !out.contains(&name) {
                out.push(name);
                if out.len() == want {
                    break;
                }
            }
        }
        out
    }

    /// The key's primary node (first replica), if any node exists.
    pub fn primary(&self, key: &str) -> Option<&str> {
        self.replicas(key, 1).first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(nodes: &[&str]) -> HashRing {
        let mut r = HashRing::new(64);
        for n in nodes {
            r.add(n);
        }
        r
    }

    #[test]
    fn deterministic_and_idempotent() {
        let a = ring(&["w1", "w2", "w3"]);
        let mut b = ring(&["w3", "w1", "w2"]);
        b.add("w2"); // idempotent re-add
        assert_eq!(a, b);
        assert_eq!(a.replicas("digits", 2), b.replicas("digits", 2));
    }

    #[test]
    fn replica_sets_are_distinct_and_bounded() {
        let r = ring(&["w1", "w2", "w3"]);
        for key in ["a", "b", "digits", "mnist-8bit", ""] {
            let reps = r.replicas(key, 2);
            assert_eq!(reps.len(), 2);
            assert_ne!(reps[0], reps[1]);
            // Asking for more replicas than nodes caps at the node count.
            assert_eq!(r.replicas(key, 10).len(), 3);
        }
        assert!(HashRing::new(64).replicas("a", 2).is_empty());
    }

    #[test]
    fn removal_only_remaps_touched_keys() {
        let full = ring(&["w1", "w2", "w3", "w4"]);
        let mut less = full.clone();
        less.remove("w3");
        for i in 0..200 {
            let key = format!("model-{i}");
            let before = full.replicas(&key, 2);
            let after = less.replicas(&key, 2);
            if before.contains(&"w3") {
                // The surviving replicas keep their relative order.
                let kept: Vec<&str> = before.iter().copied().filter(|&n| n != "w3").collect();
                let still: Vec<&str> = after.iter().copied().filter(|n| kept.contains(n)).collect();
                assert_eq!(kept, still, "key {key}");
            } else {
                assert_eq!(before, after, "untouched key {key} must not move");
            }
        }
    }

    #[test]
    fn spread_is_reasonable() {
        let r = ring(&["w1", "w2", "w3"]);
        let mut counts = [0usize; 3];
        for i in 0..300 {
            let key = format!("m{i}");
            let primary = r.primary(&key).unwrap();
            let idx = r.nodes().iter().position(|n| n == primary).unwrap();
            counts[idx] += 1;
        }
        // With 64 vnodes each node should own a non-trivial share.
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 30, "node {i} owns only {c}/300 keys");
        }
    }
}
