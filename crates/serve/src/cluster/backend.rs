//! One worker node as the router sees it: a connection pool over the
//! binary framing, health state, and per-backend metrics.
//!
//! The router speaks MANB to its workers — the same length-prefixed
//! binary framing clients may use, reused as the inter-node transport
//! (`PROTOCOL.md` §binary). Every verb the router relays travels as
//! JSON-in-a-frame; `predict` uses the compact fixed-layout encoding,
//! so the router hop adds no JSON to the hot path.
//!
//! Error discrimination is the heart of failover: a *transport*
//! failure (`io`, `bad_response`) means the connection — and possibly
//! the worker — is gone, so the connection is dropped, the failure
//! counter bumps, and the caller may retry another replica. A
//! *server-reported* error (`overloaded`, `shape_mismatch`, ...) means
//! the worker is alive and answering; the connection goes back to the
//! pool and the error passes through to the client verbatim.

use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use man_obs::OctaveHistogram;
use man_repro::Prediction;

use crate::server::{BinaryClient, WireError};

/// Wire-error codes that indicate the *transport* (or the peer
/// process) failed, as opposed to the worker answering with an error.
fn is_transport(code: &str) -> bool {
    code == "io" || code == "bad_response"
}

/// A worker node: address, pooled MANB connections, health state and
/// router-side metrics. Shared (`Arc`) between the routing table, the
/// health checker and every in-flight request.
pub struct Backend {
    /// The worker's `host:port` name — the ring identity.
    addr: String,
    /// The resolved socket address connections dial.
    resolved: SocketAddr,
    /// Idle pooled connections (LIFO: the most recently used
    /// connection is the most likely to still be alive).
    pool: Mutex<Vec<BinaryClient>>,
    /// Pool capacity; extra connections returned at checkin are closed.
    pool_cap: usize,
    /// Whether routing should prefer this backend. Flipped by the
    /// failure accounting below and by the health checker.
    healthy: AtomicBool,
    /// Transport failures since the last success.
    consecutive_failures: AtomicU32,
    /// Failures needed to mark the backend unhealthy.
    unhealthy_after: u32,
    /// Requests the router sent this backend (predict + relayed verbs).
    requests: AtomicU64,
    /// Transport failures observed against this backend.
    failures: AtomicU64,
    /// Per-request round-trip latency (µs) through this backend.
    latency: OctaveHistogram,
}

/// A point-in-time view of one backend, for `health` responses, the
/// cluster Prometheus page and the bench reports.
#[derive(Clone, Debug)]
pub struct BackendStats {
    /// The worker's `host:port` name.
    pub node: String,
    /// Whether routing currently prefers this backend.
    pub healthy: bool,
    /// Requests the router sent this backend.
    pub requests: u64,
    /// Transport failures observed against this backend.
    pub failures: u64,
    /// Router→worker round-trip p50, µs.
    pub p50_us: u64,
    /// Router→worker round-trip p99, µs.
    pub p99_us: u64,
}

impl Backend {
    /// Resolves `addr` and builds an (initially healthy, unconnected)
    /// backend. Connections are dialed lazily per request and pooled.
    ///
    /// # Errors
    ///
    /// `io` when the address does not resolve.
    pub fn new(addr: &str, pool_cap: usize, unhealthy_after: u32) -> Result<Self, WireError> {
        let resolved = addr
            .to_socket_addrs()
            .map_err(|e| WireError {
                code: "io".into(),
                message: format!("cannot resolve `{addr}`: {e}"),
            })?
            .next()
            .ok_or_else(|| WireError {
                code: "io".into(),
                message: format!("`{addr}` resolves to no address"),
            })?;
        Ok(Self {
            addr: addr.to_owned(),
            resolved,
            pool: Mutex::new(Vec::new()),
            pool_cap: pool_cap.max(1),
            healthy: AtomicBool::new(true),
            consecutive_failures: AtomicU32::new(0),
            unhealthy_after: unhealthy_after.max(1),
            requests: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            latency: OctaveHistogram::new(),
        })
    }

    /// The worker's `host:port` name.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Whether routing currently prefers this backend.
    pub fn is_healthy(&self) -> bool {
        // ORDERING: advisory routing hint — a stale read costs at most
        // one extra failover attempt; the retry loop is the mechanism.
        self.healthy.load(Ordering::Relaxed)
    }

    /// Records a successful round trip: resets the failure streak and
    /// restores the healthy flag (failover recovery).
    fn mark_success(&self) {
        // ORDERING: advisory health state — routing re-reads it every
        // attempt and tolerates staleness by retrying.
        self.consecutive_failures.store(0, Ordering::Relaxed);
        // ORDERING: advisory routing hint (see is_healthy).
        self.healthy.store(true, Ordering::Relaxed);
    }

    /// Records a transport failure; past the threshold the backend
    /// drops out of routing preference until a round trip succeeds.
    fn mark_failure(&self) {
        // ORDERING: advisory statistics counter.
        self.failures.fetch_add(1, Ordering::Relaxed);
        // ORDERING: advisory health state; the exact streak count only
        // gates how fast the flag flips, never data visibility.
        let streak = self.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
        if streak >= self.unhealthy_after {
            // ORDERING: advisory routing hint (see is_healthy).
            self.healthy.store(false, Ordering::Relaxed);
        }
    }

    /// Takes a pooled connection or dials a new one.
    fn checkout(&self, timeout: Duration) -> Result<BinaryClient, WireError> {
        let pooled = {
            let mut pool = self.pool.lock().expect("backend pool lock poisoned");
            pool.pop()
        };
        match pooled {
            Some(conn) => Ok(conn),
            None => BinaryClient::connect_timeout(&self.resolved, timeout),
        }
    }

    /// Returns a connection to the pool (dropped when at capacity).
    fn checkin(&self, conn: BinaryClient) {
        let mut pool = self.pool.lock().expect("backend pool lock poisoned");
        if pool.len() < self.pool_cap {
            pool.push(conn);
        }
    }

    /// Closes every idle pooled connection (drain on `leave`).
    pub fn drain_pool(&self) {
        let mut pool = self.pool.lock().expect("backend pool lock poisoned");
        pool.clear();
    }

    /// Runs one round trip on a pooled connection, with the transport
    /// vs server-error discrimination and all the health/metrics
    /// accounting.
    fn round_trip<T>(
        &self,
        timeout: Duration,
        op: impl FnOnce(&mut BinaryClient) -> Result<T, WireError>,
    ) -> Result<T, WireError> {
        // ORDERING: advisory statistics counter.
        self.requests.fetch_add(1, Ordering::Relaxed);
        let start = Instant::now();
        let mut conn = match self.checkout(timeout) {
            Ok(conn) => conn,
            Err(e) => {
                self.mark_failure();
                return Err(e);
            }
        };
        match op(&mut conn) {
            Ok(value) => {
                self.latency.observe(start.elapsed());
                self.mark_success();
                self.checkin(conn);
                Ok(value)
            }
            Err(e) if is_transport(&e.code) => {
                // The connection is in an unknown framing state: drop
                // it (close the socket) rather than pool it.
                self.mark_failure();
                Err(e)
            }
            Err(e) => {
                // The worker answered (with an error): it is alive.
                self.latency.observe(start.elapsed());
                self.mark_success();
                self.checkin(conn);
                Err(e)
            }
        }
    }

    /// One compact binary `predict` through this backend.
    ///
    /// # Errors
    ///
    /// Transport errors (connection dropped, failure recorded) or the
    /// worker's own error verbatim.
    pub fn predict(
        &self,
        model: &str,
        input: &[f32],
        timeout: Duration,
    ) -> Result<Prediction, WireError> {
        let (class, scores) = self.round_trip(timeout, |conn| conn.predict(model, input))?;
        // Operand traces never travel the wire (`PROTOCOL.md`): a
        // routed prediction carries class + scores, like any remote
        // client's.
        Ok(Prediction {
            class,
            scores,
            traces: None,
        })
    }

    /// One JSON verb through this backend, `ok` envelope unwrapped.
    ///
    /// # Errors
    ///
    /// As [`Backend::predict`].
    pub fn request_ok(&self, line: &str, timeout: Duration) -> Result<serde::Value, WireError> {
        self.round_trip(timeout, |conn| conn.request_ok(line))
    }

    /// One health probe (the `stats` verb, as the cheapest
    /// full-round-trip request a worker serves). Success restores the
    /// healthy flag; failure feeds the same accounting as real traffic.
    pub fn probe(&self, timeout: Duration) -> bool {
        self.round_trip(timeout, |conn| conn.request_ok(r#"{"op":"stats"}"#))
            .is_ok()
    }

    /// A point-in-time stats snapshot.
    pub fn stats(&self) -> BackendStats {
        let snap = self.latency.snapshot();
        BackendStats {
            node: self.addr.clone(),
            healthy: self.is_healthy(),
            // ORDERING: advisory snapshot of statistics counters.
            requests: self.requests.load(Ordering::Relaxed),
            // ORDERING: advisory snapshot of statistics counters.
            failures: self.failures.load(Ordering::Relaxed),
            p50_us: snap.quantile(0.50),
            p99_us: snap.quantile(0.99),
        }
    }

    /// The latency histogram snapshot (for the Prometheus page).
    pub fn latency_snapshot(&self) -> man_obs::HistogramSnapshot {
        self.latency.snapshot()
    }
}
