//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! # Grammar
//!
//! Each line is one JSON object. Requests carry an `"op"` discriminator:
//!
//! ```json
//! {"op":"predict","model":"digits","input":[0.0,0.5,...]}
//! {"op":"load","model":"digits","path":"digits.man.json"}
//! {"op":"unload","model":"digits"}
//! {"op":"stats"}            // or {"op":"stats","model":"digits"}
//! {"op":"metrics"}          // Prometheus text page (as a JSON string)
//! {"op":"dump_trace"}       // most recent flight-recorder dump
//! {"op":"health"}           // liveness + loaded models (any node)
//! {"op":"join","node":"host:port"}   // router only: add a worker node
//! {"op":"leave","node":"host:port"}  // router only: remove a worker node
//! ```
//!
//! Responses always carry `"ok"`:
//!
//! ```json
//! {"ok":true,"model":"digits","class":7,"scores":[-1024,...,3172]}
//! {"ok":true,"model":"digits","bits":8,"input_len":256,"layers":2,"alphabets":"1 {1}"}
//! {"ok":true,"models":[{...stats...}]}
//! {"ok":false,"error":"overloaded","message":"model `digits` is overloaded ..."}
//! ```
//!
//! Error codes are stable strings: `overloaded`, `unknown_model`,
//! `unavailable`, `timeout`, `bad_request`, `shape_mismatch`,
//! `bad_artifact`, `io`, `internal` — plus `frame_too_large`, raised by
//! the reactor front-end when a binary frame's length prefix exceeds
//! [`crate::framing::MAX_FRAME_LEN`] (the connection closes after the
//! error is written; see `PROTOCOL.md`), and `no_backend`, raised by
//! the cluster router when a model's replica set has no healthy member
//! left after the bounded retry budget. A router relays worker-side
//! errors *verbatim* ([`man_repro::ServeError::Upstream`]), so clients
//! see identical codes whether they talk to a worker or a router. The
//! same grammar travels unchanged inside binary
//! `TAG_REQ_JSON`/`TAG_RESP_JSON` frames, so codes are identical across
//! both wire modes.
//!
//! Parsing is hand-rolled over the vendored [`serde::Value`] model so
//! optional fields (`"model"` on `stats`) behave leniently and error
//! messages can point at the offending field.

use serde::{Serialize, Value};

use man_repro::{ManError, Prediction, ServeError};

use crate::metrics::ModelStats;
use crate::registry::ModelInfo;

/// A parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Run one inference on a named model.
    Predict {
        /// Registry name.
        model: String,
        /// Flat input vector.
        input: Vec<f32>,
    },
    /// Load (or hot-reload) an artifact from a server-side path.
    Load {
        /// Registry name to install under.
        model: String,
        /// Server-side artifact path.
        path: String,
    },
    /// Evict a model.
    Unload {
        /// Registry name.
        model: String,
    },
    /// Metrics snapshot for one model, or all when `model` is `None`.
    Stats {
        /// Optional registry name.
        model: Option<String>,
    },
    /// The Prometheus text page of the unified export plane.
    Metrics,
    /// The most recent flight-recorder dump, if one was triggered.
    DumpTrace,
    /// Liveness + loaded-model summary. Any node answers it: a plain
    /// server reports `role:"node"`, a cluster router reports
    /// `role:"router"` with per-backend health and replica sets.
    Health,
    /// Node admin (router only): register a worker node and rebalance.
    /// A plain server answers `bad_request`.
    Join {
        /// The worker's `host:port` address.
        node: String,
    },
    /// Node admin (router only): remove a worker node and rebalance.
    /// A plain server answers `bad_request`.
    Leave {
        /// The worker's `host:port` address.
        node: String,
    },
}

fn protocol_err(msg: impl Into<String>) -> ManError {
    ServeError::Protocol(msg.into()).into()
}

/// First value under `key` in a decoded JSON object (the vendored value
/// model keeps objects as ordered pairs).
pub(crate) fn entry<'v>(obj: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn string_field(obj: &[(String, Value)], key: &str) -> Result<String, ManError> {
    match entry(obj, key) {
        Some(Value::Str(s)) => Ok(s.clone()),
        Some(other) => Err(protocol_err(format!(
            "field `{key}` must be a string, got {}",
            other.kind()
        ))),
        None => Err(protocol_err(format!("missing field `{key}`"))),
    }
}

/// Parses one request line.
///
/// # Errors
///
/// [`ServeError::Protocol`] on malformed JSON, a missing/mistyped field
/// or an unknown `"op"`.
pub fn parse_request(line: &str) -> Result<Request, ManError> {
    let value: Value = serde_json::from_str(line.trim())
        .map_err(|e| protocol_err(format!("request is not valid JSON: {e}")))?;
    let obj = value
        .as_object()
        .ok_or_else(|| protocol_err("request must be a JSON object"))?;
    let op = string_field(obj, "op")?;
    match op.as_str() {
        "predict" => {
            let model = string_field(obj, "model")?;
            let input = match entry(obj, "input") {
                Some(v) => <Vec<f32> as serde::Deserialize>::from_value(v)
                    .map_err(|e| protocol_err(format!("field `input`: {e}")))?,
                None => return Err(protocol_err("missing field `input`")),
            };
            Ok(Request::Predict { model, input })
        }
        "load" => Ok(Request::Load {
            model: string_field(obj, "model")?,
            path: string_field(obj, "path")?,
        }),
        "unload" => Ok(Request::Unload {
            model: string_field(obj, "model")?,
        }),
        "stats" => {
            let model = match entry(obj, "model") {
                None | Some(Value::Null) => None,
                Some(Value::Str(s)) => Some(s.clone()),
                Some(other) => {
                    return Err(protocol_err(format!(
                        "field `model` must be a string, got {}",
                        other.kind()
                    )))
                }
            };
            Ok(Request::Stats { model })
        }
        "metrics" => Ok(Request::Metrics),
        "dump_trace" => Ok(Request::DumpTrace),
        "health" => Ok(Request::Health),
        "join" => Ok(Request::Join {
            node: string_field(obj, "node")?,
        }),
        "leave" => Ok(Request::Leave {
            node: string_field(obj, "node")?,
        }),
        other => Err(protocol_err(format!(
            "unknown op `{other}` (expected predict/load/unload/stats/metrics/dump_trace/health/join/leave)"
        ))),
    }
}

/// The stable wire code for an error.
pub fn error_code(e: &ManError) -> &'static str {
    match e {
        ManError::Serve(ServeError::Overloaded { .. }) => "overloaded",
        ManError::Serve(ServeError::UnknownModel(_)) => "unknown_model",
        ManError::Serve(ServeError::Unavailable(_)) => "unavailable",
        ManError::Serve(ServeError::Timeout(_)) => "timeout",
        ManError::Serve(ServeError::Protocol(_)) => "bad_request",
        ManError::Serve(ServeError::Internal(_)) => "internal",
        ManError::Serve(ServeError::NoBackend { .. }) => "no_backend",
        // A relayed worker error keeps the worker's own stable code
        // (interned against the known table; an unrecognized upstream
        // code degrades to `internal` rather than leaking free text).
        ManError::Serve(ServeError::Upstream { code, .. }) => intern_code(code),
        ManError::Shape { .. } => "shape_mismatch",
        ManError::Artifact(_) | ManError::Compile(_) => "bad_artifact",
        ManError::Io(_) => "io",
        _ => "internal",
    }
}

/// Every stable wire code a server can emit (`PROTOCOL.md`'s error
/// table). The cluster router uses this to intern upstream codes and
/// to decide which errors are worth a failover retry.
pub const STABLE_CODES: &[&str] = &[
    "overloaded",
    "unknown_model",
    "unavailable",
    "timeout",
    "bad_request",
    "shape_mismatch",
    "bad_artifact",
    "io",
    "internal",
    "frame_too_large",
    "no_backend",
];

/// Interns a dynamic code string against [`STABLE_CODES`]; anything
/// off-table maps to `internal`.
pub fn intern_code(code: &str) -> &'static str {
    STABLE_CODES
        .iter()
        .find(|&&c| c == code)
        .copied()
        .unwrap_or("internal")
}

fn render(value: &Value) -> String {
    serde_json::to_string(value).expect("response values contain no non-finite floats")
}

/// Renders an error response line from a raw stable code + message —
/// for front-end conditions that never reach the registry (a too-large
/// binary frame, a full dispatch queue, shutdown). Registry errors go
/// through [`error_response`] so the code mapping stays in one place.
pub fn raw_error_response(code: &str, message: &str) -> String {
    render(&Value::Object(vec![
        ("ok".into(), Value::Bool(false)),
        ("error".into(), Value::Str(code.into())),
        ("message".into(), Value::Str(message.into())),
    ]))
}

/// Renders an error response line.
pub fn error_response(e: &ManError) -> String {
    render(&Value::Object(vec![
        ("ok".into(), Value::Bool(false)),
        ("error".into(), Value::Str(error_code(e).into())),
        ("message".into(), Value::Str(e.to_string())),
    ]))
}

/// Renders a successful `predict` response line.
pub fn predict_response(model: &str, prediction: &Prediction) -> String {
    render(&Value::Object(vec![
        ("ok".into(), Value::Bool(true)),
        ("model".into(), Value::Str(model.into())),
        ("class".into(), Value::U64(prediction.class as u64)),
        ("scores".into(), prediction.scores.to_value()),
    ]))
}

/// Renders a successful `load` response line.
pub fn load_response(info: &ModelInfo) -> String {
    render(&Value::Object(vec![
        ("ok".into(), Value::Bool(true)),
        ("model".into(), Value::Str(info.model.clone())),
        ("bits".into(), Value::U64(u64::from(info.bits))),
        ("input_len".into(), Value::U64(info.input_len as u64)),
        ("layers".into(), Value::U64(info.layers as u64)),
        ("alphabets".into(), Value::Str(info.alphabets.clone())),
    ]))
}

/// Renders a successful `unload` response line.
pub fn unload_response(model: &str) -> String {
    render(&Value::Object(vec![
        ("ok".into(), Value::Bool(true)),
        ("model".into(), Value::Str(model.into())),
    ]))
}

/// Renders a successful `stats` response line.
pub fn stats_response(stats: &[ModelStats]) -> String {
    render(&Value::Object(vec![
        ("ok".into(), Value::Bool(true)),
        ("models".into(), stats.to_value()),
    ]))
}

/// Renders a successful `metrics` response line: the Prometheus text
/// page travels as a JSON string (the NDJSON framing cannot carry raw
/// multi-line text), with its content type alongside so a gateway can
/// re-expose it verbatim.
pub fn metrics_response(page: &str) -> String {
    render(&Value::Object(vec![
        ("ok".into(), Value::Bool(true)),
        (
            "content_type".into(),
            Value::Str("text/plain; version=0.0.4".into()),
        ),
        ("body".into(), Value::Str(page.into())),
    ]))
}

/// Renders a plain server's `health` response line: liveness plus the
/// loaded model names (a router renders its own richer variant — see
/// `crate::cluster`).
pub fn health_response(models: &[String]) -> String {
    render(&Value::Object(vec![
        ("ok".into(), Value::Bool(true)),
        ("role".into(), Value::Str("node".into())),
        (
            "models".into(),
            Value::Array(models.iter().map(|m| Value::Str(m.clone())).collect()),
        ),
    ]))
}

/// Renders a successful `dump_trace` response line: the flight
/// recorder's most recent dump embedded as a JSON object, or
/// `"dump":null` when nothing has been triggered (or the obs level is
/// below `Spans`).
pub fn dump_trace_response(dump: Option<&str>) -> String {
    let embedded = dump
        .and_then(|d| serde_json::from_str(d).ok())
        .unwrap_or(Value::Null);
    render(&Value::Object(vec![
        ("ok".into(), Value::Bool(true)),
        ("dump".into(), embedded),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_parse() {
        assert_eq!(
            parse_request(r#"{"op":"predict","model":"m","input":[0.5,1]}"#).unwrap(),
            Request::Predict {
                model: "m".into(),
                input: vec![0.5, 1.0]
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"load","model":"m","path":"p.json"}"#).unwrap(),
            Request::Load {
                model: "m".into(),
                path: "p.json".into()
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"unload","model":"m"}"#).unwrap(),
            Request::Unload { model: "m".into() }
        );
        assert_eq!(
            parse_request(r#"{"op":"stats"}"#).unwrap(),
            Request::Stats { model: None }
        );
        assert_eq!(
            parse_request(r#"{"op":"stats","model":"m"}"#).unwrap(),
            Request::Stats {
                model: Some("m".into())
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"health"}"#).unwrap(),
            Request::Health
        );
        assert_eq!(
            parse_request(r#"{"op":"join","node":"127.0.0.1:9001"}"#).unwrap(),
            Request::Join {
                node: "127.0.0.1:9001".into()
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"leave","node":"127.0.0.1:9001"}"#).unwrap(),
            Request::Leave {
                node: "127.0.0.1:9001".into()
            }
        );
    }

    #[test]
    fn cluster_error_codes_are_stable() {
        let no_backend: ManError = ServeError::NoBackend {
            model: "m".into(),
            attempts: 3,
        }
        .into();
        assert_eq!(error_code(&no_backend), "no_backend");
        // A relayed worker error keeps the worker's own code...
        let relayed: ManError = ServeError::Upstream {
            code: "shape_mismatch".into(),
            message: "input has 2 values but the network expects 4".into(),
        }
        .into();
        assert_eq!(error_code(&relayed), "shape_mismatch");
        // ...and an off-table upstream code degrades to `internal`.
        let bogus: ManError = ServeError::Upstream {
            code: "made_up".into(),
            message: "?".into(),
        }
        .into();
        assert_eq!(error_code(&bogus), "internal");
        // join/leave need their node field.
        assert_eq!(
            error_code(&parse_request(r#"{"op":"join"}"#).unwrap_err()),
            "bad_request"
        );
    }

    #[test]
    fn malformed_requests_are_protocol_errors() {
        for line in [
            "not json",
            "[1,2]",
            r#"{"model":"m"}"#,
            r#"{"op":"fly"}"#,
            r#"{"op":"predict","model":"m"}"#,
            r#"{"op":"predict","model":"m","input":"x"}"#,
            r#"{"op":"load","model":"m"}"#,
            r#"{"op":"stats","model":7}"#,
        ] {
            let err = parse_request(line).unwrap_err();
            assert_eq!(error_code(&err), "bad_request", "{line} -> {err}");
        }
    }

    #[test]
    fn error_codes_are_stable() {
        let overloaded: ManError = ServeError::Overloaded {
            model: "m".into(),
            capacity: 4,
        }
        .into();
        assert_eq!(error_code(&overloaded), "overloaded");
        assert_eq!(
            error_code(&ManError::Shape {
                expected: 4,
                got: 2
            }),
            "shape_mismatch"
        );
        let line = error_response(&overloaded);
        assert!(line.contains(r#""ok":false"#) && line.contains(r#""error":"overloaded""#));
    }
}
