//! The model registry: named [`ModelHost`]s, hot load/reload/unload, and
//! the in-process [`Client`] handle.
//!
//! Routing is name-based: a `predict` resolves its model under a short
//! read lock, clones the host's `Arc`, and submits outside the lock — so
//! inference never serializes on the registry, and a reload swaps the
//! `Arc` atomically while in-flight requests drain on the old host
//! (which shuts down gracefully once the last reference drops).

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::{Arc, RwLock};

use man_repro::{CompiledModel, ManError, Prediction, ServeError};

use crate::batcher::{BatchConfig, ModelHost};
use crate::metrics::ModelStats;

/// Summary of a loaded model, returned by `load` and used by the wire
/// protocol's `load` response.
#[derive(Clone, Debug)]
pub struct ModelInfo {
    /// Registry name.
    pub model: String,
    /// Word length of the compiled engine.
    pub bits: u32,
    /// Values each input must hold.
    pub input_len: usize,
    /// Parameterized layers.
    pub layers: usize,
    /// Alphabet assignment label (e.g. `"1 {1}"`).
    pub alphabets: String,
}

fn info_of(name: &str, model: &CompiledModel) -> ModelInfo {
    ModelInfo {
        model: name.to_owned(),
        bits: model.bits(),
        input_len: model.fixed().input_len(),
        layers: model.fixed().layer_count(),
        alphabets: model.alphabets().label(),
    }
}

/// A concurrent registry of named, scheduler-backed models.
pub struct ModelRegistry {
    // BTreeMap, not HashMap: iteration order is the name order, so
    // `names()` and `stats(None)` are byte-deterministic without a
    // post-hoc sort — the NDJSON stats stream never reshuffles between
    // identical snapshots.
    hosts: RwLock<BTreeMap<String, Arc<ModelHost>>>,
    config: BatchConfig,
}

impl ModelRegistry {
    /// An empty registry whose models are scheduled with `config`.
    pub fn new(config: BatchConfig) -> Arc<Self> {
        Arc::new(Self {
            hosts: RwLock::new(BTreeMap::new()),
            config,
        })
    }

    /// An empty registry with the default scheduler configuration.
    pub fn with_defaults() -> Arc<Self> {
        Self::new(BatchConfig::default())
    }

    /// The scheduler configuration new models are hosted with.
    pub fn config(&self) -> &BatchConfig {
        &self.config
    }

    fn host(&self, model: &str) -> Result<Arc<ModelHost>, ManError> {
        self.hosts
            .read()
            .expect("registry lock poisoned")
            .get(model)
            .cloned()
            .ok_or_else(|| ServeError::UnknownModel(model.to_owned()).into())
    }

    /// Installs (or hot-reloads) an already-compiled model under `name`.
    /// An existing host with that name keeps serving until the swap, then
    /// drains its queue and shuts down.
    pub fn install(&self, name: impl Into<String>, model: CompiledModel) -> ModelInfo {
        let name = name.into();
        let info = info_of(&name, &model);
        let host = ModelHost::start(name.clone(), model, self.config.clone());
        let old = self
            .hosts
            .write()
            .expect("registry lock poisoned")
            .insert(name, host);
        if let Some(old) = old {
            // Outside the write lock: draining the old queue must not
            // block routing.
            old.stop();
        }
        info
    }

    /// Loads (or hot-reloads) a `CompiledModel` artifact from disk and
    /// installs it under `name`.
    ///
    /// # Errors
    ///
    /// Everything [`CompiledModel::load`] reports: [`ManError::Io`],
    /// [`ManError::Artifact`], [`ManError::Compile`].
    pub fn load_file(
        &self,
        name: impl Into<String>,
        path: impl AsRef<Path>,
    ) -> Result<ModelInfo, ManError> {
        Ok(self.install(name, CompiledModel::load(path)?))
    }

    /// Evicts a model: removes it from routing, drains its queue, joins
    /// its workers.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] if nothing is loaded under `name`.
    pub fn unload(&self, model: &str) -> Result<(), ManError> {
        let host = self
            .hosts
            .write()
            .expect("registry lock poisoned")
            .remove(model)
            .ok_or_else(|| ServeError::UnknownModel(model.to_owned()))?;
        host.stop();
        Ok(())
    }

    /// Routes one request to a model's scheduler and waits for the
    /// prediction.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`], [`ManError::Shape`],
    /// [`ServeError::Overloaded`], [`ServeError::Timeout`] — the full
    /// backpressure-aware contract of [`ModelHost::submit`].
    pub fn predict(&self, model: &str, input: Vec<f32>) -> Result<Prediction, ManError> {
        self.host(model)?.submit(input)
    }

    /// The loaded model names, sorted (the map's native key order).
    pub fn names(&self) -> Vec<String> {
        self.hosts
            .read()
            .expect("registry lock poisoned")
            .keys()
            .cloned()
            .collect()
    }

    /// Metadata for one loaded model.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] if nothing is loaded under `name`.
    pub fn info(&self, model: &str) -> Result<ModelInfo, ManError> {
        let host = self.host(model)?;
        Ok(info_of(host.name(), host.model()))
    }

    /// Stats snapshots: every model, or just `model` when given.
    ///
    /// The snapshots are taken *while holding the registry's read lock*,
    /// so they are consistent with routing: an `unload`/`install` (which
    /// need the write lock) cannot complete in between, and `stats`
    /// never reports a model that has already been evicted and drained.
    /// The previous implementation cloned the host `Arc`s, released the
    /// lock, and only then read the counters — leaving a window in which
    /// a concurrent unload finished and the reply described a host that
    /// no longer existed, with a mid-drain queue depth to match.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] when `model` names nothing.
    pub fn stats(&self, model: Option<&str>) -> Result<Vec<ModelStats>, ManError> {
        let hosts = self.hosts.read().expect("registry lock poisoned");
        match model {
            Some(name) => {
                let host = hosts
                    .get(name)
                    .ok_or_else(|| ServeError::UnknownModel(name.to_owned()))?;
                Ok(vec![host.metrics().snapshot(host.name())])
            }
            None => Ok(hosts
                .values()
                .map(|h| h.metrics().snapshot(h.name()))
                .collect()),
        }
    }

    /// Live metrics handles for every loaded model, in name order —
    /// what the telemetry exporter walks to render raw histograms
    /// (the [`ModelRegistry::stats`] snapshot only carries derived
    /// percentiles).
    pub fn metrics_handles(&self) -> Vec<(String, Arc<crate::metrics::ModelMetrics>)> {
        self.hosts
            .read()
            .expect("registry lock poisoned")
            .iter()
            .map(|(name, host)| (name.clone(), Arc::clone(host.metrics())))
            .collect()
    }

    /// Unloads every model (graceful drain), leaving the registry empty.
    pub fn shutdown(&self) {
        let drained = std::mem::take(&mut *self.hosts.write().expect("registry lock poisoned"));
        for host in drained.into_values() {
            host.stop();
        }
    }
}

/// An in-process client handle: the same operations the TCP front-end
/// exposes (`predict` / `load` / `unload` / `stats`), minus the socket —
/// what tests and benches use to drive the scheduler directly.
///
/// # Example
///
/// Compile a tiny network onto the MAN lattice, install it, and serve
/// it in-process:
///
/// ```
/// use std::sync::Arc;
/// use man::alphabet::AlphabetSet;
/// use man_nn::layers::{Activation, ActivationLayer, Dense, Layer};
/// use man_nn::network::Network;
/// use man_serve::{BatchConfig, Client, ModelRegistry};
/// use man_repro::Pipeline;
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), man_serve::ManError> {
/// let mut rng = SmallRng::seed_from_u64(7);
/// let net = Network::new(vec![
///     Layer::Dense(Dense::new(8, 4, &mut rng)),
///     Layer::Activation(ActivationLayer::new(Activation::Sigmoid)),
/// ]);
/// let model = Pipeline::from_network(net)
///     .with_bits(8)
///     .with_alphabets(vec![AlphabetSet::a2()])
///     .constrain()?
///     .compile()?;
///
/// let registry = ModelRegistry::new(BatchConfig::default());
/// registry.install("tiny", model);
///
/// let client = Client::new(Arc::clone(&registry));
/// let p = client.predict("tiny", vec![0.5; 8])?;
/// assert!(p.class < 4, "4 output neurons -> class in 0..4");
/// registry.shutdown();
/// # Ok(()) }
/// ```
#[derive(Clone)]
pub struct Client {
    registry: Arc<ModelRegistry>,
}

impl Client {
    /// A client over a shared registry.
    pub fn new(registry: Arc<ModelRegistry>) -> Self {
        Self { registry }
    }

    /// The registry behind this client.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// One prediction.
    ///
    /// # Errors
    ///
    /// As [`ModelRegistry::predict`].
    pub fn predict(&self, model: &str, input: Vec<f32>) -> Result<Prediction, ManError> {
        self.registry.predict(model, input)
    }

    /// Loads (or hot-reloads) an artifact from disk.
    ///
    /// # Errors
    ///
    /// As [`ModelRegistry::load_file`].
    pub fn load(&self, model: &str, path: impl AsRef<Path>) -> Result<ModelInfo, ManError> {
        self.registry.load_file(model, path)
    }

    /// Evicts a model.
    ///
    /// # Errors
    ///
    /// As [`ModelRegistry::unload`].
    pub fn unload(&self, model: &str) -> Result<(), ManError> {
        self.registry.unload(model)
    }

    /// Stats snapshots.
    ///
    /// # Errors
    ///
    /// As [`ModelRegistry::stats`].
    pub fn stats(&self, model: Option<&str>) -> Result<Vec<ModelStats>, ManError> {
        self.registry.stats(model)
    }
}
