//! Per-model serving metrics: request counters, a log-bucketed latency
//! histogram, and the micro-batch size distribution.
//!
//! Everything on the hot path is a relaxed atomic increment; aggregation
//! into the serializable [`ModelStats`] snapshot happens only when a
//! `stats` request asks for it. Latencies land in power-of-two
//! microsecond buckets, so the reported percentiles are exact to within
//! one octave — plenty for capacity planning, and free of locks.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use man_par::ShardPlan;
use man_repro::SessionStats;
use serde::Serialize;

/// Number of power-of-two latency buckets: bucket `i` holds requests
/// that completed in `[2^i, 2^(i+1))` microseconds; 40 buckets cover
/// about 12.7 days, beyond any sane request timeout.
const LATENCY_BUCKETS: usize = 40;

/// Lock-free histogram of request latencies in microseconds.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }

    /// Records one request latency.
    ///
    /// ORDERING: monotonic statistics counters; readers tolerate torn
    /// cross-counter views (see `load`), so Relaxed is sufficient.
    pub fn observe(&self, latency: Duration) {
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let bucket = (us.max(1).ilog2() as usize).min(LATENCY_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// A consistent-enough copy of the bucket counts.
    ///
    /// ORDERING: reporting-only reads of monotonic counters; a slightly
    /// stale or mutually-inconsistent view is acceptable by contract, so
    /// no acquire ordering is needed.
    fn load(&self) -> ([u64; LATENCY_BUCKETS], u64, u64) {
        let buckets = std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        (
            buckets,
            self.count.load(Ordering::Relaxed),
            self.sum_us.load(Ordering::Relaxed),
        )
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Estimates the `q`-quantile (0..=1) from bucket counts: the geometric
/// midpoint of the first bucket whose cumulative count reaches the rank.
fn quantile_us(buckets: &[u64; LATENCY_BUCKETS], count: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut seen = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        seen += c;
        if seen >= rank {
            // Midpoint of [2^i, 2^(i+1)): 1.5 * 2^i.
            return (1u64 << i) + (1u64 << i) / 2;
        }
    }
    1u64 << (LATENCY_BUCKETS - 1)
}

/// Live counters for one hosted model. Shared (`Arc`) between the
/// submit path, the scheduler workers, and the stats endpoint.
#[derive(Debug)]
pub struct ModelMetrics {
    /// Requests accepted into the queue.
    pub accepted: AtomicU64,
    /// Requests answered with a prediction.
    pub completed: AtomicU64,
    /// Requests rejected at submit (queue full).
    pub rejected: AtomicU64,
    /// Requests whose submitter gave up waiting (`request_timeout`).
    /// The scheduler still runs and counts them `completed`, so a
    /// latency collapse shows up here even when every batch succeeds.
    pub timed_out: AtomicU64,
    /// Requests answered with an error (bad shape, worker failure, ...).
    pub errors: AtomicU64,
    /// `infer_batch` calls issued by the scheduler.
    pub batches: AtomicU64,
    /// One counter per batch size `1..=max_batch` (index `size - 1`).
    batch_sizes: Vec<AtomicU64>,
    /// End-to-end latency (enqueue to reply).
    pub latency: LatencyHistogram,
    /// Requests currently queued (approximate).
    pub queue_depth: AtomicUsize,
    /// What the most recent dispatch resolved to (plan × kernel) plus
    /// the worker session's cache memory — plan/kernel are recorded per
    /// batch (two `Copy` stores), the memory walk only periodically;
    /// both read by `stats`.
    session: Mutex<SessionObservation>,
}

/// The session snapshot the scheduler records. Plan and kernel are
/// kept in their cheap `Copy` forms — labels are rendered at snapshot
/// time, not on the dispatch hot path.
#[derive(Clone, Debug, Default)]
struct SessionObservation {
    plan: Option<ShardPlan>,
    /// `""` until the first dispatch.
    kernel: &'static str,
    layer_bank_bytes: Vec<u64>,
    bank_bytes: u64,
    plane_bytes: u64,
    kernel_plan_bytes: u64,
}

impl ModelMetrics {
    /// Fresh counters for a scheduler with the given `max_batch`.
    pub fn new(max_batch: usize) -> Self {
        Self {
            accepted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batch_sizes: (0..max_batch.max(1)).map(|_| AtomicU64::new(0)).collect(),
            latency: LatencyHistogram::new(),
            queue_depth: AtomicUsize::new(0),
            session: Mutex::new(SessionObservation::default()),
        }
    }

    /// Records one dispatched batch of `size` requests.
    ///
    /// ORDERING: monotonic statistics counters read only for reporting;
    /// Relaxed suffices (no memory is published through them).
    pub fn observe_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        if size >= 1 {
            let idx = (size - 1).min(self.batch_sizes.len() - 1);
            self.batch_sizes[idx].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records what a dispatch resolved to on both tuner axes — two
    /// `Copy` stores under a short lock, cheap enough for every batch,
    /// so operators always see what the tuner actually chose last.
    pub fn observe_plan(&self, plan: ShardPlan, kernel: &'static str) {
        let mut obs = self
            .session
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        obs.plan = Some(plan);
        obs.kernel = kernel;
    }

    /// Records a worker session's cache memory footprint. Walking the
    /// footprint locks every worker-slot cache and allocates, so the
    /// scheduler calls this periodically, not per batch.
    pub fn observe_memory(&self, stats: &SessionStats) {
        let mut obs = self
            .session
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        obs.layer_bank_bytes = stats.layer_bank_bytes.clone();
        obs.bank_bytes = stats.bank_bytes;
        obs.plane_bytes = stats.plane_bytes;
        obs.kernel_plan_bytes = stats.kernel_plan_bytes;
    }

    /// Aggregates the counters into a serializable snapshot.
    ///
    /// ORDERING: every Relaxed load here reads an independent monotonic
    /// statistics counter; the snapshot is advisory reporting, and no
    /// cross-counter consistency is promised to callers.
    pub fn snapshot(&self, model: &str) -> ModelStats {
        let obs = self
            .session
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        let unresolved = || "unresolved".to_owned();
        let (buckets, count, sum_us) = self.latency.load();
        let batch_histogram: Vec<u64> = self
            .batch_sizes
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let batches = self.batches.load(Ordering::Relaxed);
        let dispatched: u64 = batch_histogram
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as u64 + 1) * c)
            .sum();
        ModelStats {
            model: model.to_owned(),
            accepted: self.accepted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            batches,
            mean_batch: if batches == 0 {
                0.0
            } else {
                dispatched as f64 / batches as f64
            },
            batch_histogram,
            queue_depth: self.queue_depth.load(Ordering::Relaxed) as u64,
            mean_latency_us: if count == 0 {
                0.0
            } else {
                sum_us as f64 / count as f64
            },
            p50_us: quantile_us(&buckets, count, 0.50),
            p95_us: quantile_us(&buckets, count, 0.95),
            p99_us: quantile_us(&buckets, count, 0.99),
            plan: obs
                .plan
                .map(|p| p.label_with_kernel(obs.kernel))
                .unwrap_or_else(unresolved),
            kernel: if obs.kernel.is_empty() {
                unresolved()
            } else {
                obs.kernel.to_owned()
            },
            cache_layer_bank_bytes: obs.layer_bank_bytes,
            cache_bank_bytes: obs.bank_bytes,
            cache_plane_bytes: obs.plane_bytes,
            kernel_plan_bytes: obs.kernel_plan_bytes,
        }
    }
}

/// A point-in-time stats snapshot for one model — the payload of the
/// protocol's `stats` response and of `BENCH_serve.json`.
#[derive(Clone, Debug, Serialize)]
pub struct ModelStats {
    /// Model name.
    pub model: String,
    /// Requests accepted into the queue.
    pub accepted: u64,
    /// Requests answered with a prediction.
    pub completed: u64,
    /// Requests rejected with `Overloaded`.
    pub rejected: u64,
    /// Requests whose submitter timed out waiting for the reply.
    pub timed_out: u64,
    /// Requests answered with an error.
    pub errors: u64,
    /// Scheduler `infer_batch` calls.
    pub batches: u64,
    /// Mean requests per batch.
    pub mean_batch: f64,
    /// Batches of size `i + 1` (the micro-batch size distribution).
    pub batch_histogram: Vec<u64>,
    /// Requests queued at snapshot time (approximate).
    pub queue_depth: u64,
    /// Mean end-to-end latency.
    pub mean_latency_us: f64,
    /// Median end-to-end latency (octave-bucket estimate).
    pub p50_us: u64,
    /// 95th-percentile latency (octave-bucket estimate).
    pub p95_us: u64,
    /// 99th-percentile latency (octave-bucket estimate).
    pub p99_us: u64,
    /// The sharding plan × kernel the most recent dispatch resolved to
    /// (e.g. `"rows(4)+swar"`); `"unresolved"` before the first batch.
    pub plan: String,
    /// The resolved MAC kernel label (`"scalar"`/`"swar"`/`"avx2"`;
    /// `"unresolved"` before the first batch).
    pub kernel: String,
    /// Per-layer bank-arena bytes of the observed worker session.
    pub cache_layer_bank_bytes: Vec<u64>,
    /// Total bank-arena bytes of the observed worker session.
    pub cache_bank_bytes: u64,
    /// Product-plane bytes (0 outside `SessionMode::Warm`; the plane is
    /// shared across worker slots and counted once).
    pub cache_plane_bytes: u64,
    /// Bytes of the engine's shared SoA kernel plans.
    pub kernel_plan_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_track_bucket_order() {
        let h = LatencyHistogram::new();
        for _ in 0..90 {
            h.observe(Duration::from_micros(100)); // bucket 6 ([64, 128))
        }
        for _ in 0..10 {
            h.observe(Duration::from_micros(10_000)); // bucket 13
        }
        let (buckets, count, _) = h.load();
        assert_eq!(count, 100);
        let p50 = quantile_us(&buckets, count, 0.50);
        let p99 = quantile_us(&buckets, count, 0.99);
        assert!(
            (64..128).contains(&p50),
            "p50 {p50} should sit in the 100us octave"
        );
        assert!(
            (8_192..16_384).contains(&p99),
            "p99 {p99} should sit in the 10ms octave"
        );
        assert!(p50 < p99);
    }

    #[test]
    fn batch_histogram_counts_sizes() {
        let m = ModelMetrics::new(4);
        m.observe_batch(1);
        m.observe_batch(4);
        m.observe_batch(4);
        m.observe_batch(9); // clamped into the last bucket
        let s = m.snapshot("m");
        assert_eq!(s.batch_histogram, vec![1, 0, 0, 3]);
        assert_eq!(s.batches, 4);
        assert!(s.mean_batch > 1.0);
    }

    #[test]
    fn empty_metrics_snapshot_is_zeroed() {
        let s = ModelMetrics::new(8).snapshot("idle");
        assert_eq!(s.completed, 0);
        assert_eq!(s.p99_us, 0);
        assert_eq!(s.mean_batch, 0.0);
    }
}
